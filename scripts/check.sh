#!/usr/bin/env bash
# Tier-1 gate: release build + full test suite, fully offline.
# Run from the repository root: ./scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline --workspace
cargo test -q --offline --workspace
