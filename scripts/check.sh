#!/usr/bin/env bash
# Tier-1 gate: release build + full test suite, fully offline, then a
# fault-injection smoke run and a recovery-path lint.
# Run from the repository root: ./scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline --workspace
cargo bench --no-run --offline --workspace
cargo test -q --offline --workspace

# ---------------------------------------------------------------------------
# Kernel regression gate: re-measure the hot tensor kernels (quick mode:
# medians only, few iterations) and compare against the committed
# BENCH_baseline.json. Fails on a >15% regression of a gated kernel, on
# `auto` thread mode losing to serial, or on the blocked-matmul speedup
# over the pre-rewrite kernels falling below its floor. After an
# intentional kernel change, rebase with:
#   AUTOMC_BENCH_REBASE=1 cargo run --release --offline -p automc-bench \
#       --bin kernel_gate
# ---------------------------------------------------------------------------
echo "== kernel regression gate =="
AUTOMC_BENCH_QUICK=1 cargo bench --offline -p automc-bench --bench substrate
cargo run --release --offline -p automc-bench --bin kernel_gate
echo "kernel regression gate passed"

# ---------------------------------------------------------------------------
# Fault-injection smoke: the full Table 2 pipeline at the smallest scale,
# with a seeded fault plan injecting a panic, a NaN, and a cache corruption.
# The run must complete (degraded where the faults land, but structurally
# valid) and print SMOKE OK. Single-threaded so the fault ordinals are
# deterministic.
# ---------------------------------------------------------------------------
echo "== fault-injection smoke =="
AUTOMC_THREADS=1 AUTOMC_FAULTS="panic@eval:2,nan@train:5,corrupt@cache:1" \
    cargo run --release --offline -p automc-bench --bin table2 -- \
    --smoke --fresh --seed 5 2>&1 | tee /tmp/automc-smoke.log
grep -q "SMOKE OK" /tmp/automc-smoke.log
echo "fault-injection smoke passed"

# ---------------------------------------------------------------------------
# Kill/resume smoke: run the smallest Table 2 pipeline to completion for a
# reference, then kill a second run mid-search with an injected process
# exit, resume it from its journal, and require byte-identical stdout.
# `AUTOMC_RESULTS_DIR` isolates each run's cache so the resumed run can
# only reuse what the killed run actually persisted. The eval ordinal is
# tuned to land inside a baseline search (after the method grid); if the
# pipeline's evaluation count drifts, the exit-code check below fails
# loudly and the ordinal needs retuning.
# ---------------------------------------------------------------------------
echo "== kill/resume smoke =="
ref_dir=$(mktemp -d)
res_dir=$(mktemp -d)
trap 'rm -rf "$ref_dir" "$res_dir"' EXIT
AUTOMC_THREADS=1 AUTOMC_RESULTS_DIR="$ref_dir" \
    cargo run --release --offline -p automc-bench --bin table2 -- \
    --smoke --fresh --seed 7 >/tmp/automc-resume-ref.out 2>/dev/null
set +e
AUTOMC_THREADS=1 AUTOMC_RESULTS_DIR="$res_dir" AUTOMC_FAULTS="exit@eval:58" \
    cargo run --release --offline -p automc-bench --bin table2 -- \
    --smoke --fresh --seed 7 >/dev/null 2>&1
kill_code=$?
set -e
if [ "$kill_code" -ne 87 ]; then
    echo "kill/resume smoke: expected the injected kill (exit 87), got $kill_code"
    exit 1
fi
ls "$res_dir"/*.journal >/dev/null  # the killed search must leave a journal
AUTOMC_THREADS=1 AUTOMC_RESULTS_DIR="$res_dir" \
    cargo run --release --offline -p automc-bench --bin table2 -- \
    --smoke --seed 7 >/tmp/automc-resume-res.out 2>/tmp/automc-resume-res.err
grep -q '\[journal\] resumed' /tmp/automc-resume-res.err
diff /tmp/automc-resume-ref.out /tmp/automc-resume-res.out
echo "kill/resume smoke passed"

# ---------------------------------------------------------------------------
# Orchestrator smoke: shard the same pipeline across two supervised worker
# processes with an injected worker crash (kill@worker:1 — the first spawn
# exits after its first completed task). The supervisor must log the
# restart, the run must complete, and stdout must be byte-identical to the
# single-process reference above. The workers pull the corpus/embedding
# artifacts from the reference store (read-only shared fallback), so this
# stage costs seconds, not another full run.
# ---------------------------------------------------------------------------
echo "== orchestrator smoke =="
orch_dir=$(mktemp -d)
trap 'rm -rf "$ref_dir" "$res_dir" "$orch_dir"' EXIT
AUTOMC_THREADS=1 AUTOMC_RESULTS_DIR="$orch_dir" AUTOMC_SHARED_RESULTS_DIR="$ref_dir" \
    AUTOMC_FAULTS="kill@worker:1" \
    cargo run --release --offline -p automc-bench --bin table2 -- \
    --smoke --seed 7 --workers 2 \
    >/tmp/automc-orch.out 2>/tmp/automc-orch.err
grep -q 'injected kill' /tmp/automc-orch.err
grep -q 'retry 1/' /tmp/automc-orch.err
diff /tmp/automc-resume-ref.out /tmp/automc-orch.out
echo "orchestrator smoke passed"

# ---------------------------------------------------------------------------
# Memo equivalence smoke: the prefix-model cache must not change a single
# output byte. Run the smallest Table 2 pipeline with memoization off,
# then on (cold), then on again in the same results dir (--fresh discards
# completed rows, so every prefix re-hits the spill store), then on at 4
# threads — all four stdouts must be byte-identical, and the warm run's
# Evolution search must report a real hit rate.
# ---------------------------------------------------------------------------
echo "== memo equivalence smoke =="
moff_dir=$(mktemp -d)
mon_dir=$(mktemp -d)
trap 'rm -rf "$ref_dir" "$res_dir" "$orch_dir" "$moff_dir" "$mon_dir"' EXIT
AUTOMC_THREADS=1 AUTOMC_RESULTS_DIR="$moff_dir" \
    cargo run --release --offline -p automc-bench --bin table2 -- \
    --smoke --fresh --seed 9 --memo off >/tmp/automc-memo-off.out 2>/dev/null
AUTOMC_THREADS=1 AUTOMC_RESULTS_DIR="$mon_dir" \
    cargo run --release --offline -p automc-bench --bin table2 -- \
    --smoke --fresh --seed 9 --memo on >/tmp/automc-memo-cold.out 2>/dev/null
AUTOMC_THREADS=1 AUTOMC_RESULTS_DIR="$mon_dir" \
    cargo run --release --offline -p automc-bench --bin table2 -- \
    --smoke --fresh --seed 9 --memo on \
    >/tmp/automc-memo-warm.out 2>/tmp/automc-memo-warm.err
AUTOMC_THREADS=4 AUTOMC_RESULTS_DIR="$mon_dir" \
    cargo run --release --offline -p automc-bench --bin table2 -- \
    --smoke --fresh --seed 9 --memo on >/tmp/automc-memo-t4.out 2>/dev/null
diff /tmp/automc-memo-off.out /tmp/automc-memo-cold.out
diff /tmp/automc-memo-off.out /tmp/automc-memo-warm.out
diff /tmp/automc-memo-off.out /tmp/automc-memo-t4.out
grep '\[memo\] Evolution:' /tmp/automc-memo-warm.err
awk -F'[(%]' '/\[memo\] Evolution:/ { if ($2 + 0 < 30) exit 1 }' \
    /tmp/automc-memo-warm.err || {
    echo "memo smoke: Evolution prefix hit rate below 30%"; exit 1; }
echo "memo equivalence smoke passed"

# ---------------------------------------------------------------------------
# Blob-store smoke: the crash-safe spill store must absorb each of its
# fault kinds without changing a single output byte. One fault per run,
# all sharing one results/spill dir (single-threaded, so the fault
# ordinals are deterministic):
#   1. torn@spill:1     — first spill publish writes a truncated blob;
#   2. warm, no faults  — the torn blob is read, quarantined, healed;
#   3. evict@spill:1    — first spill read races a GC eviction (clean miss);
#   4. corrupt@index:1  — first index append is corrupted on disk;
#   5. warm, no faults  — the reader rebuilds the index from a scan.
# Every run must match the memo-off reference byte for byte. The
# multi-process hammer test ran under `cargo test` above; re-run it
# explicitly here so a filtered test invocation cannot silently skip it.
# ---------------------------------------------------------------------------
echo "== blob-store smoke =="
cargo test -q --offline -p automc-compress --test store_hammer
bs_dir=$(mktemp -d)
trap 'rm -rf "$ref_dir" "$res_dir" "$orch_dir" "$moff_dir" "$mon_dir" "$bs_dir"' EXIT
AUTOMC_THREADS=1 AUTOMC_RESULTS_DIR="$bs_dir" AUTOMC_FAULTS="torn@spill:1" \
    cargo run --release --offline -p automc-bench --bin table2 -- \
    --smoke --fresh --seed 9 --memo on \
    >/tmp/automc-store-torn.out 2>/tmp/automc-store-torn.err
grep -q 'injecting torn publish' /tmp/automc-store-torn.err
diff /tmp/automc-memo-off.out /tmp/automc-store-torn.out
AUTOMC_THREADS=1 AUTOMC_RESULTS_DIR="$bs_dir" \
    cargo run --release --offline -p automc-bench --bin table2 -- \
    --smoke --fresh --seed 9 --memo on \
    >/tmp/automc-store-heal.out 2>/tmp/automc-store-heal.err
grep -q 'quarantined corrupt blob\|removed corrupt blob' /tmp/automc-store-heal.err
diff /tmp/automc-memo-off.out /tmp/automc-store-heal.out
AUTOMC_THREADS=1 AUTOMC_RESULTS_DIR="$bs_dir" AUTOMC_FAULTS="evict@spill:1" \
    cargo run --release --offline -p automc-bench --bin table2 -- \
    --smoke --fresh --seed 9 --memo on \
    >/tmp/automc-store-evict.out 2>/tmp/automc-store-evict.err
grep -q 'injecting evict race' /tmp/automc-store-evict.err
diff /tmp/automc-memo-off.out /tmp/automc-store-evict.out
AUTOMC_THREADS=1 AUTOMC_RESULTS_DIR="$bs_dir" AUTOMC_FAULTS="corrupt@index:1" \
    cargo run --release --offline -p automc-bench --bin table2 -- \
    --smoke --fresh --seed 9 --memo on \
    >/tmp/automc-store-badidx.out 2>/tmp/automc-store-badidx.err
grep -q 'injecting index corruption' /tmp/automc-store-badidx.err
diff /tmp/automc-memo-off.out /tmp/automc-store-badidx.out
AUTOMC_THREADS=1 AUTOMC_RESULTS_DIR="$bs_dir" \
    cargo run --release --offline -p automc-bench --bin table2 -- \
    --smoke --fresh --seed 9 --memo on \
    >/tmp/automc-store-rebuild.out 2>/tmp/automc-store-rebuild.err
grep -q 'index rebuilt from scan' \
    /tmp/automc-store-badidx.err /tmp/automc-store-rebuild.err
diff /tmp/automc-memo-off.out /tmp/automc-store-rebuild.out
echo "blob-store smoke passed"

# ---------------------------------------------------------------------------
# Serve daemon smoke: start the compression-as-a-service daemon, run the
# same seed-7 smoke Table 2 job through it, and require the streamed
# result to be byte-identical to the batch binary's tables (the
# kill/resume reference above, minus the batch-only banner/footer lines).
# A second client attaching to the same job must read identical bytes, a
# submit+cancel of another job must leave the daemon serving, and a
# shutdown request must end the process cleanly.
# ---------------------------------------------------------------------------
echo "== serve daemon smoke =="
srv_dir=$(mktemp -d)
trap 'rm -rf "$ref_dir" "$res_dir" "$orch_dir" "$moff_dir" "$mon_dir" "$bs_dir" "$srv_dir"' EXIT
AUTOMC_THREADS=1 AUTOMC_RESULTS_DIR="$srv_dir" \
    cargo run --release --offline -p automc-serve -- \
    serve --jobs 1 --addr-file "$srv_dir/addr" >/tmp/automc-serve.log 2>&1 &
srv_pid=$!
for _ in $(seq 100); do [ -s "$srv_dir/addr" ] && break; sleep 0.1; done
[ -s "$srv_dir/addr" ] || { echo "serve smoke: daemon never bound"; exit 1; }
srv_addr=$(cat "$srv_dir/addr")
cargo run --release --offline -p automc-serve -- \
    run --addr "$srv_addr" --scale smoke --seed 7 \
    >/tmp/automc-serve-run1.out 2>/dev/null
grep -v '^Table 2 smoke run\|^smoke: \|^SMOKE OK' /tmp/automc-resume-ref.out \
    >/tmp/automc-serve-ref.out
diff /tmp/automc-serve-ref.out /tmp/automc-serve-run1.out
cargo run --release --offline -p automc-serve -- \
    run --addr "$srv_addr" --scale smoke --seed 7 \
    >/tmp/automc-serve-run2.out 2>/dev/null
diff /tmp/automc-serve-run1.out /tmp/automc-serve-run2.out
srv_job=$(cargo run --release --offline -p automc-serve -- \
    submit --addr "$srv_addr" --scale smoke --seed 8 --kind automc --fresh \
    2>/dev/null)
cargo run --release --offline -p automc-serve -- \
    cancel --addr "$srv_addr" --job "$srv_job" 2>/dev/null
cargo run --release --offline -p automc-serve -- shutdown --addr "$srv_addr"
wait "$srv_pid"
echo "serve daemon smoke passed"

# ---------------------------------------------------------------------------
# Recovery-path lint: the modules that implement fault handling must not
# unwrap in non-test code — a panic inside the recovery machinery defeats
# it. Test modules (below the `mod tests` line) are exempt.
# ---------------------------------------------------------------------------
echo "== recovery-path lint =="
lint_fail=0
for f in crates/tensor/src/fault.rs crates/core/src/journal.rs \
         crates/bench/src/cache.rs crates/compress/src/memo.rs \
         crates/compress/src/store.rs crates/bench/src/orchestrator.rs \
         crates/core/src/progress.rs crates/serve/src/protocol.rs \
         crates/serve/src/server.rs crates/serve/src/client.rs \
         crates/serve/src/bin/automc-serve.rs; do
    nontest=$(sed '/^\(#\[cfg(test)\]\|mod tests\)/,$d' "$f")
    if echo "$nontest" | grep -n 'unwrap()' >/dev/null; then
        echo "lint: unwrap() in recovery path $f:"
        echo "$nontest" | grep -n 'unwrap()'
        lint_fail=1
    fi
done
if [ "$lint_fail" -ne 0 ]; then
    echo "recovery-path lint failed"
    exit 1
fi
echo "recovery-path lint passed"

echo "All checks passed."
