//! # automc
//!
//! Facade crate for the AutoMC reproduction workspace. Re-exports every
//! subsystem under one roof so examples and downstream users need a single
//! dependency.
//!
//! See the repository `README.md` for the architecture overview and
//! `DESIGN.md` for the paper-to-module map.

pub use automc_compress as compress;
pub use automc_core as search;
pub use automc_data as data;
pub use automc_knowledge as knowledge;
pub use automc_models as models;
pub use automc_tensor as tensor;
