//! Full AutoMC pipeline on a small task: learn knowledge embeddings
//! (Algorithm 1), run the progressive search (Algorithm 2), and print the
//! Pareto-optimal compression schemes it finds.
//!
//! This is a miniature of the paper's Exp1 — a real end-to-end run takes
//! minutes, so scale constants here are small.
//!
//! Run: `cargo run --release --example auto_search`

use automc::compress::{ExecConfig, Metrics, StrategySpace};
use automc::data::{DatasetSpec, SyntheticKind};
use automc::knowledge::{
    generate_experience, learn_embeddings, EmbeddingConfig, MicroTask,
};
use automc::models::train::{train, Auxiliary, TrainConfig};
use automc::models::{resnet, ModelKind};
use automc::search::{progressive_search, AutoMcConfig, SearchBudget, SearchContext};
use automc::tensor::rng_from_seed;

fn main() {
    let mut rng = rng_from_seed(11);

    // ---- The compression task -------------------------------------------
    let (train_set, test_set) = DatasetSpec {
        train: 400,
        test: 200,
        noise: 0.25,
        ..DatasetSpec::new(SyntheticKind::Cifar10Like)
    }
    .generate();
    let mut base = resnet(20, 4, 10, (3, 8, 8), &mut rng);
    println!("pre-training the base model…");
    train(
        &mut base,
        &train_set,
        &TrainConfig { epochs: 6.0, ..Default::default() },
        Auxiliary::None,
        &mut rng,
    );
    let base_metrics = Metrics::measure(&mut base, &test_set);
    println!("base: {} params, {:.1}% accuracy", base_metrics.params, base_metrics.acc * 100.0);

    // ---- Algorithm 1: domain-knowledge embeddings -------------------------
    let space = StrategySpace::full();
    println!("strategy space: {} strategies", space.len());
    println!("generating experience corpus (executes strategies on micro tasks)…");
    let mut micro = vec![MicroTask::new(
        SyntheticKind::Cifar10Like,
        ModelKind::ResNet(20),
        4,
        160,
        80,
        3.0,
        77,
        &mut rng,
    )];
    let exec = ExecConfig { pretrain_epochs: 3.0, ..Default::default() };
    let corpus = generate_experience(&space, &mut micro, 18, &exec, &mut rng);
    println!("corpus: {} experience tuples", corpus.records.len());
    println!("learning strategy embeddings (TransR + NN_exp)…");
    let embeddings = learn_embeddings(
        &space,
        &corpus,
        &EmbeddingConfig { epochs: 4, ..Default::default() },
        true,
        true,
        &mut rng,
    );

    // ---- Algorithm 2: progressive search ----------------------------------
    let sample = train_set.sample_fraction(0.1, &mut rng);
    let ctx = SearchContext {
        space: &space,
        base_model: &base,
        base_metrics,
        search_train: &sample,
        eval_set: &test_set,
        exec: ExecConfig { pretrain_epochs: 6.0, ..Default::default() },
        max_len: 4,
        gamma: 0.3,
        budget: SearchBudget::new(15_000),
    };
    println!("running progressive search (budget {} units)…", ctx.budget.units);
    let history = progressive_search(&ctx, embeddings, &AutoMcConfig::default(), &mut rng);
    println!("evaluated {} schemes", history.records.len());

    // ---- Results -----------------------------------------------------------
    println!("\nPareto-optimal schemes with PR ≥ 30%:");
    for i in history.pareto_indices(0.3) {
        let r = &history.records[i];
        println!(
            "  PR {:.1}%  AR {:+.2}%  acc {:.1}%  —  {}",
            r.pr * 100.0,
            r.ar * 100.0,
            r.acc * 100.0,
            r.scheme
                .iter()
                .map(|&sid| space.spec(sid).to_string())
                .collect::<Vec<_>>()
                .join(" → ")
        );
    }
    if let Some(best) = history.best(0.3) {
        println!(
            "\nbest scheme: {:.1}% params removed at {:.1}% accuracy",
            best.pr * 100.0,
            best.acc * 100.0
        );
    }
}
