//! Quickstart: compress a pre-trained CNN with a single hand-picked
//! compression strategy and inspect the paper's metrics (PR / FR / AR).
//!
//! Run: `cargo run --release --example quickstart`

use automc::compress::{apply_strategy, ExecConfig, Metrics, StrategySpec};
use automc::data::{DatasetSpec, SyntheticKind};
use automc::models::surgery::Criterion;
use automc::models::train::{evaluate, train, Auxiliary, TrainConfig};
use automc::models::resnet;
use automc::tensor::rng_from_seed;

fn main() {
    let mut rng = rng_from_seed(7);

    // 1. A task: a synthetic 10-class dataset and a small ResNet-20.
    let (train_set, test_set) = DatasetSpec {
        train: 600,
        test: 300,
        noise: 0.25,
        ..DatasetSpec::new(SyntheticKind::Cifar10Like)
    }
    .generate();
    let mut model = resnet(20, 4, 10, (3, 8, 8), &mut rng);

    // 2. Pre-train it.
    println!("pre-training ResNet-20…");
    train(
        &mut model,
        &train_set,
        &TrainConfig { epochs: 8.0, ..Default::default() },
        Auxiliary::None,
        &mut rng,
    );
    let base = Metrics::measure(&mut model, &test_set);
    println!(
        "base model: {} params, {} FLOPs, {:.1}% accuracy",
        base.params,
        base.flops,
        base.acc * 100.0
    );

    // 3. Apply one compression strategy: LeGR filter pruning that removes
    //    ~30% of the parameters, then fine-tunes.
    let strategy = StrategySpec::Legr {
        ft_epochs: 0.4, // ×E₀ fine-tuning budget
        ratio: 0.3,     // remove 30% of parameters
        max_prune: 0.9,
        evo_epochs: 0.4,
        criterion: Criterion::L2Weight,
    };
    println!("applying {strategy} …");
    let exec = ExecConfig { pretrain_epochs: 8.0, ..Default::default() };
    apply_strategy(&strategy, &mut model, &train_set, &exec, &mut rng);

    // 4. Inspect the result.
    let compressed = Metrics::measure(&mut model, &test_set);
    println!(
        "compressed:  {} params, {} FLOPs, {:.1}% accuracy",
        compressed.params,
        compressed.flops,
        compressed.acc * 100.0
    );
    println!(
        "PR = {:.1}%   FR = {:.1}%   AR = {:+.2}%",
        compressed.pr(&base) * 100.0,
        compressed.fr(&base) * 100.0,
        compressed.ar(&base) * 100.0
    );
    let final_acc = evaluate(&mut model, &test_set);
    assert!((final_acc - compressed.acc).abs() < 1e-6);
}
