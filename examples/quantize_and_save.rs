//! Extension features: compress a model, quantize it (the C7 family the
//! paper lists as future work), and checkpoint the weights to disk.
//!
//! Run: `cargo run --release --example quantize_and_save`

use automc::compress::quant::{apply_quant, describe, size_bytes, QuantSpec};
use automc::compress::{apply_strategy, ExecConfig, Metrics, StrategySpec};
use automc::data::{DatasetSpec, SyntheticKind};
use automc::models::checkpoint::{load_weights, save_weights};
use automc::models::resnet;
use automc::models::train::{train, Auxiliary, TrainConfig};
use automc::tensor::rng_from_seed;

fn main() {
    let mut rng = rng_from_seed(47);
    let (train_set, test_set) = DatasetSpec {
        train: 400,
        test: 200,
        noise: 0.25,
        ..DatasetSpec::new(SyntheticKind::Cifar10Like)
    }
    .generate();
    let mut model = resnet(20, 4, 10, (3, 8, 8), &mut rng);
    println!("pre-training…");
    train(
        &mut model,
        &train_set,
        &TrainConfig { epochs: 6.0, ..Default::default() },
        Auxiliary::None,
        &mut rng,
    );
    let base = Metrics::measure(&mut model, &test_set);
    println!(
        "base: {} params = {} bytes (f32), {:.1}% accuracy",
        base.params,
        size_bytes(&model, 32),
        base.acc * 100.0
    );

    // 1. Structured pruning first…
    let exec = ExecConfig { pretrain_epochs: 6.0, ..Default::default() };
    let prune = StrategySpec::Ns { ft_epochs: 0.4, ratio: 0.3, max_prune: 0.9 };
    println!("applying {prune} …");
    apply_strategy(&prune, &mut model, &train_set, &exec, &mut rng);

    // 2. …then 8-bit quantization-aware tuning on top.
    let quant = QuantSpec { bits: 8, qat_epochs: 0.2 };
    println!("applying {} …", describe(&quant));
    apply_quant(&quant, &mut model, &train_set, &exec, &mut rng);
    let compressed = Metrics::measure(&mut model, &test_set);
    println!(
        "compressed: {} params = {} bytes (int8), {:.1}% accuracy",
        compressed.params,
        size_bytes(&model, quant.bits),
        compressed.acc * 100.0
    );
    println!(
        "total size reduction: {:.1}×",
        size_bytes_ratio(base.params, compressed.params, quant.bits)
    );

    // 3. Checkpoint round-trip.
    let path = std::env::temp_dir().join("automc-quickstart.automc");
    save_weights(&mut model, &path).expect("save");
    // Rebuild the same architecture (same seed path ⇒ same structure after
    // identical surgery) and restore into a fresh copy.
    let mut restored = model.clone_net();
    load_weights(&mut restored, &path).expect("load");
    let again = Metrics::measure(&mut restored, &test_set);
    assert!((again.acc - compressed.acc).abs() < 1e-6);
    println!("checkpoint round-trip verified at {}", path.display());
    let _ = std::fs::remove_file(&path);
}

fn size_bytes_ratio(base_params: usize, new_params: usize, bits: u32) -> f32 {
    (base_params as f32 * 4.0) / (new_params as f32 * bits as f32 / 8.0)
}
