//! Compare the four AutoML search strategies (AutoMC, Evolution, RL,
//! Random) on the same miniature compression task with an equal budget —
//! a small-scale version of the paper's Fig. 4 comparison.
//!
//! Run: `cargo run --release --example compare_searchers`

use automc::compress::{ExecConfig, Metrics, StrategySpace};
use automc::data::{DatasetSpec, SyntheticKind};
use automc::models::resnet;
use automc::models::train::{train, Auxiliary, TrainConfig};
use automc::search::{
    evolution_search, progressive_search, random_search, rl_search, AutoMcConfig,
    EvolutionConfig, RlConfig, SearchBudget, SearchContext, SearchHistory,
};
use automc::tensor::rng_from_seed;

fn main() {
    let mut rng = rng_from_seed(23);
    let (train_set, test_set) = DatasetSpec {
        train: 300,
        test: 150,
        noise: 0.25,
        ..DatasetSpec::new(SyntheticKind::Cifar10Like)
    }
    .generate();
    let mut base = resnet(20, 4, 10, (3, 8, 8), &mut rng);
    println!("pre-training…");
    train(
        &mut base,
        &train_set,
        &TrainConfig { epochs: 5.0, ..Default::default() },
        Auxiliary::None,
        &mut rng,
    );
    let base_metrics = Metrics::measure(&mut base, &test_set);
    let sample = train_set.sample_fraction(0.2, &mut rng);
    let space = StrategySpace::full();
    let gamma = 0.25;

    let make_ctx = |budget: u64| SearchContext {
        space: &space,
        base_model: &base,
        base_metrics,
        search_train: &sample,
        eval_set: &test_set,
        exec: ExecConfig { pretrain_epochs: 5.0, ..Default::default() },
        max_len: 3,
        gamma,
        budget: SearchBudget::new(budget),
    };
    let budget = 10_000u64;

    let report = |history: &SearchHistory| {
        let evals = history.records.len();
        match history.best(gamma) {
            Some(best) => println!(
                "{:<10} {:>3} evaluations | best feasible: PR {:>5.1}%  acc {:>5.1}%",
                history.algorithm,
                evals,
                best.pr * 100.0,
                best.acc * 100.0
            ),
            None => println!("{:<10} {:>3} evaluations | no feasible scheme", history.algorithm, evals),
        }
    };

    // AutoMC needs embeddings; uniform ones still exercise the machinery —
    // see examples/auto_search.rs for the full knowledge pipeline.
    let embeddings: Vec<Vec<f32>> = (0..space.len())
        .map(|i| {
            let spec = space.spec(i);
            vec![spec.ratio(), (spec.method() as usize as f32) / 6.0, 0.1, 0.2]
        })
        .collect();

    println!("\nequal budget: {budget} cost units\n");
    let h = progressive_search(&make_ctx(budget), embeddings, &AutoMcConfig::default(), &mut rng);
    report(&h);
    let h = evolution_search(&make_ctx(budget), &EvolutionConfig::default(), &mut rng);
    report(&h);
    let h = rl_search(&make_ctx(budget), &RlConfig::default(), &mut rng);
    report(&h);
    let h = random_search(&make_ctx(budget), &mut rng);
    report(&h);
}
