//! Transfer a compression scheme across model depths (the paper's §4.4):
//! compose a two-strategy scheme, apply it to ResNet-20, then re-execute
//! the *same* scheme on a deeper ResNet-56.
//!
//! Run: `cargo run --release --example transfer_scheme`

use automc::compress::{execute_scheme, ExecConfig, Metrics, StrategySpace};
use automc::data::{DatasetSpec, SyntheticKind};
use automc::models::resnet;
use automc::models::train::{train, Auxiliary, TrainConfig};
use automc::search::transfer::transfer_scheme;
use automc::tensor::rng_from_seed;

fn main() {
    let mut rng = rng_from_seed(31);
    let (train_set, test_set) = DatasetSpec {
        train: 400,
        test: 200,
        noise: 0.25,
        ..DatasetSpec::new(SyntheticKind::Cifar10Like)
    }
    .generate();
    let space = StrategySpace::full();
    let exec = ExecConfig { pretrain_epochs: 5.0, ..Default::default() };

    // A two-step scheme: NS channel pruning followed by SFP — picked from
    // the strategy grid by id.
    let ns = space
        .iter()
        .find(|(_, s)| {
            matches!(s, automc::compress::StrategySpec::Ns { ratio, .. } if (*ratio - 0.2).abs() < 1e-6)
        })
        .unwrap()
        .0;
    let sfp = space
        .iter()
        .find(|(_, s)| {
            matches!(s, automc::compress::StrategySpec::Sfp { ratio, .. } if (*ratio - 0.2).abs() < 1e-6)
        })
        .unwrap()
        .0;
    let scheme = vec![ns, sfp];
    println!("scheme:");
    for &sid in &scheme {
        println!("  {}", space.spec(sid));
    }

    for depth in [20usize, 56] {
        let mut model = resnet(depth, 4, 10, (3, 8, 8), &mut rng);
        train(
            &mut model,
            &train_set,
            &TrainConfig { epochs: 5.0, ..Default::default() },
            Auxiliary::None,
            &mut rng,
        );
        let base = Metrics::measure(&mut model, &test_set);
        let outcome = if depth == 20 {
            // Execute directly on the source model.
            execute_scheme(&model, &base, &scheme, &space, &train_set, &test_set, &exec).1
        } else {
            // Transfer to the deeper target.
            transfer_scheme(&scheme, &model, &base, &space, &train_set, &test_set, &exec)
        };
        println!(
            "ResNet-{depth}: base acc {:.1}% → compressed acc {:.1}%  (PR {:.1}%, FR {:.1}%)",
            base.acc * 100.0,
            outcome.metrics.acc * 100.0,
            outcome.pr * 100.0,
            outcome.fr * 100.0
        );
    }
}
