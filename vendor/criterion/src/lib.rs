//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset the workspace's benches use: `Criterion`
//! (with `sample_size`, `bench_function`, `benchmark_group`,
//! `final_summary`), `BenchmarkGroup`, `Bencher::iter`, `black_box`,
//! and the `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement model: each benchmark runs a short warm-up, then
//! `sample_size` timed samples, each sized so one sample takes roughly
//! a millisecond; median / mean / min are reported on stdout. When the
//! binary is invoked by `cargo test` (a `--test` argument is present),
//! every closure runs exactly once so bench targets double as smoke
//! tests without burning CI time.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 50,
            test_mode,
        }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.to_string(), self.sample_size, self.test_mode, &mut f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl std::fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            parent: self,
        }
    }

    /// Upstream prints an end-of-run summary; nothing to aggregate here.
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_one(&full, self.sample_size, self.parent.test_mode, &mut f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; `iter` does the timing.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
    test_mode: bool,
}

impl Bencher {
    /// Time `iters` back-to-back calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            self.elapsed = Duration::from_nanos(1);
            return;
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn time_once<F: FnMut(&mut Bencher)>(iters: u64, test_mode: bool, f: &mut F) -> Duration {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
        test_mode,
    };
    f(&mut b);
    b.elapsed
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, test_mode: bool, f: &mut F) {
    if test_mode {
        time_once(1, true, f);
        println!("bench {name}: ok (test mode)");
        return;
    }
    // Calibrate: grow the per-sample iteration count until one sample
    // takes ≥ 1 ms (or a single call is already slower than that).
    let mut iters: u64 = 1;
    let mut once = time_once(iters, false, f);
    while once < Duration::from_millis(1) && iters < 1 << 20 {
        iters *= 4;
        once = time_once(iters, false, f);
    }
    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let d = time_once(iters, false, f);
        samples.push(d.as_secs_f64() / iters as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let min = samples[0];
    println!(
        "{name:<48} median {:>12}  mean {:>12}  min {:>12}  ({} samples x {} iters)",
        fmt_time(median),
        fmt_time(mean),
        fmt_time(min),
        samples.len(),
        iters
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Mirrors `criterion_group!`: both the simple list form and the
/// `name = ..; config = ..; targets = ..` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Mirrors `criterion_main!`: runs each group then the final summary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::Criterion::default().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_noop(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("grp");
        g.sample_size(3);
        g.bench_function(format!("fmt-{}", 2), |b| b.iter(|| black_box(2 * 2)));
        g.finish();
    }

    #[test]
    fn api_surface_runs() {
        // Force test mode so this stays fast regardless of invocation.
        let mut c = Criterion {
            sample_size: 3,
            test_mode: true,
        };
        bench_noop(&mut c);
        c.final_summary();
    }

    #[test]
    fn timing_path_measures_something() {
        let mut c = Criterion {
            sample_size: 2,
            test_mode: false,
        };
        c.bench_function("spin", |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for i in 0..100 {
                    acc = acc.wrapping_add(black_box(i));
                }
                acc
            })
        });
    }
}
