//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small API subset it actually uses: `rngs::StdRng` (seeded,
//! reproducible), the `Rng` extension trait (`gen`, `gen_range`,
//! `gen_bool`), `SeedableRng::seed_from_u64`, and `seq::SliceRandom`
//! (`shuffle`, `choose`).
//!
//! The generator is xoshiro256** seeded through splitmix64 — a different
//! stream than upstream `StdRng` (ChaCha12), so absolute seeded numbers
//! differ from runs made with the real crate, but every determinism
//! property the workspace relies on (same seed → same stream, `Clone`
//! forks the state) holds.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from an RNG via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 explicit mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Ranges samplable via [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range. Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128 * span) >> 64;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128 * span) >> 64;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range_impls!(usize, u64, u32, i64, i32);

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f32::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample of `T` (floats in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample from a range.
    fn gen_range<T, RA: SampleRange<T>>(&mut self, range: RA) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Deterministically build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Named generator types.

    use super::{RngCore, SeedableRng};

    /// The workspace's reproducible generator: xoshiro256** seeded via
    /// splitmix64 (same state-expansion scheme upstream uses for
    /// `seed_from_u64`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl StdRng {
        /// Snapshot of the internal xoshiro256** state, for journaling a
        /// generator mid-stream. Restoring with [`StdRng::from_state`]
        /// continues the exact same sequence.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from a [`StdRng::state`] snapshot.
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Slice helpers, mirroring `rand::seq::SliceRandom`.

    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<f32>().to_bits(), b.gen::<f32>().to_bits());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: f32 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            let r = rng.gen_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&r));
        }
    }

    #[test]
    fn int_ranges_cover_and_stay_inside() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0..5usize)] = true;
            let v = rng.gen_range(-3i32..3);
            assert!((-3..3).contains(&v));
            let w = rng.gen_range(1..=4usize);
            assert!((1..=4).contains(&w));
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_permutes_and_choose_picks() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50-element shuffle left the slice sorted");
        assert!(v.choose(&mut rng).is_some());
        let empty: [usize; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn state_snapshot_resumes_the_stream() {
        let mut a = StdRng::seed_from_u64(9);
        for _ in 0..17 {
            a.gen::<u64>();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1800..3200).contains(&hits), "p=0.25 gave {hits}/10000");
    }
}
