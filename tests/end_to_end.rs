//! Cross-crate integration tests: the full AutoMC pipeline at miniature
//! scale, exercising data → models → compress → knowledge → search.

use automc::compress::{
    execute_scheme, ExecConfig, Metrics, MethodId, StrategySpace,
};
use automc::data::{DatasetSpec, SyntheticKind};
use automc::knowledge::{generate_experience, learn_embeddings, EmbeddingConfig, MicroTask};
use automc::models::train::{train, Auxiliary, TrainConfig};
use automc::models::{resnet, ConvNet, ModelKind};
use automc::search::{
    progressive_search, random_search, AutoMcConfig, SearchBudget, SearchContext,
};
use automc::tensor::rng_from_seed;

fn prepared_task() -> (ConvNet, Metrics, automc::data::ImageSet, automc::data::ImageSet) {
    // Seed picked for robust training dynamics under the vendored RNG
    // stream (the compressed accuracy stays well clear of the threshold
    // across neighbouring execution seeds).
    let mut rng = rng_from_seed(4031);
    let (train_set, test_set) = DatasetSpec {
        train: 240,
        test: 120,
        noise: 0.25,
        ..DatasetSpec::new(SyntheticKind::Cifar10Like)
    }
    .generate();
    let mut model = resnet(20, 4, 10, (3, 8, 8), &mut rng);
    train(
        &mut model,
        &train_set,
        &TrainConfig { epochs: 6.0, ..Default::default() },
        Auxiliary::None,
        &mut rng,
    );
    let base = Metrics::measure(&mut model, &test_set);
    (model, base, train_set, test_set)
}

#[test]
fn scheme_execution_tracks_both_objectives() {
    let (model, base, train_set, test_set) = prepared_task();
    let space = StrategySpace::full();
    // Two pruning strategies in sequence.
    let pick = |m: MethodId, r: f32| {
        space
            .iter()
            .find(|(_, s)| s.method() == m && (s.ratio() - r).abs() < 1e-6)
            .unwrap()
            .0
    };
    let scheme = vec![pick(MethodId::Ns, 0.2), pick(MethodId::Sfp, 0.12)];
    let exec = ExecConfig { pretrain_epochs: 6.0, ..Default::default() };
    let (compressed, outcome) =
        execute_scheme(&model, &base, &scheme, &space, &train_set, &test_set, &exec);
    // Both steps recorded, with compounding reduction.
    assert_eq!(outcome.steps.len(), 2);
    assert!(outcome.steps.iter().all(|s| s.pr_step > 0.0));
    assert!(outcome.pr > 0.2, "compound PR {}", outcome.pr);
    assert!(outcome.metrics.acc > 0.4, "accuracy collapsed: {}", outcome.metrics.acc);
    assert_eq!(compressed.param_count(), outcome.metrics.params);
    assert!(outcome.cost.units() > 0);
}

#[test]
fn knowledge_pipeline_feeds_progressive_search() {
    // Miniature Algorithm 1 + Algorithm 2, end to end.
    let (model, base, train_set, test_set) = prepared_task();
    let mut rng = rng_from_seed(4003);
    let space = StrategySpace::for_methods(&[MethodId::Ns, MethodId::Sfp, MethodId::Lma]);
    let mut micro = vec![MicroTask::new(
        SyntheticKind::Cifar10Like,
        ModelKind::ResNet(20),
        4,
        120,
        60,
        2.0,
        4004,
        &mut rng,
    )];
    let exec = ExecConfig { pretrain_epochs: 2.0, ..Default::default() };
    let corpus = generate_experience(&space, &mut micro, 9, &exec, &mut rng);
    assert_eq!(corpus.records.len(), 9);
    let embeddings = learn_embeddings(
        &space,
        &corpus,
        &EmbeddingConfig { epochs: 3, dim: 16, rel_dim: 8, ..Default::default() },
        true,
        true,
        &mut rng,
    );
    let sample = train_set.sample_fraction(0.25, &mut rng);
    let ctx = SearchContext {
        space: &space,
        base_model: &model,
        base_metrics: base,
        search_train: &sample,
        eval_set: &test_set,
        exec: ExecConfig { pretrain_epochs: 6.0, ..Default::default() },
        max_len: 3,
        gamma: 0.2,
        budget: SearchBudget::new(8_000),
    };
    let history = progressive_search(&ctx, embeddings, &AutoMcConfig::default(), &mut rng);
    assert!(!history.records.is_empty());
    let best = history.best(0.2);
    assert!(best.is_some(), "search should find a feasible scheme");
    assert!(best.unwrap().pr >= 0.2);
}

#[test]
fn progressive_beats_or_matches_random_on_tiny_budget() {
    // Statistical-shape check at miniature scale: with prefix reuse,
    // AutoMC evaluates more schemes per unit budget than random search.
    let (model, base, train_set, test_set) = prepared_task();
    let mut rng = rng_from_seed(4005);
    let space = StrategySpace::for_methods(&[MethodId::Ns, MethodId::Sfp]);
    let sample = train_set.sample_fraction(0.25, &mut rng);
    let ctx = SearchContext {
        space: &space,
        base_model: &model,
        base_metrics: base,
        search_train: &sample,
        eval_set: &test_set,
        exec: ExecConfig { pretrain_epochs: 6.0, ..Default::default() },
        max_len: 3,
        gamma: 0.15,
        budget: SearchBudget::new(8_000),
    };
    let embeddings: Vec<Vec<f32>> =
        (0..space.len()).map(|i| vec![space.spec(i).ratio(), 0.3, 0.1]).collect();
    let autos = progressive_search(&ctx, embeddings, &AutoMcConfig::default(), &mut rng);
    let rand = random_search(&ctx, &mut rng);
    assert!(
        autos.records.len() >= rand.records.len(),
        "progressive search should afford at least as many evaluations: {} vs {}",
        autos.records.len(),
        rand.records.len()
    );
}

#[test]
fn facade_reexports_are_usable() {
    // The `automc` facade exposes every subsystem.
    let _space = automc::compress::StrategySpace::full();
    let mut rng = automc::tensor::rng_from_seed(1);
    let t = automc::tensor::Tensor::randn(&[2, 2], 1.0, &mut rng);
    assert_eq!(t.numel(), 4);
    let f = automc::data::DataFeatures { classes: 10, image_size: 8, channels: 3, amount: 100 };
    assert_eq!(f.to_vec().len(), 4);
}
