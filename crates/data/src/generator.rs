use crate::ImageSet;
use automc_tensor::{Rng, Tensor};
use rand::Rng as _;

/// Which CIFAR stand-in to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyntheticKind {
    /// 10-class stand-in for CIFAR-10 (Exp1).
    Cifar10Like,
    /// 100-class stand-in for CIFAR-100 (Exp2).
    Cifar100Like,
}

impl SyntheticKind {
    /// Class count.
    pub fn classes(&self) -> usize {
        match self {
            SyntheticKind::Cifar10Like => 10,
            SyntheticKind::Cifar100Like => 100,
        }
    }
}

/// Specification of a synthetic dataset.
///
/// Defaults mirror the reduced "repro scale" documented in `DESIGN.md`
/// (paper scale: 32×32×3, 50k train / 10k test).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetSpec {
    /// Which stand-in (fixes the class count).
    pub kind: SyntheticKind,
    /// Image height and width.
    pub size: usize,
    /// Channel count.
    pub channels: usize,
    /// Training samples.
    pub train: usize,
    /// Test samples.
    pub test: usize,
    /// Pixel noise standard deviation — the difficulty knob.
    pub noise: f32,
    /// Maximum spatial jitter in pixels.
    pub jitter: usize,
    /// Generation seed (independent of training seeds).
    pub seed: u64,
}

impl DatasetSpec {
    /// Repro-scale defaults for a stand-in kind.
    pub fn new(kind: SyntheticKind) -> Self {
        DatasetSpec {
            kind,
            size: 8,
            channels: 3,
            train: 1600,
            test: 400,
            noise: 0.35,
            jitter: 1,
            seed: 0xC1FA_0000 + kind.classes() as u64,
        }
    }

    /// Generate `(train, test)` image sets.
    pub fn generate(&self) -> (ImageSet, ImageSet) {
        let mut rng = automc_tensor::rng_from_seed(self.seed);
        let prototypes = self.make_prototypes(&mut rng);
        let train = self.make_split(self.train, &prototypes, &mut rng);
        let test = self.make_split(self.test, &prototypes, &mut rng);
        (train, test)
    }

    /// Smooth per-class prototype patterns: a coarse random grid upsampled
    /// bilinearly, plus a class-specific channel tint. Smoothness matters —
    /// it gives convolutions local structure to exploit.
    fn make_prototypes(&self, rng: &mut Rng) -> Vec<Tensor> {
        let classes = self.kind.classes();
        let coarse = (self.size / 2).max(2);
        (0..classes)
            .map(|class| {
                let mut proto = Tensor::zeros(&[self.channels, self.size, self.size]);
                for c in 0..self.channels {
                    // Coarse grid in [-1, 1].
                    let grid: Vec<f32> =
                        (0..coarse * coarse).map(|_| rng.gen_range(-1.0..1.0)).collect();
                    let tint = ((class * (c + 3)) % 7) as f32 / 7.0 - 0.5;
                    for y in 0..self.size {
                        for x in 0..self.size {
                            // Bilinear sample of the coarse grid.
                            let fy = y as f32 / self.size as f32 * (coarse - 1) as f32;
                            let fx = x as f32 / self.size as f32 * (coarse - 1) as f32;
                            let (y0, x0) = (fy.floor() as usize, fx.floor() as usize);
                            let (y1, x1) = ((y0 + 1).min(coarse - 1), (x0 + 1).min(coarse - 1));
                            let (dy, dx) = (fy - y0 as f32, fx - x0 as f32);
                            let v = grid[y0 * coarse + x0] * (1.0 - dy) * (1.0 - dx)
                                + grid[y0 * coarse + x1] * (1.0 - dy) * dx
                                + grid[y1 * coarse + x0] * dy * (1.0 - dx)
                                + grid[y1 * coarse + x1] * dy * dx;
                            *proto.at_mut(&[c, y, x]) = v + tint;
                        }
                    }
                }
                proto
            })
            .collect()
    }

    fn make_split(&self, n: usize, prototypes: &[Tensor], rng: &mut Rng) -> ImageSet {
        let classes = self.kind.classes();
        let item = self.channels * self.size * self.size;
        let mut pixels = Vec::with_capacity(n * item);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            // Round-robin labels keep splits balanced.
            let class = i % classes;
            labels.push(class);
            let proto = &prototypes[class];
            let dy = rng.gen_range(-(self.jitter as i32)..=(self.jitter as i32));
            let dx = rng.gen_range(-(self.jitter as i32)..=(self.jitter as i32));
            let flip = rng.gen_bool(0.5);
            for c in 0..self.channels {
                for y in 0..self.size {
                    for x in 0..self.size {
                        let sx = if flip { self.size - 1 - x } else { x };
                        let sy = (y as i32 + dy).clamp(0, self.size as i32 - 1) as usize;
                        let sx = (sx as i32 + dx).clamp(0, self.size as i32 - 1) as usize;
                        let base = proto.at(&[c, sy, sx]);
                        let noise = {
                            // Box–Muller; cheap and deterministic.
                            let u1: f32 = 1.0 - rng.gen::<f32>();
                            let u2: f32 = rng.gen();
                            (-2.0 * u1.ln()).sqrt()
                                * (2.0 * std::f32::consts::PI * u2).cos()
                        };
                        pixels.push(base + self.noise * noise);
                    }
                }
            }
        }
        ImageSet::new(pixels, labels, self.channels, self.size, self.size, classes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = DatasetSpec { train: 40, test: 20, ..DatasetSpec::new(SyntheticKind::Cifar10Like) };
        let (a_train, _) = spec.generate();
        let (b_train, _) = spec.generate();
        assert_eq!(a_train.image(0), b_train.image(0));
        assert_eq!(a_train.labels(), b_train.labels());
    }

    #[test]
    fn splits_have_requested_sizes_and_balance() {
        let spec = DatasetSpec { train: 100, test: 50, ..DatasetSpec::new(SyntheticKind::Cifar10Like) };
        let (train, test) = spec.generate();
        assert_eq!(train.len(), 100);
        assert_eq!(test.len(), 50);
        let mut counts = [0usize; 10];
        for &l in train.labels() {
            counts[l] += 1;
        }
        assert!(counts.iter().all(|&c| c == 10));
    }

    #[test]
    fn hundred_class_variant() {
        let spec = DatasetSpec { train: 200, test: 100, ..DatasetSpec::new(SyntheticKind::Cifar100Like) };
        let (train, _) = spec.generate();
        assert_eq!(train.classes(), 100);
        assert!(train.labels().iter().any(|&l| l >= 50));
    }

    #[test]
    fn same_class_images_are_correlated_different_classes_less() {
        let spec = DatasetSpec {
            train: 40,
            test: 0,
            noise: 0.1,
            ..DatasetSpec::new(SyntheticKind::Cifar10Like)
        };
        let (train, _) = spec.generate();
        // Samples 0 and 10 share class 0; samples 0 and 1 differ.
        let dot = |a: &[f32], b: &[f32]| -> f32 {
            let na = a.iter().map(|v| v * v).sum::<f32>().sqrt();
            let nb = b.iter().map(|v| v * v).sum::<f32>().sqrt();
            a.iter().zip(b).map(|(x, y)| x * y).sum::<f32>() / (na * nb).max(1e-9)
        };
        let same = dot(train.image(0), train.image(10));
        let diff = dot(train.image(0), train.image(1));
        assert!(
            same > diff,
            "same-class similarity {same} should exceed cross-class {diff}"
        );
    }

    #[test]
    fn pixels_are_finite() {
        let spec = DatasetSpec { train: 20, test: 10, ..DatasetSpec::new(SyntheticKind::Cifar10Like) };
        let (train, test) = spec.generate();
        assert!(train.image(0).iter().all(|v| v.is_finite()));
        assert!(test.image(0).iter().all(|v| v.is_finite()));
    }
}
