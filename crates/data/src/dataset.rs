use automc_tensor::{Rng, Tensor};
use rand::seq::SliceRandom;

/// An in-memory labelled image set (NCHW, `f32` pixels).
#[derive(Debug, Clone)]
pub struct ImageSet {
    pixels: Vec<f32>,
    labels: Vec<usize>,
    channels: usize,
    height: usize,
    width: usize,
    classes: usize,
}

impl ImageSet {
    /// Assemble from raw parts. `pixels.len()` must equal
    /// `labels.len() · channels · height · width`.
    pub fn new(
        pixels: Vec<f32>,
        labels: Vec<usize>,
        channels: usize,
        height: usize,
        width: usize,
        classes: usize,
    ) -> Self {
        assert_eq!(
            pixels.len(),
            labels.len() * channels * height * width,
            "pixel buffer does not match label count and image dims"
        );
        assert!(labels.iter().all(|&l| l < classes), "label out of range");
        ImageSet { pixels, labels, channels, height, width, classes }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// `(channels, height, width)` of each image.
    pub fn image_dims(&self) -> (usize, usize, usize) {
        (self.channels, self.height, self.width)
    }

    /// Labels slice.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// One image as a flat pixel slice.
    pub fn image(&self, i: usize) -> &[f32] {
        let item = self.channels * self.height * self.width;
        &self.pixels[i * item..(i + 1) * item]
    }

    /// Gather the given sample indices into an NCHW batch tensor + labels.
    pub fn gather(&self, idxs: &[usize]) -> (Tensor, Vec<usize>) {
        let item = self.channels * self.height * self.width;
        let mut out = Tensor::zeros(&[idxs.len(), self.channels, self.height, self.width]);
        let mut labels = Vec::with_capacity(idxs.len());
        for (bi, &i) in idxs.iter().enumerate() {
            out.data_mut()[bi * item..(bi + 1) * item].copy_from_slice(self.image(i));
            labels.push(self.labels[i]);
        }
        (out, labels)
    }

    /// The whole set as one batch (evaluation).
    pub fn full_batch(&self) -> (Tensor, Vec<usize>) {
        let idxs: Vec<usize> = (0..self.len()).collect();
        self.gather(&idxs)
    }

    /// A stratified random sample of `fraction` of the data (the paper's
    /// "sample 10% data from D to execute AutoML algorithms" protocol).
    /// Keeps at least one sample per class that is present.
    pub fn sample_fraction(&self, fraction: f32, rng: &mut Rng) -> ImageSet {
        let mut per_class: Vec<Vec<usize>> = vec![Vec::new(); self.classes];
        for (i, &l) in self.labels.iter().enumerate() {
            per_class[l].push(i);
        }
        let mut keep = Vec::new();
        for bucket in per_class.iter_mut() {
            if bucket.is_empty() {
                continue;
            }
            bucket.shuffle(rng);
            let take = ((bucket.len() as f32 * fraction).round() as usize).max(1);
            keep.extend_from_slice(&bucket[..take.min(bucket.len())]);
        }
        keep.sort_unstable();
        self.subset(&keep)
    }

    /// A new set containing only the given indices.
    pub fn subset(&self, idxs: &[usize]) -> ImageSet {
        let item = self.channels * self.height * self.width;
        let mut pixels = Vec::with_capacity(idxs.len() * item);
        let mut labels = Vec::with_capacity(idxs.len());
        for &i in idxs {
            pixels.extend_from_slice(self.image(i));
            labels.push(self.labels[i]);
        }
        ImageSet {
            pixels,
            labels,
            channels: self.channels,
            height: self.height,
            width: self.width,
            classes: self.classes,
        }
    }

    /// Shuffled mini-batch iterator for one epoch.
    pub fn batches(&self, batch_size: usize, rng: &mut Rng) -> Batches<'_> {
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.shuffle(rng);
        Batches { set: self, order, batch_size: batch_size.max(1), cursor: 0 }
    }
}

/// Iterator over shuffled mini-batches of an [`ImageSet`].
pub struct Batches<'a> {
    set: &'a ImageSet,
    order: Vec<usize>,
    batch_size: usize,
    cursor: usize,
}

impl Iterator for Batches<'_> {
    type Item = (Tensor, Vec<usize>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cursor >= self.order.len() {
            return None;
        }
        let end = (self.cursor + self.batch_size).min(self.order.len());
        let idxs = &self.order[self.cursor..end];
        self.cursor = end;
        Some(self.set.gather(idxs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use automc_tensor::rng_from_seed;

    fn tiny_set() -> ImageSet {
        // 6 samples, 1x2x2 images, 3 classes.
        let pixels: Vec<f32> = (0..24).map(|v| v as f32).collect();
        let labels = vec![0, 1, 2, 0, 1, 2];
        ImageSet::new(pixels, labels, 1, 2, 2, 3)
    }

    #[test]
    fn gather_batches_correctly() {
        let s = tiny_set();
        let (batch, labels) = s.gather(&[1, 3]);
        assert_eq!(batch.dims(), &[2, 1, 2, 2]);
        assert_eq!(labels, vec![1, 0]);
        assert_eq!(&batch.data()[0..4], &[4., 5., 6., 7.]);
        assert_eq!(&batch.data()[4..8], &[12., 13., 14., 15.]);
    }

    #[test]
    fn sample_fraction_is_stratified() {
        let s = tiny_set();
        let mut rng = rng_from_seed(1);
        let sub = s.sample_fraction(0.5, &mut rng);
        assert_eq!(sub.len(), 3); // one per class
        let mut classes: Vec<usize> = sub.labels().to_vec();
        classes.sort_unstable();
        assert_eq!(classes, vec![0, 1, 2]);
    }

    #[test]
    fn sample_fraction_keeps_one_per_class_minimum() {
        let s = tiny_set();
        let mut rng = rng_from_seed(2);
        let sub = s.sample_fraction(0.01, &mut rng);
        assert_eq!(sub.len(), 3);
    }

    #[test]
    fn batches_cover_epoch_exactly_once() {
        let s = tiny_set();
        let mut rng = rng_from_seed(3);
        let mut seen = 0;
        for (batch, labels) in s.batches(4, &mut rng) {
            assert_eq!(batch.dims()[0], labels.len());
            seen += labels.len();
        }
        assert_eq!(seen, 6);
    }

    #[test]
    fn full_batch_matches_len() {
        let s = tiny_set();
        let (b, l) = s.full_batch();
        assert_eq!(b.dims()[0], 6);
        assert_eq!(l.len(), 6);
    }

    #[test]
    #[should_panic(expected = "pixel buffer")]
    fn new_validates_lengths() {
        ImageSet::new(vec![0.0; 10], vec![0, 1], 1, 2, 2, 2);
    }
}
