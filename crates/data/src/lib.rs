//! # automc-data
//!
//! Synthetic image-classification datasets standing in for CIFAR-10/100.
//!
//! The AutoMC paper evaluates on CIFAR-10 (Exp1) and CIFAR-100 (Exp2).
//! Those datasets are unavailable in this environment, so this crate
//! generates seeded synthetic datasets with the same *role*: multi-class
//! images whose difficulty is controlled by class count, intra-class
//! variation, and noise. Class identity is carried by a smooth per-class
//! prototype pattern; samples perturb the prototype with spatial jitter,
//! flips, and pixel noise — enough structure that a small CNN must actually
//! learn convolutional features, and enough variation that over-pruned
//! models visibly lose accuracy (the signal the search optimises).
//!
//! The paper's experimental protocol details reproduced here:
//! * 10%-subsampling of the training split for AutoML search
//!   ([`ImageSet::sample_fraction`]);
//! * held-out evaluation sets for the accuracy term `A(M)`;
//! * task feature vectors (data half) used by `NN_exp` (§3.3.1).

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod dataset;
mod generator;

pub use dataset::{Batches, ImageSet};
pub use generator::{DatasetSpec, SyntheticKind};

/// Data-side task features fed to the experience network `NN_exp`
/// (paper §3.3.1: category number, image size, channel count, data amount).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataFeatures {
    /// Number of classes.
    pub classes: usize,
    /// Image height (== width in this workspace).
    pub image_size: usize,
    /// Channel count.
    pub channels: usize,
    /// Number of training samples.
    pub amount: usize,
}

impl DataFeatures {
    /// Normalised feature vector (log/linear scaled into ~[0, 1]).
    pub fn to_vec(&self) -> Vec<f32> {
        vec![
            (self.classes as f32).ln() / 5.0,
            self.image_size as f32 / 32.0,
            self.channels as f32 / 3.0,
            (self.amount.max(1) as f32).ln() / 10.0,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_features_vectorise() {
        let f = DataFeatures { classes: 10, image_size: 8, channels: 3, amount: 1000 };
        let v = f.to_vec();
        assert_eq!(v.len(), 4);
        assert!(v.iter().all(|x| x.is_finite()));
    }
}
