//! # automc-knowledge
//!
//! AutoMC's domain-knowledge subsystem (paper §3.3.1, Algorithm 1):
//!
//! 1. [`KnowledgeGraph`] — entities `E1`–`E5` (strategy, method,
//!    hyperparameter, HP setting, technique) connected by relations
//!    `R1`–`R5`, built mechanically from the strategy space (Fig. 2a).
//! 2. [`TransR`] — knowledge-graph embedding by the translation principle
//!    `W_r·e_h + e_r ≈ W_r·e_t` (Eq. 2), trained with margin ranking and
//!    negative sampling.
//! 3. [`ExperienceCorpus`] — tuples `(strategy, task, AR, PR)`. The paper
//!    harvests these from published papers; this reproduction *generates*
//!    them by actually executing strategies on a bank of small seeded
//!    tasks (see `DESIGN.md` §2 — same object, same informativeness).
//! 4. [`NnExp`] — the experience network (Fig. 2b) that refines strategy
//!    embeddings by predicting `(AR, PR)` from `(e_strategy, e_task)`
//!    (Eq. 3), backpropagating into the embeddings.
//! 5. [`learn_embeddings`] — Algorithm 1: alternate TransR epochs with
//!    experience-based refinement and return the final high-level
//!    strategy embeddings.

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod experience;
mod kg;
mod nn_exp;
mod transr;

pub use experience::{generate_experience, ExperienceCorpus, ExperienceRecord, MicroTask};
pub use kg::{KnowledgeGraph, Relation};
pub use nn_exp::NnExp;
pub use transr::{TransR, TransRConfig};

use automc_compress::StrategySpace;
use automc_tensor::Rng;

/// Configuration for Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmbeddingConfig {
    /// Strategy-embedding dimension (paper: 32).
    pub dim: usize,
    /// TransR relation-space dimension.
    pub rel_dim: usize,
    /// Outer training epochs (`TrainEpoch` in Algorithm 1).
    pub epochs: usize,
    /// TransR margin.
    pub margin: f32,
    /// TransR SGD learning rate.
    pub transr_lr: f32,
    /// NN_exp Adam learning rate (paper: 0.001).
    pub nn_exp_lr: f32,
}

impl Default for EmbeddingConfig {
    fn default() -> Self {
        EmbeddingConfig {
            dim: 32,
            rel_dim: 16,
            epochs: 8,
            margin: 1.0,
            transr_lr: 0.02,
            nn_exp_lr: 1e-3,
        }
    }
}

/// Algorithm 1 — compression-strategy embedding learning.
///
/// Returns one `dim`-vector per strategy in `space`, shaped by both the
/// knowledge graph (relational knowledge) and the experience corpus
/// (numerical knowledge). Either source can be disabled for the paper's
/// `AutoMC-KG` / `AutoMC-NN_exp` ablations.
pub fn learn_embeddings(
    space: &StrategySpace,
    experience: &ExperienceCorpus,
    cfg: &EmbeddingConfig,
    use_kg: bool,
    use_experience: bool,
    rng: &mut Rng,
) -> Vec<Vec<f32>> {
    let kg = KnowledgeGraph::build(space);
    let mut transr = TransR::new(
        &kg,
        TransRConfig {
            dim: cfg.dim,
            rel_dim: cfg.rel_dim,
            margin: cfg.margin,
            lr: cfg.transr_lr,
        },
        rng,
    );
    let mut nn_exp = NnExp::new(cfg.dim, experience.task_feature_len(), cfg.nn_exp_lr, rng);
    for _epoch in 0..cfg.epochs {
        if use_kg {
            transr.train_epoch(&kg, rng);
        }
        if use_experience && !experience.records.is_empty() {
            // Optimise θ and the strategy embeddings jointly (Eq. 3), then
            // write the refined embeddings back into the entity table so
            // the next TransR epoch starts from them (Algorithm 1, l. 9).
            nn_exp.refine_epoch(&mut transr, &kg, experience, rng);
        }
    }
    (0..space.len())
        .map(|sid| transr.entity_embedding(kg.strategy_entity[sid]).to_vec())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use automc_compress::MethodId;

    #[test]
    fn embeddings_have_requested_shape() {
        let space = StrategySpace::for_methods(&[MethodId::Ns]);
        let corpus = ExperienceCorpus::empty(7);
        let mut rng = automc_tensor::rng_from_seed(200);
        let cfg = EmbeddingConfig { epochs: 2, dim: 8, rel_dim: 4, ..Default::default() };
        let emb = learn_embeddings(&space, &corpus, &cfg, true, false, &mut rng);
        assert_eq!(emb.len(), space.len());
        assert!(emb.iter().all(|e| e.len() == 8));
        assert!(emb.iter().flatten().all(|v| v.is_finite()));
    }
}
