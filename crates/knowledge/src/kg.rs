//! Knowledge-graph construction (paper Fig. 2a).

use automc_compress::{StrategyId, StrategySpace};
use std::collections::HashMap;

/// The five relation types of the AutoMC knowledge graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relation {
    /// R1: strategy → its method (`E1 → E2`).
    StrategyMethod = 0,
    /// R2: strategy → its hyperparameter settings (`E1 → E4`).
    StrategySetting = 1,
    /// R3: method → its hyperparameters (`E2 → E3`).
    MethodHyper = 2,
    /// R4: method → its techniques (`E2 → E5`).
    MethodTechnique = 3,
    /// R5: hyperparameter → its settings (`E3 → E4`).
    HyperSetting = 4,
}

/// Number of relation types.
pub const NUM_RELATIONS: usize = 5;

/// The assembled knowledge graph: an entity table (strategies, methods,
/// hyperparameters, settings, techniques) plus `(head, relation, tail)`
/// triples.
pub struct KnowledgeGraph {
    /// Total entity count.
    pub num_entities: usize,
    /// Entity id of each strategy (`E1` block).
    pub strategy_entity: Vec<usize>,
    /// Triples `(head, relation index, tail)`.
    pub triples: Vec<(usize, usize, usize)>,
}

impl KnowledgeGraph {
    /// Build the graph for a strategy space.
    pub fn build(space: &StrategySpace) -> Self {
        let mut next_entity = 0usize;
        let mut alloc = || {
            let id = next_entity;
            next_entity += 1;
            id
        };

        // E1: strategies.
        let strategy_entity: Vec<usize> = (0..space.len()).map(|_| alloc()).collect();
        // E2: methods.
        let mut method_entity: HashMap<&'static str, usize> = HashMap::new();
        // E3: hyperparameters (by id 1..=16).
        let mut hyper_entity: HashMap<u8, usize> = HashMap::new();
        // E4: settings, keyed by (hp, label).
        let mut setting_entity: HashMap<(u8, String), usize> = HashMap::new();
        // E5: techniques.
        let mut technique_entity: HashMap<&'static str, usize> = HashMap::new();

        let mut triples = Vec::new();
        let mut seen_triples: std::collections::HashSet<(usize, usize, usize)> =
            std::collections::HashSet::new();
        let mut push = |t: (usize, usize, usize),
                        triples: &mut Vec<(usize, usize, usize)>| {
            if seen_triples.insert(t) {
                triples.push(t);
            }
        };

        for (sid, spec) in space.iter() {
            let s_ent = strategy_entity[sid as StrategyId];
            let method = spec.method();
            let m_ent = *method_entity.entry(method.label()).or_insert_with(&mut alloc);
            push((s_ent, Relation::StrategyMethod as usize, m_ent), &mut triples);
            for te in method.techniques() {
                let t_ent = *technique_entity.entry(te).or_insert_with(&mut alloc);
                push((m_ent, Relation::MethodTechnique as usize, t_ent), &mut triples);
            }
            for setting in spec.hyper_settings() {
                let h_ent = *hyper_entity.entry(setting.hp).or_insert_with(&mut alloc);
                let key = (setting.hp, setting.label.clone());
                let v_ent = *setting_entity.entry(key).or_insert_with(&mut alloc);
                push((s_ent, Relation::StrategySetting as usize, v_ent), &mut triples);
                push((m_ent, Relation::MethodHyper as usize, h_ent), &mut triples);
                push((h_ent, Relation::HyperSetting as usize, v_ent), &mut triples);
            }
        }

        KnowledgeGraph { num_entities: next_entity, strategy_entity, triples }
    }

    /// Triples of one relation type.
    pub fn triples_of(&self, r: Relation) -> impl Iterator<Item = &(usize, usize, usize)> {
        self.triples.iter().filter(move |t| t.1 == r as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use automc_compress::MethodId;

    #[test]
    fn full_graph_has_all_entity_classes() {
        let space = StrategySpace::full();
        let kg = KnowledgeGraph::build(&space);
        // 4230 strategies + 6 methods + hyperparameters + settings + techniques.
        assert!(kg.num_entities > space.len() + 6);
        assert_eq!(kg.strategy_entity.len(), space.len());
        // Every strategy has exactly one R1 triple.
        assert_eq!(kg.triples_of(Relation::StrategyMethod).count(), space.len());
    }

    #[test]
    fn triples_are_unique() {
        let space = StrategySpace::for_methods(&[MethodId::Ns, MethodId::Sfp]);
        let kg = KnowledgeGraph::build(&space);
        let set: std::collections::HashSet<_> = kg.triples.iter().collect();
        assert_eq!(set.len(), kg.triples.len());
    }

    #[test]
    fn shared_hyperparameters_are_shared_entities() {
        // HP2 appears in every method: the R5 triples for HP2 settings
        // should all hang off a single E3 entity.
        let space = StrategySpace::full();
        let kg = KnowledgeGraph::build(&space);
        // Heads of R5 triples = hyperparameter entities.
        let hyper_heads: std::collections::HashSet<usize> =
            kg.triples_of(Relation::HyperSetting).map(|t| t.0).collect();
        assert_eq!(hyper_heads.len(), 15, "Table 1 uses 15 distinct HPs (1–16 minus HP3)");
    }

    #[test]
    fn entity_ids_in_range() {
        let space = StrategySpace::for_methods(&[MethodId::Lfb]);
        let kg = KnowledgeGraph::build(&space);
        for &(h, r, t) in &kg.triples {
            assert!(h < kg.num_entities);
            assert!(t < kg.num_entities);
            assert!(r < NUM_RELATIONS);
        }
    }
}
