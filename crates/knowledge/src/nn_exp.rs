//! `NN_exp` — the experience network (paper Fig. 2b, Eq. 3).
//!
//! Takes a strategy embedding and a task feature vector, predicts the
//! strategy's `(AR, PR)` on that task. Training minimises the prediction
//! error *jointly over the network parameters θ and the strategy
//! embeddings* — the input gradient w.r.t. the embedding half is applied
//! back onto the TransR entity table, which is what lets numerical
//! experience reshape the relational embeddings.

use crate::experience::ExperienceCorpus;
use crate::kg::KnowledgeGraph;
use crate::transr::TransR;
use automc_tensor::nn::{Layer, Linear, Relu, Sequential};
use automc_tensor::optim::{Adam, AdamConfig, Optimizer};
use automc_tensor::{loss, Rng, Tensor};
use rand::seq::SliceRandom;

/// Learning rate applied to embeddings during refinement (relative to the
/// network's Adam rate, embeddings move a little faster — they are the
/// quantity Eq. 3 optimises).
const EMB_LR_SCALE: f32 = 10.0;

/// The experience-prediction network.
pub struct NnExp {
    net: Sequential,
    opt: Adam,
    dim: usize,
    task_len: usize,
    emb_lr: f32,
}

impl NnExp {
    /// Build the MLP `[dim + task_len] → 64 → 32 → 2`.
    pub fn new(dim: usize, task_len: usize, lr: f32, rng: &mut Rng) -> Self {
        let net = Sequential::new()
            .push(Linear::new(dim + task_len, 64, rng))
            .push(Relu::new())
            .push(Linear::new(64, 32, rng))
            .push(Relu::new())
            .push(Linear::new(32, 2, rng));
        NnExp {
            net,
            opt: Adam::new(AdamConfig { lr, ..Default::default() }),
            dim,
            task_len,
            emb_lr: lr * EMB_LR_SCALE,
        }
    }

    /// Predict `(AR, PR)` for one strategy embedding on one task.
    pub fn predict(&mut self, embedding: &[f32], task: &[f32]) -> (f32, f32) {
        debug_assert_eq!(embedding.len(), self.dim);
        debug_assert_eq!(task.len(), self.task_len);
        let mut input = Vec::with_capacity(self.dim + self.task_len);
        input.extend_from_slice(embedding);
        input.extend_from_slice(task);
        let x = Tensor::from_slice(&[1, self.dim + self.task_len], &input);
        let y = self.net.forward(&x, false);
        (y.data()[0], y.data()[1])
    }

    /// One epoch of Eq. 3: minimise `‖NN_exp(e, task) − (AR, PR)‖` over θ
    /// *and* the strategy embeddings stored in `transr`. Returns the mean
    /// squared error over the epoch.
    pub fn refine_epoch(
        &mut self,
        transr: &mut TransR,
        kg: &KnowledgeGraph,
        corpus: &ExperienceCorpus,
        rng: &mut Rng,
    ) -> f32 {
        let mut order: Vec<usize> = (0..corpus.records.len()).collect();
        order.shuffle(rng);
        let batch = 16usize;
        let mut total = 0.0f32;
        let mut batches = 0usize;
        for chunk in order.chunks(batch) {
            let width = self.dim + self.task_len;
            let mut x = Tensor::zeros(&[chunk.len(), width]);
            let mut target = Tensor::zeros(&[chunk.len(), 2]);
            for (row, &ri) in chunk.iter().enumerate() {
                let rec = &corpus.records[ri];
                let ent = kg.strategy_entity[rec.strategy];
                let emb = transr.entity_embedding(ent);
                x.row_mut(row)[..self.dim].copy_from_slice(emb);
                x.row_mut(row)[self.dim..].copy_from_slice(&rec.task);
                target.row_mut(row).copy_from_slice(&[rec.ar, rec.pr]);
            }
            let pred = self.net.forward(&x, true);
            let (mse, grad) = loss::mse(&pred, &target);
            total += mse;
            batches += 1;
            let grad_in = self.net.backward(&grad);
            self.opt.step(&mut self.net.params_mut());
            // Embedding half of the input gradient flows back into the
            // TransR entity table (Algorithm 1, line 9: "replace e by ẽ").
            for (row, &ri) in chunk.iter().enumerate() {
                let rec = &corpus.records[ri];
                let ent = kg.strategy_entity[rec.strategy];
                let g = &grad_in.row(row)[..self.dim].to_vec();
                let emb = transr.entity_embedding_mut(ent);
                for (e, gv) in emb.iter_mut().zip(g) {
                    *e -= self.emb_lr * gv;
                }
            }
        }
        total / batches.max(1) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experience::{ExperienceCorpus, ExperienceRecord};
    use crate::kg::KnowledgeGraph;
    use crate::transr::{TransR, TransRConfig};
    use automc_compress::{MethodId, StrategySpace};
    use automc_tensor::rng_from_seed;

    fn setup() -> (StrategySpace, KnowledgeGraph, TransR, ExperienceCorpus) {
        let space = StrategySpace::for_methods(&[MethodId::Ns]);
        let kg = KnowledgeGraph::build(&space);
        let mut rng = rng_from_seed(230);
        let transr = TransR::new(
            &kg,
            TransRConfig { dim: 8, rel_dim: 4, ..Default::default() },
            &mut rng,
        );
        // Synthetic but *structured* experience: PR equals the strategy's
        // HP2 ratio, AR penalises large ratios — learnable signal.
        let mut corpus = ExperienceCorpus::empty(3);
        for (sid, spec) in space.iter() {
            if sid % 3 != 0 {
                continue;
            }
            corpus.push(ExperienceRecord {
                strategy: sid,
                task: vec![0.5, 0.5, 0.5],
                ar: -spec.ratio() * 0.5,
                pr: spec.ratio(),
            });
        }
        (space, kg, transr, corpus)
    }

    #[test]
    fn refinement_reduces_prediction_error() {
        let (_, kg, mut transr, corpus) = setup();
        let mut rng = rng_from_seed(231);
        let mut nn = NnExp::new(8, 3, 1e-3, &mut rng);
        let first = nn.refine_epoch(&mut transr, &kg, &corpus, &mut rng);
        let mut last = first;
        for _ in 0..60 {
            last = nn.refine_epoch(&mut transr, &kg, &corpus, &mut rng);
        }
        assert!(last < first * 0.5, "error should halve: {first} → {last}");
    }

    #[test]
    fn refinement_moves_embeddings() {
        let (_, kg, mut transr, corpus) = setup();
        let mut rng = rng_from_seed(232);
        let mut nn = NnExp::new(8, 3, 1e-3, &mut rng);
        let ent = kg.strategy_entity[corpus.records[0].strategy];
        let before = transr.entity_embedding(ent).to_vec();
        for _ in 0..5 {
            nn.refine_epoch(&mut transr, &kg, &corpus, &mut rng);
        }
        let after = transr.entity_embedding(ent);
        let moved: f32 = before
            .iter()
            .zip(after)
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(moved > 1e-4, "embedding should move under Eq. 3");
    }

    #[test]
    fn trained_predictions_track_targets() {
        let (space, kg, mut transr, corpus) = setup();
        let mut rng = rng_from_seed(233);
        let mut nn = NnExp::new(8, 3, 2e-3, &mut rng);
        for _ in 0..120 {
            nn.refine_epoch(&mut transr, &kg, &corpus, &mut rng);
        }
        // Pick a low-PR and a high-PR record from the corpus (only corpus
        // strategies had their embeddings refined); predicted PR should
        // order them correctly.
        let lo = corpus.records.iter().find(|r| r.pr < 0.1).unwrap().strategy;
        let hi = corpus.records.iter().find(|r| r.pr > 0.35).unwrap().strategy;
        let _ = &space;
        let task = vec![0.5, 0.5, 0.5];
        let e_lo = transr.entity_embedding(kg.strategy_entity[lo]).to_vec();
        let e_hi = transr.entity_embedding(kg.strategy_entity[hi]).to_vec();
        let (_, pr_lo) = nn.predict(&e_lo, &task);
        let (_, pr_hi) = nn.predict(&e_hi, &task);
        assert!(
            pr_hi > pr_lo,
            "predicted PR should order by ratio: {pr_lo} vs {pr_hi}"
        );
    }
}
