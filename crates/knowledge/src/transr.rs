//! TransR knowledge-graph embedding (Lin et al., Eq. 2 of the paper).
//!
//! Entities live in `R^d`, relations in `R^k`, and each relation carries a
//! projection `W_r ∈ R^{k×d}`. A triple `(h, r, t)` is scored by
//! `f = ‖W_r·e_h + e_r − W_r·e_t‖²`; training minimises a margin ranking
//! loss against negative samples (corrupted tails), by plain SGD on the
//! embeddings and projections.

use crate::kg::{KnowledgeGraph, NUM_RELATIONS};
use automc_tensor::{Rng, Tensor};
use rand::Rng as _;

/// TransR hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransRConfig {
    /// Entity dimension `d`.
    pub dim: usize,
    /// Relation dimension `k`.
    pub rel_dim: usize,
    /// Ranking margin γ.
    pub margin: f32,
    /// SGD learning rate.
    pub lr: f32,
}

impl Default for TransRConfig {
    fn default() -> Self {
        TransRConfig { dim: 32, rel_dim: 16, margin: 1.0, lr: 0.02 }
    }
}

/// Trainable TransR embedding tables.
pub struct TransR {
    cfg: TransRConfig,
    /// Entity embeddings, one row per entity `[num_entities, d]`.
    entities: Tensor,
    /// Relation embeddings `[R, k]`.
    relations: Tensor,
    /// Relation projections, `R` matrices of `[k, d]`.
    projections: Vec<Tensor>,
}

impl TransR {
    /// Fresh randomly-initialised tables for a graph.
    pub fn new(kg: &KnowledgeGraph, cfg: TransRConfig, rng: &mut Rng) -> Self {
        let scale = 1.0 / (cfg.dim as f32).sqrt();
        TransR {
            cfg,
            entities: Tensor::randn(&[kg.num_entities, cfg.dim], scale, rng),
            relations: Tensor::randn(&[NUM_RELATIONS, cfg.rel_dim], scale, rng),
            projections: (0..NUM_RELATIONS)
                .map(|_| {
                    // Near-orthogonal init: identity-ish block plus noise.
                    let mut w = Tensor::randn(&[cfg.rel_dim, cfg.dim], 0.05, rng);
                    for i in 0..cfg.rel_dim.min(cfg.dim) {
                        *w.at_mut(&[i, i]) += 1.0;
                    }
                    w
                })
                .collect(),
        }
    }

    /// Embedding dimension `d`.
    pub fn dim(&self) -> usize {
        self.cfg.dim
    }

    /// Entity embedding row (read).
    pub fn entity_embedding(&self, entity: usize) -> &[f32] {
        self.entities.row(entity)
    }

    /// Entity embedding row (write) — used by `NN_exp` refinement.
    pub fn entity_embedding_mut(&mut self, entity: usize) -> &mut [f32] {
        self.entities.row_mut(entity)
    }

    /// Project an entity into relation `r`'s space: `W_r·e`.
    pub fn project(&self, r: usize, entity: usize) -> Vec<f32> {
        let w = &self.projections[r];
        let (k, d) = (self.cfg.rel_dim, self.cfg.dim);
        let e = self.entities.row(entity);
        (0..k)
            .map(|i| {
                let wrow = &w.data()[i * d..(i + 1) * d];
                wrow.iter().zip(e).map(|(a, b)| a * b).sum()
            })
            .collect()
    }

    /// Triple score `‖W_r·e_h + e_r − W_r·e_t‖²` (lower = more plausible).
    pub fn score(&self, h: usize, r: usize, t: usize) -> f32 {
        self.residual(h, r, t).iter().map(|v| v * v).sum()
    }

    /// `W_r·e_h + e_r − W_r·e_t` as a dense vector.
    fn residual(&self, h: usize, r: usize, t: usize) -> Vec<f32> {
        let w = &self.projections[r];
        let (k, d) = (self.cfg.rel_dim, self.cfg.dim);
        let eh = self.entities.row(h);
        let et = self.entities.row(t);
        let er = self.relations.row(r);
        let mut out = vec![0.0f32; k];
        for i in 0..k {
            let wrow = &w.data()[i * d..(i + 1) * d];
            let mut acc = er[i];
            for j in 0..d {
                acc += wrow[j] * (eh[j] - et[j]);
            }
            out[i] = acc;
        }
        out
    }

    /// One margin-ranking epoch over all triples with uniform negative
    /// tail sampling. Returns the mean hinge loss.
    pub fn train_epoch(&mut self, kg: &KnowledgeGraph, rng: &mut Rng) -> f32 {
        let mut total = 0.0f32;
        let n = kg.triples.len().max(1);
        for &(h, r, t) in &kg.triples {
            let t_neg = rng.gen_range(0..kg.num_entities);
            let pos = self.score(h, r, t);
            let neg = self.score(h, r, t_neg);
            let loss = (self.cfg.margin + pos - neg).max(0.0);
            total += loss;
            if loss <= 0.0 {
                continue;
            }
            // Hinge active: descend pos score, ascend neg score.
            self.sgd_triple(h, r, t, 1.0);
            self.sgd_triple(h, r, t_neg, -1.0);
        }
        total / n as f32
    }

    /// Apply one SGD step on a triple's score scaled by `sign`
    /// (+1 decreases the score, −1 increases it).
    fn sgd_triple(&mut self, h: usize, r: usize, t: usize, sign: f32) {
        let (k, d) = (self.cfg.rel_dim, self.cfg.dim);
        let u = self.residual(h, r, t); // ∂f/∂u = 2u
        let lr = self.cfg.lr * sign;
        // Gradients: de_h = Wᵀ(2u), de_t = −Wᵀ(2u), de_r = 2u,
        //            dW = 2u (e_h − e_t)ᵀ.
        let diff: Vec<f32> = {
            let eh = self.entities.row(h);
            let et = self.entities.row(t);
            eh.iter().zip(et).map(|(a, b)| a - b).collect()
        };
        // Entity updates.
        let w = self.projections[r].clone();
        {
            let mut wt_u = vec![0.0f32; d];
            for i in 0..k {
                let wrow = &w.data()[i * d..(i + 1) * d];
                for j in 0..d {
                    wt_u[j] += wrow[j] * 2.0 * u[i];
                }
            }
            let eh = self.entities.row_mut(h);
            for j in 0..d {
                eh[j] -= lr * wt_u[j];
            }
            let et = self.entities.row_mut(t);
            for j in 0..d {
                et[j] += lr * wt_u[j];
            }
        }
        // Relation update.
        {
            let er = self.relations.row_mut(r);
            for i in 0..k {
                er[i] -= lr * 2.0 * u[i];
            }
        }
        // Projection update.
        {
            let wt = &mut self.projections[r];
            for i in 0..k {
                let grad_scale = 2.0 * u[i];
                let wrow = &mut wt.data_mut()[i * d..(i + 1) * d];
                for j in 0..d {
                    wrow[j] -= lr * grad_scale * diff[j];
                }
            }
        }
        // Keep entity norms bounded (standard TransR constraint ‖e‖ ≤ 1).
        for ent in [h, t] {
            let row = self.entities.row_mut(ent);
            let norm: f32 = row.iter().map(|v| v * v).sum::<f32>().sqrt();
            if norm > 1.0 {
                for v in row.iter_mut() {
                    *v /= norm;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kg::Relation;
    use automc_compress::{MethodId, StrategySpace};
    use automc_tensor::rng_from_seed;

    fn small_kg() -> (StrategySpace, KnowledgeGraph) {
        let space = StrategySpace::for_methods(&[MethodId::Ns, MethodId::Sfp]);
        let kg = KnowledgeGraph::build(&space);
        (space, kg)
    }

    #[test]
    fn training_reduces_hinge_loss() {
        let (_, kg) = small_kg();
        let mut rng = rng_from_seed(210);
        let mut tr = TransR::new(&kg, TransRConfig { dim: 16, rel_dim: 8, ..Default::default() }, &mut rng);
        let first = tr.train_epoch(&kg, &mut rng);
        let mut last = first;
        for _ in 0..14 {
            last = tr.train_epoch(&kg, &mut rng);
        }
        assert!(last < first, "hinge loss should drop: {first} → {last}");
    }

    #[test]
    fn positive_triples_score_below_random_after_training() {
        let (_, kg) = small_kg();
        let mut rng = rng_from_seed(211);
        let mut tr = TransR::new(&kg, TransRConfig { dim: 16, rel_dim: 8, ..Default::default() }, &mut rng);
        for _ in 0..15 {
            tr.train_epoch(&kg, &mut rng);
        }
        use rand::Rng as _;
        let mut pos_sum = 0.0f32;
        let mut neg_sum = 0.0f32;
        let sample: Vec<_> = kg.triples.iter().step_by(7).collect();
        for &&(h, r, t) in &sample {
            pos_sum += tr.score(h, r, t);
            neg_sum += tr.score(h, r, rng.gen_range(0..kg.num_entities));
        }
        assert!(
            pos_sum < neg_sum,
            "true triples should score lower: pos {pos_sum} vs neg {neg_sum}"
        );
    }

    #[test]
    fn same_method_strategies_cluster_in_relation_space() {
        // The translation principle pulls strategies of the same method to
        // the same point in the R1-projected space (W_r·e_h ≈ W_r·e_m − e_r);
        // cross-method strategies should sit farther apart there.
        let (_space, kg) = small_kg();
        let mut rng = rng_from_seed(212);
        let mut tr = TransR::new(&kg, TransRConfig { dim: 16, rel_dim: 8, ..Default::default() }, &mut rng);
        for _ in 0..25 {
            tr.train_epoch(&kg, &mut rng);
        }
        let r1 = Relation::StrategyMethod as usize;
        let dist = |a: &[f32], b: &[f32]| -> f32 {
            a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
        };
        // NS strategies occupy ids [0, 60); SFP [60, 150).
        let p = |sid: usize| tr.project(r1, kg.strategy_entity[sid]);
        let mut same = 0.0;
        let mut cross = 0.0;
        let mut n = 0;
        for i in (0..40).step_by(5) {
            same += dist(&p(i), &p(i + 10));
            cross += dist(&p(i), &p(70 + i));
            n += 1;
        }
        assert!(
            same / n as f32 <= cross / n as f32,
            "same-method projected distance {same} should not exceed cross-method {cross}"
        );
    }

    #[test]
    fn entity_norms_bounded() {
        let (_, kg) = small_kg();
        let mut rng = rng_from_seed(213);
        let mut tr = TransR::new(&kg, TransRConfig::default(), &mut rng);
        for _ in 0..5 {
            tr.train_epoch(&kg, &mut rng);
        }
        for ent in 0..kg.num_entities {
            let norm: f32 = tr
                .entity_embedding(ent)
                .iter()
                .map(|v| v * v)
                .sum::<f32>()
                .sqrt();
            assert!(norm <= 1.5, "entity {ent} norm {norm}");
        }
    }
}
