//! Experimental-experience corpus (paper §3.3.1).
//!
//! The paper extracts `(C_iP_{i,j}, Task_k, AR, PR)` tuples from published
//! compression papers. No such corpus exists for the synthetic substrate,
//! so this module *generates* one with the same semantics: it executes a
//! spread of strategies on a bank of small seeded tasks and records the
//! real measured `(AR, PR)`. The corpus is exactly what `NN_exp` needs —
//! numerical knowledge about how strategies behave across task types.

use automc_compress::{apply_strategy, ExecConfig, Metrics, StrategyId, StrategySpace};
use automc_data::{DataFeatures, DatasetSpec, ImageSet, SyntheticKind};
use automc_models::train::{train, Auxiliary};
use automc_models::{resnet, vgg, ConvNet, ModelFeatures, ModelKind};
use automc_tensor::Rng;
use rand::seq::SliceRandom;

/// One experience tuple.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperienceRecord {
    /// Strategy that was executed.
    pub strategy: StrategyId,
    /// Task feature vector (paper: 4 data features + 3 model features).
    pub task: Vec<f32>,
    /// Measured accuracy-increase rate.
    pub ar: f32,
    /// Measured parameter-reduction rate.
    pub pr: f32,
}

/// A corpus of experience tuples.
#[derive(Debug, Clone, Default)]
pub struct ExperienceCorpus {
    /// The tuples.
    pub records: Vec<ExperienceRecord>,
    task_feature_len: usize,
}

impl ExperienceCorpus {
    /// Empty corpus with a fixed task-feature width.
    pub fn empty(task_feature_len: usize) -> Self {
        ExperienceCorpus { records: Vec::new(), task_feature_len }
    }

    /// Width of the task feature vectors.
    pub fn task_feature_len(&self) -> usize {
        self.task_feature_len
    }

    /// Add a record (must match the feature width).
    pub fn push(&mut self, rec: ExperienceRecord) {
        assert_eq!(rec.task.len(), self.task_feature_len, "task feature width mismatch");
        self.records.push(rec);
    }
}

/// A small seeded task used to generate experience.
pub struct MicroTask {
    /// Pre-trained model.
    pub model: ConvNet,
    /// Training split (what strategies may fine-tune on).
    pub train_set: ImageSet,
    /// Held-out split for `A(M)`.
    pub eval_set: ImageSet,
    /// Base metrics of the pre-trained model.
    pub base: Metrics,
    /// The 7-feature task vector (paper §3.3.1).
    pub features: Vec<f32>,
}

impl MicroTask {
    /// Build and pre-train a micro task.
    pub fn new(
        kind: SyntheticKind,
        model_kind: ModelKind,
        width: usize,
        train_n: usize,
        eval_n: usize,
        pretrain_epochs: f32,
        seed: u64,
        rng: &mut Rng,
    ) -> Self {
        let (train_set, eval_set) = DatasetSpec {
            train: train_n,
            test: eval_n,
            noise: 0.25,
            seed,
            ..DatasetSpec::new(kind)
        }
        .generate();
        let classes = kind.classes();
        let mut model = match model_kind {
            ModelKind::ResNet(d) => resnet(d, width, classes, (3, 8, 8), rng),
            ModelKind::Vgg(d) => vgg(d, width, classes, (3, 8, 8), rng),
        };
        let cfg = automc_models::train::TrainConfig {
            epochs: pretrain_epochs,
            ..Default::default()
        };
        train(&mut model, &train_set, &cfg, Auxiliary::None, rng);
        let base = Metrics::measure(&mut model, &eval_set);
        let features = task_features(&train_set, &base);
        MicroTask { model, train_set, eval_set, base, features }
    }
}

/// The paper's 7-part task feature vector: data features (class count,
/// image size, channels, amount) + model features (params, FLOPs,
/// accuracy).
pub fn task_features(train_set: &ImageSet, base: &Metrics) -> Vec<f32> {
    let (c, h, _) = train_set.image_dims();
    let data = DataFeatures {
        classes: train_set.classes(),
        image_size: h,
        channels: c,
        amount: train_set.len(),
    };
    let model = ModelFeatures { params: base.params, flops: base.flops, accuracy: base.acc };
    let mut v = data.to_vec();
    v.extend(model.to_vec());
    v
}

/// Generate an experience corpus by executing `per_task` strategies
/// (stratified across methods) on each micro task.
pub fn generate_experience(
    space: &StrategySpace,
    tasks: &mut [MicroTask],
    per_task: usize,
    exec: &ExecConfig,
    rng: &mut Rng,
) -> ExperienceCorpus {
    let mut corpus = ExperienceCorpus::empty(7);
    if tasks.is_empty() || per_task == 0 {
        return corpus;
    }
    // Stratified strategy sample: round-robin over methods so every method
    // contributes experience.
    let mut by_method: Vec<Vec<StrategyId>> = Vec::new();
    for m in automc_compress::MethodId::ALL {
        let ids: Vec<StrategyId> = space
            .iter()
            .filter(|(_, s)| s.method() == m)
            .map(|(id, _)| id)
            .collect();
        if !ids.is_empty() {
            by_method.push(ids);
        }
    }
    for task in tasks.iter_mut() {
        let mut picks: Vec<StrategyId> = Vec::with_capacity(per_task);
        let mut mi = 0usize;
        while picks.len() < per_task {
            let bucket = &by_method[mi % by_method.len()];
            picks.push(*bucket.choose(rng).expect("non-empty bucket"));
            mi += 1;
        }
        for sid in picks {
            let mut model = task.model.clone_net();
            apply_strategy(space.spec(sid), &mut model, &task.train_set, exec, rng);
            let m = Metrics::measure(&mut model, &task.eval_set);
            corpus.push(ExperienceRecord {
                strategy: sid,
                task: task.features.clone(),
                ar: m.ar(&task.base),
                pr: m.pr(&task.base),
            });
        }
    }
    corpus
}

#[cfg(test)]
mod tests {
    use super::*;
    use automc_compress::MethodId;
    use automc_tensor::rng_from_seed;

    #[test]
    fn corpus_width_enforced() {
        let mut c = ExperienceCorpus::empty(7);
        c.push(ExperienceRecord { strategy: 0, task: vec![0.0; 7], ar: 0.0, pr: 0.1 });
        assert_eq!(c.records.len(), 1);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn corpus_rejects_bad_width() {
        let mut c = ExperienceCorpus::empty(7);
        c.push(ExperienceRecord { strategy: 0, task: vec![0.0; 3], ar: 0.0, pr: 0.1 });
    }

    #[test]
    fn micro_task_features_have_seven_parts() {
        let mut rng = rng_from_seed(220);
        let task = MicroTask::new(
            SyntheticKind::Cifar10Like,
            ModelKind::ResNet(20),
            4,
            120,
            60,
            2.0,
            42,
            &mut rng,
        );
        assert_eq!(task.features.len(), 7);
        assert!(task.base.acc > 0.0);
    }

    #[test]
    fn generated_experience_reflects_real_reductions() {
        let mut rng = rng_from_seed(221);
        let space = StrategySpace::for_methods(&[MethodId::Ns, MethodId::Sfp]);
        let mut tasks = vec![MicroTask::new(
            SyntheticKind::Cifar10Like,
            ModelKind::ResNet(20),
            4,
            120,
            60,
            2.0,
            43,
            &mut rng,
        )];
        let exec = ExecConfig { pretrain_epochs: 2.0, ..Default::default() };
        let corpus = generate_experience(&space, &mut tasks, 4, &exec, &mut rng);
        assert_eq!(corpus.records.len(), 4);
        for rec in &corpus.records {
            assert!(rec.pr > 0.0, "strategies remove parameters: {rec:?}");
            assert!(rec.pr < 0.9);
            assert!(rec.ar > -1.0);
        }
    }
}
