//! End-to-end search throughput with prefix-model memoization off vs on.
//!
//! Runs Evolution and RL search at micro scale in three modes — memo off,
//! memo on with a cold cache, memo on with a warm cache — asserting the
//! histories are identical in all three (the memo contract), and writes
//! evals/sec, hit rates, and train-steps avoided to
//! `target/automc-results/BENCH_search.json` for machine consumption.

use automc_compress::{memo, ExecConfig, Metrics, MethodId, StrategySpace};
use automc_core::{
    evolution_search, rl_search, EvolutionConfig, RlConfig, SearchBudget, SearchContext,
    SearchHistory,
};
use automc_data::{DatasetSpec, ImageSet, SyntheticKind};
use automc_json::{obj, ToJson, Value};
use automc_models::resnet;
use automc_models::train::{train, Auxiliary, TrainConfig};
use automc_models::ConvNet;
use automc_tensor::rng_from_seed;
use std::time::Instant;

struct Fixture {
    base: ConvNet,
    base_metrics: Metrics,
    train_set: ImageSet,
    eval_set: ImageSet,
    space: StrategySpace,
    budget: u64,
}

fn fixture(test_mode: bool) -> Fixture {
    let mut rng = rng_from_seed(60);
    let (train_set, eval_set) = DatasetSpec {
        train: 100,
        test: 60,
        noise: 0.25,
        ..DatasetSpec::new(SyntheticKind::Cifar10Like)
    }
    .generate();
    let mut base = resnet(20, 4, 10, (3, 8, 8), &mut rng);
    train(
        &mut base,
        &train_set,
        &TrainConfig { epochs: 2.0, ..Default::default() },
        Auxiliary::None,
        &mut rng,
    );
    let base_metrics = Metrics::measure(&mut base, &eval_set);
    Fixture {
        base,
        base_metrics,
        train_set,
        eval_set,
        space: StrategySpace::for_methods(&[MethodId::Ns, MethodId::Sfp]),
        budget: if test_mode { 1_000 } else { 3_000 },
    }
}

fn run_algo(fx: &Fixture, algo: &str) -> SearchHistory {
    let ctx = SearchContext {
        space: &fx.space,
        base_model: &fx.base,
        base_metrics: fx.base_metrics,
        search_train: &fx.train_set,
        eval_set: &fx.eval_set,
        exec: ExecConfig { pretrain_epochs: 2.0, eval_seed: 61, ..Default::default() },
        max_len: 3,
        gamma: 0.1,
        budget: SearchBudget::new(fx.budget),
    };
    let mut rng = rng_from_seed(62);
    match algo {
        "Evolution" => evolution_search(&ctx, &EvolutionConfig::default(), &mut rng),
        "RL" => rl_search(&ctx, &RlConfig::default(), &mut rng),
        other => unreachable!("unknown algo {other}"),
    }
}

/// A history digest that must be identical across memo modes.
fn digest(h: &SearchHistory) -> Vec<(Vec<usize>, u64, u32)> {
    h.records
        .iter()
        .map(|r| (r.scheme.clone(), r.cost_so_far, r.acc.to_bits()))
        .collect()
}

fn main() {
    let test_mode = std::env::args().any(|arg| arg == "--test");
    // Criterion-style bench harness args we don't use.
    let fx = fixture(test_mode);

    let mut entries: Vec<Value> = Vec::new();
    for algo in ["Evolution", "RL"] {
        let mut reference: Option<Vec<(Vec<usize>, u64, u32)>> = None;
        let mut off_secs = 0f64;
        for mode in ["off", "cold", "warm"] {
            match mode {
                "off" => memo::set_enabled_for_thread(Some(false)),
                "cold" => {
                    memo::set_enabled_for_thread(Some(true));
                    memo::clear();
                }
                // Warm: keep the cache filled by the cold run.
                _ => memo::set_enabled_for_thread(Some(true)),
            }
            let before = memo::stats();
            let t = Instant::now();
            let history = run_algo(&fx, algo);
            let secs = t.elapsed().as_secs_f64();
            let stats = memo::stats().since(&before);

            let d = digest(&history);
            match &reference {
                None => reference = Some(d),
                Some(r) => assert_eq!(
                    r, &d,
                    "{algo}: memo mode {mode} changed the search history"
                ),
            }
            if mode == "off" {
                off_secs = secs;
            }
            let evals = history.records.len() as u64;
            eprintln!(
                "[bench] {algo} memo={mode}: {evals} evals in {secs:.2}s \
                 ({:.1} evals/s), hit rate {:.1}%, {} steps avoided",
                evals as f64 / secs.max(1e-9),
                stats.hit_rate_pct(),
                stats.steps_avoided
            );
            entries.push(obj(vec![
                ("algo", algo.to_json()),
                ("mode", mode.to_json()),
                ("secs", secs.to_json()),
                ("evals", evals.to_json()),
                ("evals_per_sec", (evals as f64 / secs.max(1e-9)).to_json()),
                ("speedup_vs_off", (off_secs / secs.max(1e-9)).to_json()),
                ("lookups", stats.lookups.to_json()),
                ("prefix_hits", stats.prefix_hits.to_json()),
                ("full_hits", stats.full_hits.to_json()),
                ("neg_hits", stats.neg_hits.to_json()),
                ("hit_rate_pct", stats.hit_rate_pct().to_json()),
                ("steps_avoided", stats.steps_avoided.to_json()),
                ("train_batches_avoided", stats.train_batches_avoided.to_json()),
                ("trained_images_avoided", stats.trained_images_avoided.to_json()),
            ]));
        }
    }
    memo::set_enabled_for_thread(None);

    let report = obj(vec![
        ("bench", "search_throughput".to_json()),
        ("test_mode", test_mode.to_json()),
        ("results", Value::Arr(entries)),
    ]);
    let dir = automc_bench::cache::cache_dir();
    let path = dir.join("BENCH_search.json");
    if std::fs::create_dir_all(&dir).is_ok() {
        match std::fs::write(&path, report.to_string_pretty()) {
            Ok(()) => eprintln!("[bench] wrote {}", path.display()),
            Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
        }
    }
}
