//! Per-method compression benchmarks (the building blocks of Table 2's
//! method rows): each benchmark applies one strategy — structural surgery
//! plus its (re-)training — to a small pre-trained ResNet.

use automc_compress::{apply_strategy, ExecConfig, StrategySpec};
use automc_data::{DatasetSpec, ImageSet, SyntheticKind};
use automc_models::surgery::Criterion;
use automc_models::train::{train, AuxKind, Auxiliary, TrainConfig};
use automc_models::{resnet, ConvNet};
use automc_tensor::rng_from_seed;
use criterion::{criterion_group, criterion_main, Criterion as Crit};
use std::hint::black_box;

fn fixture() -> (ConvNet, ImageSet) {
    let mut rng = rng_from_seed(10);
    let (train_set, _) = DatasetSpec {
        train: 96,
        test: 0,
        noise: 0.25,
        ..DatasetSpec::new(SyntheticKind::Cifar10Like)
    }
    .generate();
    let mut net = resnet(20, 4, 10, (3, 8, 8), &mut rng);
    train(
        &mut net,
        &train_set,
        &TrainConfig { epochs: 1.0, ..Default::default() },
        Auxiliary::None,
        &mut rng,
    );
    (net, train_set)
}

fn bench_methods(c: &mut Crit) {
    let (net, data) = fixture();
    let exec = ExecConfig { pretrain_epochs: 1.0, ..Default::default() };
    let specs: Vec<(&str, StrategySpec)> = vec![
        ("lma", StrategySpec::Lma { ft_epochs: 0.5, ratio: 0.2, temperature: 3.0, alpha: 0.5 }),
        (
            "legr",
            StrategySpec::Legr {
                ft_epochs: 0.5,
                ratio: 0.2,
                max_prune: 0.9,
                evo_epochs: 0.5,
                criterion: Criterion::L2Weight,
            },
        ),
        ("ns", StrategySpec::Ns { ft_epochs: 0.5, ratio: 0.2, max_prune: 0.9 }),
        ("sfp", StrategySpec::Sfp { ratio: 0.2, bp_epochs: 0.5, update_freq: 1 }),
        (
            "hos",
            StrategySpec::Hos {
                ft_epochs: 0.5,
                ratio: 0.2,
                global: 1,
                criterion: Criterion::K34,
                opt_epochs: 0.5,
                mse_factor: 1.0,
            },
        ),
        ("lfb", StrategySpec::Lfb { ft_epochs: 0.5, ratio: 0.2, aux_factor: 1.0, aux_loss: AuxKind::Mse }),
    ];
    let mut group = c.benchmark_group("apply_strategy");
    group.sample_size(10);
    for (name, spec) in specs {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut rng = rng_from_seed(11);
                let mut model = net.clone_net();
                apply_strategy(black_box(&spec), &mut model, &data, &exec, &mut rng);
                black_box(model.param_count())
            })
        });
    }
    group.finish();
}

criterion_group!(methods, bench_methods);
criterion_main!(methods);
