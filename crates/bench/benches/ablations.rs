//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. **Prefix caching** — AutoMC extends a cached compressed model by one
//!    strategy; non-progressive searchers re-execute the whole scheme.
//!    These two benches measure the same logical evaluation both ways.
//! 2. **Quantization extension** — cost of post-training quantization vs
//!    quantization-aware tuning (the C7 future-work family).

use automc_compress::quant::{apply_quant, QuantSpec};
use automc_compress::{
    apply_strategy, execute_scheme, ExecConfig, Metrics, MethodId, StrategySpace,
};
use automc_data::{DatasetSpec, ImageSet, SyntheticKind};
use automc_models::train::{train, Auxiliary, TrainConfig};
use automc_models::{resnet, ConvNet};
use automc_tensor::rng_from_seed;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn fixture() -> (ConvNet, ImageSet, ImageSet) {
    let mut rng = rng_from_seed(40);
    let (train_set, test_set) = DatasetSpec {
        train: 80,
        test: 48,
        noise: 0.25,
        ..DatasetSpec::new(SyntheticKind::Cifar10Like)
    }
    .generate();
    let mut net = resnet(20, 4, 10, (3, 8, 8), &mut rng);
    train(
        &mut net,
        &train_set,
        &TrainConfig { epochs: 1.0, ..Default::default() },
        Auxiliary::None,
        &mut rng,
    );
    (net, train_set, test_set)
}

/// The paper's efficiency claim, measured: evaluating `seq → s` given a
/// cached model for `seq` vs re-running the whole scheme.
fn bench_prefix_cache(c: &mut Criterion) {
    let (base, train_set, test_set) = fixture();
    let space = StrategySpace::for_methods(&[MethodId::Ns, MethodId::Sfp]);
    let exec = ExecConfig { pretrain_epochs: 1.0, ..Default::default() };
    let scheme: Vec<usize> = vec![0, space.len() / 2, 3];
    // Pre-build the cached prefix (first two strategies applied).
    let mut rng = rng_from_seed(41);
    let mut prefix_model = base.clone_net();
    for &sid in &scheme[..2] {
        apply_strategy(space.spec(sid), &mut prefix_model, &train_set, &exec, &mut rng);
    }
    let base_metrics = {
        let mut m = base.clone_net();
        Metrics::measure(&mut m, &test_set)
    };

    let mut group = c.benchmark_group("prefix_cache_ablation");
    group.sample_size(10);
    group.bench_function("progressive_extend_cached", |b| {
        b.iter(|| {
            let mut rng = rng_from_seed(42);
            let mut model = prefix_model.clone_net();
            apply_strategy(space.spec(scheme[2]), &mut model, &train_set, &exec, &mut rng);
            black_box(Metrics::measure(&mut model, &test_set))
        })
    });
    group.bench_function("nonprogressive_full_reexec", |b| {
        // Memoization would turn the re-execution into a cache hit and
        // defeat the point of the comparison; measure it cold.
        automc_compress::memo::set_enabled_for_thread(Some(false));
        b.iter(|| {
            let (_, outcome) = execute_scheme(
                &base,
                &base_metrics,
                &scheme,
                &space,
                &train_set,
                &test_set,
                &exec,
            );
            black_box(outcome)
        });
        automc_compress::memo::set_enabled_for_thread(None);
    });
    group.finish();
}

fn bench_quantization(c: &mut Criterion) {
    let (base, train_set, _) = fixture();
    let exec = ExecConfig { pretrain_epochs: 1.0, ..Default::default() };
    let mut group = c.benchmark_group("quantization_extension");
    group.sample_size(10);
    for bits in [2u32, 8] {
        group.bench_function(format!("ptq_{bits}bit"), |b| {
            b.iter(|| {
                let mut rng = rng_from_seed(43);
                let mut model = base.clone_net();
                black_box(apply_quant(
                    &QuantSpec { bits, qat_epochs: 0.0 },
                    &mut model,
                    &train_set,
                    &exec,
                    &mut rng,
                ))
            })
        });
    }
    group.bench_function("qat_2bit", |b| {
        b.iter(|| {
            let mut rng = rng_from_seed(44);
            let mut model = base.clone_net();
            black_box(apply_quant(
                &QuantSpec { bits: 2, qat_epochs: 1.0 },
                &mut model,
                &train_set,
                &exec,
                &mut rng,
            ))
        })
    });
    group.finish();
}

criterion_group!(ablations, bench_prefix_cache, bench_quantization);
criterion_main!(ablations);
