//! Search-machinery benchmarks (what Figures 4–5 stress): knowledge-graph
//! embedding epochs, F_mo candidate scoring, Pareto operations, and one
//! round of each search strategy at micro scale.

use automc_compress::{ExecConfig, Metrics, MethodId, StrategySpace};
use automc_core::pareto;
use automc_core::{
    progressive_search, random_search, AutoMcConfig, Fmo, SearchBudget, SearchContext,
};
use automc_data::{DatasetSpec, SyntheticKind};
use automc_knowledge::{KnowledgeGraph, TransR, TransRConfig};
use automc_models::resnet;
use automc_models::train::{train, Auxiliary, TrainConfig};
use automc_tensor::rng_from_seed;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_transr_epoch(c: &mut Criterion) {
    let space = StrategySpace::for_methods(&[MethodId::Ns, MethodId::Sfp]);
    let kg = KnowledgeGraph::build(&space);
    let mut rng = rng_from_seed(20);
    let mut transr = TransR::new(&kg, TransRConfig::default(), &mut rng);
    c.bench_function("transr_epoch_150_strategies", |b| {
        b.iter(|| black_box(transr.train_epoch(&kg, &mut rng)))
    });
}

fn bench_fmo_predict(c: &mut Criterion) {
    let mut rng = rng_from_seed(21);
    let emb: Vec<Vec<f32>> = (0..4230)
        .map(|i| vec![(i % 31) as f32 / 31.0; 32])
        .collect();
    let mut fmo = Fmo::new(emb, &mut rng);
    let candidates: Vec<usize> = (0..512).collect();
    c.bench_function("fmo_predict_512_candidates", |b| {
        b.iter(|| black_box(fmo.predict_batch(&vec![1, 2, 3], [0.9, 0.8], &candidates)))
    });
}

fn bench_pareto(c: &mut Criterion) {
    let mut rng = rng_from_seed(22);
    use rand::Rng as _;
    let points: Vec<(f32, f32)> = (0..2048).map(|_| (rng.gen(), rng.gen())).collect();
    c.bench_function("pareto_front_2048", |b| {
        b.iter(|| black_box(pareto::pareto_front(black_box(&points))))
    });
    c.bench_function("nsga_ranks_512", |b| {
        b.iter(|| black_box(pareto::non_dominated_ranks(black_box(&points[..512]))))
    });
}

fn bench_search_micro(c: &mut Criterion) {
    // One micro search run per algorithm — the Fig. 4 pipeline in
    // miniature (tiny budget, tiny model).
    let mut rng = rng_from_seed(23);
    let (train_set, test_set) = DatasetSpec {
        train: 60,
        test: 40,
        noise: 0.25,
        ..DatasetSpec::new(SyntheticKind::Cifar10Like)
    }
    .generate();
    let mut base = resnet(20, 4, 10, (3, 8, 8), &mut rng);
    train(
        &mut base,
        &train_set,
        &TrainConfig { epochs: 1.0, ..Default::default() },
        Auxiliary::None,
        &mut rng,
    );
    let base_metrics = Metrics::measure(&mut base, &test_set);
    let space = StrategySpace::for_methods(&[MethodId::Ns, MethodId::Sfp]);
    let mut group = c.benchmark_group("search_micro");
    group.sample_size(10);
    group.bench_function("progressive", |b| {
        b.iter(|| {
            let mut rng = rng_from_seed(24);
            let ctx = SearchContext {
                space: &space,
                base_model: &base,
                base_metrics,
                search_train: &train_set,
                eval_set: &test_set,
                exec: ExecConfig { pretrain_epochs: 1.0, ..Default::default() },
                max_len: 2,
                gamma: 0.1,
                budget: SearchBudget::new(800),
            };
            let emb: Vec<Vec<f32>> =
                (0..space.len()).map(|i| vec![space.spec(i).ratio(), 0.5]).collect();
            black_box(progressive_search(&ctx, emb, &AutoMcConfig::default(), &mut rng))
        })
    });
    group.bench_function("random", |b| {
        b.iter(|| {
            let mut rng = rng_from_seed(25);
            let ctx = SearchContext {
                space: &space,
                base_model: &base,
                base_metrics,
                search_train: &train_set,
                eval_set: &test_set,
                exec: ExecConfig { pretrain_epochs: 1.0, ..Default::default() },
                max_len: 2,
                gamma: 0.1,
                budget: SearchBudget::new(800),
            };
            black_box(random_search(&ctx, &mut rng))
        })
    });
    group.finish();
}

criterion_group! {
    name = search;
    config = Criterion::default().sample_size(20);
    targets = bench_transr_epoch, bench_fmo_predict, bench_pareto, bench_search_micro
}
criterion_main!(search);
