//! Microbenchmarks of the substrate the experiments stand on: tensor
//! kernels, layer passes, and full-model forward/backward.
//!
//! The `parallel_kernels` group additionally times the kernels at
//! 1 thread vs. `auto` across several sizes (plus the pre-blocked `ikj`
//! reference kernel, for machine-speed normalisation) and writes
//! best-of-N timings to `BENCH_kernels.json` at the repo root for the
//! `kernel_gate` bin (check.sh's kernels stage) to compare against the
//! committed `BENCH_baseline.json`.
//!
//! Modes:
//! * default — full run: criterion display benches + 31-round timings.
//! * `AUTOMC_BENCH_QUICK=1` — skip the display benches, 15-round
//!   timings only (check.sh's regression gate).
//! * `--test` (cargo test) — every closure runs once as a smoke test.

use automc_json::{obj, ToJson};
use automc_models::resnet;
use automc_tensor::nn::{Conv2d, Layer};
use automc_tensor::par::{current_threads, with_threads};
use automc_tensor::{matmul, rng_from_seed, Tensor};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;

/// Quick mode: medians only, few iterations (the check.sh kernels stage).
fn quick_mode() -> bool {
    std::env::var("AUTOMC_BENCH_QUICK").map_or(false, |v| v != "0" && !v.is_empty())
}

fn bench_matmul(c: &mut Criterion) {
    if quick_mode() {
        return;
    }
    let mut rng = rng_from_seed(1);
    let a = Tensor::randn(&[64, 64], 1.0, &mut rng);
    let b = Tensor::randn(&[64, 64], 1.0, &mut rng);
    c.bench_function("matmul_64x64", |bch| {
        bch.iter(|| black_box(matmul(black_box(&a), black_box(&b))))
    });
}

fn bench_conv_forward_backward(c: &mut Criterion) {
    if quick_mode() {
        return;
    }
    let mut rng = rng_from_seed(2);
    let mut conv = Conv2d::new(8, 16, 3, 3, 1, 1, false, &mut rng);
    let x = Tensor::randn(&[8, 8, 8, 8], 1.0, &mut rng);
    c.bench_function("conv3x3_8c16_fwd", |bch| {
        bch.iter(|| black_box(conv.forward(black_box(&x), true)))
    });
    let y = conv.forward(&x, true);
    let g = Tensor::ones(y.dims());
    c.bench_function("conv3x3_8c16_bwd", |bch| {
        bch.iter(|| black_box(conv.backward(black_box(&g))))
    });
}

fn bench_resnet_pass(c: &mut Criterion) {
    if quick_mode() {
        return;
    }
    let mut rng = rng_from_seed(3);
    let mut net = resnet(20, 4, 10, (3, 8, 8), &mut rng);
    let x = Tensor::randn(&[16, 3, 8, 8], 1.0, &mut rng);
    c.bench_function("resnet20_batch16_fwd", |bch| {
        bch.iter(|| black_box(net.forward(black_box(&x), true)))
    });
    let y = net.forward(&x, true);
    let g = Tensor::ones(y.dims());
    c.bench_function("resnet20_batch16_bwd", |bch| {
        bch.iter(|| black_box(net.backward(black_box(&g))))
    });
}

fn bench_svd(c: &mut Criterion) {
    if quick_mode() {
        return;
    }
    let mut rng = rng_from_seed(4);
    let a = Tensor::randn(&[32, 72], 1.0, &mut rng);
    c.bench_function("truncated_svd_32x72_r8", |bch| {
        bch.iter(|| black_box(automc_tensor::linalg::truncated_svd(black_box(&a), 8)))
    });
}

/// Wall-clock of one run of `f`, in nanoseconds.
fn time_ns(f: impl FnOnce()) -> u64 {
    let t = Instant::now();
    f();
    t.elapsed().as_nanos() as u64
}

/// Square matmul sizes timed in both thread modes. 48 sits below the
/// adaptive parallel threshold (auto must equal serial), 192 and 320 sit
/// above it — together they check that `auto` never loses to serial at
/// any size.
const MATMUL_SIZES: [usize; 3] = [48, 192, 320];

/// The pre-blocked serial `ikj` kernel, kept verbatim as an in-process
/// reference. The gate compares ratios against this instead of absolute
/// nanoseconds: shared runners drift ~2x in absolute speed between runs,
/// but the packed/ikj ratio on the same matrices in the same process is
/// stable.
fn reference_ikj(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let n = b.dims()[1];
    let mut c = Tensor::zeros(&[m, n]);
    let (ad, bd) = (a.data(), b.data());
    let cd = c.data_mut();
    for i in 0..m {
        for p in 0..k {
            let av = ad[i * k + p];
            let b_row = &bd[p * n..(p + 1) * n];
            let c_row = &mut cd[i * n..(i + 1) * n];
            for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                *cv += av * bv;
            }
        }
    }
    c
}

fn bench_parallel_kernels(c: &mut Criterion) {
    let mut rng = rng_from_seed(5);
    let mats: Vec<(usize, Tensor, Tensor)> = MATMUL_SIZES
        .iter()
        .map(|&s| {
            (
                s,
                Tensor::randn(&[s, s], 1.0, &mut rng),
                Tensor::randn(&[s, s], 1.0, &mut rng),
            )
        })
        .collect();
    let mut conv = Conv2d::new(8, 16, 3, 3, 1, 1, false, &mut rng);
    let x = Tensor::randn(&[8, 8, 12, 12], 1.0, &mut rng);
    let y = conv.forward(&x, true);
    let g = Tensor::ones(y.dims());

    if !quick_mode() {
        for (tag, threads) in [("t1", 1), ("auto", 0)] {
            let run = move |f: &mut dyn FnMut()| {
                if threads == 1 {
                    with_threads(1, || f());
                } else {
                    f();
                }
            };
            for (s, a, b) in &mats {
                c.bench_function(format!("par_matmul_{s}_{tag}"), |bch| {
                    bch.iter(|| run(&mut || drop(black_box(matmul(black_box(a), black_box(b))))))
                });
            }
            c.bench_function(format!("par_conv3x3_b8_fwd_{tag}"), |bch| {
                bch.iter(|| run(&mut || drop(black_box(conv.forward(black_box(&x), true)))))
            });
            c.bench_function(format!("par_conv3x3_b8_bwd_{tag}"), |bch| {
                bch.iter(|| run(&mut || drop(black_box(conv.backward(black_box(&g))))))
            });
        }
    }

    // Machine-readable timings for the kernel_gate regression check. Keep
    // the sample count tiny under `cargo test` (bench targets double as
    // smoke tests there) and small in quick mode.
    //
    // Two measurement choices defend the gate against the ~2x bursty
    // noise of shared runners: every (kernel, mode) pair is sampled once
    // per *round* (interleaved, so a noise burst degrades all pairs
    // instead of poisoning one pair's whole block), and the reported
    // statistic is the best (minimum) sample — the least-disturbed run.
    let test_mode = std::env::args().any(|arg| arg == "--test");
    let iters = if test_mode {
        3
    } else if quick_mode() {
        15
    } else {
        31
    };
    let mut samples: Vec<(String, &'static str, usize, Vec<u64>)> = Vec::new();
    // Fixed row order: ref, then per mode: matmuls + conv fwd/bwd.
    samples.push(("ref_ikj_192".to_string(), "ref", 1, Vec::new()));
    for (tag, threads) in [("t1", 1usize), ("auto", 0)] {
        let eff = if threads == 1 { 1 } else { current_threads() };
        for (s, _, _) in &mats {
            samples.push((format!("matmul_{s}"), tag, eff, Vec::new()));
        }
        samples.push(("conv3x3_b8_fwd".to_string(), tag, eff, Vec::new()));
        samples.push(("conv3x3_b8_bwd".to_string(), tag, eff, Vec::new()));
    }
    for _ in 0..iters {
        let mut round: Vec<u64> = Vec::with_capacity(samples.len());
        {
            let (_, a, b) = &mats[1]; // the 192 pair
            round.push(time_ns(|| drop(black_box(reference_ikj(black_box(a), black_box(b))))));
        }
        for (_, threads) in [("t1", 1usize), ("auto", 0)] {
            let run = |f: &mut dyn FnMut() -> u64| -> u64 {
                if threads == 1 {
                    with_threads(1, || f())
                } else {
                    f()
                }
            };
            for (_, a, b) in &mats {
                round.push(
                    run(&mut || time_ns(|| drop(black_box(matmul(black_box(a), black_box(b)))))),
                );
            }
            round.push(run(&mut || time_ns(|| drop(black_box(conv.forward(black_box(&x), true))))));
            round.push(run(&mut || time_ns(|| drop(black_box(conv.backward(black_box(&g)))))));
        }
        for (slot, ns) in samples.iter_mut().zip(&round) {
            slot.3.push(*ns);
        }
    }
    let entries: Vec<_> = samples
        .iter()
        .map(|(kernel, mode, threads, ns)| {
            let best = ns.iter().copied().min().unwrap_or(0);
            obj(vec![
                ("kernel", kernel.as_str().to_json()),
                ("mode", (*mode).to_json()),
                ("threads", (*threads).to_json()),
                ("best_ns", best.to_json()),
            ])
        })
        .collect();
    let report = obj(vec![
        ("bench", "parallel_kernels".to_json()),
        ("iters", iters.to_json()),
        ("results", automc_json::Value::Arr(entries)),
    ]);
    // Repo root, where the committed BENCH_baseline.json lives.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_kernels.json");
    match std::fs::write(&path, report.to_string_pretty()) {
        Ok(()) => eprintln!("[bench] wrote {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

criterion_group! {
    name = substrate;
    config = Criterion::default().sample_size(20);
    targets = bench_matmul, bench_conv_forward_backward, bench_resnet_pass, bench_svd
}
criterion_group! {
    name = parallel_kernels;
    config = Criterion::default().sample_size(20);
    targets = bench_parallel_kernels
}
criterion_main!(substrate, parallel_kernels);
