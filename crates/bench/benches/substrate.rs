//! Microbenchmarks of the substrate the experiments stand on: tensor
//! kernels, layer passes, and full-model forward/backward.
//!
//! The `parallel_kernels` group additionally times the threaded kernels
//! at 1 thread vs. the full pool and writes the raw medians to
//! `target/automc-results/BENCH_kernels.json` for machine consumption.

use automc_json::{obj, ToJson};
use automc_models::resnet;
use automc_tensor::nn::{Conv2d, Layer};
use automc_tensor::par::{current_threads, with_threads};
use automc_tensor::{matmul, rng_from_seed, Tensor};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;

fn bench_matmul(c: &mut Criterion) {
    let mut rng = rng_from_seed(1);
    let a = Tensor::randn(&[64, 64], 1.0, &mut rng);
    let b = Tensor::randn(&[64, 64], 1.0, &mut rng);
    c.bench_function("matmul_64x64", |bch| {
        bch.iter(|| black_box(matmul(black_box(&a), black_box(&b))))
    });
}

fn bench_conv_forward_backward(c: &mut Criterion) {
    let mut rng = rng_from_seed(2);
    let mut conv = Conv2d::new(8, 16, 3, 3, 1, 1, false, &mut rng);
    let x = Tensor::randn(&[8, 8, 8, 8], 1.0, &mut rng);
    c.bench_function("conv3x3_8c16_fwd", |bch| {
        bch.iter(|| black_box(conv.forward(black_box(&x), true)))
    });
    let y = conv.forward(&x, true);
    let g = Tensor::ones(y.dims());
    c.bench_function("conv3x3_8c16_bwd", |bch| {
        bch.iter(|| black_box(conv.backward(black_box(&g))))
    });
}

fn bench_resnet_pass(c: &mut Criterion) {
    let mut rng = rng_from_seed(3);
    let mut net = resnet(20, 4, 10, (3, 8, 8), &mut rng);
    let x = Tensor::randn(&[16, 3, 8, 8], 1.0, &mut rng);
    c.bench_function("resnet20_batch16_fwd", |bch| {
        bch.iter(|| black_box(net.forward(black_box(&x), true)))
    });
    let y = net.forward(&x, true);
    let g = Tensor::ones(y.dims());
    c.bench_function("resnet20_batch16_bwd", |bch| {
        bch.iter(|| black_box(net.backward(black_box(&g))))
    });
}

fn bench_svd(c: &mut Criterion) {
    let mut rng = rng_from_seed(4);
    let a = Tensor::randn(&[32, 72], 1.0, &mut rng);
    c.bench_function("truncated_svd_32x72_r8", |bch| {
        bch.iter(|| black_box(automc_tensor::linalg::truncated_svd(black_box(&a), 8)))
    });
}

/// Median wall-clock of `iters` runs of `f`, in nanoseconds.
fn median_ns(iters: usize, mut f: impl FnMut()) -> u64 {
    let mut samples: Vec<u64> = (0..iters)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn bench_parallel_kernels(c: &mut Criterion) {
    let mut rng = rng_from_seed(5);
    let a = Tensor::randn(&[192, 192], 1.0, &mut rng);
    let b = Tensor::randn(&[192, 192], 1.0, &mut rng);
    let mut conv = Conv2d::new(8, 16, 3, 3, 1, 1, false, &mut rng);
    let x = Tensor::randn(&[8, 8, 12, 12], 1.0, &mut rng);
    let y = conv.forward(&x, true);
    let g = Tensor::ones(y.dims());

    for (tag, threads) in [("t1", 1), ("auto", 0)] {
        let run = move |f: &mut dyn FnMut()| {
            if threads == 1 {
                with_threads(1, || f());
            } else {
                f();
            }
        };
        c.bench_function(format!("par_matmul_192_{tag}"), |bch| {
            bch.iter(|| run(&mut || drop(black_box(matmul(black_box(&a), black_box(&b))))))
        });
        c.bench_function(format!("par_conv3x3_b8_fwd_{tag}"), |bch| {
            bch.iter(|| run(&mut || drop(black_box(conv.forward(black_box(&x), true)))))
        });
        c.bench_function(format!("par_conv3x3_b8_bwd_{tag}"), |bch| {
            bch.iter(|| run(&mut || drop(black_box(conv.backward(black_box(&g))))))
        });
    }

    // Machine-readable medians for the speedup tracking script. Keep the
    // sample count tiny under `cargo test` (bench targets double as smoke
    // tests there).
    let test_mode = std::env::args().any(|arg| arg == "--test");
    let iters = if test_mode { 3 } else { 31 };
    let mut entries = Vec::new();
    for (tag, threads) in [("t1", 1usize), ("auto", 0)] {
        let eff_threads = if threads == 1 { 1 } else { current_threads() };
        let measure = |f: &mut dyn FnMut()| -> u64 {
            if threads == 1 {
                with_threads(1, || median_ns(iters, &mut *f))
            } else {
                median_ns(iters, &mut *f)
            }
        };
        let mm = measure(&mut || drop(black_box(matmul(black_box(&a), black_box(&b)))));
        let cf = measure(&mut || drop(black_box(conv.forward(black_box(&x), true))));
        let cb = measure(&mut || drop(black_box(conv.backward(black_box(&g)))));
        for (name, ns) in
            [("matmul_192", mm), ("conv3x3_b8_fwd", cf), ("conv3x3_b8_bwd", cb)]
        {
            entries.push(obj(vec![
                ("kernel", name.to_json()),
                ("mode", tag.to_json()),
                ("threads", eff_threads.to_json()),
                ("median_ns", ns.to_json()),
            ]));
        }
    }
    let report = obj(vec![
        ("bench", "parallel_kernels".to_json()),
        ("iters", iters.to_json()),
        ("results", automc_json::Value::Arr(entries)),
    ]);
    let dir = automc_bench::cache::cache_dir();
    let path = dir.join("BENCH_kernels.json");
    if std::fs::create_dir_all(&dir).is_ok() {
        match std::fs::write(&path, report.to_string_pretty()) {
            Ok(()) => eprintln!("[bench] wrote {}", path.display()),
            Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
        }
    }
}

criterion_group! {
    name = substrate;
    config = Criterion::default().sample_size(20);
    targets = bench_matmul, bench_conv_forward_backward, bench_resnet_pass, bench_svd
}
criterion_group! {
    name = parallel_kernels;
    config = Criterion::default().sample_size(20);
    targets = bench_parallel_kernels
}
criterion_main!(substrate, parallel_kernels);
