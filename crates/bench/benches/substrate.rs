//! Microbenchmarks of the substrate the experiments stand on: tensor
//! kernels, layer passes, and full-model forward/backward.

use automc_models::resnet;
use automc_tensor::nn::{Conv2d, Layer};
use automc_tensor::{matmul, rng_from_seed, Tensor};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut rng = rng_from_seed(1);
    let a = Tensor::randn(&[64, 64], 1.0, &mut rng);
    let b = Tensor::randn(&[64, 64], 1.0, &mut rng);
    c.bench_function("matmul_64x64", |bch| {
        bch.iter(|| black_box(matmul(black_box(&a), black_box(&b))))
    });
}

fn bench_conv_forward_backward(c: &mut Criterion) {
    let mut rng = rng_from_seed(2);
    let mut conv = Conv2d::new(8, 16, 3, 3, 1, 1, false, &mut rng);
    let x = Tensor::randn(&[8, 8, 8, 8], 1.0, &mut rng);
    c.bench_function("conv3x3_8c16_fwd", |bch| {
        bch.iter(|| black_box(conv.forward(black_box(&x), true)))
    });
    let y = conv.forward(&x, true);
    let g = Tensor::ones(y.dims());
    c.bench_function("conv3x3_8c16_bwd", |bch| {
        bch.iter(|| black_box(conv.backward(black_box(&g))))
    });
}

fn bench_resnet_pass(c: &mut Criterion) {
    let mut rng = rng_from_seed(3);
    let mut net = resnet(20, 4, 10, (3, 8, 8), &mut rng);
    let x = Tensor::randn(&[16, 3, 8, 8], 1.0, &mut rng);
    c.bench_function("resnet20_batch16_fwd", |bch| {
        bch.iter(|| black_box(net.forward(black_box(&x), true)))
    });
    let y = net.forward(&x, true);
    let g = Tensor::ones(y.dims());
    c.bench_function("resnet20_batch16_bwd", |bch| {
        bch.iter(|| black_box(net.backward(black_box(&g))))
    });
}

fn bench_svd(c: &mut Criterion) {
    let mut rng = rng_from_seed(4);
    let a = Tensor::randn(&[32, 72], 1.0, &mut rng);
    c.bench_function("truncated_svd_32x72_r8", |bch| {
        bch.iter(|| black_box(automc_tensor::linalg::truncated_svd(black_box(&a), 8)))
    });
}

criterion_group! {
    name = substrate;
    config = Criterion::default().sample_size(20);
    targets = bench_matmul, bench_conv_forward_backward, bench_resnet_pass, bench_svd
}
criterion_main!(substrate);
