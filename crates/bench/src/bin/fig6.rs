//! Reproduce **Figure 6**: pretty-print the best compression schemes
//! AutoMC searched on Exp1/Exp2 (strategy sequences with their
//! hyperparameter settings). Reuses Table 2's cached searches.
//!
//! Run: `cargo run --release -p automc-bench --bin fig6 [--seed N]`

use automc_bench::harness::{automc_embeddings, best_scheme_in_band, run_search, Algo};
use automc_bench::scale::{exp1, exp2, prepare_task};
use automc_compress::StrategySpace;

fn main() {
    let seed = automc_bench::parse_args().seed;
    println!("Figure 6 reproduction (seed {seed}) — AutoMC's searched schemes\n");
    let space = StrategySpace::full();
    for exp in [exp1(), exp2()] {
        let task = prepare_task(&exp, seed);
        let emb = automc_embeddings(&space, "full", seed, false, true, true);
        let history = run_search(Algo::AutoMc, &task, &space, Some(&emb), seed, false, exp.name);
        println!("### {} ({}) ###", exp.name, exp.model);
        for (band, lo, hi) in [("PR≈40%", exp.gamma, 0.55f32), ("PR≈70%", 0.55, 0.90)] {
            match best_scheme_in_band(&history, lo, hi) {
                Some(scheme) => {
                    println!("  best scheme in {band} band:");
                    for (step, &sid) in scheme.iter().enumerate() {
                        println!("    step {}: {}", step + 1, space.spec(sid));
                    }
                }
                None => println!("  best scheme in {band} band: (none found)"),
            }
        }
        // The paper adds make-up fine-tuning at the end of each sequence so
        // total fine-tuning epochs are comparable across schemes.
        println!("  (+ make-up fine-tuning appended at execution time)\n");
    }
}
