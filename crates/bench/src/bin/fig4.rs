//! Reproduce **Figure 4**: for each AutoML algorithm on Exp1/Exp2, the
//! best-feasible-accuracy-vs-search-budget curve and the final Pareto
//! front on `[PR, Acc]`. Reuses Table 2's cached searches.
//!
//! Run: `cargo run --release -p automc-bench --bin fig4 [--seed N] [--fresh]`

use automc_bench::harness::{automc_embeddings, run_search, Algo};
use automc_bench::report::{render_front, render_series};
use automc_bench::scale::{exp1, exp2, prepare_task};
use automc_compress::StrategySpace;

fn main() {
    let args = automc_bench::parse_args();
    let (seed, fresh) = (args.seed, args.fresh);
    println!("Figure 4 reproduction (seed {seed})");
    let space = StrategySpace::full();
    for exp in [exp1(), exp2()] {
        println!("\n### {} ###", exp.name);
        let task = prepare_task(&exp, seed);
        let emb = automc_embeddings(&space, "full", seed, false, true, true);
        for algo in Algo::ALL {
            let history = run_search(algo, &task, &space, Some(&emb), seed, fresh, exp.name);
            let curve = history.best_acc_curve(exp.gamma);
            // Thin the curve to ≤ 30 points for readability.
            let step = (curve.len() / 30).max(1);
            let thin: Vec<(u64, f32)> = curve
                .iter()
                .step_by(step)
                .chain(curve.last().into_iter())
                .copied()
                .collect();
            print!("{}", render_series(&format!("{} best-accuracy curve", algo.name()), &thin));
            let front: Vec<(f32, f32)> = history
                .pareto_indices(exp.gamma)
                .into_iter()
                .map(|i| {
                    let r = &history.records[i];
                    (r.pr * 100.0, r.acc * 100.0)
                })
                .collect();
            print!("{}", render_front(algo.name(), &front));
        }
    }
}
