//! Reproduce **Table 3**: the transfer study. Schemes searched on
//! ResNet-56 / VGG-16 are re-executed on ResNet-20/164 and VGG-13/19
//! (target pruning rate 40%); the human-designed methods run directly on
//! every model. Output format matches the paper: `PR(%) / FR(%) / Acc(%)`.
//!
//! Reuses Table 2's cached searches when available.
//!
//! Run: `cargo run --release -p automc-bench --bin table3 [--seed N] [--fresh]`

use automc_bench::harness::{
    automc_embeddings, best_scheme_in_band, final_row, method_row_quick, run_fingerprint,
    run_search, Algo, FinalRow,
};
use automc_bench::scale::{exp1, exp2, prepare_task, prepare_task_for_model, transfer_targets};
use automc_bench::{cache, parse_args};
use automc_compress::{MethodId, StrategySpace};
use automc_models::ModelKind;

fn model_label(kind: ModelKind, exp_name: &str) -> String {
    let data = if exp_name == "exp1" { "CIFAR-10-like" } else { "CIFAR-100-like" };
    format!("{kind} on {data}")
}

fn main() {
    let args = parse_args();
    let (seed, fresh) = (args.seed, args.fresh);
    println!("Table 3 reproduction (seed {seed}) — target pruning rate 40%");
    println!("cells: PR(%) / FR(%) / Acc(%)\n");
    let space = StrategySpace::full();

    for exp in [exp1(), exp2()] {
        let emb = automc_embeddings(&space, "full", seed, false, true, true);
        let source_task = prepare_task(&exp, seed);
        // All model targets: the transfer pair plus the source itself.
        let mut targets = vec![exp.model];
        targets.extend(transfer_targets(&exp));
        targets.sort_by_key(|k| match k {
            ModelKind::ResNet(d) | ModelKind::Vgg(d) => *d,
        });

        // Searched schemes per algorithm (from the source-model search).
        let schemes: Vec<(String, Option<automc_compress::Scheme>)> = Algo::ALL
            .iter()
            .map(|&algo| {
                let history =
                    run_search(algo, &source_task, &space, Some(&emb), seed, false, exp.name);
                (algo.name().to_string(), best_scheme_in_band(&history, exp.gamma, 0.55))
            })
            .collect();

        for target in targets {
            let key = format!("table3_{}_{}_s{seed}", exp.name, target).replace(['-', ' '], "_");
            let fp = run_fingerprint(&exp, seed);
            let rows: Vec<FinalRow> = if let Some(rows) = (!fresh)
                .then(|| cache::load::<Vec<FinalRow>>(&key, &fp))
                .flatten()
            {
                eprintln!("[cache] reusing {key}");
                rows
            } else {
                let task = prepare_task_for_model(&exp, target, seed);
                let mut rows = Vec::new();
                for method in MethodId::ALL {
                    eprintln!("[table3] {} on {target}…", method.name());
                    rows.push(method_row_quick(&task, method, 0.4, seed, fresh));
                }
                for (name, scheme) in &schemes {
                    match scheme {
                        Some(s) => {
                            eprintln!("[table3] transferring {name}'s scheme to {target}…");
                            rows.push(final_row(name, s, &task, &space, seed));
                        }
                        None => rows.push(FinalRow {
                            algorithm: format!("{name} (no feasible scheme)"),
                            params: 0,
                            pr: 0.0,
                            flops: 0,
                            fr: 0.0,
                            acc: 0.0,
                            inc: 0.0,
                            scheme: None,
                        }),
                    }
                }
                cache::store(&key, &fp, &rows);
                rows
            };
            println!("== {} ==", model_label(target, exp.name));
            for r in &rows {
                println!("{:<28} {:>6.2} / {:>6.2} / {:>6.2}", r.algorithm, r.pr, r.fr, r.acc);
            }
            println!();
        }
    }
}
