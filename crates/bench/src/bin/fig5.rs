//! Reproduce **Figure 5**: Pareto fronts of the four AutoMC ablations
//! against full AutoMC on Exp1/Exp2.
//!
//! * `AutoMC-KG` — drop the knowledge-graph embedding (random init,
//!   experience refinement only);
//! * `AutoMC-NNexp` — drop the experience refinement (pure TransR);
//! * `AutoMC-MultipleSource` — restrict the space to LeGR strategies;
//! * `AutoMC-ProgressiveSearch` — replace the progressive search with the
//!   RL controller (identical budget/space).
//!
//! Run: `cargo run --release -p automc-bench --bin fig5 [--seed N] [--fresh]`

use automc_bench::harness::{automc_embeddings, run_fingerprint, run_search, Algo};
use automc_bench::report::render_front;
use automc_bench::scale::{exp1, exp2, prepare_task};
use automc_bench::{cache, parse_args};
use automc_compress::{MethodId, StrategySpace};
use automc_core::{progressive_search, AutoMcConfig, SearchBudget, SearchContext, SearchHistory};
use automc_tensor::rng_from_seed;

fn front_of(history: &SearchHistory, gamma: f32) -> Vec<(f32, f32)> {
    history
        .pareto_indices(gamma)
        .into_iter()
        .map(|i| {
            let r = &history.records[i];
            (r.pr * 100.0, r.acc * 100.0)
        })
        .collect()
}

fn main() {
    let args = parse_args();
    let (seed, fresh) = (args.seed, args.fresh);
    println!("Figure 5 reproduction (seed {seed})");
    let full_space = StrategySpace::full();
    let legr_space = StrategySpace::for_methods(&[MethodId::Legr]);

    // Exp1 by default; pass --both to add Exp2 (its ablation searches are
    // the most expensive runs in the whole reproduction).
    let both = std::env::args().any(|a| a == "--both");
    let exps = if both { vec![exp1(), exp2()] } else { vec![exp1()] };
    for exp in exps {
        println!("\n### {} ###", exp.name);
        let task = prepare_task(&exp, seed);

        let run_variant = |label: &str,
                           space: &StrategySpace,
                           space_tag: &str,
                           use_kg: bool,
                           use_exp: bool,
                           fresh: bool|
         -> SearchHistory {
            let key = format!("fig5_{}_{}_s{seed}", exp.name, label);
            let fp = run_fingerprint(&exp, seed);
            cache::load_or(&key, &fp, fresh, || {
                eprintln!("[fig5] running {label} on {}…", exp.name);
                let emb = automc_embeddings(space, space_tag, seed, false, use_kg, use_exp);
                let mut rng = rng_from_seed(seed ^ label.len() as u64);
                let mut probe = task.base_model.clone_net();
                let base_metrics = automc_compress::Metrics {
                    acc: automc_models::train::evaluate(&mut probe, &task.search_eval),
                    ..task.base_metrics
                };
                let ctx = SearchContext {
                    space,
                    base_model: &task.base_model,
                    base_metrics,
                    search_train: &task.search_sample,
                    eval_set: &task.search_eval,
                    exec: task.exec,
                    max_len: 5,
                    gamma: exp.gamma,
                    budget: SearchBudget::new(exp.budget_units),
                };
                progressive_search(&ctx, emb, &AutoMcConfig::default(), &mut rng)
            })
        };

        // Full AutoMC — reuse the Table 2 run.
        let emb = automc_embeddings(&full_space, "full", seed, false, true, true);
        let automc = run_search(Algo::AutoMc, &task, &full_space, Some(&emb), seed, false, exp.name);
        print!("{}", render_front("AutoMC", &front_of(&automc, exp.gamma)));

        let no_kg = run_variant("nokg", &full_space, "full", false, true, fresh);
        print!("{}", render_front("AutoMC-KG", &front_of(&no_kg, exp.gamma)));

        let no_exp = run_variant("noexp", &full_space, "full", true, false, fresh);
        print!("{}", render_front("AutoMC-NNexp", &front_of(&no_exp, exp.gamma)));

        let single = run_variant("single", &legr_space, "legr", true, true, fresh);
        print!("{}", render_front("AutoMC-MultipleSource", &front_of(&single, exp.gamma)));

        // Non-progressive variant = the RL controller on the same problem.
        let rl = run_search(Algo::Rl, &task, &full_space, None, seed, false, exp.name);
        print!("{}", render_front("AutoMC-ProgressiveSearch", &front_of(&rl, exp.gamma)));
    }
}
