//! Reproduce **Table 2**: compression results of ResNet-56 on the
//! CIFAR-10 stand-in and VGG-16 on the CIFAR-100 stand-in, at the
//! PR ≈ 40% and PR ≈ 70% bands, for the six human-designed methods and
//! the four AutoML algorithms.
//!
//! Run: `cargo run --release -p automc-bench --bin table2 [--seed N] [--fresh]`

use automc_bench::harness::table2_rows;
use automc_bench::report::render_rows;
use automc_bench::scale::{exp1, exp2};

fn main() {
    let args = automc_bench::parse_args();
    let (seed, fresh) = (args.seed, args.fresh);
    println!("Table 2 reproduction (seed {seed})");
    for exp in [exp1(), exp2()] {
        let label = match exp.name {
            "exp1" => "ResNet-56 on CIFAR-10-like",
            _ => "VGG-16 on CIFAR-100-like",
        };
        let (band40, band70) = table2_rows(&exp, seed, fresh);
        println!("{}", render_rows(&format!("{label} — PR ≈ 40%"), &band40));
        println!("{}", render_rows(&format!("{label} — PR ≈ 70%"), &band70));
    }
}
