//! Reproduce **Table 2**: compression results of ResNet-56 on the
//! CIFAR-10 stand-in and VGG-16 on the CIFAR-100 stand-in, at the
//! PR ≈ 40% and PR ≈ 70% bands, for the six human-designed methods and
//! the four AutoML algorithms.
//!
//! Run: `cargo run --release -p automc-bench --bin table2 [--seed N] [--fresh]`
//!
//! `--smoke` runs the same pipeline at the smallest scale and prints
//! `SMOKE OK` on a structurally valid result — the CI fault-injection
//! stage runs this under a seeded `AUTOMC_FAULTS` plan and requires the
//! run to complete (degraded where faults hit, but valid).

use automc_bench::harness::{run_fingerprint, table2_rows};
use automc_bench::report::render_rows;
use automc_bench::scale::{exp1, exp2, smoke};
use automc_bench::{cache, parse_args};
use automc_core::SearchHistory;

fn main() {
    let args = parse_args();
    let (seed, fresh) = (args.seed, args.fresh);
    if args.smoke {
        run_smoke(seed, fresh);
        return;
    }
    println!("Table 2 reproduction (seed {seed})");
    for exp in [exp1(), exp2()] {
        let label = match exp.name {
            "exp1" => "ResNet-56 on CIFAR-10-like",
            _ => "VGG-16 on CIFAR-100-like",
        };
        let (band40, band70) = table2_rows(&exp, seed, fresh);
        println!("{}", render_rows(&format!("{label} — PR ≈ 40%"), &band40));
        println!("{}", render_rows(&format!("{label} — PR ≈ 70%"), &band70));
    }
}

/// The smallest end-to-end run: the full Table 2 pipeline on the smoke
/// scale, with structural validation. Prints `SMOKE OK` only if every
/// expected row is present — faulted evaluations may degrade individual
/// rows, but the table itself must always be produced.
fn run_smoke(seed: u64, fresh: bool) {
    let exp = smoke();
    println!("Table 2 smoke run (seed {seed}, scale {})", exp.name);
    let (band40, band70) = table2_rows(&exp, seed, fresh);
    println!("{}", render_rows("smoke — PR ≈ 40%", &band40));
    println!("{}", render_rows("smoke — PR ≈ 70%", &band70));

    // Structure: baseline + 6 methods + 4 algorithms / 6 methods + 4.
    if band40.len() != 11 || band70.len() != 10 || band40[0].algorithm != "baseline" {
        eprintln!(
            "SMOKE FAILED: unexpected table shape ({} / {} rows)",
            band40.len(),
            band70.len()
        );
        std::process::exit(1);
    }

    // Report how the supervision layer handled faulted evaluations.
    let fp = run_fingerprint(&exp, seed);
    let mut evals = 0usize;
    let mut infeasible = 0usize;
    for algo in ["automc", "evolution", "rl", "random"] {
        let key = format!("{}_s{seed}_{algo}", exp.name);
        if let Some(h) = cache::load::<SearchHistory>(&key, &fp) {
            evals += h.records.len();
            infeasible += h.failed_count();
        }
    }
    println!(
        "smoke: {evals} evaluations recorded, {infeasible} marked infeasible by supervision"
    );
    println!("SMOKE OK");
}
