//! Reproduce **Table 2**: compression results of ResNet-56 on the
//! CIFAR-10 stand-in and VGG-16 on the CIFAR-100 stand-in, at the
//! PR ≈ 40% and PR ≈ 70% bands, for the six human-designed methods and
//! the four AutoML algorithms.
//!
//! Run: `cargo run --release -p automc-bench --bin table2 [--seed N] [--fresh]`
//!
//! `--workers N` shards the grid across N supervised worker processes
//! (heartbeats, hang detection, retry/backoff, graceful degradation —
//! see `automc_bench::orchestrator`); the merged report is byte-identical
//! to the in-process run. `--worker SPEC` is the orchestrator's internal
//! self-exec entry point.
//!
//! `--smoke` runs the same pipeline at the smallest scale and prints
//! `SMOKE OK` on a structurally valid result — the CI fault-injection
//! stage runs this under a seeded `AUTOMC_FAULTS` plan and requires the
//! run to complete (degraded where faults hit, but valid).

use automc_bench::harness::{run_fingerprint, table2_rows};
use automc_bench::report::render_rows;
use automc_bench::scale::{exp1, exp2, smoke, ExperimentScale};
use automc_bench::{orchestrator, parse_args, BenchArgs};
use automc_core::SearchHistory;

fn main() {
    let args = parse_args();
    if let Some(spec) = &args.worker {
        std::process::exit(orchestrator::run_worker(&args, spec));
    }
    let (seed, fresh) = (args.seed, args.fresh);
    if args.smoke {
        run_smoke(&args);
        return;
    }
    println!("Table 2 reproduction (seed {seed})");
    for exp in [exp1(), exp2()] {
        let label = match exp.name {
            "exp1" => "ResNet-56 on CIFAR-10-like",
            _ => "VGG-16 on CIFAR-100-like",
        };
        let (band40, band70) = rows_for(&exp, &args, seed, fresh);
        println!("{}", render_rows(&format!("{label} — PR ≈ 40%"), &band40));
        println!("{}", render_rows(&format!("{label} — PR ≈ 70%"), &band70));
    }
}

/// In-process pool (`--workers 0`, the default) or supervised
/// multi-process sharding (`--workers N`) — identical results either way.
fn rows_for(
    exp: &ExperimentScale,
    args: &BenchArgs,
    seed: u64,
    fresh: bool,
) -> (Vec<automc_bench::harness::FinalRow>, Vec<automc_bench::harness::FinalRow>) {
    if args.workers > 0 {
        orchestrator::table2_rows_sharded(exp, args)
    } else {
        table2_rows(exp, seed, fresh)
    }
}

/// The smallest end-to-end run: the full Table 2 pipeline on the smoke
/// scale, with structural validation. Prints `SMOKE OK` only if every
/// expected row is present — faulted evaluations may degrade individual
/// rows, but the table itself must always be produced.
fn run_smoke(args: &BenchArgs) {
    let (seed, fresh) = (args.seed, args.fresh);
    let exp = smoke();
    println!("Table 2 smoke run (seed {seed}, scale {})", exp.name);
    let (band40, band70) = rows_for(&exp, args, seed, fresh);
    println!("{}", render_rows("smoke — PR ≈ 40%", &band40));
    println!("{}", render_rows("smoke — PR ≈ 70%", &band70));

    // Structure: baseline + 6 methods + 4 algorithms / 6 methods + 4.
    if band40.len() != 11 || band70.len() != 10 || band40[0].algorithm != "baseline" {
        eprintln!(
            "SMOKE FAILED: unexpected table shape ({} / {} rows)",
            band40.len(),
            band70.len()
        );
        std::process::exit(1);
    }

    // Report how the supervision layer handled faulted evaluations. In a
    // sharded run each search history lives in its owning worker's
    // sub-store, so look across all of them.
    let fp = run_fingerprint(&exp, seed);
    let mut evals = 0usize;
    let mut infeasible = 0usize;
    for algo in ["automc", "evolution", "rl", "random"] {
        let key = format!("{}_s{seed}_{algo}", exp.name);
        if let Some(h) = orchestrator::load_result_any::<SearchHistory>(&key, &fp) {
            evals += h.records.len();
            infeasible += h.failed_count();
        }
    }
    println!(
        "smoke: {evals} evaluations recorded, {infeasible} marked infeasible by supervision"
    );
    println!("SMOKE OK");
}
