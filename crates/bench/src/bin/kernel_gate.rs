//! Kernel benchmark regression gate (check.sh's `kernels` stage).
//!
//! Reads the medians the substrate bench just wrote to
//! `BENCH_kernels.json` and compares them against the committed
//! `BENCH_baseline.json`, both at the repo root.
//!
//! Shared runners drift ~2x in *absolute* speed between runs, so every
//! cross-run comparison is **machine-normalised**: each kernel median is
//! divided by the median of the in-process reference kernel
//! (`ref_ikj_192`, the pre-blocked serial `ikj` matmul measured in the
//! same bench process on the same matrices) before being compared to the
//! same quotient from the baseline. Same-run ratios (`auto` vs `t1`,
//! packed vs reference) need no normalisation.
//!
//! The gate fails (exit 1) when:
//!
//! * a gated kernel's normalised 1-thread median regressed more than
//!   [`TOLERANCE`] over its normalised baseline, or
//! * `auto` thread mode is more than [`TOLERANCE`] slower than forcing
//!   1 thread for any benched kernel (the adaptive threshold must never
//!   make `auto` lose to serial), or
//! * pooled `matmul_192` at 1 thread is less than
//!   [`MIN_MATMUL_SPEEDUP`] faster than the pre-blocked `ikj` reference
//!   measured in the same run.
//!
//! `AUTOMC_BENCH_REBASE=1` rewrites the baseline from the current
//! results instead of checking (keeping the informational `pre_pr`
//! section), for use after an intentional kernel change.

use automc_json::{obj, parse, ToJson, Value};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::exit;

/// Allowed normalised slowdown before the gate trips. Generous because
/// even ratios carry some noise on shared machines; genuine kernel
/// regressions (a lost vectorisation, an accidental extra pass)
/// overshoot this immediately.
const TOLERANCE: f64 = 1.15;

/// Kernels whose normalised 1-thread medians are gated.
const GATED: [&str; 3] = ["matmul_192", "conv3x3_b8_fwd", "conv3x3_b8_bwd"];

/// Minimum same-run speedup of pooled `matmul_192` (1 thread) over the
/// pre-blocked serial `ikj` reference kernel.
const MIN_MATMUL_SPEEDUP: f64 = 1.4;

/// The in-process reference kernel's (kernel, mode) key.
const REF_KEY: (&str, &str) = ("ref_ikj_192", "ref");

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// `(kernel, mode) -> best_ns` from a bench report's `results` array
/// (falling back to `median_ns` for older reports, e.g. the `pre_pr`
/// section recorded before the interleaved best-of-N scheme).
fn medians(report: &Value) -> BTreeMap<(String, String), f64> {
    let mut out = BTreeMap::new();
    let results = report
        .get("results")
        .and_then(Value::as_arr)
        .unwrap_or_default();
    for r in results {
        let kernel = r.get("kernel").and_then(Value::as_str);
        let mode = r.get("mode").and_then(Value::as_str);
        let ns = r
            .get("best_ns")
            .or_else(|| r.get("median_ns"))
            .and_then(Value::as_f64);
        if let (Some(kernel), Some(mode), Some(ns)) = (kernel, mode, ns) {
            out.insert((kernel.to_string(), mode.to_string()), ns);
        }
    }
    out
}

fn reference(meds: &BTreeMap<(String, String), f64>, what: &str) -> f64 {
    match meds.get(&(REF_KEY.0.to_string(), REF_KEY.1.to_string())) {
        Some(&ns) if ns > 0.0 => ns,
        _ => {
            eprintln!("kernel_gate: {what} has no {} reference measurement", REF_KEY.0);
            exit(2);
        }
    }
}

fn load(path: &Path) -> Value {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("kernel_gate: cannot read {}: {e}", path.display());
        exit(2);
    });
    parse(&text).unwrap_or_else(|e| {
        eprintln!("kernel_gate: cannot parse {}: {e}", path.display());
        exit(2);
    })
}

fn main() {
    let root = repo_root();
    let current_path = root.join("BENCH_kernels.json");
    let baseline_path = root.join("BENCH_baseline.json");

    let current = load(&current_path);
    let cur = medians(&current);

    if std::env::var("AUTOMC_BENCH_REBASE").map_or(false, |v| v != "0" && !v.is_empty()) {
        // Rewrite the baseline from the current run, carrying the pre_pr
        // section forward (it records history, not the current machine).
        let pre_pr = baseline_path
            .exists()
            .then(|| load(&baseline_path))
            .and_then(|b| b.get("pre_pr").cloned());
        let mut fields = vec![
            ("bench", "parallel_kernels".to_json()),
            (
                "iters",
                current.get("iters").cloned().unwrap_or_else(|| 0.to_json()),
            ),
            (
                "results",
                current.get("results").cloned().unwrap_or(Value::Arr(vec![])),
            ),
        ];
        if let Some(p) = pre_pr {
            fields.push(("pre_pr", p));
        }
        let report = obj(fields);
        std::fs::write(&baseline_path, report.to_string_pretty()).unwrap_or_else(|e| {
            eprintln!("kernel_gate: cannot write {}: {e}", baseline_path.display());
            exit(2);
        });
        println!("kernel_gate: rebased {}", baseline_path.display());
        return;
    }

    let baseline = load(&baseline_path);
    let base = medians(&baseline);
    let cur_ref = reference(&cur, "current run");
    let base_ref = reference(&base, "baseline");
    println!(
        "kernel_gate: machine speed vs baseline run: {:.2}x ({} {:.0} ns now, {:.0} ns then)",
        cur_ref / base_ref,
        REF_KEY.0,
        cur_ref,
        base_ref
    );
    let mut failures = Vec::new();

    // 1. Gated kernels must not regress vs. the committed baseline, in
    //    machine-normalised units (kernel median / reference median).
    for kernel in GATED {
        let key = (kernel.to_string(), "t1".to_string());
        match (cur.get(&key), base.get(&key)) {
            (Some(&now), Some(&was)) => {
                let ratio = (now / cur_ref) / (was / base_ref);
                let verdict = if ratio > TOLERANCE { "FAIL" } else { "ok" };
                println!(
                    "kernel_gate: {kernel} t1: {now:.0} ns, normalised {ratio:.2}x of baseline \
                     [{verdict}]"
                );
                if ratio > TOLERANCE {
                    failures.push(format!(
                        "{kernel} t1 regressed {ratio:.2}x (normalised) over baseline \
                         (limit {TOLERANCE})"
                    ));
                }
            }
            _ => failures.push(format!("{kernel} t1 missing from current or baseline results")),
        }
    }

    // 2. `auto` must never lose to forcing 1 thread, on any benched
    //    kernel (same-run ratio, no normalisation needed).
    for ((kernel, mode), &t1) in &cur {
        if mode != "t1" {
            continue;
        }
        let Some(&auto) = cur.get(&(kernel.clone(), "auto".to_string())) else {
            failures.push(format!("{kernel} has no auto-mode measurement"));
            continue;
        };
        let ratio = auto / t1;
        let verdict = if ratio > TOLERANCE { "FAIL" } else { "ok" };
        println!("kernel_gate: {kernel} auto/t1 = {ratio:.2}x [{verdict}]");
        if ratio > TOLERANCE {
            failures.push(format!(
                "{kernel}: auto mode is {ratio:.2}x slower than 1 thread (limit {TOLERANCE})"
            ));
        }
    }

    // 3. The blocked/packed kernels must stay faster than the pre-blocked
    //    ikj kernel they replaced — measured live, in the same process.
    let key = ("matmul_192".to_string(), "t1".to_string());
    if let Some(&now) = cur.get(&key) {
        let speedup = cur_ref / now;
        let verdict = if speedup < MIN_MATMUL_SPEEDUP { "FAIL" } else { "ok" };
        println!(
            "kernel_gate: matmul_192 t1 speedup vs in-run ikj reference: {speedup:.2}x \
             (need >= {MIN_MATMUL_SPEEDUP}) [{verdict}]"
        );
        if speedup < MIN_MATMUL_SPEEDUP {
            failures.push(format!(
                "matmul_192 t1 speedup over the ikj reference fell to {speedup:.2}x \
                 (need >= {MIN_MATMUL_SPEEDUP})"
            ));
        }
    } else {
        failures.push("matmul_192 t1 missing from current results".to_string());
    }

    // Informational: speedups vs. the pre-PR pooled-kernel medians
    // recorded once in the baseline (absolute, so noisy — never gated).
    if let Some(pre) = baseline.get("pre_pr") {
        let pre = medians(pre);
        for kernel in GATED {
            let key = (kernel.to_string(), "t1".to_string());
            if let (Some(&now), Some(&was)) = (cur.get(&key), pre.get(&key)) {
                println!(
                    "kernel_gate: {kernel} t1 speedup vs pre-PR medians: {:.2}x (info)",
                    was / now
                );
            }
        }
    }

    if failures.is_empty() {
        println!("kernel_gate: all checks passed");
    } else {
        for f in &failures {
            eprintln!("kernel_gate: FAIL: {f}");
        }
        exit(1);
    }
}
