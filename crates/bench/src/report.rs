//! Plain-text table/series rendering for the reproduction binaries.

use crate::harness::FinalRow;

/// Render a Table 2/3-style block.
pub fn render_rows(title: &str, rows: &[FinalRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("\n== {title} ==\n"));
    out.push_str(&format!(
        "{:<28} {:>9} {:>8} {:>12} {:>8} {:>8} {:>8}\n",
        "Algorithm", "Params", "PR(%)", "FLOPs", "FR(%)", "Acc(%)", "Inc(%)"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<28} {:>9} {:>8.2} {:>12} {:>8.2} {:>8.2} {:>8.2}\n",
            r.algorithm, r.params, r.pr, r.flops, r.fr, r.acc, r.inc
        ));
    }
    out
}

/// Render an `(x, y)` series as CSV-ish lines (Fig. 4/5 output format).
pub fn render_series(title: &str, series: &[(u64, f32)]) -> String {
    let mut out = String::new();
    out.push_str(&format!("\n-- {title} (cost_units, best_acc) --\n"));
    for (x, y) in series {
        out.push_str(&format!("{x}, {:.4}\n", y));
    }
    out
}

/// Render Pareto-front points `(PR%, Acc%)`.
pub fn render_front(title: &str, points: &[(f32, f32)]) -> String {
    let mut out = String::new();
    out.push_str(&format!("\n-- {title} Pareto front (PR%, Acc%) --\n"));
    let mut sorted = points.to_vec();
    sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
    for (pr, acc) in sorted {
        out.push_str(&format!("{:.2}, {:.2}\n", pr, acc));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_render_all_fields() {
        let rows = vec![FinalRow {
            algorithm: "AutoMC".into(),
            params: 1234,
            pr: 39.17,
            flops: 5678,
            fr: 31.61,
            acc: 92.61,
            inc: 1.73,
            scheme: Some(vec![1, 2]),
        }];
        let text = render_rows("Exp1", &rows);
        assert!(text.contains("AutoMC"));
        assert!(text.contains("39.17"));
        assert!(text.contains("92.61"));
    }

    #[test]
    fn series_and_front_render() {
        let s = render_series("AutoMC", &[(10, 0.8), (20, 0.9)]);
        assert!(s.contains("10, 0.8000"));
        let f = render_front("AutoMC", &[(40.0, 92.0), (30.0, 93.0)]);
        let i30 = f.find("30.00").unwrap();
        let i40 = f.find("40.00").unwrap();
        assert!(i30 < i40, "front sorted by PR");
    }
}
