//! # automc-bench
//!
//! Reproduction harness for every table and figure in the AutoMC paper's
//! evaluation section. One binary per artifact:
//!
//! | Binary | Paper artifact |
//! |--------|----------------|
//! | `table2` | Table 2 — compression results on Exp1/Exp2 at PR ≈ 40/70 |
//! | `table3` | Table 3 — transfer study across model depths |
//! | `fig4`   | Figure 4 — accuracy-vs-budget curves + Pareto fronts |
//! | `fig5`   | Figure 5 — ablation Pareto fronts |
//! | `fig6`   | Figure 6 — the searched schemes, pretty-printed |
//!
//! Binaries share a JSON result cache under `target/automc-results/` so
//! the expensive searches run once (Table 3 and Figs 4/6 reuse Table 2's
//! runs). Pass `--seed N` to any binary to change the master seed;
//! `--fresh` ignores the cache.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod cache;
pub mod harness;
pub mod report;
pub mod scale;

/// Parse `--seed N` / `--fresh` from argv (tiny flag parser shared by the
/// reproduction binaries).
pub fn parse_args() -> (u64, bool) {
    let mut seed = 42u64;
    let mut fresh = false;
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    seed = v;
                    i += 1;
                }
            }
            "--fresh" => fresh = true,
            other => eprintln!("ignoring unknown argument {other}"),
        }
        i += 1;
    }
    (seed, fresh)
}
