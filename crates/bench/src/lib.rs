//! # automc-bench
//!
//! Reproduction harness for every table and figure in the AutoMC paper's
//! evaluation section. One binary per artifact:
//!
//! | Binary | Paper artifact |
//! |--------|----------------|
//! | `table2` | Table 2 — compression results on Exp1/Exp2 at PR ≈ 40/70 |
//! | `table3` | Table 3 — transfer study across model depths |
//! | `fig4`   | Figure 4 — accuracy-vs-budget curves + Pareto fronts |
//! | `fig5`   | Figure 5 — ablation Pareto fronts |
//! | `fig6`   | Figure 6 — the searched schemes, pretty-printed |
//!
//! Binaries share a JSON result cache under `target/automc-results/` so
//! the expensive searches run once (Table 3 and Figs 4/6 reuse Table 2's
//! runs). Pass `--seed N` to any binary to change the master seed;
//! `--fresh` ignores the cache.
//!
//! Fault tolerance: every candidate evaluation is supervised (panics and
//! divergence are recorded as infeasible history entries, not crashes),
//! AutoMC searches journal their state each round and resume after a kill
//! (`--no-resume` disables), and `--faults SPEC` / `AUTOMC_FAULTS`
//! injects deterministic faults for testing — see `DESIGN.md` §"Fault
//! model & recovery".

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod cache;
pub mod harness;
pub mod orchestrator;
pub mod report;
pub mod scale;

/// Flags shared by the reproduction binaries.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Master seed (`--seed N`, default 42).
    pub seed: u64,
    /// Ignore the result cache (`--fresh`).
    pub fresh: bool,
    /// Worker threads (`--threads N`; 0 = auto). `AUTOMC_THREADS` takes
    /// precedence over the flag.
    pub threads: usize,
    /// Disable journal resume (`--no-resume`): interrupted AutoMC
    /// searches restart from scratch.
    pub no_resume: bool,
    /// Deterministic fault plan (`--faults kind@site:n,...`), installed
    /// on the main thread. Equivalent to setting `AUTOMC_FAULTS`.
    pub faults: Option<String>,
    /// Run the binary's smoke mode, if it has one (`--smoke`): the
    /// smallest end-to-end scale, used by the CI fault-injection stage.
    pub smoke: bool,
    /// Prefix-model memoization override (`--memo on|off`). `None` defers
    /// to `AUTOMC_MEMO` (default: enabled).
    pub memo: Option<bool>,
    /// Worker processes for the Table 2 orchestrator (`--workers N`;
    /// 0 = run in-process, the default).
    pub workers: usize,
    /// Worker heartbeat interval in milliseconds (`--heartbeat-ms N`).
    /// The supervisor declares a worker hung after 8 missed intervals
    /// (floor 1.5 s).
    pub heartbeat_ms: u64,
    /// Restarts per worker before its shard degrades (`--retries N`).
    pub retries: u32,
    /// Worker-mode shard spec (`--worker <exp>:<idx>/<n>`), set by the
    /// supervisor when it self-execs — not intended for direct use.
    pub worker: Option<String>,
}

impl BenchArgs {
    /// Install the thread knob, resume policy, memo policy, and fault
    /// plan into the runtime.
    pub fn apply(&self) {
        automc_tensor::par::configure_threads(self.threads);
        harness::set_resume(!self.no_resume);
        automc_compress::memo::set_enabled_global(self.memo);
        if automc_compress::memo::enabled() {
            // Spill evicted/inserted prefix models next to the result
            // cache so a relaunched process re-hits prefixes computed by
            // an earlier run. The directory is opened as a crash-safe
            // concurrent `automc_compress::store::BlobStore`, so many
            // processes may share it live — `AUTOMC_MEMO_SPILL_DIR`
            // re-points it: the orchestrator isolates each worker's
            // result cache but shares one spill store across the fleet
            // (prefix models are content-addressed, so sharing is always
            // sound, and the store's GC/quarantine keep it bounded and
            // self-healing).
            let spill = std::env::var("AUTOMC_MEMO_SPILL_DIR")
                .ok()
                .filter(|d| !d.is_empty())
                .map(std::path::PathBuf::from)
                .unwrap_or_else(|| cache::cache_dir().join("memo"));
            automc_compress::memo::set_spill_dir(Some(spill));
        }
        if let Some(spec) = &self.faults {
            match automc_tensor::fault::FaultPlan::parse(spec) {
                Ok(plan) => {
                    eprintln!("[fault] --faults installed: {spec}");
                    automc_tensor::fault::install(plan);
                }
                Err(e) => eprintln!("warning: ignoring --faults: {e}"),
            }
        }
    }
}

/// Parse `--seed N` / `--fresh` / `--threads N` / `--no-resume` /
/// `--faults SPEC` / `--memo on|off` / `--workers N` / `--heartbeat-ms N`
/// / `--retries N` / `--worker SPEC` from argv (tiny flag parser shared
/// by the reproduction binaries).
pub fn parse_args() -> BenchArgs {
    let mut parsed = BenchArgs {
        seed: 42,
        fresh: false,
        threads: 0,
        no_resume: false,
        faults: None,
        smoke: false,
        memo: None,
        workers: 0,
        heartbeat_ms: 500,
        retries: 2,
        worker: None,
    };
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    parsed.seed = v;
                    i += 1;
                }
            }
            "--threads" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    parsed.threads = v;
                    i += 1;
                }
            }
            "--faults" => {
                if let Some(v) = args.get(i + 1) {
                    parsed.faults = Some(v.clone());
                    i += 1;
                }
            }
            "--workers" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    parsed.workers = v;
                    i += 1;
                }
            }
            "--heartbeat-ms" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    // Below the floor the hang deadline stays pinned at
                    // 1.5 s and the flag would silently change nothing.
                    if v < orchestrator::MIN_HEARTBEAT_MS {
                        eprintln!(
                            "warning: --heartbeat-ms {v} is below the effective \
                             minimum; clamping to {} (the hung-worker deadline \
                             has a 1.5 s floor)",
                            orchestrator::MIN_HEARTBEAT_MS
                        );
                        parsed.heartbeat_ms = orchestrator::MIN_HEARTBEAT_MS;
                    } else {
                        parsed.heartbeat_ms = v;
                    }
                    i += 1;
                }
            }
            "--retries" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    parsed.retries = v;
                    i += 1;
                }
            }
            "--worker" => {
                if let Some(v) = args.get(i + 1) {
                    parsed.worker = Some(v.clone());
                    i += 1;
                }
            }
            "--memo" => {
                if let Some(v) = args.get(i + 1) {
                    match v.as_str() {
                        "on" => parsed.memo = Some(true),
                        "off" => parsed.memo = Some(false),
                        other => eprintln!("ignoring --memo {other} (want on|off)"),
                    }
                    i += 1;
                }
            }
            "--fresh" => parsed.fresh = true,
            "--no-resume" => parsed.no_resume = true,
            "--smoke" => parsed.smoke = true,
            other => eprintln!("ignoring unknown argument {other}"),
        }
        i += 1;
    }
    parsed.apply();
    parsed
}
