//! Experiment scales: the repro-scale counterparts of the paper's Exp1
//! (ResNet-56 on CIFAR-10) and Exp2 (VGG-16 on CIFAR-100), plus the
//! transfer targets of Table 3.

use automc_compress::{ExecConfig, Metrics};
use automc_data::{DatasetSpec, ImageSet, SyntheticKind};
use automc_models::train::{train, Auxiliary, TrainConfig};
use automc_models::{resnet, vgg, ConvNet, ModelKind};
use automc_tensor::{rng_from_seed, Rng};

/// One experiment's scale parameters.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentScale {
    /// Name for reporting/caching ("exp1" / "exp2").
    pub name: &'static str,
    /// Dataset stand-in.
    pub kind: SyntheticKind,
    /// Model family and depth.
    pub model: ModelKind,
    /// Base width of the model.
    pub width: usize,
    /// Training-set size.
    pub train: usize,
    /// Test-set size.
    pub test: usize,
    /// Dataset noise level.
    pub noise: f32,
    /// Pre-training epochs `E₀`.
    pub pretrain_epochs: f32,
    /// Target parameter-reduction rate γ.
    pub gamma: f32,
    /// Search budget (cost units) per AutoML algorithm.
    pub budget_units: u64,
    /// Fraction of the training data used during search (paper: 10%).
    pub sample_frac: f32,
    /// Worker threads for the parallel execution layer (0 = auto: the
    /// `AUTOMC_THREADS` env override, else available parallelism). Not
    /// part of the cache fingerprint — results are thread-count
    /// invariant by the determinism contract of `automc_tensor::par`.
    pub threads: usize,
}

impl ExperimentScale {
    /// Summary of every result-affecting field, for cache fingerprints.
    /// `threads` is deliberately excluded: the parallel execution layer
    /// guarantees bitwise-identical results at any thread count.
    pub fn fingerprint(&self) -> String {
        format!(
            "{}|{:?}|{:?}|w{}|tr{}|te{}|n{}|e{}|g{}|b{}|f{}",
            self.name,
            self.kind,
            self.model,
            self.width,
            self.train,
            self.test,
            self.noise,
            self.pretrain_epochs,
            self.gamma,
            self.budget_units,
            self.sample_frac
        )
    }
}

/// Exp1: ResNet-56 on the CIFAR-10 stand-in, γ = 0.3.
pub fn exp1() -> ExperimentScale {
    ExperimentScale {
        name: "exp1",
        kind: SyntheticKind::Cifar10Like,
        model: ModelKind::ResNet(56),
        width: 4,
        train: 800,
        test: 400,
        noise: 0.25,
        pretrain_epochs: 10.0,
        gamma: 0.3,
        budget_units: 100_000,
        sample_frac: 0.1,
        threads: 0,
    }
}

/// Exp2: VGG-16 on the CIFAR-100 stand-in, γ = 0.3.
pub fn exp2() -> ExperimentScale {
    ExperimentScale {
        name: "exp2",
        kind: SyntheticKind::Cifar100Like,
        model: ModelKind::Vgg(16),
        width: 8,
        train: 3000,
        test: 500,
        noise: 0.2,
        pretrain_epochs: 12.0,
        gamma: 0.3,
        budget_units: 150_000,
        sample_frac: 0.1,
        threads: 0,
    }
}

/// The smallest end-to-end scale: Table 2's full pipeline (method grid +
/// all four searches) shrunk until a fresh run takes well under a minute.
/// Used by the CI fault-injection smoke stage (`table2 --smoke`).
///
/// `AUTOMC_SMOKE_TRAIN` / `AUTOMC_SMOKE_TEST` / `AUTOMC_SMOKE_EPOCHS` /
/// `AUTOMC_SMOKE_BUDGET` shrink (or grow) the scale further — the
/// orchestrator integration tests run several full `table2 --smoke`
/// child processes and need each to be cheap. Every knob feeds the scale
/// fingerprint, so results from different knob settings never mix.
pub fn smoke() -> ExperimentScale {
    fn env_or<T: std::str::FromStr>(key: &str, default: T) -> T {
        std::env::var(key)
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(default)
    }
    ExperimentScale {
        name: "smoke",
        model: ModelKind::ResNet(20),
        train: env_or("AUTOMC_SMOKE_TRAIN", 160),
        test: env_or("AUTOMC_SMOKE_TEST", 80),
        pretrain_epochs: env_or("AUTOMC_SMOKE_EPOCHS", 4.0),
        budget_units: env_or("AUTOMC_SMOKE_BUDGET", 1_500),
        ..exp1()
    }
}

/// Transfer targets of Table 3 for an experiment's family.
pub fn transfer_targets(exp: &ExperimentScale) -> Vec<ModelKind> {
    match exp.model {
        ModelKind::ResNet(_) => vec![ModelKind::ResNet(20), ModelKind::ResNet(164)],
        ModelKind::Vgg(_) => vec![ModelKind::Vgg(13), ModelKind::Vgg(19)],
    }
}

/// A fully prepared task: data splits, pre-trained model, base metrics.
pub struct PreparedTask {
    /// Scale this task instantiates.
    pub scale: ExperimentScale,
    /// Pre-trained base model `M`.
    pub base_model: ConvNet,
    /// Full training split.
    pub train_set: ImageSet,
    /// Held-out test split.
    pub test_set: ImageSet,
    /// The 10% search sample.
    pub search_sample: ImageSet,
    /// Small held-out subset used for `A(M)` *during* search (keeps the
    /// evaluation overhead proportionate at repro scale; final rows always
    /// use the full test split).
    pub search_eval: ImageSet,
    /// `P/F/A` of the base model on the test split.
    pub base_metrics: Metrics,
    /// Execution config at this scale.
    pub exec: ExecConfig,
}

/// Build a model of `kind` at this scale's width/classes.
pub fn build_model(exp: &ExperimentScale, kind: ModelKind, rng: &mut Rng) -> ConvNet {
    let classes = exp.kind.classes();
    match kind {
        ModelKind::ResNet(d) => resnet(d, exp.width, classes, (3, 8, 8), rng),
        ModelKind::Vgg(d) => vgg(d, exp.width, classes, (3, 8, 8), rng),
    }
}

/// Generate data, build and pre-train the base model, carve the search
/// sample. Deterministic in `seed`.
pub fn prepare_task(exp: &ExperimentScale, seed: u64) -> PreparedTask {
    prepare_task_for_model(exp, exp.model, seed)
}

/// Same as [`prepare_task`] but for an alternate model (transfer targets).
pub fn prepare_task_for_model(
    exp: &ExperimentScale,
    model_kind: ModelKind,
    seed: u64,
) -> PreparedTask {
    let mut rng = rng_from_seed(seed ^ 0xA0_70_4C);
    let (train_set, test_set) = DatasetSpec {
        train: exp.train,
        test: exp.test,
        noise: exp.noise,
        ..DatasetSpec::new(exp.kind)
    }
    .generate();
    let mut base_model = build_model(exp, model_kind, &mut rng);
    train(
        &mut base_model,
        &train_set,
        &TrainConfig { epochs: exp.pretrain_epochs, ..Default::default() },
        Auxiliary::None,
        &mut rng,
    );
    let base_metrics = Metrics::measure(&mut base_model, &test_set);
    let search_sample = train_set.sample_fraction(exp.sample_frac, &mut rng);
    let search_eval = test_set.subset(&(0..128.min(test_set.len())).collect::<Vec<_>>());
    PreparedTask {
        scale: *exp,
        base_model,
        train_set,
        test_set,
        search_sample,
        search_eval,
        base_metrics,
        // `eval_seed` pins every evaluation's RNG stream to the master
        // seed (step RNGs derive from it and the scheme prefix alone), so
        // all searches of a run share the prefix-model cache and results
        // are identical at any thread count or cache state.
        exec: ExecConfig {
            pretrain_epochs: exp.pretrain_epochs,
            eval_seed: seed ^ 0xE7A1_5EED,
            ..Default::default()
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_consistent() {
        let e1 = exp1();
        assert_eq!(e1.kind.classes(), 10);
        assert!(matches!(e1.model, ModelKind::ResNet(56)));
        let e2 = exp2();
        assert_eq!(e2.kind.classes(), 100);
        assert!(matches!(e2.model, ModelKind::Vgg(16)));
    }

    #[test]
    fn transfer_targets_match_family() {
        assert_eq!(
            transfer_targets(&exp1()),
            vec![ModelKind::ResNet(20), ModelKind::ResNet(164)]
        );
        assert_eq!(transfer_targets(&exp2()), vec![ModelKind::Vgg(13), ModelKind::Vgg(19)]);
    }

    #[test]
    fn prepared_task_is_deterministic_and_sampled() {
        // Shrunk copy of exp1 to keep the test quick.
        let small = ExperimentScale {
            train: 100,
            test: 50,
            pretrain_epochs: 1.0,
            ..exp1()
        };
        let a = prepare_task(&small, 7);
        let b = prepare_task(&small, 7);
        assert_eq!(a.base_metrics.params, b.base_metrics.params);
        assert!((a.base_metrics.acc - b.base_metrics.acc).abs() < 1e-6);
        assert_eq!(a.search_sample.len(), 10, "10% of 100");
    }
}
