//! Supervised multi-process sharding of the Table 2 workload.
//!
//! The in-process pool (`automc_tensor::par`) already survives panics and
//! the journal layer survives a kill of the *whole* process — but a
//! production-scale search fleet must survive the failure of *one*
//! process without losing the run. This module adds that layer: a
//! **supervisor** shards the Table 2 grid (twelve method rows plus the
//! four AutoML searches, `harness::table2_task_count()` task units)
//! across `N` worker processes spawned by self-exec
//! (`table2 --worker <exp>:<idx>/<n>`), supervises them, and merges their
//! results into one report that is **byte-identical to a single-process
//! run** — every task derives its RNG from `(seed, task-id)` alone, and
//! merge order is fixed by task index.
//!
//! Isolation and sharing:
//!
//! * each worker persists into its own sub-store
//!   (`AUTOMC_RESULTS_DIR=<root>/worker<idx>`), so a crashed worker can
//!   corrupt at most its own cache, never a sibling's;
//! * all workers share the memo spill store
//!   (`AUTOMC_MEMO_SPILL_DIR=<root>/memo`), opened by every process as a
//!   crash-safe concurrent `automc_compress::store::BlobStore` — prefix
//!   models are content-addressed (cross-process sharing is free), the
//!   write-once publish protocol makes concurrent same-key writers
//!   idempotent, the store's advisory-locked generational GC keeps the
//!   directory under `AUTOMC_MEMO_DISK_BYTES` without deleting blobs a
//!   sibling just opened, and a worker killed mid-spill can at worst
//!   leave a temp file, never a torn blob;
//! * each worker emits [`journal::Heartbeat`] records (checksummed,
//!   atomic) at `--heartbeat-ms` cadence, carrying its beat sequence,
//!   current eval ordinal, and tasks completed.
//!
//! Failure handling (the failure matrix of DESIGN.md §11):
//!
//! * **crash** — the supervisor observes a non-zero exit and restarts the
//!   worker with exponential backoff; the restart resumes for free
//!   (completed tasks are cached in the worker's store, in-progress
//!   searches resume from their journals);
//! * **hang** — a worker whose heartbeat `seq` has not advanced within
//!   the deadline (8 × the heartbeat interval, floor 1.5 s) is killed and
//!   restarted the same way;
//! * **retry-exhausted** — after `--retries` restarts the worker is
//!   abandoned and its unfinished tasks degrade to labelled
//!   [`harness::degraded_row`]s (`… (worker N unavailable)`); the run
//!   always completes;
//! * **supervisor restart** — per-worker retry counters are journaled
//!   (checksummed, atomic) on every failure, so a relaunched supervisor
//!   continues the retry budget instead of resetting it, and workers
//!   fast-forward through their caches.
//!
//! Supervision paths are deterministically testable via the `worker`
//! fault site: `kill@worker:n` / `hang@worker:n` tick in the supervisor —
//! once per spawn, so the n-th spawn is the faulted one and restarts
//! never re-fire — and are translated into a directive
//! (`AUTOMC_WORKER_FAULT`) that makes the child crash (exit
//! [`WORKER_KILL_EXIT`]) or stop heartbeating after its first completed
//! task.

use crate::cache;
use crate::harness::{
    self, degraded_row, run_fingerprint, table2_task, table2_task_count, FinalRow,
};
use crate::scale::{exp1, exp2, prepare_task, smoke, ExperimentScale};
use crate::BenchArgs;
use automc_compress::{MethodId, StrategySpace};
use automc_core::journal::{self, Heartbeat};
use automc_json::{field, obj, FromJson, ToJson, Value};
use automc_tensor::fault::{self, FaultKind};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Exit code of a worker whose injected `kill@worker` directive fired, so
/// logs can tell a simulated worker crash from a genuine failure.
pub const WORKER_KILL_EXIT: i32 = 86;

/// Smallest effective `--heartbeat-ms`. The hung-worker deadline is
/// `max(8 × heartbeat_ms, 1500)`, so any interval below `1500 / 8`
/// (⌈187.5⌉ = 188) leaves the deadline pinned at the 1.5 s floor — the
/// flag would parse but change nothing. `parse_args` clamps to this with
/// a warning instead of accepting a silently meaningless value.
pub const MIN_HEARTBEAT_MS: u64 = 188;

/// Base of the exponential restart backoff (doubles per retry).
const BACKOFF_BASE_MS: u64 = 200;

/// Cap on a single backoff pause.
const BACKOFF_CAP_MS: u64 = 5_000;

/// Supervisor poll interval.
const POLL_MS: u64 = 25;

// ------------------------------------------------------------------------
// Shard layout
// ------------------------------------------------------------------------

/// The worker that owns task `i` under round-robin sharding.
pub fn task_owner(i: usize, workers: usize) -> usize {
    i % workers.max(1)
}

/// Cache key under which a worker persists task `i`'s rows.
pub fn shard_key(exp_name: &str, seed: u64, i: usize) -> String {
    format!("shard_{exp_name}_s{seed}_t{i}")
}

/// Cache key of the baseline row (persisted by worker 0).
pub fn baseline_key(exp_name: &str, seed: u64) -> String {
    format!("shard_{exp_name}_s{seed}_baseline")
}

/// The isolated result sub-store of worker `idx` under the supervisor's
/// results root.
pub fn worker_dir(root: &Path, idx: usize) -> PathBuf {
    root.join(format!("worker{idx}"))
}

fn heartbeat_path(root: &Path, idx: usize) -> PathBuf {
    root.join("hb").join(format!("worker{idx}.hb"))
}

/// Resolve an experiment scale by its name (the worker spec carries the
/// name, not the whole configuration).
pub fn scale_by_name(name: &str) -> Option<ExperimentScale> {
    match name {
        "exp1" => Some(exp1()),
        "exp2" => Some(exp2()),
        "smoke" => Some(smoke()),
        _ => None,
    }
}

/// Parse a `--worker` spec: `<exp>:<idx>/<n>`.
pub fn parse_worker_spec(spec: &str) -> Option<(ExperimentScale, usize, usize)> {
    let (name, shard) = spec.split_once(':')?;
    let (idx, n) = shard.split_once('/')?;
    let idx: usize = idx.parse().ok()?;
    let n: usize = n.parse().ok()?;
    if n == 0 || idx >= n {
        return None;
    }
    Some((scale_by_name(name)?, idx, n))
}

// ------------------------------------------------------------------------
// Worker side
// ------------------------------------------------------------------------

/// Background heartbeat emitter: one beat per interval, each a
/// checksummed atomic [`Heartbeat`] record. Freezing it (the injected
/// hang) stops all further beats without stopping the process.
struct Emitter {
    stop: Arc<AtomicBool>,
    frozen: Arc<AtomicBool>,
    tasks_done: Arc<AtomicU64>,
    handle: Option<std::thread::JoinHandle<u64>>,
    path: PathBuf,
    worker: u64,
}

impl Emitter {
    fn start(worker: u64, path: PathBuf, interval_ms: u64) -> Emitter {
        let stop = Arc::new(AtomicBool::new(false));
        let frozen = Arc::new(AtomicBool::new(false));
        let tasks_done = Arc::new(AtomicU64::new(0));
        let beat = move |seq: u64, tasks: u64, done: bool| Heartbeat {
            worker,
            pid: std::process::id() as u64,
            seq,
            eval: fault::eval_ordinal(),
            tasks_done: tasks,
            done,
        };
        // First beat synchronously, so the supervisor's staleness clock
        // starts from a real record rather than from thread scheduling.
        if let Err(e) = beat(1, 0, false).save(&path) {
            eprintln!("warning: worker {worker} cannot write heartbeat: {e}");
        }
        let handle = {
            let stop = Arc::clone(&stop);
            let frozen = Arc::clone(&frozen);
            let tasks_done = Arc::clone(&tasks_done);
            let path = path.clone();
            std::thread::spawn(move || {
                let mut seq = 1u64;
                while !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_millis(interval_ms));
                    if frozen.load(Ordering::Relaxed) || stop.load(Ordering::Relaxed) {
                        continue;
                    }
                    seq += 1;
                    if let Err(e) = beat(seq, tasks_done.load(Ordering::Relaxed), false)
                        .save(&path)
                    {
                        eprintln!("warning: worker {worker} cannot write heartbeat: {e}");
                    }
                }
                seq
            })
        };
        Emitter {
            stop,
            frozen,
            tasks_done,
            handle: Some(handle),
            path,
            worker,
        }
    }

    fn bump_tasks(&self) {
        self.tasks_done.fetch_add(1, Ordering::Relaxed);
    }

    /// Injected hang: no further beats, ever.
    fn freeze(&self) {
        self.frozen.store(true, Ordering::Relaxed);
    }

    /// Stop the thread and write the final `done` beat.
    fn finish(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        let seq = self.handle.take().map_or(0, |h| h.join().unwrap_or(0));
        let last = Heartbeat {
            worker: self.worker,
            pid: std::process::id() as u64,
            seq: seq + 1,
            eval: fault::eval_ordinal(),
            tasks_done: self.tasks_done.load(Ordering::Relaxed),
            done: true,
        };
        if let Err(e) = last.save(&self.path) {
            eprintln!("warning: worker {} cannot write final heartbeat: {e}", self.worker);
        }
    }
}

/// Worker entry point (`table2 --worker <exp>:<idx>/<n>`): run the shard's
/// tasks, persisting each into this process's isolated result store, and
/// heartbeat throughout. Returns the process exit code.
///
/// Resume is free: completed tasks are cache hits, the in-progress search
/// or grid run resumes from its journal. The `AUTOMC_WORKER_FAULT`
/// directive (set by the supervisor when a `worker`-site fault ticked for
/// this spawn) fires after the first *completed* task, so the restart has
/// real partial state to pick up.
pub fn run_worker(args: &BenchArgs, spec: &str) -> i32 {
    let Some((exp, idx, workers)) = parse_worker_spec(spec) else {
        eprintln!("error: bad --worker spec `{spec}` (want <exp>:<idx>/<n>)");
        return 2;
    };
    let seed = args.seed;
    let fp = run_fingerprint(&exp, seed);
    let emitter = std::env::var("AUTOMC_HEARTBEAT_FILE")
        .ok()
        .filter(|p| !p.is_empty())
        .map(|p| Emitter::start(idx as u64, PathBuf::from(p), args.heartbeat_ms.max(10)));
    let directive = std::env::var("AUTOMC_WORKER_FAULT").ok().unwrap_or_default();

    let n_tasks = table2_task_count();
    let my_tasks: Vec<usize> =
        (0..n_tasks).filter(|&i| task_owner(i, workers) == idx).collect();
    eprintln!(
        "[worker {idx}] shard {spec}: {} task(s) {:?}",
        my_tasks.len(),
        my_tasks
    );

    let task = prepare_task(&exp, seed);
    let space = StrategySpace::full();
    let n_method_tasks = MethodId::ALL.len() * 2;
    let needs_emb = my_tasks.iter().any(|&i| i >= n_method_tasks);
    let emb = if needs_emb {
        // Never `fresh` here: the supervisor already recomputed the
        // corpus/embeddings under `--fresh` before spawning, and workers
        // pull that copy through the shared-store fallback instead of
        // re-deriving it (the dominant fixed cost of a run).
        harness::automc_embeddings(&space, "full", seed, false, true, true)
    } else {
        Vec::new()
    };
    if idx == 0 {
        // The baseline row needs only the prepared task; worker 0 owns it.
        cache::store(&baseline_key(exp.name, seed), &fp, &FinalRow::baseline(&task));
    }

    for (done_before, &i) in my_tasks.iter().enumerate() {
        let key = shard_key(exp.name, seed, i);
        let rows: Vec<(usize, FinalRow)> = cache::load_or(&key, &fp, args.fresh, || {
            table2_task(&task, &space, &emb, i, seed, args.fresh)
        });
        drop(rows);
        if let Some(e) = &emitter {
            e.bump_tasks();
        }
        if done_before == 0 {
            match directive.as_str() {
                "kill" => {
                    eprintln!(
                        "[worker {idx}] injected kill after task {i} \
                         (exit {WORKER_KILL_EXIT})"
                    );
                    std::process::exit(WORKER_KILL_EXIT);
                }
                "hang" => {
                    eprintln!("[worker {idx}] injected hang after task {i}");
                    if let Some(e) = &emitter {
                        e.freeze();
                    }
                    // Park until the supervisor's deadline reclaims us.
                    loop {
                        std::thread::sleep(Duration::from_secs(3600));
                    }
                }
                _ => {}
            }
        }
    }
    if let Some(e) = emitter {
        e.finish();
    }
    eprintln!("[worker {idx}] shard complete");
    0
}

// ------------------------------------------------------------------------
// Supervisor side
// ------------------------------------------------------------------------

/// Journaled supervisor state: per-worker retry counters, keyed by a tag
/// covering the run fingerprint and worker count. Written (checksummed,
/// atomic) on every failure event — exactly once per retry — so a
/// restarted supervisor continues the budget instead of resetting it.
struct OrchJournal {
    tag: String,
    retries: Vec<u64>,
}

impl OrchJournal {
    fn path(root: &Path, exp_name: &str, seed: u64) -> PathBuf {
        root.join(format!("orch_{exp_name}_s{seed}.journal"))
    }

    fn to_json(&self) -> Value {
        obj(vec![
            ("tag", self.tag.to_json()),
            ("retries", self.retries.to_json()),
        ])
    }

    fn save(&self, path: &Path) {
        if let Err(e) = journal::save_checksummed(path, &self.to_json().to_string_pretty())
        {
            eprintln!(
                "warning: orchestrator journal {} keeps failing ({e}); \
                 retry counters will not survive a supervisor restart",
                path.display()
            );
        }
    }

    fn load(path: &Path, tag: &str, workers: usize) -> Option<Vec<u64>> {
        let payload = journal::load_checksummed(path)?;
        let v = automc_json::parse(&payload).ok()?;
        let found: String = field(&v, "tag")?;
        if found != tag {
            eprintln!(
                "warning: orchestrator journal {} belongs to a different run; ignoring",
                path.display()
            );
            return None;
        }
        let retries: Vec<u64> = field(&v, "retries")?;
        if retries.len() != workers {
            return None;
        }
        Some(retries)
    }
}

/// One supervised worker process.
struct Slot {
    idx: usize,
    child: Option<Child>,
    retries: u64,
    spawns: u64,
    done: bool,
    failed: bool,
    backoff_until: Option<Instant>,
    last_seq: u64,
    last_progress: Instant,
}

/// Outcome of one failure: retry (with backoff) or give up. `now` is the
/// supervision tick's single timestamp — backoff deadlines are computed
/// from it, not from a fresh `Instant::now()`, so every slot in a tick
/// sees one consistent clock.
fn fail_or_retry(
    slot: &mut Slot,
    why: &str,
    budget: u64,
    now: Instant,
    jpath: &Path,
    jstate: &mut OrchJournal,
) {
    slot.retries += 1;
    jstate.retries[slot.idx] = slot.retries;
    jstate.save(jpath);
    if slot.retries > budget {
        slot.failed = true;
        eprintln!(
            "[orchestrator] worker {} {why}; retry budget ({budget}) exhausted — \
             its unfinished tasks degrade",
            slot.idx
        );
    } else {
        let backoff =
            (BACKOFF_BASE_MS << (slot.retries - 1).min(32)).min(BACKOFF_CAP_MS);
        eprintln!(
            "[orchestrator] worker {} {why}; retry {}/{budget} in {backoff} ms",
            slot.idx, slot.retries
        );
        slot.backoff_until = Some(now + Duration::from_millis(backoff));
    }
}

#[allow(clippy::too_many_arguments)]
fn spawn_worker(
    exe: &Path,
    exp: &ExperimentScale,
    args: &BenchArgs,
    idx: usize,
    workers: usize,
    root: &Path,
    first_attempt: bool,
) -> std::io::Result<Child> {
    let mut cmd = Command::new(exe);
    if args.smoke {
        cmd.arg("--smoke");
    }
    cmd.arg("--seed").arg(args.seed.to_string());
    // `--fresh` recomputes completed results; a *restart* must keep the
    // crashed attempt's completed work (determinism makes reuse always
    // value-correct), so only the first spawn forwards it.
    if args.fresh && first_attempt {
        cmd.arg("--fresh");
    }
    if args.no_resume {
        cmd.arg("--no-resume");
    }
    if let Some(memo) = args.memo {
        cmd.arg("--memo").arg(if memo { "on" } else { "off" });
    }
    cmd.arg("--threads").arg(args.threads.to_string());
    cmd.arg("--heartbeat-ms").arg(args.heartbeat_ms.to_string());
    cmd.arg("--worker").arg(format!("{}:{idx}/{workers}", exp.name));
    cmd.env("AUTOMC_RESULTS_DIR", worker_dir(root, idx))
        .env("AUTOMC_SHARED_RESULTS_DIR", root)
        .env("AUTOMC_MEMO_SPILL_DIR", root.join("memo"))
        .env("AUTOMC_HEARTBEAT_FILE", heartbeat_path(root, idx))
        // Fault plans are the supervisor's to interpret: worker-site
        // faults become directives; eval-site plans must not replicate
        // into every child (their ordinals are per-process).
        .env_remove("AUTOMC_FAULTS");
    match fault::tick("worker") {
        Some(FaultKind::Kill) => {
            cmd.env("AUTOMC_WORKER_FAULT", "kill");
        }
        Some(FaultKind::Hang) => {
            cmd.env("AUTOMC_WORKER_FAULT", "hang");
        }
        _ => {
            cmd.env_remove("AUTOMC_WORKER_FAULT");
        }
    }
    cmd.stdin(Stdio::null()).stdout(Stdio::null()).stderr(Stdio::inherit());
    cmd.spawn()
}

/// Supervise `workers` child processes until every one is done or has
/// exhausted its retry budget. Returns the slots for the merge step.
fn supervise(
    exe: &Path,
    exp: &ExperimentScale,
    args: &BenchArgs,
    workers: usize,
    root: &Path,
    fp: &str,
) -> Vec<Slot> {
    let budget = args.retries as u64;
    let deadline = Duration::from_millis((args.heartbeat_ms.saturating_mul(8)).max(1_500));
    let jpath = OrchJournal::path(root, exp.name, args.seed);
    let tag = format!("orch-v1|{fp}|w{workers}");
    let mut jstate = OrchJournal { tag: tag.clone(), retries: vec![0; workers] };
    if harness::resume_enabled() {
        if let Some(retries) = OrchJournal::load(&jpath, &tag, workers) {
            eprintln!(
                "[orchestrator] resumed retry counters {:?} from {}",
                retries,
                jpath.display()
            );
            jstate.retries = retries;
        }
    }
    let mut slots: Vec<Slot> = (0..workers)
        .map(|idx| Slot {
            idx,
            child: None,
            retries: jstate.retries[idx],
            spawns: 0,
            done: false,
            failed: jstate.retries[idx] > budget,
            backoff_until: None,
            last_seq: 0,
            last_progress: Instant::now(),
        })
        .collect();

    loop {
        // One timestamp per supervision tick: backoff comparisons, hang
        // deadlines, and progress resets below all read the same clock,
        // so a slow tick cannot make one slot's deadline drift relative
        // to another's.
        let now = Instant::now();
        let mut all_settled = true;
        for slot in &mut slots {
            if slot.done || slot.failed {
                continue;
            }
            all_settled = false;
            match slot.child.take() {
                None => {
                    if slot.backoff_until.is_some_and(|t| now < t) {
                        continue;
                    }
                    slot.backoff_until = None;
                    match spawn_worker(
                        exe,
                        exp,
                        args,
                        slot.idx,
                        workers,
                        root,
                        slot.spawns == 0,
                    ) {
                        Ok(child) => {
                            slot.spawns += 1;
                            slot.last_seq = 0;
                            slot.last_progress = now;
                            slot.child = Some(child);
                        }
                        Err(e) => fail_or_retry(
                            slot,
                            &format!("failed to spawn ({e})"),
                            budget,
                            now,
                            &jpath,
                            &mut jstate,
                        ),
                    }
                }
                Some(mut child) => match child.try_wait() {
                    Ok(Some(status)) if status.success() => {
                        slot.done = true;
                        eprintln!("[orchestrator] worker {} finished", slot.idx);
                    }
                    Ok(Some(status)) => {
                        let code = status
                            .code()
                            .map_or("killed by signal".to_string(), |c| {
                                format!("exit code {c}")
                            });
                        fail_or_retry(
                            slot,
                            &format!("crashed ({code})"),
                            budget,
                            now,
                            &jpath,
                            &mut jstate,
                        );
                    }
                    Ok(None) => {
                        if let Some(hb) = Heartbeat::load(&heartbeat_path(root, slot.idx))
                        {
                            if hb.seq != slot.last_seq {
                                slot.last_seq = hb.seq;
                                slot.last_progress = now;
                            }
                        }
                        if now.saturating_duration_since(slot.last_progress) > deadline {
                            eprintln!(
                                "[orchestrator] worker {} hung (no heartbeat for \
                                 {} ms); killing it",
                                slot.idx,
                                now.saturating_duration_since(slot.last_progress).as_millis()
                            );
                            let _ = child.kill();
                            let _ = child.wait();
                            fail_or_retry(slot, "hung", budget, now, &jpath, &mut jstate);
                        } else {
                            slot.child = Some(child);
                        }
                    }
                    Err(e) => {
                        let _ = child.kill();
                        let _ = child.wait();
                        fail_or_retry(
                            slot,
                            &format!("unwaitable ({e})"),
                            budget,
                            now,
                            &jpath,
                            &mut jstate,
                        );
                    }
                },
            }
        }
        if all_settled {
            break;
        }
        std::thread::sleep(Duration::from_millis(POLL_MS));
    }
    slots
}

/// Merge per-worker results into the final `(band40, band70)` table, in
/// the exact order the serial pipeline produces. A task whose result is
/// unreadable — its owner exhausted the retry budget mid-shard, or its
/// store is damaged — degrades to a labelled row instead of aborting.
fn merge_rows(
    exp: &ExperimentScale,
    seed: u64,
    workers: usize,
    root: &Path,
    fp: &str,
) -> (Vec<FinalRow>, Vec<FinalRow>) {
    let n_method_tasks = MethodId::ALL.len() * 2;
    let baseline: FinalRow = cache::load_from(
        &worker_dir(root, 0),
        &baseline_key(exp.name, seed),
        fp,
    )
    .unwrap_or_else(|| degraded_row("baseline", "worker 0 unavailable"));
    let mut band40 = vec![baseline];
    let mut band70 = Vec::new();
    for i in 0..table2_task_count() {
        let owner = task_owner(i, workers);
        let rows: Vec<(usize, FinalRow)> = cache::load_from(
            &worker_dir(root, owner),
            &shard_key(exp.name, seed, i),
            fp,
        )
        .unwrap_or_else(|| {
            let why = format!("worker {owner} unavailable");
            if i < n_method_tasks {
                vec![(i % 2, degraded_row(MethodId::ALL[i / 2].name(), &why))]
            } else {
                let algo = harness::Algo::ALL[i - n_method_tasks];
                vec![
                    (0, degraded_row(algo.name(), &why)),
                    (1, degraded_row(algo.name(), &why)),
                ]
            }
        });
        for (band, row) in rows {
            if band == 0 {
                band40.push(row);
            } else {
                band70.push(row);
            }
        }
    }
    (band40, band70)
}

/// Sharded drop-in for [`harness::table2_rows`]: supervise `args.workers`
/// child processes over the Table 2 grid and merge their results. Falls
/// back to the in-process pool when self-exec is unavailable — degraded
/// but never aborted.
pub fn table2_rows_sharded(
    exp: &ExperimentScale,
    args: &BenchArgs,
) -> (Vec<FinalRow>, Vec<FinalRow>) {
    let seed = args.seed;
    let key = format!("table2_{}_s{seed}", exp.name);
    let fp = run_fingerprint(exp, seed);
    if !args.fresh {
        if let Some(rows) = cache::load(&key, &fp) {
            eprintln!("[cache] reusing {key}");
            return rows;
        }
    }
    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            eprintln!(
                "[orchestrator] cannot resolve the worker executable ({e}); \
                 degrading to the in-process run"
            );
            return harness::table2_rows(exp, seed, args.fresh);
        }
    };
    let workers = args.workers.clamp(1, table2_task_count());
    let root = cache::cache_dir();
    if let Err(e) = std::fs::create_dir_all(&root) {
        eprintln!(
            "[orchestrator] cannot create results root {} ({e}); \
             degrading to the in-process run",
            root.display()
        );
        return harness::table2_rows(exp, seed, args.fresh);
    }
    eprintln!(
        "[orchestrator] {}: sharding {} tasks across {workers} worker(s), \
         heartbeat {} ms, {} retries",
        exp.name,
        table2_task_count(),
        args.heartbeat_ms,
        args.retries
    );
    // Compute the global artifacts (experience corpus + embeddings) once,
    // in the supervisor's own store, before any worker spawns: every
    // worker that owns a search task pulls them through the shared-store
    // fallback instead of re-deriving them per process.
    let _ = harness::automc_embeddings(
        &StrategySpace::full(),
        "full",
        seed,
        args.fresh,
        true,
        true,
    );
    let slots = supervise(&exe, exp, args, workers, &root, &fp);
    let failed: Vec<usize> =
        slots.iter().filter(|s| s.failed).map(|s| s.idx).collect();
    if !failed.is_empty() {
        eprintln!("[orchestrator] degraded workers: {failed:?}");
    }
    let retries_total: u64 = slots.iter().map(|s| s.retries).sum();
    eprintln!("[orchestrator] {} complete ({retries_total} retries)", exp.name);
    // Supervisor-side view of the shared blob store's health over the run
    // (each worker additionally reports its own `[memo]` counters).
    let store = automc_compress::store::counters();
    eprintln!(
        "[orchestrator] spill store: {} published, {} hits, {} evicted, \
         {} healed, {} raced, {} index rebuilds",
        store.publishes,
        store.hits,
        store.evictions,
        store.healed,
        store.raced,
        store.index_rebuilds
    );
    let rows = merge_rows(exp, seed, workers, &root, &fp);
    cache::store(&key, &fp, &rows);
    journal::discard(&OrchJournal::path(&root, exp.name, seed));
    rows
}

/// Load a cached value from the supervisor's own store or, failing that,
/// from any worker sub-store under it — the sharded counterpart of
/// [`cache::load`] for artifacts (like search histories) that live where
/// the owning worker ran.
pub fn load_result_any<T: FromJson>(key: &str, fingerprint: &str) -> Option<T> {
    if let Some(v) = cache::load(key, fingerprint) {
        return Some(v);
    }
    let root = cache::cache_dir();
    for idx in 0..table2_task_count() {
        let dir = worker_dir(&root, idx);
        if !dir.exists() {
            break;
        }
        if let Some(v) = cache::load_from(&dir, key, fingerprint) {
            return Some(v);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_sharding_covers_every_task_once() {
        for workers in 1..=5 {
            let mut seen = vec![0usize; table2_task_count()];
            for idx in 0..workers {
                for i in (0..table2_task_count())
                    .filter(|&i| task_owner(i, workers) == idx)
                {
                    seen[i] += 1;
                }
            }
            assert!(seen.iter().all(|&n| n == 1), "workers={workers}: {seen:?}");
        }
    }

    #[test]
    fn worker_spec_roundtrip_and_rejection() {
        let (exp, idx, n) = parse_worker_spec("smoke:1/4").expect("valid spec");
        assert_eq!(exp.name, "smoke");
        assert_eq!((idx, n), (1, 4));
        assert!(parse_worker_spec("exp1:0/2").is_some());
        assert!(parse_worker_spec("exp2:3/4").is_some());
        assert!(parse_worker_spec("nope:0/2").is_none(), "unknown scale");
        assert!(parse_worker_spec("smoke:2/2").is_none(), "idx out of range");
        assert!(parse_worker_spec("smoke:0/0").is_none(), "zero workers");
        assert!(parse_worker_spec("smoke").is_none());
        assert!(parse_worker_spec("smoke:x/y").is_none());
    }

    #[test]
    fn orchestrator_journal_roundtrips_and_checks_tag() {
        let dir = std::env::temp_dir()
            .join(format!("automc-orch-journal-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = OrchJournal::path(&dir, "smoke", 7);
        let j = OrchJournal { tag: "orch-v1|fp|w3".into(), retries: vec![0, 2, 1] };
        j.save(&path);
        assert_eq!(
            OrchJournal::load(&path, "orch-v1|fp|w3", 3),
            Some(vec![0, 2, 1])
        );
        assert_eq!(
            OrchJournal::load(&path, "orch-v1|other|w3", 3),
            None,
            "tag mismatch must be ignored"
        );
        assert_eq!(
            OrchJournal::load(&path, "orch-v1|fp|w3", 4),
            None,
            "worker-count mismatch must be ignored"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn degraded_merge_labels_missing_tasks() {
        // An empty root: every task is missing, every row degraded.
        let dir = std::env::temp_dir()
            .join(format!("automc-orch-merge-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let (b40, b70) = merge_rows(&smoke(), 3, 2, &dir, "s3|none");
        assert_eq!(b40.len(), 11);
        assert_eq!(b70.len(), 10);
        assert!(b40[0].algorithm.contains("baseline"));
        assert!(b40[0].algorithm.contains("worker 0 unavailable"));
        // Round-robin: odd tasks belong to worker 1.
        assert!(b70[0].algorithm.contains("worker 1 unavailable"), "{}", b70[0].algorithm);
        for row in b40.iter().skip(1).chain(&b70) {
            assert_eq!(row.params, 0);
            assert!(row.algorithm.contains("unavailable"), "{}", row.algorithm);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
