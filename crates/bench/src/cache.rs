//! JSON result cache shared by the reproduction binaries.
//!
//! Searches are the expensive part of the pipeline; Table 3 and Figures
//! 4/6 reuse Table 2's searches through this cache. Files live under
//! `target/automc-results/` and are plain JSON — inspectable and
//! hand-deletable.
//!
//! Every entry is wrapped in an envelope carrying a *fingerprint* of the
//! run configuration (seed + scale-config summary). Keys alone proved
//! unsafe: a cached Table 2 run from one `--seed`/scale combination was
//! silently reused for another. A fingerprint mismatch — including any
//! pre-envelope cache file — is treated as a miss and recomputed.
//!
//! Entries are written atomically (temp file + rename) and carry an
//! FNV-1a 64 checksum of the payload, so a torn write, truncation, or
//! bit-flip is detected on load and treated as a logged miss rather than
//! parsed into garbage results; the corrupt file itself is *moved aside*
//! into a `quarantine/` directory (the same discipline as the blob
//! store's healing path, see `automc_compress::store`) so a bad entry can
//! be post-mortemed while the next store heals the key. The
//! `corrupt@cache:n` fault site (`automc_tensor::fault`) flips payload
//! bytes just before the n-th store to exercise that rejection path
//! deterministically.

use automc_compress::store::{fnv1a64, quarantine_file, write_atomic_retry};
use automc_json::{field, obj, FromJson, ToJson, Value};
use automc_tensor::fault::{self, FaultKind};
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};

/// Latched when a cache write keeps failing after retries: further stores
/// become no-ops for the rest of the process (results are still returned
/// to the caller — only their persistence is lost).
static STORE_DISABLED: AtomicBool = AtomicBool::new(false);

/// Directory holding the cache files. `AUTOMC_RESULTS_DIR` overrides the
/// location wholesale (the kill/resume smoke stage isolates its runs this
/// way without forcing a rebuild via `CARGO_TARGET_DIR`); otherwise it is
/// anchored to the workspace `target/` directory via the crate manifest,
/// so binaries, tests, and benches agree on the location regardless of
/// their working directory.
pub fn cache_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("AUTOMC_RESULTS_DIR") {
        if !dir.is_empty() {
            return PathBuf::from(dir);
        }
    }
    let base = std::env::var("CARGO_TARGET_DIR")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../target").into());
    PathBuf::from(base).join("automc-results")
}

/// Path of a cache entry.
pub fn cache_path(key: &str) -> PathBuf {
    cache_dir().join(format!("{key}.json"))
}

fn read_envelope(key: &str) -> Option<(String, Value)> {
    read_envelope_at(&cache_path(key), key)
}

/// Quarantine a corrupt cache entry (moved aside, not deleted) and log
/// where it went; the next [`store`] of the key heals it.
fn quarantine_entry(path: &std::path::Path, key: &str, why: &str) {
    match quarantine_file(path) {
        Some(dest) => eprintln!(
            "[cache] {key}: {why}; quarantined to {} and recomputing",
            dest.display()
        ),
        None => eprintln!("[cache] {key}: {why}; removed and recomputing"),
    }
}

fn read_envelope_at(path: &std::path::Path, key: &str) -> Option<(String, Value)> {
    let text = fs::read_to_string(path).ok()?;
    let v = match automc_json::parse(&text) {
        Ok(v) => v,
        Err(_) => {
            quarantine_entry(path, key, "unparsable entry");
            return None;
        }
    };
    // Checksummed format: {"checksum": "<fnv hex>", "payload": "<json>"}.
    if let (Some(checksum), Some(payload)) = (
        v.get("checksum")
            .and_then(|c| c.as_str())
            .and_then(|c| u64::from_str_radix(c, 16).ok()),
        v.get("payload").and_then(|p| p.as_str()),
    ) {
        if fnv1a64(payload.as_bytes()) != checksum {
            quarantine_entry(path, key, "checksum mismatch (corrupt entry)");
            return None;
        }
        let Ok(inner) = automc_json::parse(payload) else {
            quarantine_entry(path, key, "corrupt payload");
            return None;
        };
        let fp: String = field(&inner, "fingerprint")?;
        return Some((fp, inner.get("value")?.clone()));
    }
    // Pre-checksum envelope: accept it once (it will be rewritten with a
    // checksum on the next store).
    let fp: String = field(&v, "fingerprint")?;
    let value = v.get("value")?.clone();
    Some((fp, value))
}

/// Load a cached value if present, parseable, and recorded under the same
/// fingerprint; anything else is a miss.
pub fn load<T: FromJson>(key: &str, fingerprint: &str) -> Option<T> {
    let (fp, value) = read_envelope(key)?;
    if fp != fingerprint {
        eprintln!("[cache] {key}: fingerprint mismatch ({fp} != {fingerprint}), recomputing");
        return None;
    }
    T::from_json(&value)
}

/// [`load`] from an explicit store directory instead of [`cache_dir`].
/// The multi-process orchestrator reads worker results this way: each
/// worker persists into its own isolated sub-store, and the supervisor
/// merges them without re-pointing its `AUTOMC_RESULTS_DIR`.
pub fn load_from<T: FromJson>(
    dir: &std::path::Path,
    key: &str,
    fingerprint: &str,
) -> Option<T> {
    let (fp, value) = read_envelope_at(&dir.join(format!("{key}.json")), key)?;
    if fp != fingerprint {
        eprintln!("[cache] {key}: fingerprint mismatch ({fp} != {fingerprint}), recomputing");
        return None;
    }
    T::from_json(&value)
}

/// Store a value under a fingerprint. The write is atomic, retried with
/// backoff, and the payload checksummed, so readers never see a torn or
/// partially-written entry; a write that still fails after the retries
/// disables result caching for the rest of the process (retry-then-disable
/// — the computed value is returned to the caller either way).
pub fn store<T: ToJson>(key: &str, fingerprint: &str, value: &T) {
    if STORE_DISABLED.load(Ordering::Relaxed) {
        return;
    }
    let dir = cache_dir();
    if let Err(e) = fs::create_dir_all(&dir) {
        eprintln!(
            "warning: cannot create cache dir {dir:?} ({e}); result caching \
             disabled for this run"
        );
        STORE_DISABLED.store(true, Ordering::Relaxed);
        return;
    }
    let payload = obj(vec![
        ("fingerprint", fingerprint.to_json()),
        ("value", value.to_json()),
    ])
    .to_string_pretty();
    // Checksum the intended payload first; an injected corruption fault
    // then damages the stored bytes *after* checksumming, exactly as a
    // disk fault or torn write would, so the loader must catch it.
    let checksum = format!("{:016x}", fnv1a64(payload.as_bytes()));
    let mut payload_bytes = payload.into_bytes();
    if fault::tick("cache") == Some(FaultKind::Corrupt) {
        let mid = payload_bytes.len() / 2;
        payload_bytes[mid] = payload_bytes[mid].wrapping_add(1);
    }
    let envelope = obj(vec![
        ("checksum", Value::Str(checksum)),
        (
            "payload",
            Value::Str(String::from_utf8_lossy(&payload_bytes).into_owned()),
        ),
    ]);
    if let Err(e) = write_atomic_retry(&cache_path(key), envelope.to_string_pretty().as_bytes()) {
        eprintln!(
            "warning: cache entry {key} keeps failing ({e}); result caching \
             disabled for this run"
        );
        STORE_DISABLED.store(true, Ordering::Relaxed);
    }
}

/// Load from cache unless `fresh`, else compute and store.
pub fn load_or<T: ToJson + FromJson>(
    key: &str,
    fingerprint: &str,
    fresh: bool,
    compute: impl FnOnce() -> T,
) -> T {
    if !fresh {
        if let Some(v) = load(key, fingerprint) {
            eprintln!("[cache] reusing {key}");
            return v;
        }
    }
    let v = compute();
    store(key, fingerprint, &v);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_load_or() {
        let key = "unit-test-entry";
        let fp = "s1|test";
        store(key, fp, &vec![1u32, 2, 3]);
        let back: Option<Vec<u32>> = load(key, fp);
        assert_eq!(back, Some(vec![1, 2, 3]));
        let mut computed = false;
        let v: Vec<u32> = load_or(key, fp, false, || {
            computed = true;
            vec![9]
        });
        assert_eq!(v, vec![1, 2, 3]);
        assert!(!computed, "cache hit must skip compute");
        let v: Vec<u32> = load_or(key, fp, true, || vec![9]);
        assert_eq!(v, vec![9], "--fresh recomputes");
        let _ = std::fs::remove_file(cache_path(key));
    }

    #[test]
    fn fingerprint_mismatch_is_a_miss() {
        let key = "unit-test-fingerprint";
        store(key, "s1|small", &7u32);
        assert_eq!(load::<u32>(key, "s1|small"), Some(7));
        assert_eq!(load::<u32>(key, "s2|small"), None, "other seed must miss");
        assert_eq!(load::<u32>(key, "s1|large"), None, "other scale must miss");
        let v: u32 = load_or(key, "s2|small", false, || 9);
        assert_eq!(v, 9, "mismatch must recompute");
        assert_eq!(load::<u32>(key, "s2|small"), Some(9), "recompute overwrites");
        let _ = std::fs::remove_file(cache_path(key));
    }

    #[test]
    fn legacy_unwrapped_entry_is_a_miss() {
        let key = "unit-test-legacy";
        let _ = fs::create_dir_all(cache_dir());
        // Pre-envelope format: the bare value, no fingerprint.
        fs::write(cache_path(key), "[1, 2, 3]\n").unwrap();
        assert_eq!(load::<Vec<u32>>(key, "s1|test"), None);
        let _ = std::fs::remove_file(cache_path(key));
    }

    #[test]
    fn missing_entry_is_none() {
        let v: Option<Vec<u32>> = load("definitely-not-present", "s1|x");
        assert!(v.is_none());
    }

    #[test]
    fn corrupt_and_truncated_entries_are_misses() {
        let key = "unit-test-corrupt";
        let fp = "s1|test";
        store(key, fp, &vec![4u32, 5, 6]);
        assert_eq!(load::<Vec<u32>>(key, fp), Some(vec![4, 5, 6]));
        // Flip one byte somewhere in the stored payload.
        let path = cache_path(key);
        let mut bytes = fs::read(&path).unwrap();
        let idx = bytes.len() * 2 / 3;
        bytes[idx] = bytes[idx].wrapping_add(1);
        fs::write(&path, &bytes).unwrap();
        assert_eq!(load::<Vec<u32>>(key, fp), None, "bit-flip must be a miss");
        assert!(!path.exists(), "corrupt entry must be moved aside");
        let quarantined = fs::read_dir(cache_dir().join("quarantine"))
            .map(|d| {
                d.flatten()
                    .any(|e| e.file_name().to_string_lossy().contains(key))
            })
            .unwrap_or(false);
        assert!(quarantined, "corrupt entry must land in quarantine/");
        // Truncate mid-file, as a torn write would.
        store(key, fp, &vec![4u32, 5, 6]);
        let good = fs::read(&path).unwrap();
        fs::write(&path, &good[..good.len() / 2]).unwrap();
        assert_eq!(load::<Vec<u32>>(key, fp), None, "truncation must be a miss");
        // A miss recomputes and heals the entry.
        let v: Vec<u32> = load_or(key, fp, false, || vec![7]);
        assert_eq!(v, vec![7]);
        assert_eq!(load::<Vec<u32>>(key, fp), Some(vec![7]));
        let _ = fs::remove_file(path);
    }

    #[test]
    fn injected_cache_corruption_is_detected_on_load() {
        use automc_tensor::fault::FaultPlan;

        let key = "unit-test-fault-corrupt";
        let fp = "s1|test";
        fault::install(FaultPlan::parse("corrupt@cache:1").unwrap());
        store(key, fp, &vec![1u32, 2]); // corrupted on the way to disk
        store(key, fp, &vec![3u32, 4]); // second store is clean
        fault::clear();
        assert_eq!(
            load::<Vec<u32>>(key, fp),
            Some(vec![3, 4]),
            "the clean second store must have replaced the corrupt entry"
        );
        fault::install(FaultPlan::parse("corrupt@cache:1").unwrap());
        store(key, fp, &vec![9u32]);
        fault::clear();
        assert_eq!(
            load::<Vec<u32>>(key, fp),
            None,
            "a corrupted store must fail its checksum on load"
        );
        let _ = fs::remove_file(cache_path(key));
    }
}
