//! JSON result cache shared by the reproduction binaries.
//!
//! Searches are the expensive part of the pipeline; Table 3 and Figures
//! 4/6 reuse Table 2's searches through this cache. Files live under
//! `target/automc-results/` and are plain JSON — inspectable and
//! hand-deletable.
//!
//! Every entry is wrapped in an envelope carrying a *fingerprint* of the
//! run configuration (seed + scale-config summary). Keys alone proved
//! unsafe: a cached Table 2 run from one `--seed`/scale combination was
//! silently reused for another. A fingerprint mismatch — including any
//! pre-envelope cache file — is treated as a miss and recomputed.

use automc_json::{field, obj, FromJson, ToJson, Value};
use std::fs;
use std::path::PathBuf;

/// Directory holding the cache files. Anchored to the workspace `target/`
/// directory via the crate manifest, so binaries, tests, and benches agree
/// on the location regardless of their working directory.
pub fn cache_dir() -> PathBuf {
    let base = std::env::var("CARGO_TARGET_DIR")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../target").into());
    PathBuf::from(base).join("automc-results")
}

/// Path of a cache entry.
pub fn cache_path(key: &str) -> PathBuf {
    cache_dir().join(format!("{key}.json"))
}

fn read_envelope(key: &str) -> Option<(String, Value)> {
    let text = fs::read_to_string(cache_path(key)).ok()?;
    let v = automc_json::parse(&text).ok()?;
    let fp: String = field(&v, "fingerprint")?;
    let value = v.get("value")?.clone();
    Some((fp, value))
}

/// Load a cached value if present, parseable, and recorded under the same
/// fingerprint; anything else is a miss.
pub fn load<T: FromJson>(key: &str, fingerprint: &str) -> Option<T> {
    let (fp, value) = read_envelope(key)?;
    if fp != fingerprint {
        eprintln!("[cache] {key}: fingerprint mismatch ({fp} != {fingerprint}), recomputing");
        return None;
    }
    T::from_json(&value)
}

/// Store a value under a fingerprint (best-effort: cache failures only warn).
pub fn store<T: ToJson>(key: &str, fingerprint: &str, value: &T) {
    let dir = cache_dir();
    if let Err(e) = fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create cache dir {dir:?}: {e}");
        return;
    }
    let envelope = obj(vec![
        ("fingerprint", fingerprint.to_json()),
        ("value", value.to_json()),
    ]);
    if let Err(e) = fs::write(cache_path(key), envelope.to_string_pretty()) {
        eprintln!("warning: cannot write cache entry {key}: {e}");
    }
}

/// Load from cache unless `fresh`, else compute and store.
pub fn load_or<T: ToJson + FromJson>(
    key: &str,
    fingerprint: &str,
    fresh: bool,
    compute: impl FnOnce() -> T,
) -> T {
    if !fresh {
        if let Some(v) = load(key, fingerprint) {
            eprintln!("[cache] reusing {key}");
            return v;
        }
    }
    let v = compute();
    store(key, fingerprint, &v);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_load_or() {
        let key = "unit-test-entry";
        let fp = "s1|test";
        store(key, fp, &vec![1u32, 2, 3]);
        let back: Option<Vec<u32>> = load(key, fp);
        assert_eq!(back, Some(vec![1, 2, 3]));
        let mut computed = false;
        let v: Vec<u32> = load_or(key, fp, false, || {
            computed = true;
            vec![9]
        });
        assert_eq!(v, vec![1, 2, 3]);
        assert!(!computed, "cache hit must skip compute");
        let v: Vec<u32> = load_or(key, fp, true, || vec![9]);
        assert_eq!(v, vec![9], "--fresh recomputes");
        let _ = std::fs::remove_file(cache_path(key));
    }

    #[test]
    fn fingerprint_mismatch_is_a_miss() {
        let key = "unit-test-fingerprint";
        store(key, "s1|small", &7u32);
        assert_eq!(load::<u32>(key, "s1|small"), Some(7));
        assert_eq!(load::<u32>(key, "s2|small"), None, "other seed must miss");
        assert_eq!(load::<u32>(key, "s1|large"), None, "other scale must miss");
        let v: u32 = load_or(key, "s2|small", false, || 9);
        assert_eq!(v, 9, "mismatch must recompute");
        assert_eq!(load::<u32>(key, "s2|small"), Some(9), "recompute overwrites");
        let _ = std::fs::remove_file(cache_path(key));
    }

    #[test]
    fn legacy_unwrapped_entry_is_a_miss() {
        let key = "unit-test-legacy";
        let _ = fs::create_dir_all(cache_dir());
        // Pre-envelope format: the bare value, no fingerprint.
        fs::write(cache_path(key), "[1, 2, 3]\n").unwrap();
        assert_eq!(load::<Vec<u32>>(key, "s1|test"), None);
        let _ = std::fs::remove_file(cache_path(key));
    }

    #[test]
    fn missing_entry_is_none() {
        let v: Option<Vec<u32>> = load("definitely-not-present", "s1|x");
        assert!(v.is_none());
    }
}
