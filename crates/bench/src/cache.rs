//! JSON result cache shared by the reproduction binaries.
//!
//! Searches are the expensive part of the pipeline; Table 3 and Figures
//! 4/6 reuse Table 2's searches through this cache. Files live under
//! `target/automc-results/` and are plain JSON — inspectable and
//! hand-deletable.

use serde::{de::DeserializeOwned, Serialize};
use std::fs;
use std::path::PathBuf;

/// Directory holding the cache files.
pub fn cache_dir() -> PathBuf {
    let base = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".into());
    PathBuf::from(base).join("automc-results")
}

/// Path of a cache entry.
pub fn cache_path(key: &str) -> PathBuf {
    cache_dir().join(format!("{key}.json"))
}

/// Load a cached value, if present and parseable.
pub fn load<T: DeserializeOwned>(key: &str) -> Option<T> {
    let text = fs::read_to_string(cache_path(key)).ok()?;
    serde_json::from_str(&text).ok()
}

/// Store a value (best-effort: cache failures only warn).
pub fn store<T: Serialize>(key: &str, value: &T) {
    let dir = cache_dir();
    if let Err(e) = fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create cache dir {dir:?}: {e}");
        return;
    }
    match serde_json::to_string_pretty(value) {
        Ok(text) => {
            if let Err(e) = fs::write(cache_path(key), text) {
                eprintln!("warning: cannot write cache entry {key}: {e}");
            }
        }
        Err(e) => eprintln!("warning: cannot serialise cache entry {key}: {e}"),
    }
}

/// Load from cache unless `fresh`, else compute and store.
pub fn load_or<T: Serialize + DeserializeOwned>(
    key: &str,
    fresh: bool,
    compute: impl FnOnce() -> T,
) -> T {
    if !fresh {
        if let Some(v) = load(key) {
            eprintln!("[cache] reusing {key}");
            return v;
        }
    }
    let v = compute();
    store(key, &v);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_load_or() {
        let key = "unit-test-entry";
        store(key, &vec![1u32, 2, 3]);
        let back: Option<Vec<u32>> = load(key);
        assert_eq!(back, Some(vec![1, 2, 3]));
        let mut computed = false;
        let v: Vec<u32> = load_or(key, false, || {
            computed = true;
            vec![9]
        });
        assert_eq!(v, vec![1, 2, 3]);
        assert!(!computed, "cache hit must skip compute");
        let v: Vec<u32> = load_or(key, true, || vec![9]);
        assert_eq!(v, vec![9], "--fresh recomputes");
        let _ = std::fs::remove_file(cache_path(key));
    }

    #[test]
    fn missing_entry_is_none() {
        let v: Option<Vec<u32>> = load("definitely-not-present");
        assert!(v.is_none());
    }
}
