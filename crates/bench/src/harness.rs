//! Experiment orchestration shared by the reproduction binaries.

use crate::cache;
use crate::scale::{prepare_task, ExperimentScale, PreparedTask};
use automc_compress::{
    execute_scheme_checked, EvalOutcome, ExecConfig, Metrics, MethodId, Scheme, StrategySpace,
    StrategySpec,
};
use automc_core::journal;
use automc_core::{
    evolution_search_journaled, progressive_search_journaled, random_search_journaled,
    rl_search_journaled, AutoMcConfig, EvolutionConfig, JournalOptions, RlConfig, SearchBudget,
    SearchContext, SearchHistory,
};
use automc_data::ImageSet;
use automc_knowledge::{
    generate_experience, learn_embeddings, EmbeddingConfig, ExperienceCorpus, ExperienceRecord,
    MicroTask,
};
use automc_json::{field, obj, FromJson, ToJson, Value};
use automc_models::surgery::Criterion;
use automc_models::train::{divergence, AuxKind};
use automc_models::{ConvNet, ModelKind};
use automc_tensor::fault::{self, FaultKind};
use automc_tensor::{par, rng_for_task, rng_from_seed, Rng};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};

/// Whether interrupted searches and method-grid runs may resume from
/// their journals (default) or must restart from scratch (`--no-resume`).
/// Orthogonal to `--fresh`, which discards *completed* cached results:
/// `--fresh` still resumes in-progress work unless `--no-resume` is also
/// given.
static RESUME: AtomicBool = AtomicBool::new(true);

/// Toggle journal resume for this process (the `--no-resume` flag).
pub fn set_resume(enabled: bool) {
    RESUME.store(enabled, Ordering::Relaxed);
}

/// Whether journal resume is enabled for this process (shared with the
/// multi-process orchestrator, whose retry-counter journal obeys the same
/// `--no-resume` switch).
pub fn resume_enabled() -> bool {
    RESUME.load(Ordering::Relaxed)
}

/// The cache fingerprint of a prepared-task run: every cached artifact
/// derived from a `PreparedTask` records this and is a miss under any
/// other seed, scale configuration, or kernel numerics version (cached
/// rows are float results of the tensor kernels).
pub fn run_fingerprint(scale: &ExperimentScale, seed: u64) -> String {
    format!(
        "k{}|s{seed}|{}",
        automc_tensor::KERNEL_NUMERICS_VERSION,
        scale.fingerprint()
    )
}

/// One row of Table 2 / Table 3.
#[derive(Debug, Clone)]
pub struct FinalRow {
    /// Algorithm / method name.
    pub algorithm: String,
    /// Final parameter count.
    pub params: usize,
    /// Parameter reduction (%) vs base.
    pub pr: f32,
    /// Final FLOPs.
    pub flops: u64,
    /// FLOPs reduction (%) vs base.
    pub fr: f32,
    /// Final accuracy (%).
    pub acc: f32,
    /// Accuracy increase (%) vs base.
    pub inc: f32,
    /// The scheme behind the row (None for the baseline row).
    pub scheme: Option<Scheme>,
}

impl ToJson for FinalRow {
    fn to_json(&self) -> Value {
        obj(vec![
            ("algorithm", self.algorithm.to_json()),
            ("params", self.params.to_json()),
            ("pr", self.pr.to_json()),
            ("flops", self.flops.to_json()),
            ("fr", self.fr.to_json()),
            ("acc", self.acc.to_json()),
            ("inc", self.inc.to_json()),
            ("scheme", self.scheme.to_json()),
        ])
    }
}

impl FromJson for FinalRow {
    fn from_json(v: &Value) -> Option<Self> {
        Some(FinalRow {
            algorithm: field(v, "algorithm")?,
            params: field(v, "params")?,
            pr: field(v, "pr")?,
            flops: field(v, "flops")?,
            fr: field(v, "fr")?,
            acc: field(v, "acc")?,
            inc: field(v, "inc")?,
            scheme: field(v, "scheme")?,
        })
    }
}

impl FinalRow {
    /// Row for the uncompressed base model.
    pub fn baseline(task: &PreparedTask) -> FinalRow {
        FinalRow {
            algorithm: "baseline".into(),
            params: task.base_metrics.params,
            pr: 0.0,
            flops: task.base_metrics.flops,
            fr: 0.0,
            acc: task.base_metrics.acc * 100.0,
            inc: 0.0,
            scheme: None,
        }
    }

    fn from_metrics(
        algorithm: String,
        metrics: &Metrics,
        base: &Metrics,
        scheme: Option<Scheme>,
    ) -> FinalRow {
        FinalRow {
            algorithm,
            params: metrics.params,
            pr: metrics.pr(base) * 100.0,
            flops: metrics.flops,
            fr: metrics.fr(base) * 100.0,
            acc: metrics.acc * 100.0,
            inc: metrics.ar(base) * 100.0,
            scheme,
        }
    }
}

// ------------------------------------------------------------------------
// Human-designed method baselines (grid-searched, PR target fixed)
// ------------------------------------------------------------------------

/// A small grid of configurations per method at a fixed ratio — the
/// paper's "apply grid search to get their optimal hyperparameter
/// settings", shrunk to stay within the repro budget.
pub fn method_grid(method: MethodId, ratio: f32) -> Vec<StrategySpec> {
    match method {
        MethodId::Lma => vec![
            StrategySpec::Lma { ft_epochs: 0.3, ratio, temperature: 3.0, alpha: 0.5 },
            StrategySpec::Lma { ft_epochs: 0.5, ratio, temperature: 6.0, alpha: 0.3 },
            StrategySpec::Lma { ft_epochs: 0.5, ratio, temperature: 3.0, alpha: 0.99 },
        ],
        MethodId::Legr => vec![
            StrategySpec::Legr {
                ft_epochs: 0.4,
                ratio,
                max_prune: 0.7,
                evo_epochs: 0.4,
                criterion: Criterion::L2Weight,
            },
            StrategySpec::Legr {
                ft_epochs: 0.5,
                ratio,
                max_prune: 0.9,
                evo_epochs: 0.5,
                criterion: Criterion::L2BnParam,
            },
            StrategySpec::Legr {
                ft_epochs: 0.4,
                ratio,
                max_prune: 0.9,
                evo_epochs: 0.4,
                criterion: Criterion::L1Weight,
            },
        ],
        MethodId::Ns => vec![
            StrategySpec::Ns { ft_epochs: 0.4, ratio, max_prune: 0.7 },
            StrategySpec::Ns { ft_epochs: 0.5, ratio, max_prune: 0.9 },
        ],
        MethodId::Sfp => vec![
            StrategySpec::Sfp { ratio, bp_epochs: 0.3, update_freq: 1 },
            StrategySpec::Sfp { ratio, bp_epochs: 0.5, update_freq: 3 },
        ],
        MethodId::Hos => vec![
            StrategySpec::Hos {
                ft_epochs: 0.3,
                ratio,
                global: 1,
                criterion: Criterion::K34,
                opt_epochs: 0.3,
                mse_factor: 1.0,
            },
            StrategySpec::Hos {
                ft_epochs: 0.4,
                ratio,
                global: 2,
                criterion: Criterion::SkewKur,
                opt_epochs: 0.4,
                mse_factor: 3.0,
            },
        ],
        MethodId::Lfb => vec![
            StrategySpec::Lfb { ft_epochs: 0.4, ratio, aux_factor: 1.0, aux_loss: AuxKind::Ce },
            StrategySpec::Lfb { ft_epochs: 0.5, ratio, aux_factor: 3.0, aux_loss: AuxKind::Mse },
        ],
    }
}

/// Grid-search a method on the search sample, then run the winning config
/// on the full training data and report its row. `fresh` discards any
/// cached row (the grid rows previously ignored `--fresh` and always
/// reused the cache); an in-progress grid checkpoint still resumes unless
/// `--no-resume` was given.
pub fn method_baseline_row(
    task: &PreparedTask,
    method: MethodId,
    ratio: f32,
    seed: u64,
    fresh: bool,
) -> FinalRow {
    let key = format!(
        "method_{}_{}_{}_r{}_s{seed}",
        task.scale.name,
        task.base_model.kind,
        method.name(),
        (ratio * 100.0) as u32
    )
    .replace(['-', ' '], "_");
    let fp = run_fingerprint(&task.scale, seed);
    cache::load_or(&key, &fp, fresh, || {
        method_baseline_row_uncached(task, method, ratio, seed, &key, &fp)
    })
}

/// Transfer-study variant: skip per-target grid selection (Table 3 has
/// 4 extra models × 6 methods; re-running the grid on every target would
/// dominate the budget) and run the grid's lead configuration directly.
pub fn method_row_quick(
    task: &PreparedTask,
    method: MethodId,
    ratio: f32,
    seed: u64,
    fresh: bool,
) -> FinalRow {
    let key = format!(
        "methodq_{}_{}_{}_r{}_s{seed}",
        task.scale.name,
        task.base_model.kind,
        method.name(),
        (ratio * 100.0) as u32
    )
    .replace(['-', ' '], "_");
    let fp = run_fingerprint(&task.scale, seed);
    cache::load_or(&key, &fp, fresh, || {
        let mut rng = rng_for_task(seed ^ 0x7A00, method as u64);
        let spec = method_grid(method, ratio)[0];
        let mut model = task.base_model.clone_net();
        if supervised_apply(&spec, &mut model, &task.train_set, &task.exec, &mut rng).is_some() {
            let metrics = Metrics::measure(&mut model, &task.test_set);
            FinalRow::from_metrics(method.name().into(), &metrics, &task.base_metrics, None)
        } else {
            degraded_row(method.name(), "run failed")
        }
    })
}

/// Apply one strategy under supervision: `catch_unwind` isolation plus
/// divergence detection. `None` means the application panicked or its
/// training diverged — the half-modified model must be discarded.
fn supervised_apply(
    spec: &StrategySpec,
    model: &mut ConvNet,
    data: &ImageSet,
    exec: &ExecConfig,
    rng: &mut Rng,
) -> Option<()> {
    let injected = fault::tick("eval");
    divergence::reset();
    let result = {
        let model_ref = &mut *model;
        let rng_ref = &mut *rng;
        catch_unwind(AssertUnwindSafe(move || {
            if injected == Some(FaultKind::Panic) {
                panic!("{}", fault::INJECTED_PANIC_MSG);
            }
            automc_compress::apply_strategy(spec, model_ref, data, exec, rng_ref);
        }))
    };
    match result {
        Ok(()) => {
            if divergence::take() {
                eprintln!(
                    "[harness] {} configuration diverged; skipping",
                    spec.method().name()
                );
                None
            } else {
                Some(())
            }
        }
        Err(payload) => {
            divergence::reset();
            eprintln!(
                "[harness] {} configuration panicked ({}); skipping",
                spec.method().name(),
                fault::payload_message(payload.as_ref())
            );
            None
        }
    }
}

/// The degraded row reported when a result could not be produced — every
/// attempt at a method failed, or (in sharded runs) the owning worker
/// exhausted its retry budget: zero metrics, clearly labelled, never
/// mistakable for a real result.
pub fn degraded_row(name: &str, why: &str) -> FinalRow {
    FinalRow {
        algorithm: format!("{name} ({why})"),
        params: 0,
        pr: 0.0,
        flops: 0,
        fr: 0.0,
        acc: 0.0,
        inc: 0.0,
        scheme: None,
    }
}

/// Crash-safe checkpoint of an in-progress method-grid run: which
/// configurations have been scored, the best so far, the RNG stream, and
/// the fault-injection counters. Written (checksummed + atomic) after
/// every grid configuration so a killed `table2` run resumes the grid
/// bitwise-identically instead of re-running completed configurations.
struct GridCkpt {
    /// Identifies the exact run (`gridckpt-v1|<run fp>|<cache key>`); a
    /// mismatch means the checkpoint belongs to a different run.
    tag: String,
    /// Grid configurations already scored.
    done: usize,
    /// Best `(sample accuracy, grid index)` among the scored configs.
    best: Option<(f32, usize)>,
    /// xoshiro256** RNG state after the last scored configuration.
    rng: [u64; 4],
    /// `automc_tensor::fault::counters` snapshot (see the search journal).
    fault_counters: Vec<(String, u64)>,
}

impl GridCkpt {
    fn to_json(&self) -> Value {
        let rng_hex = self
            .rng
            .iter()
            .map(|w| Value::Str(format!("{w:016x}")))
            .collect::<Vec<_>>();
        obj(vec![
            ("tag", self.tag.to_json()),
            ("done", self.done.to_json()),
            ("best", self.best.to_json()),
            ("rng", Value::Arr(rng_hex)),
            ("fault_counters", self.fault_counters.to_json()),
        ])
    }

    fn from_json(v: &Value) -> Option<Self> {
        let Value::Arr(rng_words) = v.get("rng")? else { return None };
        if rng_words.len() != 4 {
            return None;
        }
        let mut rng = [0u64; 4];
        for (dst, w) in rng.iter_mut().zip(rng_words) {
            *dst = u64::from_str_radix(w.as_str()?, 16).ok()?;
        }
        Some(GridCkpt {
            tag: field(v, "tag")?,
            done: field(v, "done")?,
            best: field(v, "best")?,
            rng,
            fault_counters: field(v, "fault_counters")?,
        })
    }

    fn load(path: &std::path::Path, tag: &str) -> Option<Self> {
        let payload = journal::load_checksummed(path)?;
        let ckpt = match automc_json::parse(&payload).ok().as_ref().and_then(Self::from_json) {
            Some(c) => c,
            None => {
                eprintln!(
                    "warning: grid checkpoint {} is corrupt; starting fresh",
                    path.display()
                );
                return None;
            }
        };
        if ckpt.tag != tag {
            eprintln!(
                "warning: grid checkpoint {} belongs to a different run; ignoring",
                path.display()
            );
            return None;
        }
        Some(ckpt)
    }
}

fn method_baseline_row_uncached(
    task: &PreparedTask,
    method: MethodId,
    ratio: f32,
    seed: u64,
    key: &str,
    fp: &str,
) -> FinalRow {
    // Task-id derivation keeps every (method, ratio) pair on its own RNG
    // stream; the previous `seed ^ label-length` scheme collided for
    // methods whose labels happened to share a length.
    let mut rng = rng_for_task(seed, ((ratio * 100.0) as u64) << 8 | method as u64);
    let grid = method_grid(method, ratio);
    let journal_path = cache::cache_dir().join(format!("{key}.journal"));
    let tag = format!("gridckpt-v1|{fp}|{key}");
    // Select by quick evaluation on the sample; failed configurations are
    // skipped rather than aborting the whole table.
    let mut best: Option<(f32, usize)> = None;
    let mut start = 0usize;
    // Retry-then-disable, as for the search journals: a checkpoint write
    // that keeps failing turns off checkpointing for this grid run.
    let mut journal_to = Some(journal_path.as_path());
    // The intent-record fingerprint for this grid run (the grid checkpoint
    // itself is keyed by the string tag; intent records use a u64).
    let intent_fp = journal::fnv1a64(tag.as_bytes());
    if resume_enabled() {
        if let Some(mut ckpt) = GridCkpt::load(&journal_path, &tag) {
            start = ckpt.done.min(grid.len());
            best = ckpt.best;
            rng = Rng::from_state(ckpt.rng);
            // An `exit@eval` fault that fired mid-grid left a pre-eval
            // intent record; merging it stops the fault from re-arming.
            journal::merge_eval_intent(&journal_path, intent_fp, &mut ckpt.fault_counters);
            fault::restore_counters(&ckpt.fault_counters);
            eprintln!(
                "[journal] resumed {}@{ratio} grid at configuration {start}/{}",
                method.name(),
                grid.len()
            );
        }
    }
    for (i, spec) in grid.iter().enumerate().skip(start) {
        journal::record_eval_intent(journal_to, intent_fp);
        let mut model = task.base_model.clone_net();
        if supervised_apply(spec, &mut model, &task.search_sample, &task.exec, &mut rng).is_some()
        {
            let acc = automc_models::train::evaluate(&mut model, &task.search_eval);
            if acc.is_finite() && best.map_or(true, |(b, _)| acc > b) {
                best = Some((acc, i));
            }
        }
        if let Some(path) = journal_to {
            let ckpt = GridCkpt {
                tag: tag.clone(),
                done: i + 1,
                best,
                rng: rng.state(),
                fault_counters: fault::counters(),
            };
            if let Err(e) = journal::save_checksummed(path, &ckpt.to_json().to_string_pretty()) {
                eprintln!(
                    "warning: grid checkpoint {} keeps failing ({e}); \
                     checkpointing disabled for this run",
                    path.display()
                );
                journal::discard(path);
                journal_to = None;
            }
        }
    }
    let row = (|| {
        let Some((_, best_idx)) = best else {
            eprintln!(
                "[harness] {}@{ratio}: every grid configuration failed; reporting degraded row",
                method.name()
            );
            return degraded_row(method.name(), "all configurations failed");
        };
        // Final run on the full training split. Not checkpointed: a kill
        // here resumes past the fully-recorded grid and redoes only this
        // run, with the RNG stream restored from the last checkpoint.
        journal::record_eval_intent(journal_to, intent_fp);
        let mut model = task.base_model.clone_net();
        if supervised_apply(&grid[best_idx], &mut model, &task.train_set, &task.exec, &mut rng)
            .is_none()
        {
            return degraded_row(method.name(), "final run failed");
        }
        let metrics = Metrics::measure(&mut model, &task.test_set);
        FinalRow::from_metrics(method.name().into(), &metrics, &task.base_metrics, None)
    })();
    journal::discard(&journal_path);
    row
}

// ------------------------------------------------------------------------
// Embedding pipeline (Algorithm 1) with caching
// ------------------------------------------------------------------------

/// Serialisable mirror of the experience corpus.
struct CorpusDto {
    records: Vec<(usize, Vec<f32>, f32, f32)>,
}

impl ToJson for CorpusDto {
    fn to_json(&self) -> Value {
        obj(vec![("records", self.records.to_json())])
    }
}

impl FromJson for CorpusDto {
    fn from_json(v: &Value) -> Option<Self> {
        Some(CorpusDto { records: field(v, "records")? })
    }
}

/// `cache::load_or` with a read-only fallback store for *global*
/// artifacts — the experience corpus and the embeddings are seed-keyed
/// and task-independent, so a sharded worker can reuse the copy its
/// supervisor already computed instead of re-deriving it (the dominant
/// fixed cost of a run). `AUTOMC_SHARED_RESULTS_DIR` names the fallback
/// store (the supervisor's own result dir; never written by workers); a
/// fallback hit is copied into the primary store so later lookups are
/// local.
pub fn load_or_shared<T: ToJson + FromJson>(
    key: &str,
    fingerprint: &str,
    fresh: bool,
    compute: impl FnOnce() -> T,
) -> T {
    if !fresh {
        if let Some(v) = cache::load(key, fingerprint) {
            eprintln!("[cache] reusing {key}");
            return v;
        }
        if let Ok(dir) = std::env::var("AUTOMC_SHARED_RESULTS_DIR") {
            if !dir.is_empty() {
                if let Some(v) =
                    cache::load_from(std::path::Path::new(&dir), key, fingerprint)
                {
                    eprintln!("[cache] reusing {key} from shared store");
                    cache::store(key, fingerprint, &v);
                    return v;
                }
            }
        }
    }
    let v = compute();
    cache::store(key, fingerprint, &v);
    v
}

/// Generate (or load) the experience corpus for a strategy space.
pub fn experience_corpus(
    space: &StrategySpace,
    space_tag: &str,
    seed: u64,
    fresh: bool,
) -> ExperienceCorpus {
    let key = format!("corpus_{space_tag}_s{seed}");
    // The corpus micro-tasks are hard-coded, so the seed alone pins them.
    let fp = format!("s{seed}|corpus");
    let dto = load_or_shared(&key, &fp, fresh, || {
        eprintln!("[harness] generating experience corpus ({space_tag})…");
        let mut rng = rng_from_seed(seed ^ 0xE0);
        let mut tasks = vec![
            MicroTask::new(
                automc_data::SyntheticKind::Cifar10Like,
                ModelKind::ResNet(20),
                4,
                240,
                120,
                4.0,
                901,
                &mut rng,
            ),
            MicroTask::new(
                automc_data::SyntheticKind::Cifar10Like,
                ModelKind::Vgg(13),
                8,
                240,
                120,
                4.0,
                902,
                &mut rng,
            ),
        ];
        let exec = automc_compress::ExecConfig { pretrain_epochs: 4.0, ..Default::default() };
        let corpus = generate_experience(space, &mut tasks, 36, &exec, &mut rng);
        CorpusDto {
            records: corpus
                .records
                .iter()
                .map(|r| (r.strategy, r.task.clone(), r.ar, r.pr))
                .collect(),
        }
    });
    let mut corpus = ExperienceCorpus::empty(7);
    for (sid, task, ar, pr) in dto.records {
        corpus.push(ExperienceRecord { strategy: sid, task, ar, pr });
    }
    corpus
}

/// Learn (or load) Algorithm 1 embeddings for a space.
pub fn automc_embeddings(
    space: &StrategySpace,
    space_tag: &str,
    seed: u64,
    fresh: bool,
    use_kg: bool,
    use_experience: bool,
) -> Vec<Vec<f32>> {
    let key = format!(
        "emb_{space_tag}_s{seed}_kg{}_exp{}",
        use_kg as u8, use_experience as u8
    );
    let fp = format!("s{seed}|emb");
    load_or_shared(&key, &fp, fresh, || {
        let corpus = experience_corpus(space, space_tag, seed, fresh);
        eprintln!("[harness] learning embeddings ({key})…");
        let mut rng = rng_from_seed(seed ^ 0xE1);
        learn_embeddings(
            space,
            &corpus,
            &EmbeddingConfig::default(),
            use_kg,
            use_experience,
            &mut rng,
        )
    })
}

// ------------------------------------------------------------------------
// Search runners with caching
// ------------------------------------------------------------------------

/// The four AutoML algorithms of the comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// AutoMC (progressive + knowledge embeddings).
    AutoMc,
    /// Multi-objective EA baseline.
    Evolution,
    /// Recurrent-controller REINFORCE baseline.
    Rl,
    /// Random search baseline.
    Random,
}

impl Algo {
    /// All four, reporting order.
    pub const ALL: [Algo; 4] = [Algo::AutoMc, Algo::Evolution, Algo::Rl, Algo::Random];

    /// Display/cache name.
    pub fn name(&self) -> &'static str {
        match self {
            Algo::AutoMc => "AutoMC",
            Algo::Evolution => "Evolution",
            Algo::Rl => "RL",
            Algo::Random => "Random",
        }
    }
}

/// Options threaded through the public job-unit API ([`run_search_with`],
/// [`table2_rows_with`]) — how an embedding caller (the serve daemon)
/// observes and steers a run without changing its results.
#[derive(Debug, Clone, Default)]
pub struct RunOpts {
    /// Round observer: streamed progress plus cooperative cancellation at
    /// round boundaries (see `automc_core::progress`).
    pub hook: automc_core::RoundHook,
    /// Directory for the search journals; defaults to the result cache
    /// dir. The serve daemon points this at a job-keyed directory
    /// (`journal::job_dir`) so concurrent jobs never share a journal file
    /// while a resubmitted job resumes its own.
    pub journal_dir: Option<std::path::PathBuf>,
}

/// Run one AutoML algorithm on a prepared task (cached).
#[allow(clippy::too_many_arguments)]
pub fn run_search(
    algo: Algo,
    task: &PreparedTask,
    space: &StrategySpace,
    embeddings: Option<&[Vec<f32>]>,
    seed: u64,
    fresh: bool,
    cache_tag: &str,
) -> SearchHistory {
    // The default hook never cancels, so the run always completes.
    run_search_with(algo, task, space, embeddings, seed, fresh, cache_tag, &RunOpts::default())
        .unwrap_or_default()
}

/// [`run_search`] with [`RunOpts`]: the hook observes every round and may
/// cancel. Returns `None` when the run was cancelled — the partial
/// history is *not* cached (a later run must not mistake it for a
/// finished search) but the round journal stays on disk, so resubmitting
/// the same run resumes at the cancelled round.
#[allow(clippy::too_many_arguments)]
pub fn run_search_with(
    algo: Algo,
    task: &PreparedTask,
    space: &StrategySpace,
    embeddings: Option<&[Vec<f32>]>,
    seed: u64,
    fresh: bool,
    cache_tag: &str,
    run_opts: &RunOpts,
) -> Option<SearchHistory> {
    let key = format!("{cache_tag}_s{seed}_{}", algo.name().to_lowercase());
    let fp = run_fingerprint(&task.scale, seed);
    if !fresh {
        if let Some(v) = cache::load::<SearchHistory>(&key, &fp) {
            eprintln!("[cache] reusing {key}");
            return Some(v);
        }
    }
    let history = {
        eprintln!("[harness] running {} on {cache_tag}…", algo.name());
        // Per-algorithm RNG stream keyed by the enum discriminant: the old
        // `seed ^ name-length` derivation gave AutoMC and Random (both six
        // characters) the *same* stream.
        let mut rng = rng_for_task(seed, 0x5EA0 + algo as u64);
        // During search, A(M) is measured on the small search_eval subset
        // (the paper's GPU budget is dominated by training; at repro scale
        // full-test evaluation would dominate instead). Re-anchor the base
        // accuracy on that subset so AR is consistent.
        let mut probe = task.base_model.clone_net();
        let base_metrics = Metrics {
            acc: automc_models::train::evaluate(&mut probe, &task.search_eval),
            ..task.base_metrics
        };
        let ctx = SearchContext {
            space,
            base_model: &task.base_model,
            base_metrics,
            search_train: &task.search_sample,
            eval_set: &task.search_eval,
            exec: task.exec,
            max_len: 5,
            gamma: task.scale.gamma,
            budget: SearchBudget::new(task.scale.budget_units),
        };
        let started = std::time::Instant::now();
        let memo_before = automc_compress::memo::stats();
        // Journal each round next to the result cache (or in the caller's
        // job-keyed directory) so a killed run — of any of the four
        // algorithms — resumes (bitwise identically) instead of
        // restarting.
        let journal_dir =
            run_opts.journal_dir.clone().unwrap_or_else(cache::cache_dir);
        let opts = JournalOptions {
            path: Some(journal_dir.join(format!("{key}.journal"))),
            resume: resume_enabled(),
            abort_after_rounds: None,
            hook: run_opts.hook.clone(),
        };
        let history = match algo {
            Algo::AutoMc => {
                let emb = embeddings.expect("AutoMC needs embeddings").to_vec();
                progressive_search_journaled(&ctx, emb, &AutoMcConfig::default(), &mut rng, &opts)
            }
            Algo::Evolution => {
                evolution_search_journaled(&ctx, &EvolutionConfig::default(), &mut rng, &opts)
            }
            Algo::Rl => rl_search_journaled(&ctx, &RlConfig::default(), &mut rng, &opts),
            Algo::Random => random_search_journaled(&ctx, &mut rng, &opts),
        };
        eprintln!(
            "[harness] {} finished: {} evaluations, {:.1}s",
            algo.name(),
            history.records.len(),
            started.elapsed().as_secs_f32()
        );
        let memo = automc_compress::memo::stats().since(&memo_before);
        if memo.lookups > 0 {
            // Keep the hit-rate percentage inside the line's first
            // parenthesis: check.sh's memo gate parses it positionally.
            eprintln!(
                "[memo] {}: {}/{} prefix hits ({:.1}%), {} full, {} negative, \
                 {} steps / {} train images avoided, \
                 {} spilled / {} spill-evicted / {} healed",
                algo.name(),
                memo.prefix_hits,
                memo.lookups,
                memo.hit_rate_pct(),
                memo.full_hits,
                memo.neg_hits,
                memo.steps_avoided,
                memo.trained_images_avoided,
                memo.spilled,
                memo.spill_evictions,
                memo.healed
            );
        }
        history
    };
    if run_opts.hook.cancelled() {
        // Cancelled at a round boundary: the journal stays on disk for a
        // resumed run; the partial history must not enter the cache.
        eprintln!("[harness] {} on {cache_tag} cancelled; journal kept", algo.name());
        return None;
    }
    cache::store(&key, &fp, &history);
    Some(history)
}

// ------------------------------------------------------------------------
// Final evaluation of searched schemes
// ------------------------------------------------------------------------

/// The best scheme of a history within a PR band `[lo, hi)`, by accuracy.
pub fn best_scheme_in_band(history: &SearchHistory, lo: f32, hi: f32) -> Option<Scheme> {
    best_schemes_in_band(history, lo, hi, 1).into_iter().next()
}

/// The top-`k` schemes of a history within a PR band, by (search-time)
/// accuracy. The paper's protocol evaluates the selected Pareto set at
/// full scale, not a single scheme — re-ranking the top few at full scale
/// guards against subset overfitting.
pub fn best_schemes_in_band(history: &SearchHistory, lo: f32, hi: f32, k: usize) -> Vec<Scheme> {
    let mut in_band: Vec<&automc_core::EvalRecord> = history
        .records
        .iter()
        .filter(|r| r.is_feasible() && r.pr >= lo && r.pr < hi)
        .collect();
    in_band.sort_by(|a, b| b.acc.total_cmp(&a.acc));
    in_band.dedup_by(|a, b| a.scheme == b.scheme);
    in_band.into_iter().take(k).map(|r| r.scheme.clone()).collect()
}

/// Re-execute a scheme on the *full* training data (the paper's final
/// evaluation protocol — searched schemes are selected on the sample and
/// evaluated at full scale) and report its row.
pub fn final_row(
    name: &str,
    scheme: &Scheme,
    task: &PreparedTask,
    space: &StrategySpace,
    _seed: u64,
) -> FinalRow {
    let result = execute_scheme_checked(
        &task.base_model,
        &task.base_metrics,
        scheme,
        space,
        &task.train_set,
        &task.test_set,
        &task.exec,
    );
    match result {
        EvalOutcome::Ok { outcome, .. } => FinalRow::from_metrics(
            name.into(),
            &outcome.metrics,
            &task.base_metrics,
            Some(scheme.clone()),
        ),
        EvalOutcome::Diverged { step, .. } => {
            eprintln!("[harness] final evaluation of {name} diverged at step {step}");
            degraded_row(name, "final evaluation diverged")
        }
        EvalOutcome::Panicked { step, ref msg, .. } => {
            eprintln!("[harness] final evaluation of {name} panicked at step {step}: {msg}");
            degraded_row(name, "final evaluation panicked")
        }
        EvalOutcome::TimedOut { step, .. } => {
            eprintln!("[harness] final evaluation of {name} timed out at step {step}");
            degraded_row(name, "final evaluation timed out")
        }
    }
}

/// Evaluate one algorithm's search history in both PR bands (one row per
/// band, placeholder rows when the band is empty).
fn algo_band_rows(
    algo: Algo,
    history: &SearchHistory,
    task: &PreparedTask,
    space: &StrategySpace,
    seed: u64,
) -> Vec<(usize, FinalRow)> {
    let exp_gamma = task.scale.gamma;
    let mut out = Vec::with_capacity(2);
    for (band, lo, hi) in [(0usize, exp_gamma, 0.55f32), (1, 0.55, 0.90)] {
        // Evaluate the band's top candidates at full scale and report
        // the best — the paper evaluates the whole selected Pareto set.
        let candidates = best_schemes_in_band(history, lo, hi, 2);
        let best = candidates
            .iter()
            .map(|scheme| final_row(algo.name(), scheme, task, space, seed))
            .max_by(|a, b| a.acc.total_cmp(&b.acc));
        out.push((
            band,
            best.unwrap_or(FinalRow {
                algorithm: format!("{} (no scheme in band)", algo.name()),
                params: 0,
                pr: 0.0,
                flops: 0,
                fr: 0.0,
                acc: 0.0,
                inc: 0.0,
                scheme: None,
            }),
        ));
    }
    out
}

/// Number of independent task units in the Table 2 grid: twelve method
/// rows (method-major, ratio-minor) followed by the four AutoML searches,
/// in reporting order. Shared by the in-process pool ([`table2_rows`])
/// and the multi-process orchestrator, which shard the same task indices.
pub fn table2_task_count() -> usize {
    MethodId::ALL.len() * 2 + Algo::ALL.len()
}

/// Execute task `i` of the Table 2 grid and return its `(band, row)`
/// pairs. Tasks derive their RNG from `(seed, task-id)` alone, so a task
/// produces bitwise-identical rows on any thread, in any process, in any
/// order — the property that makes both the in-process pool and the
/// multi-process orchestrator merge back into one deterministic table.
pub fn table2_task(
    task: &PreparedTask,
    space: &StrategySpace,
    embeddings: &[Vec<f32>],
    i: usize,
    seed: u64,
    fresh: bool,
) -> Vec<(usize, FinalRow)> {
    table2_task_with(task, space, embeddings, i, seed, fresh, &RunOpts::default())
}

/// [`table2_task`] with [`RunOpts`]: the hook is polled before the task
/// starts and observes each search round. A cancelled task returns no
/// rows — the caller must check the hook and discard the partial grid.
#[allow(clippy::too_many_arguments)]
pub fn table2_task_with(
    task: &PreparedTask,
    space: &StrategySpace,
    embeddings: &[Vec<f32>],
    i: usize,
    seed: u64,
    fresh: bool,
    run_opts: &RunOpts,
) -> Vec<(usize, FinalRow)> {
    if run_opts.hook.cancelled() {
        return Vec::new();
    }
    let n_method_tasks = MethodId::ALL.len() * 2;
    if i < n_method_tasks {
        let method = MethodId::ALL[i / 2];
        let ratio = if i % 2 == 0 { 0.4 } else { 0.7 };
        eprintln!("[harness] {}: method {} @{ratio}…", task.scale.name, method.name());
        vec![(i % 2, method_baseline_row(task, method, ratio, seed, fresh))]
    } else {
        let algo = Algo::ALL[i - n_method_tasks];
        let history = run_search_with(
            algo,
            task,
            space,
            Some(embeddings),
            seed,
            fresh,
            task.scale.name,
            run_opts,
        );
        match history {
            Some(history) => algo_band_rows(algo, &history, task, space, seed),
            // Cancelled mid-search: the round journal is kept, no rows.
            None => Vec::new(),
        }
    }
}

/// Run (or load) the full Table 2 pipeline for one experiment: method
/// baselines plus all four AutoML algorithms in both PR bands.
///
/// The twelve method-grid runs and four AutoML searches execute as
/// independent pool tasks (`automc_tensor::par`). Each task derives its
/// RNG from `(seed, task-id)` alone, so the resulting rows are identical
/// at any thread count; assembly order is fixed by task index, never by
/// completion order.
pub fn table2_rows(
    exp: &ExperimentScale,
    seed: u64,
    fresh: bool,
) -> (Vec<FinalRow>, Vec<FinalRow>) {
    // The default hook never cancels, so the grid always completes.
    table2_rows_with(exp, seed, fresh, &RunOpts::default()).unwrap_or_default()
}

/// [`table2_rows`] with [`RunOpts`] — the job unit the serve daemon runs.
/// The hook is polled before each grid task and observes every search
/// round. Returns `None` when cancelled: the partial grid is *not* cached
/// (per-task caches and round journals are, so a resubmitted job resumes
/// past everything already finished).
pub fn table2_rows_with(
    exp: &ExperimentScale,
    seed: u64,
    fresh: bool,
    run_opts: &RunOpts,
) -> Option<(Vec<FinalRow>, Vec<FinalRow>)> {
    let key = format!("table2_{}_s{seed}", exp.name);
    let fp = run_fingerprint(exp, seed);
    let cached: Option<(Vec<FinalRow>, Vec<FinalRow>)> =
        if fresh { None } else { cache::load(&key, &fp) };
    if let Some(rows) = cached {
        eprintln!("[cache] reusing {key}");
        return Some(rows);
    }
    let task = prepare_task(exp, seed);
    eprintln!(
        "[harness] {}: base acc {:.2}%, {} params",
        exp.name,
        task.base_metrics.acc * 100.0,
        task.base_metrics.params
    );
    let space = StrategySpace::full();
    let emb = automc_embeddings(&space, "full", seed, fresh, true, true);

    let task_ref = &task;
    let space_ref = &space;
    let emb_ref = &emb;
    let outs: Vec<Vec<(usize, FinalRow)>> = par::par_map(table2_task_count(), |i| {
        table2_task_with(task_ref, space_ref, emb_ref, i, seed, fresh, run_opts)
    });
    if run_opts.hook.cancelled() {
        eprintln!("[harness] table2 {} cancelled; partial grid discarded", exp.name);
        return None;
    }

    let mut band40: Vec<FinalRow> = vec![FinalRow::baseline(&task)];
    let mut band70: Vec<FinalRow> = Vec::new();
    for rows in outs {
        for (band, row) in rows {
            if band == 0 {
                band40.push(row);
            } else {
                band70.push(row);
            }
        }
    }
    cache::store(&key, &fp, &(band40.clone(), band70.clone()));
    Some((band40, band70))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::exp1;

    #[test]
    fn method_grids_fix_ratio() {
        for m in MethodId::ALL {
            let grid = method_grid(m, 0.37);
            assert!(!grid.is_empty());
            for spec in grid {
                assert!((spec.ratio() - 0.37).abs() < 1e-6);
                assert_eq!(spec.method(), m);
            }
        }
    }

    #[test]
    fn band_selection_prefers_accuracy() {
        let mut h = SearchHistory::new("t");
        let rec = |pr: f32, acc: f32, scheme: Scheme| automc_core::EvalRecord {
            scheme,
            pr,
            fr: pr,
            ar: 0.0,
            acc,
            params: 10,
            flops: 10,
            cost_so_far: 1,
            status: automc_core::EvalStatus::Ok,
        };
        h.records.push(rec(0.4, 0.8, vec![1]));
        h.records.push(rec(0.45, 0.9, vec![2]));
        h.records.push(rec(0.7, 0.85, vec![3]));
        assert_eq!(best_scheme_in_band(&h, 0.3, 0.55), Some(vec![2]));
        assert_eq!(best_scheme_in_band(&h, 0.55, 0.9), Some(vec![3]));
        assert_eq!(best_scheme_in_band(&h, 0.8, 0.9), None);
    }

    #[test]
    fn top_k_band_selection_dedups_and_orders() {
        let mut h = SearchHistory::new("t");
        let rec = |pr: f32, acc: f32, scheme: Scheme| automc_core::EvalRecord {
            scheme,
            pr,
            fr: pr,
            ar: 0.0,
            acc,
            params: 10,
            flops: 10,
            cost_so_far: 1,
            status: automc_core::EvalStatus::Ok,
        };
        h.records.push(rec(0.4, 0.8, vec![1]));
        h.records.push(rec(0.4, 0.8, vec![1])); // duplicate scheme
        h.records.push(rec(0.42, 0.85, vec![2]));
        h.records.push(rec(0.44, 0.7, vec![3]));
        let top = best_schemes_in_band(&h, 0.3, 0.55, 2);
        assert_eq!(top, vec![vec![2], vec![1]]);
    }

    #[test]
    fn algo_names_unique() {
        let names: std::collections::HashSet<_> =
            Algo::ALL.iter().map(|a| a.name()).collect();
        assert_eq!(names.len(), 4);
    }

    #[test]
    fn baseline_row_reflects_task() {
        let small = ExperimentScale { train: 80, test: 40, pretrain_epochs: 0.5, ..exp1() };
        let task = prepare_task(&small, 3);
        let row = FinalRow::baseline(&task);
        assert_eq!(row.params, task.base_metrics.params);
        assert_eq!(row.pr, 0.0);
    }
}
