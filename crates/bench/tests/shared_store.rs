//! Regression test for the shared-store write-through: a value pulled
//! from `AUTOMC_SHARED_RESULTS_DIR` through `harness::load_or_shared`
//! must be copied into the local result store, so the *next* lookup in
//! this store hits locally instead of re-reading (or, if the shared dir
//! disappears, recomputing) — that copy is what lets orchestrator
//! workers and serve-daemon jobs start warm from a sibling's results.
//!
//! This binary holds exactly one test: it mutates process environment
//! variables (`AUTOMC_RESULTS_DIR` / `AUTOMC_SHARED_RESULTS_DIR`), which
//! would race against any test running concurrently in the same process.

use automc_bench::{cache, harness};
use std::path::PathBuf;

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("automc-shared-store-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

#[test]
fn shared_hits_are_written_through_to_the_local_store() {
    let shared = fresh_dir("shared");
    let local = fresh_dir("local");
    let (key, fp) = ("shared_store_probe", "fp-v1");
    let value: Vec<f32> = vec![1.5, -0.25, 3.0];

    // Seed the shared store by writing while it is the local store.
    std::env::set_var("AUTOMC_RESULTS_DIR", &shared);
    std::env::remove_var("AUTOMC_SHARED_RESULTS_DIR");
    cache::store(key, fp, &value);

    // A miss in the local store must fall back to the shared dir and
    // must NOT invoke the compute closure.
    std::env::set_var("AUTOMC_RESULTS_DIR", &local);
    std::env::set_var("AUTOMC_SHARED_RESULTS_DIR", &shared);
    let via_shared: Vec<f32> = harness::load_or_shared(key, fp, false, || {
        panic!("shared hit must not recompute")
    });
    assert_eq!(via_shared, value);

    // Write-through: with the shared fallback gone, the local store must
    // now answer by itself.
    std::env::remove_var("AUTOMC_SHARED_RESULTS_DIR");
    let local_copy: Option<Vec<f32>> = cache::load(key, fp);
    assert_eq!(
        local_copy.as_ref(),
        Some(&value),
        "a shared hit must be copied into the local store"
    );

    // And `fresh` must bypass both stores and recompute.
    std::env::set_var("AUTOMC_SHARED_RESULTS_DIR", &shared);
    let recomputed: Vec<f32> = harness::load_or_shared(key, fp, true, || vec![9.0]);
    assert_eq!(recomputed, vec![9.0], "--fresh must force the compute path");
}
