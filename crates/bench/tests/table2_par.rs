//! The pooled Table-2 pipeline at miniature scale: the twelve method
//! rows and four searches run as concurrent pool tasks and must produce
//! the same rows, in the same order, as the serial execution.

use automc_bench::harness::table2_rows;
use automc_bench::scale::{exp1, ExperimentScale};
use automc_tensor::par::with_threads;

fn tiny() -> ExperimentScale {
    ExperimentScale {
        model: automc_models::ModelKind::ResNet(20),
        train: 160,
        test: 80,
        pretrain_epochs: 4.0,
        budget_units: 1_500,
        ..exp1()
    }
}

#[test]
fn pooled_table2_matches_serial_table2() {
    // Isolate the result cache so both runs recompute from scratch.
    let dir = std::env::temp_dir().join("automc-table2-par-test");
    let _ = std::fs::remove_dir_all(&dir);
    std::env::set_var("CARGO_TARGET_DIR", &dir);

    let exp = tiny();
    let seed = 11;
    let (p40, p70) = with_threads(3, || table2_rows(&exp, seed, true));
    let _ = std::fs::remove_dir_all(&dir);
    let (s40, s70) = with_threads(1, || table2_rows(&exp, seed, true));
    let _ = std::fs::remove_dir_all(&dir);

    // Structure: baseline + 6 methods + 4 algorithms vs 6 methods + 4.
    assert_eq!(p40.len(), 11);
    assert_eq!(p70.len(), 10);
    assert_eq!(p40[0].algorithm, "baseline");

    // Determinism: pool execution reproduces the serial rows exactly.
    for (p, s) in p40.iter().zip(&s40).chain(p70.iter().zip(&s70)) {
        assert_eq!(p.algorithm, s.algorithm);
        assert_eq!(p.params, s.params, "{}", p.algorithm);
        assert_eq!(p.acc.to_bits(), s.acc.to_bits(), "{}", p.algorithm);
        assert_eq!(p.pr.to_bits(), s.pr.to_bits(), "{}", p.algorithm);
        assert_eq!(p.scheme, s.scheme, "{}", p.algorithm);
    }
}
