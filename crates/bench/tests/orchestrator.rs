//! End-to-end supervision tests: the multi-process orchestrator under
//! injected worker crashes and hangs must complete with stdout
//! byte-identical to the uninterrupted single-process run, and a worker
//! whose retry budget is exhausted must degrade its shard gracefully
//! instead of aborting the run.
//!
//! Every scenario shells out to the real `table2` binary
//! (`CARGO_BIN_EXE_table2`) at a drastically shrunk smoke scale
//! (`AUTOMC_SMOKE_*` knobs). The serial reference run pays the one-time
//! corpus/embedding cost; the sharded scenarios pull those global
//! artifacts through the shared-store fallback, so each runs in seconds.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// Smoke-scale knobs shared by every run in this file (they feed the
/// scale fingerprint, so these results never mix with other tests').
const KNOBS: [(&str, &str); 4] = [
    ("AUTOMC_SMOKE_TRAIN", "32"),
    ("AUTOMC_SMOKE_TEST", "16"),
    ("AUTOMC_SMOKE_EPOCHS", "1"),
    ("AUTOMC_SMOKE_BUDGET", "150"),
];

fn table2(results: &Path, shared: Option<&Path>, args: &[&str]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_table2"));
    cmd.arg("--smoke").args(args);
    for (k, v) in KNOBS {
        cmd.env(k, v);
    }
    cmd.env("AUTOMC_RESULTS_DIR", results);
    match shared {
        Some(dir) => {
            cmd.env("AUTOMC_SHARED_RESULTS_DIR", dir);
        }
        None => {
            cmd.env_remove("AUTOMC_SHARED_RESULTS_DIR");
        }
    }
    // Stray state from the invoking environment must not leak in.
    for k in ["AUTOMC_FAULTS", "AUTOMC_WORKER_FAULT", "AUTOMC_HEARTBEAT_FILE"] {
        cmd.env_remove(k);
    }
    cmd.output().expect("table2 binary must spawn")
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("automc-orch-e2e-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn text(bytes: &[u8]) -> String {
    String::from_utf8_lossy(bytes).into_owned()
}

#[test]
fn sharded_runs_survive_faults_and_match_the_serial_run_exactly() {
    // --- Uninterrupted single-process reference -------------------------
    let serial_dir = fresh_dir("serial");
    let serial = table2(&serial_dir, None, &[]);
    let serial_out = text(&serial.stdout);
    assert!(serial.status.success(), "serial run failed:\n{}", text(&serial.stderr));
    assert!(serial_out.contains("SMOKE OK"), "{serial_out}");

    // --- Worker crash + restart, 1 worker -------------------------------
    // The only worker is killed (exit 86) after its first completed task;
    // the supervisor restarts it and the restart resumes from the
    // worker's own result store.
    let d = fresh_dir("kill-w1");
    let run = table2(&d, Some(&serial_dir), &["--workers", "1", "--faults", "kill@worker:1"]);
    let err = text(&run.stderr);
    assert!(run.status.success(), "kill/1-worker run failed:\n{err}");
    assert_eq!(
        text(&run.stdout),
        serial_out,
        "1-worker run under kill@worker must be byte-identical to serial"
    );
    assert!(err.contains("injected kill"), "fault must have fired:\n{err}");
    assert_eq!(
        err.matches("retry 1/").count(),
        1,
        "exactly one restart must be logged:\n{err}"
    );

    // --- Worker crash + restart, 4 workers ------------------------------
    let d = fresh_dir("kill-w4");
    let run = table2(&d, Some(&serial_dir), &["--workers", "4", "--faults", "kill@worker:2"]);
    let err = text(&run.stderr);
    assert!(run.status.success(), "kill/4-worker run failed:\n{err}");
    assert_eq!(
        text(&run.stdout),
        serial_out,
        "4-worker run under kill@worker must be byte-identical to serial"
    );
    assert!(err.contains("injected kill"), "fault must have fired:\n{err}");

    // --- Hung worker: detected by heartbeat, killed, restarted ----------
    // The fault freezes the worker's heartbeat thread and parks it; only
    // the supervisor's staleness deadline can reclaim it. The retry must
    // be counted (and journaled) exactly once, and the retry journal must
    // be discarded once the run completes.
    let d = fresh_dir("hang");
    let run = table2(
        &d,
        Some(&serial_dir),
        &["--workers", "2", "--heartbeat-ms", "100", "--faults", "hang@worker:2"],
    );
    let err = text(&run.stderr);
    assert!(run.status.success(), "hang run failed:\n{err}");
    assert_eq!(
        text(&run.stdout),
        serial_out,
        "run under hang@worker must be byte-identical to serial"
    );
    assert!(err.contains("injected hang"), "fault must have fired:\n{err}");
    assert!(err.contains("hung (no heartbeat for"), "hang must be detected:\n{err}");
    assert_eq!(
        err.matches("retry 1/").count(),
        1,
        "the hang retry must be counted exactly once:\n{err}"
    );
    assert!(!err.contains("retry 2/"), "no second retry expected:\n{err}");
    assert!(
        !d.join("orch_smoke_s42.journal").exists(),
        "retry journal must be discarded after a successful run"
    );

    // --- Retry budget exhausted: degrade, never abort -------------------
    let d = fresh_dir("exhausted");
    let run = table2(
        &d,
        Some(&serial_dir),
        &["--workers", "2", "--retries", "0", "--faults", "kill@worker:1"],
    );
    let out = text(&run.stdout);
    let err = text(&run.stderr);
    assert!(
        run.status.success(),
        "retry exhaustion must degrade, not abort:\n{err}"
    );
    assert!(out.contains("SMOKE OK"), "degraded table must still validate:\n{out}");
    assert!(
        out.contains("(worker 0 unavailable)"),
        "unfinished tasks must be labelled degraded:\n{out}"
    );
    assert!(err.contains("retry budget (0) exhausted"), "{err}");

    for name in ["serial", "kill-w1", "kill-w4", "hang", "exhausted"] {
        let _ = std::fs::remove_dir_all(std::env::temp_dir().join(format!("automc-orch-e2e-{name}")));
    }
}
