//! End-to-end smoke test of the reproduction harness at miniature scale.

use automc_bench::harness::{
    automc_embeddings, best_scheme_in_band, final_row, method_baseline_row, run_search, Algo,
};
use automc_bench::scale::{exp1, prepare_task, ExperimentScale};
use automc_compress::{MethodId, StrategySpace};

fn tiny() -> ExperimentScale {
    ExperimentScale {
        model: automc_models::ModelKind::ResNet(20),
        train: 240,
        test: 120,
        pretrain_epochs: 6.0,
        budget_units: 6_000,
        ..exp1()
    }
}

#[test]
fn mini_table2_pipeline() {
    let exp = tiny();
    let seed = 9;
    let task = prepare_task(&exp, seed);
    assert!(task.base_metrics.acc > 0.4, "pretraining failed: {}", task.base_metrics.acc);

    // One method baseline.
    let row = method_baseline_row(&task, MethodId::Ns, 0.4, seed, false);
    assert!(row.pr > 20.0, "NS row PR {}", row.pr);
    assert!(row.acc > 20.0);

    // AutoMC with a small single-method space (fast embeddings).
    let space = StrategySpace::for_methods(&[MethodId::Ns, MethodId::Sfp]);
    let emb = automc_embeddings(&space, "smoke", seed, true, true, false);
    assert_eq!(emb.len(), space.len());
    let history = run_search(Algo::AutoMc, &task, &space, Some(&emb), seed, true, "smoke");
    assert!(!history.records.is_empty());

    // Band selection + final full-data evaluation.
    if let Some(scheme) = best_scheme_in_band(&history, 0.2, 0.9) {
        let row = final_row("AutoMC", &scheme, &task, &space, seed);
        assert!(row.pr > 10.0);
        assert!(row.acc > 20.0);
    }

    // Random baseline under the same context.
    let rnd = run_search(Algo::Random, &task, &space, None, seed, true, "smoke");
    assert!(!rnd.records.is_empty());
}
