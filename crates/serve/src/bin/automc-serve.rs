//! `automc-serve` — the compression-as-a-service daemon and its CLI.
//!
//! ```text
//! automc-serve serve    [--listen ADDR] [--jobs N] [--addr-file PATH]
//!                       [--threads N] [--no-resume]
//! automc-serve submit   --addr HOST:PORT --scale S [--seed N] [--kind K]
//!                       [--fresh] [--label L]
//! automc-serve run      (submit + watch + render the result)
//! automc-serve watch    --addr HOST:PORT --job ID
//! automc-serve status   --addr HOST:PORT --job ID
//! automc-serve cancel   --addr HOST:PORT --job ID
//! automc-serve result   --addr HOST:PORT --job ID
//! automc-serve shutdown --addr HOST:PORT
//! ```
//!
//! `--kind` is one of `table2` (default), `automc`, `evolution`, `rl`,
//! `random`. The daemon shares the result cache, memo LRU, and spill
//! store configured by the usual `AUTOMC_*` environment knobs.

use automc_json::Value;
use automc_serve::client::{render_result, render_round, Client};
use automc_serve::protocol::{JobKind, JobSpec};
use automc_serve::server::{self, ServeConfig};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let Some(cmd) = args.get(1).map(String::as_str) else {
        eprintln!("usage: automc-serve <serve|submit|run|watch|status|cancel|result|shutdown> …");
        return ExitCode::FAILURE;
    };
    let result = match cmd {
        "serve" => cmd_serve(&args[2..]),
        "submit" => cmd_submit(&args[2..], false),
        "run" => cmd_submit(&args[2..], true),
        "watch" => cmd_job(&args[2..], |client, job| {
            let terminal = client.watch(job, |frame| {
                if let Some(line) = render_round(frame) {
                    eprintln!("{line}");
                }
            })?;
            print_terminal(&terminal);
            Ok(())
        }),
        "status" => cmd_job(&args[2..], |client, job| {
            println!("{}", client.status(job)?);
            Ok(())
        }),
        "cancel" => cmd_job(&args[2..], |client, job| {
            client.cancel(job)?;
            eprintln!("cancel requested for {job}");
            Ok(())
        }),
        "result" => cmd_job(&args[2..], |client, job| {
            print_terminal(&client.result(job)?);
            Ok(())
        }),
        "shutdown" => {
            flag_value(&args[2..], "--addr").ok_or_else(usage_err).and_then(|addr| {
                let mut client = Client::connect(&addr)?;
                client.shutdown()
            })
        }
        other => {
            eprintln!("unknown subcommand {other:?}");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage_err() -> std::io::Error {
    std::io::Error::other("missing required flag (see --help in the crate docs)")
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn cmd_serve(args: &[String]) -> std::io::Result<()> {
    let cfg = ServeConfig {
        listen: flag_value(args, "--listen").unwrap_or_else(|| "127.0.0.1:0".into()),
        jobs: flag_value(args, "--jobs").and_then(|v| v.parse().ok()).unwrap_or(2),
        addr_file: flag_value(args, "--addr-file").map(Into::into),
    };
    // Same runtime setup as the batch binaries: thread pool, journal
    // resume, memo + spill store, and the AUTOMC_FAULTS fallback plan
    // (installed lazily by the fault subsystem itself).
    let bench = automc_bench::BenchArgs {
        seed: 0,
        fresh: false,
        threads: flag_value(args, "--threads").and_then(|v| v.parse().ok()).unwrap_or(0),
        no_resume: has_flag(args, "--no-resume"),
        faults: None,
        smoke: false,
        memo: None,
        workers: 0,
        heartbeat_ms: 500,
        retries: 2,
        worker: None,
    };
    bench.apply();
    server::run(&cfg)
}

fn parse_spec(args: &[String]) -> std::io::Result<JobSpec> {
    let kind_name = flag_value(args, "--kind").unwrap_or_else(|| "table2".into());
    let Some(kind) = JobKind::parse(&kind_name) else {
        return Err(std::io::Error::other(format!(
            "unknown --kind {kind_name:?} (want table2|automc|evolution|rl|random)"
        )));
    };
    Ok(JobSpec {
        scale: flag_value(args, "--scale").unwrap_or_else(|| "smoke".into()),
        seed: flag_value(args, "--seed").and_then(|v| v.parse().ok()).unwrap_or(42),
        kind,
        fresh: has_flag(args, "--fresh"),
        label: flag_value(args, "--label").unwrap_or_default(),
    })
}

fn cmd_submit(args: &[String], and_watch: bool) -> std::io::Result<()> {
    let addr = flag_value(args, "--addr").ok_or_else(usage_err)?;
    let spec = parse_spec(args)?;
    let mut client = Client::connect(&addr)?;
    let (job, dedup) = client.submit(&spec)?;
    eprintln!(
        "submitted {job} ({}, scale {}, seed {}){}",
        spec.kind.name(),
        spec.scale,
        spec.seed,
        if dedup { " — already known, attaching" } else { "" }
    );
    if !and_watch {
        println!("{job}");
        return Ok(());
    }
    let terminal = client.watch(&job, |frame| {
        if let Some(line) = render_round(frame) {
            eprintln!("{line}");
        }
    })?;
    print_terminal(&terminal);
    // A cancelled or failed job is a non-zero exit for scripting.
    match terminal.get("state").and_then(Value::as_str) {
        Some("done") => Ok(()),
        other => Err(std::io::Error::other(format!(
            "job ended in state {}",
            other.unwrap_or("unknown")
        ))),
    }
}

fn cmd_job(
    args: &[String],
    body: impl FnOnce(&mut Client, &str) -> std::io::Result<()>,
) -> std::io::Result<()> {
    let addr = flag_value(args, "--addr").ok_or_else(usage_err)?;
    let job = flag_value(args, "--job").ok_or_else(usage_err)?;
    let mut client = Client::connect(&addr)?;
    body(&mut client, &job)
}

/// Print a terminal frame: rendered tables/summary when the job is done,
/// a state line otherwise.
fn print_terminal(terminal: &Value) {
    match render_result(terminal) {
        Some(rendered) => println!("{rendered}"),
        None => {
            let state = terminal.get("state").and_then(Value::as_str).unwrap_or("unknown");
            let msg = terminal.get("message").and_then(Value::as_str).unwrap_or("");
            if msg.is_empty() {
                eprintln!("job ended: {state}");
            } else {
                eprintln!("job ended: {state} ({msg})");
            }
        }
    }
}
