//! # automc-serve
//!
//! Compression-as-a-service: a std-only TCP daemon that accepts AutoMC
//! compression jobs over a newline-delimited `automc-json` protocol and
//! runs them on the existing bench substrate.
//!
//! ```text
//! client ── submit {scale, seed, kind} ──▶ daemon ──▶ bounded job queue
//!        ◀─ submitted {job}            ──┘              │
//! client ── watch {job}               ──▶ executor pool ┘ (N threads)
//!        ◀─ round / state / done …    ── per-job fan-out
//! ```
//!
//! Everything rides on guarantees the lower layers already provide:
//!
//! - **Determinism** — a job's result is bitwise-identical to the batch
//!   binaries at any executor count, because the searches themselves are
//!   (per-task RNG streams, canonical reductions).
//! - **Resumability** — jobs are keyed by the same fingerprint that keys
//!   the round journals, so resubmitting after a daemon crash resumes
//!   mid-search for free; cancellation stops at a round boundary and
//!   keeps the journal.
//! - **Sharing** — all jobs share one result cache, one prefix-model
//!   memo, and one crash-safe spill `BlobStore`, so a second client
//!   asking a related question hits warm state.
//!
//! The wire protocol is *strict* JSON both ways: serialising a non-finite
//! number is an error (never a silent `null`) and parsing `null` where a
//! number belongs is a malformed frame (never a silent NaN). See
//! [`protocol`].
//!
//! `DESIGN.md` §"Serve daemon" documents the frame grammar, the job
//! lifecycle, and the failure matrix.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod client;
pub mod protocol;
pub mod server;
