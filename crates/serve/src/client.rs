//! Client side: a blocking connection speaking the frame protocol, plus
//! renderers that turn server frames into the same human-readable tables
//! the batch binaries print (so a served Table 2 run can be byte-diffed
//! against `table2 --smoke`).

use crate::protocol::{read_frame, write_frame, JobSpec, Request};
use automc_bench::harness::FinalRow;
use automc_bench::report::render_rows;
use automc_json::{FromJson, Value};
use std::io::{BufReader, BufWriter};
use std::net::TcpStream;

/// A blocking client connection to a serve daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connect to `addr` (`host:port`).
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    /// Send one request frame.
    pub fn send(&mut self, req: &Request) -> std::io::Result<()> {
        write_frame(&mut self.writer, &req.to_value())
    }

    /// Receive one frame; EOF is an error (the server never half-closes
    /// before answering a request).
    pub fn recv(&mut self) -> std::io::Result<Value> {
        read_frame(&mut self.reader)?
            .ok_or_else(|| std::io::Error::other("server closed the connection"))
    }

    /// Submit a job; returns `(job_id, deduplicated)`.
    pub fn submit(&mut self, spec: &JobSpec) -> std::io::Result<(String, bool)> {
        self.send(&Request::Submit(spec.clone()))?;
        let reply = self.recv()?;
        expect_not_error(&reply)?;
        let job = str_field(&reply, "job")?;
        let dedup = matches!(reply.get("dedup"), Some(Value::Bool(true)));
        Ok((job, dedup))
    }

    /// Stream a job's frames from the beginning, invoking `on_frame` for
    /// each, until the terminal `done` frame (which is returned).
    pub fn watch(
        &mut self,
        job: &str,
        mut on_frame: impl FnMut(&Value),
    ) -> std::io::Result<Value> {
        self.send(&Request::Watch(job.to_string()))?;
        loop {
            let frame = self.recv()?;
            expect_not_error(&frame)?;
            let done = frame.get("type").and_then(Value::as_str) == Some("done");
            on_frame(&frame);
            if done {
                return Ok(frame);
            }
        }
    }

    /// Request cooperative cancellation of a job.
    pub fn cancel(&mut self, job: &str) -> std::io::Result<()> {
        self.send(&Request::Cancel(job.to_string()))?;
        expect_not_error(&self.recv()?)
    }

    /// One `state` frame for a job; returns the state name.
    pub fn status(&mut self, job: &str) -> std::io::Result<String> {
        self.send(&Request::Status(job.to_string()))?;
        let reply = self.recv()?;
        expect_not_error(&reply)?;
        str_field(&reply, "state")
    }

    /// The job's terminal frame, or an error if it has not finished.
    pub fn result(&mut self, job: &str) -> std::io::Result<Value> {
        self.send(&Request::Result(job.to_string()))?;
        let reply = self.recv()?;
        expect_not_error(&reply)?;
        Ok(reply)
    }

    /// Ask the daemon to shut down.
    pub fn shutdown(&mut self) -> std::io::Result<()> {
        self.send(&Request::Shutdown)?;
        expect_not_error(&self.recv()?)
    }
}

fn expect_not_error(frame: &Value) -> std::io::Result<()> {
    if frame.get("type").and_then(Value::as_str) == Some("error") {
        let msg = frame
            .get("message")
            .and_then(Value::as_str)
            .unwrap_or("unknown server error");
        return Err(std::io::Error::other(format!("server error: {msg}")));
    }
    Ok(())
}

fn str_field(frame: &Value, key: &str) -> std::io::Result<String> {
    frame
        .get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| std::io::Error::other(format!("frame missing {key:?} field")))
}

/// Render a `round` frame as a one-line progress report, or `None` for
/// other frame types.
pub fn render_round(frame: &Value) -> Option<String> {
    if frame.get("type").and_then(Value::as_str) != Some("round") {
        return None;
    }
    let num = |k: &str| frame.get(k).and_then(Value::as_f64);
    let mut line = format!(
        "[{}] round {} — {}/{} budget, {} evals",
        frame.get("algo").and_then(Value::as_str).unwrap_or("?"),
        num("round").unwrap_or(0.0),
        num("spent").unwrap_or(0.0),
        num("budget").unwrap_or(0.0),
        num("evals").unwrap_or(0.0),
    );
    if let (Some(acc), Some(flops)) = (num("best_acc"), num("best_flops")) {
        line.push_str(&format!(", best acc {acc:.2}% @ {flops} FLOPs"));
    }
    if let Some(rate) = num("memo_hit_rate_pct") {
        line.push_str(&format!(", memo {rate:.0}%"));
    }
    Some(line)
}

/// Render a terminal frame's result payload the way the batch binaries
/// print it. Table 2 results reproduce `table2`'s two `render_rows`
/// tables byte-for-byte; search results get a one-line summary. Returns
/// `None` when the frame carries no result (cancelled / failed).
pub fn render_result(frame: &Value) -> Option<String> {
    let result = frame.get("result")?;
    match result.get("kind").and_then(Value::as_str) {
        Some("table2") => {
            let scale = result.get("scale").and_then(Value::as_str)?;
            let band40: Vec<FinalRow> = FromJson::from_json(result.get("band40")?)?;
            let band70: Vec<FinalRow> = FromJson::from_json(result.get("band70")?)?;
            Some(format!(
                "{}\n{}",
                render_rows(&format!("{scale} — PR ≈ 40%"), &band40),
                render_rows(&format!("{scale} — PR ≈ 70%"), &band70),
            ))
        }
        Some("search") => {
            let num = |k: &str| result.get(k).and_then(Value::as_f64);
            let mut line = format!(
                "{} on {} (seed {}): {} evaluations, {} infeasible, cost {}",
                result.get("algo").and_then(Value::as_str).unwrap_or("?"),
                result.get("scale").and_then(Value::as_str).unwrap_or("?"),
                num("seed").unwrap_or(0.0),
                num("evals").unwrap_or(0.0),
                num("failed").unwrap_or(0.0),
                num("total_cost").unwrap_or(0.0),
            );
            if let (Some(acc), Some(pr)) = (num("best_acc"), num("best_pr")) {
                line.push_str(&format!(", best acc {:.2}% at PR {:.2}", acc, pr * 100.0));
            }
            Some(line)
        }
        _ => None,
    }
}
