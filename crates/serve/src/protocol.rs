//! The `automc-json` wire protocol: newline-delimited frames.
//!
//! Every frame is one JSON object on one line. Serialisation is *strict*
//! ([`Value::to_wire`]): a non-finite number anywhere in a frame is a
//! serialisation error, never a silent `null`. Parsing is strict too
//! ([`automc_json::with_strict`]): a `null` where a number is expected is
//! a malformed frame, never a NaN. The on-disk caches keep the lenient
//! mode; the wire does not, because a NaN that round-trips into a
//! streamed accuracy corrupts every downstream consumer silently.
//!
//! Client → server requests: `submit`, `watch`, `status`, `cancel`,
//! `result`, `shutdown`. Server → client frames: `submitted`, `state`,
//! `round`, `done`, `ok`, `error`. `done` is terminal for a job stream
//! regardless of the final state (`done` / `cancelled` / `failed`).

use automc_json::{field, obj, parse, with_strict, FromJson, ToJson, Value};
use std::io::{BufRead, Write};

/// Maximum accepted frame length in bytes — a defensive bound so a
/// misbehaving peer cannot make the server buffer unboundedly.
pub const MAX_FRAME_BYTES: usize = 4 << 20;

/// What a job computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// The full Table 2 grid (12 method rows + 4 searches, both bands).
    Table2,
    /// A single search algorithm, streamed round by round.
    Search(automc_bench::harness::Algo),
}

impl JobKind {
    /// Wire name.
    pub fn name(&self) -> &'static str {
        use automc_bench::harness::Algo;
        match self {
            JobKind::Table2 => "table2",
            JobKind::Search(Algo::AutoMc) => "automc",
            JobKind::Search(Algo::Evolution) => "evolution",
            JobKind::Search(Algo::Rl) => "rl",
            JobKind::Search(Algo::Random) => "random",
        }
    }

    /// Parse a wire name.
    pub fn parse(s: &str) -> Option<JobKind> {
        use automc_bench::harness::Algo;
        match s {
            "table2" => Some(JobKind::Table2),
            "automc" => Some(JobKind::Search(Algo::AutoMc)),
            "evolution" => Some(JobKind::Search(Algo::Evolution)),
            "rl" => Some(JobKind::Search(Algo::Rl)),
            "random" => Some(JobKind::Search(Algo::Random)),
            _ => None,
        }
    }
}

/// A compression-job request: experiment scale × seed × what to run.
/// `label` distinguishes deliberate re-runs of the same spec (distinct
/// label → distinct job id → an independent job that shares the memo
/// store); `fresh` bypasses the result cache (journals still resume).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Scale name (`smoke` / `exp1` / `exp2`).
    pub scale: String,
    /// Master seed.
    pub seed: u64,
    /// What to compute.
    pub kind: JobKind,
    /// Bypass the result cache.
    pub fresh: bool,
    /// Client label folded into the job id ("" by default).
    pub label: String,
}

impl JobSpec {
    /// The stable job id: a hex FNV-1a 64 over the same run fingerprint
    /// that keys the result caches and round journals, plus the job kind,
    /// freshness, and label. Identical specs — including across a server
    /// restart — map to the same id, so a resubmitted job lands on the
    /// same journals and resumes for free.
    pub fn job_id(&self, scale: &automc_bench::scale::ExperimentScale) -> String {
        let fp = automc_bench::harness::run_fingerprint(scale, self.seed);
        let key = format!("{fp}|{}|f{}|{}", self.kind.name(), self.fresh as u8, self.label);
        format!("{:016x}", automc_core::journal::fnv1a64(key.as_bytes()))
    }
}

impl ToJson for JobSpec {
    fn to_json(&self) -> Value {
        obj(vec![
            ("scale", self.scale.to_json()),
            ("seed", self.seed.to_json()),
            ("kind", self.kind.name().to_json()),
            ("fresh", self.fresh.to_json()),
            ("label", self.label.to_json()),
        ])
    }
}

impl FromJson for JobSpec {
    fn from_json(v: &Value) -> Option<Self> {
        Some(JobSpec {
            scale: field(v, "scale")?,
            seed: field(v, "seed")?,
            kind: JobKind::parse(&field::<String>(v, "kind")?)?,
            fresh: field(v, "fresh")?,
            label: field(v, "label")?,
        })
    }
}

/// Job lifecycle states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for an executor slot.
    Queued,
    /// An executor is running it.
    Running,
    /// Finished; result available.
    Done,
    /// Cancelled at a round boundary; journal kept, resumable.
    Cancelled,
    /// The job body failed; message in the terminal frame.
    Failed,
}

impl JobState {
    /// Wire name.
    pub fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Cancelled => "cancelled",
            JobState::Failed => "failed",
        }
    }

    /// Parse a wire name.
    pub fn parse(s: &str) -> Option<JobState> {
        match s {
            "queued" => Some(JobState::Queued),
            "running" => Some(JobState::Running),
            "done" => Some(JobState::Done),
            "cancelled" => Some(JobState::Cancelled),
            "failed" => Some(JobState::Failed),
            _ => None,
        }
    }

    /// No further transitions happen from this state.
    pub fn is_terminal(&self) -> bool {
        matches!(self, JobState::Done | JobState::Cancelled | JobState::Failed)
    }
}

/// A client → server request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a job; answered with a `submitted` frame.
    Submit(JobSpec),
    /// Stream a job's frames from the beginning until terminal.
    Watch(String),
    /// One `state` frame for the job.
    Status(String),
    /// Cooperatively cancel the job at its next round boundary.
    Cancel(String),
    /// The job's terminal frame if it is terminal, an error otherwise.
    Result(String),
    /// Stop the daemon once the reply is flushed.
    Shutdown,
}

impl Request {
    /// Decode a request frame (strict mode).
    pub fn from_value(v: &Value) -> Result<Request, String> {
        let ty: String = field(v, "type").ok_or("frame has no type")?;
        match ty.as_str() {
            "submit" => {
                let spec = field::<Value>(v, "spec")
                    .and_then(|s| JobSpec::from_json(&s))
                    .ok_or("submit frame has no valid spec")?;
                Ok(Request::Submit(spec))
            }
            "watch" => Ok(Request::Watch(field(v, "job").ok_or("watch needs job")?)),
            "status" => Ok(Request::Status(field(v, "job").ok_or("status needs job")?)),
            "cancel" => Ok(Request::Cancel(field(v, "job").ok_or("cancel needs job")?)),
            "result" => Ok(Request::Result(field(v, "job").ok_or("result needs job")?)),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown request type {other:?}")),
        }
    }

    /// Encode as a frame value.
    pub fn to_value(&self) -> Value {
        match self {
            Request::Submit(spec) => obj(vec![
                ("type", "submit".to_json()),
                ("spec", spec.to_json()),
            ]),
            Request::Watch(job) => {
                obj(vec![("type", "watch".to_json()), ("job", job.to_json())])
            }
            Request::Status(job) => {
                obj(vec![("type", "status".to_json()), ("job", job.to_json())])
            }
            Request::Cancel(job) => {
                obj(vec![("type", "cancel".to_json()), ("job", job.to_json())])
            }
            Request::Result(job) => {
                obj(vec![("type", "result".to_json()), ("job", job.to_json())])
            }
            Request::Shutdown => obj(vec![("type", "shutdown".to_json())]),
        }
    }
}

/// Build an `error` frame.
pub fn error_frame(message: &str) -> Value {
    obj(vec![("type", "error".to_json()), ("message", message.to_json())])
}

/// Build an `ok` frame.
pub fn ok_frame() -> Value {
    obj(vec![("type", "ok".to_json())])
}

/// Write one frame as a strict single-line JSON document plus `\n`.
/// A frame that fails strict serialisation (a non-finite number slipped
/// in) is replaced by an `error` frame naming the offending path — the
/// peer sees an explicit error, never a silent NaN.
pub fn write_frame(w: &mut impl Write, frame: &Value) -> std::io::Result<()> {
    let line = match frame.to_wire() {
        Ok(line) => line,
        Err(why) => {
            let msg = format!("unserialisable frame: {why}");
            match error_frame(&msg).to_wire() {
                Ok(line) => line,
                // The fallback frame contains no numbers; this arm is
                // unreachable, but fail closed rather than panic.
                Err(_) => return Err(std::io::Error::other(msg)),
            }
        }
    };
    w.write_all(line.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

/// Read one newline-delimited frame; `Ok(None)` on clean EOF. Parsing
/// runs in strict mode, so `null`-where-number is an error here even
/// though the cache reader tolerates it.
pub fn read_frame(r: &mut impl BufRead) -> std::io::Result<Option<Value>> {
    let mut line = String::new();
    let n = r.read_line(&mut line)?;
    if n == 0 {
        return Ok(None);
    }
    if n > MAX_FRAME_BYTES {
        return Err(std::io::Error::other("frame exceeds MAX_FRAME_BYTES"));
    }
    let text = line.trim_end_matches(['\n', '\r']);
    if text.is_empty() {
        // Tolerate blank keep-alive lines between frames.
        return read_frame(r);
    }
    with_strict(|| parse(text))
        .map(Some)
        .map_err(|e| std::io::Error::other(format!("malformed frame: {e}")))
}

/// Decode a typed payload out of a frame in strict mode (the parse above
/// already ran strict, but `FromJson` float decoding is mode-sensitive
/// too — `null` must not become NaN at this layer either).
pub fn decode_strict<T: FromJson>(v: &Value) -> Option<T> {
    with_strict(|| T::from_json(v))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Submit(JobSpec {
                scale: "smoke".into(),
                seed: 7,
                kind: JobKind::Table2,
                fresh: true,
                label: "a".into(),
            }),
            Request::Watch("00ff".into()),
            Request::Status("00ff".into()),
            Request::Cancel("00ff".into()),
            Request::Result("00ff".into()),
            Request::Shutdown,
        ];
        for req in reqs {
            let v = req.to_value();
            let line = v.to_wire().expect("requests contain no non-finite numbers");
            let back = Request::from_value(&parse(&line).expect("reparse")).expect("decode");
            assert_eq!(back, req);
        }
    }

    #[test]
    fn kinds_and_states_round_trip() {
        use automc_bench::harness::Algo;
        for kind in [
            JobKind::Table2,
            JobKind::Search(Algo::AutoMc),
            JobKind::Search(Algo::Evolution),
            JobKind::Search(Algo::Rl),
            JobKind::Search(Algo::Random),
        ] {
            assert_eq!(JobKind::parse(kind.name()), Some(kind));
        }
        for state in [
            JobState::Queued,
            JobState::Running,
            JobState::Done,
            JobState::Cancelled,
            JobState::Failed,
        ] {
            assert_eq!(JobState::parse(state.name()), Some(state));
        }
    }

    #[test]
    fn job_id_is_stable_and_label_sensitive() {
        let scale = automc_bench::scale::smoke();
        let spec = |label: &str| JobSpec {
            scale: "smoke".into(),
            seed: 7,
            kind: JobKind::Table2,
            fresh: false,
            label: label.into(),
        };
        let a1 = spec("a").job_id(&scale);
        let a2 = spec("a").job_id(&scale);
        let b = spec("b").job_id(&scale);
        assert_eq!(a1, a2, "same spec must map to the same id across submits");
        assert_ne!(a1, b, "labels must separate job identities");
        assert_eq!(a1.len(), 16);
    }

    #[test]
    fn frame_io_round_trips_and_rejects_null_numbers() {
        let mut buf: Vec<u8> = Vec::new();
        let frame = obj(vec![("type", "state".to_json()), ("seed", 7u64.to_json())]);
        write_frame(&mut buf, &frame).expect("write");
        let mut r = std::io::BufReader::new(&buf[..]);
        let back = read_frame(&mut r).expect("read").expect("one frame");
        assert_eq!(back, frame);
        assert!(read_frame(&mut r).expect("eof").is_none());

        // A NaN in a frame becomes an explicit error frame on the wire.
        let mut buf: Vec<u8> = Vec::new();
        let bad = obj(vec![("acc", f64::NAN.to_json())]);
        write_frame(&mut buf, &bad).expect("write substitutes an error frame");
        let text = String::from_utf8(buf).expect("utf8");
        assert!(text.contains("\"error\""), "got: {text}");

        // Strict decode refuses null-as-number payloads.
        let v = parse(r#"{"acc": null}"#).expect("parse");
        assert!(decode_strict::<f32>(v.get("acc").expect("field")).is_none());
    }
}
