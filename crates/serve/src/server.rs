//! The daemon: accept loop, job registry, bounded executor pool.
//!
//! One process hosts everything: N executor threads pull jobs from a
//! bounded queue and run them through the bench harness's job-unit API
//! (`table2_rows_with` / `run_search_with`), which fans work out over the
//! shared `automc_tensor::par` pool; all jobs share one result cache, one
//! memo LRU, and one spill `BlobStore`, so concurrent searches
//! deduplicate prefix models across clients. Every connection gets its
//! own thread; a `watch` replays the job's frame log and then streams
//! live events from a per-job fan-out of `mpsc` senders.
//!
//! Failure model: job caches and round journals are crash-safe (written
//! by the layers below), so the daemon itself holds no durable state —
//! kill it at any point and a restarted daemon given the same submission
//! resumes from the journals because the job id is derived from the same
//! fingerprint material that keys them.

use crate::protocol::{
    error_frame, ok_frame, read_frame, write_frame, JobKind, JobSpec, JobState, Request,
};
use automc_bench::harness::{self, RunOpts};
use automc_bench::scale::ExperimentScale;
use automc_bench::{cache, orchestrator};
use automc_compress::store::{self, StoreCounters};
use automc_compress::StrategySpace;
use automc_core::journal;
use automc_core::progress::{RoundControl, RoundEvent, RoundObserver};
use automc_core::RoundHook;
use automc_json::{obj, ToJson, Value};
use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// Jobs waiting in the bounded queue before submits are refused.
pub const QUEUE_CAP: usize = 32;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address (`127.0.0.1:0` picks a free port).
    pub listen: String,
    /// Executor threads — how many jobs run concurrently.
    pub jobs: usize,
    /// File the bound address is written to (for scripts that start the
    /// daemon with port 0 and need to discover the port).
    pub addr_file: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig { listen: "127.0.0.1:0".into(), jobs: 2, addr_file: None }
    }
}

/// Lock a mutex, riding through poisoning: a panicking job thread must
/// not wedge the whole daemon (the registry holds only small state whose
/// invariants are per-field).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// One submitted job.
pub struct Job {
    /// Spec-derived stable id (see [`JobSpec::job_id`]).
    pub id: String,
    /// The submitted spec.
    pub spec: JobSpec,
    /// Resolved scale.
    pub scale: ExperimentScale,
    cancel: AtomicBool,
    inner: Mutex<JobInner>,
}

struct JobInner {
    state: JobState,
    /// Every frame published so far — watchers joining late replay this.
    log: Vec<Value>,
    /// Live watcher channels; pruned when a send fails.
    subs: Vec<mpsc::Sender<Value>>,
    /// The terminal `done` frame, for `result` requests.
    terminal: Option<Value>,
}

impl Job {
    fn new(id: String, spec: JobSpec, scale: ExperimentScale) -> Arc<Job> {
        Arc::new(Job {
            id,
            spec,
            scale,
            cancel: AtomicBool::new(false),
            inner: Mutex::new(JobInner {
                state: JobState::Queued,
                log: Vec::new(),
                subs: Vec::new(),
                terminal: None,
            }),
        })
    }

    /// Current state.
    pub fn state(&self) -> JobState {
        lock(&self.inner).state
    }

    /// Request cooperative cancellation (takes effect at the next round
    /// boundary or grid-task start).
    pub fn request_cancel(&self) {
        self.cancel.store(true, Ordering::SeqCst);
    }

    /// Append a frame to the log and fan it out to live watchers. Holding
    /// the lock across both steps is what makes `watch` lossless: a
    /// subscriber either sees a frame in its replayed snapshot or
    /// receives it live, never neither.
    fn publish(&self, frame: Value) {
        let mut inner = lock(&self.inner);
        inner.subs.retain(|tx| tx.send(frame.clone()).is_ok());
        inner.log.push(frame);
    }

    fn set_state(&self, state: JobState) {
        {
            let mut inner = lock(&self.inner);
            inner.state = state;
        }
        self.publish(obj(vec![
            ("type", "state".to_json()),
            ("job", self.id.to_json()),
            ("state", state.name().to_json()),
        ]));
    }

    /// Publish the terminal `done` frame and stop accepting transitions.
    fn finish(&self, state: JobState, mut fields: Vec<(&str, Value)>) {
        let mut all = vec![
            ("type", "done".to_json()),
            ("job", self.id.to_json()),
            ("state", state.name().to_json()),
        ];
        all.append(&mut fields);
        let frame = obj(all);
        {
            let mut inner = lock(&self.inner);
            inner.state = state;
            inner.terminal = Some(frame.clone());
        }
        self.publish(frame);
    }
}

/// The registry + queue shared by every connection thread.
struct Shared {
    jobs: Mutex<HashMap<String, Arc<Job>>>,
    queue: SyncSender<Arc<Job>>,
    shutdown: AtomicBool,
}

/// Run the daemon until a `shutdown` request arrives. Binds `cfg.listen`,
/// writes the bound address to `cfg.addr_file`, then serves forever.
pub fn run(cfg: &ServeConfig) -> std::io::Result<()> {
    let listener = TcpListener::bind(&cfg.listen)?;
    let addr = listener.local_addr()?;
    eprintln!("[serve] listening on {addr} ({} executor(s))", cfg.jobs.max(1));
    if let Some(path) = &cfg.addr_file {
        // Atomic so a script polling the file never reads a torn address.
        journal::write_atomic(path, addr.to_string().as_bytes())?;
    }

    let (tx, rx) = mpsc::sync_channel::<Arc<Job>>(QUEUE_CAP);
    let shared = Arc::new(Shared {
        jobs: Mutex::new(HashMap::new()),
        queue: tx,
        shutdown: AtomicBool::new(false),
    });

    let rx = Arc::new(Mutex::new(rx));
    for slot in 0..cfg.jobs.max(1) {
        let rx = Arc::clone(&rx);
        std::thread::Builder::new()
            .name(format!("serve-exec-{slot}"))
            .spawn(move || executor_loop(&rx))?;
    }

    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(e) => {
                eprintln!("[serve] accept failed: {e}");
                continue;
            }
        };
        let shared = Arc::clone(&shared);
        let addr_for_unblock = addr;
        std::thread::Builder::new().name("serve-conn".into()).spawn(move || {
            if let Err(e) = handle_connection(&shared, stream) {
                eprintln!("[serve] connection ended: {e}");
            }
            if shared.shutdown.load(Ordering::SeqCst) {
                // Unblock the accept loop so it observes the flag.
                let _ = TcpStream::connect(addr_for_unblock);
            }
        })?;
    }
    eprintln!("[serve] shutting down");
    Ok(())
}

fn executor_loop(rx: &Arc<Mutex<Receiver<Arc<Job>>>>) {
    loop {
        // Hold the receiver lock only for the dequeue, not the run.
        let job = match lock(rx).recv() {
            Ok(job) => job,
            Err(_) => return, // queue sender dropped: daemon is exiting
        };
        run_job(&job);
    }
}

/// Observer wired into every search round of a job: publishes a `round`
/// frame and carries the cancel flag.
struct JobObserver {
    job: Arc<Job>,
    store_start: StoreCounters,
}

impl RoundObserver for JobObserver {
    fn on_round(&self, ev: &RoundEvent) -> RoundControl {
        self.job.publish(round_frame(&self.job.id, ev, &self.store_start));
        if self.cancelled() {
            RoundControl::Cancel
        } else {
            RoundControl::Continue
        }
    }

    fn cancelled(&self) -> bool {
        self.job.cancel.load(Ordering::SeqCst)
    }
}

/// Build the per-round progress frame. `best_*` fields are omitted (not
/// `null`) while no feasible candidate exists — the strict wire mode has
/// no NaN to hide behind.
fn round_frame(job_id: &str, ev: &RoundEvent, store_start: &StoreCounters) -> Value {
    let store_now = store::counters().since(store_start);
    let mut fields = vec![
        ("type", "round".to_json()),
        ("job", job_id.to_json()),
        ("algo", ev.algorithm.to_json()),
        ("round", ev.round.to_json()),
        ("spent", ev.spent.to_json()),
        ("budget", ev.budget.to_json()),
        ("evals", ev.evals.to_json()),
        ("failed", ev.failed.to_json()),
    ];
    if let Some(acc) = ev.best_acc {
        fields.push(("best_acc", acc.to_json()));
    }
    if let Some(flops) = ev.best_flops {
        fields.push(("best_flops", flops.to_json()));
    }
    if let Some(pr) = ev.best_pr {
        fields.push(("best_pr", pr.to_json()));
    }
    fields.extend([
        ("memo_lookups", ev.memo.lookups.to_json()),
        ("memo_prefix_hits", ev.memo.prefix_hits.to_json()),
        ("memo_hit_rate_pct", ev.memo.hit_rate_pct().to_json()),
        ("store_hits", store_now.hits.to_json()),
        ("store_misses", store_now.misses.to_json()),
        ("store_hit_rate_pct", store_now.hit_rate_pct().to_json()),
    ]);
    obj(fields)
}

/// Execute one job to a terminal state. Panics inside the job body are
/// caught and reported as `failed` — one bad job must not take an
/// executor thread (or the daemon) down.
fn run_job(job: &Arc<Job>) {
    if job.cancel.load(Ordering::SeqCst) {
        // Cancelled while still queued: never started, nothing to resume.
        job.finish(JobState::Cancelled, Vec::new());
        return;
    }
    job.set_state(JobState::Running);
    let store_start = store::counters();
    let hook = RoundHook::new(Arc::new(JobObserver {
        job: Arc::clone(job),
        store_start,
    }));
    let opts = RunOpts {
        hook,
        journal_dir: Some(journal::job_dir(&cache::cache_dir(), &job.id)),
    };
    let body = std::panic::AssertUnwindSafe(|| job_result(job, &opts));
    match std::panic::catch_unwind(body) {
        Ok(Some(result)) => {
            job.finish(JobState::Done, vec![("result", result)]);
        }
        Ok(None) => {
            // Cancelled at a round boundary; journals stay on disk, so a
            // resubmitted identical spec resumes from here.
            job.finish(JobState::Cancelled, Vec::new());
        }
        Err(panic) => {
            let msg = panic
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| panic.downcast_ref::<&str>().copied())
                .unwrap_or("job panicked");
            eprintln!("[serve] job {} failed: {msg}", job.id);
            job.finish(JobState::Failed, vec![("message", msg.to_json())]);
        }
    }
}

/// The job body: compute the result payload, or `None` when cancelled.
fn job_result(job: &Arc<Job>, opts: &RunOpts) -> Option<Value> {
    let seed = job.spec.seed;
    match job.spec.kind {
        JobKind::Table2 => {
            let (band40, band70) =
                harness::table2_rows_with(&job.scale, seed, job.spec.fresh, opts)?;
            Some(obj(vec![
                ("kind", "table2".to_json()),
                ("scale", job.scale.name.to_json()),
                ("seed", seed.to_json()),
                ("band40", band40.to_json()),
                ("band70", band70.to_json()),
            ]))
        }
        JobKind::Search(algo) => {
            let space = StrategySpace::full();
            // Only AutoMC consumes the knowledge embeddings; skipping them
            // for the baselines avoids their one-time corpus cost without
            // changing any result.
            let emb = matches!(algo, harness::Algo::AutoMc)
                .then(|| harness::automc_embeddings(&space, "full", seed, false, true, true));
            let task = automc_bench::scale::prepare_task(&job.scale, seed);
            let history = harness::run_search_with(
                algo,
                &task,
                &space,
                emb.as_deref(),
                seed,
                job.spec.fresh,
                job.scale.name,
                opts,
            )?;
            let best = history.best(job.scale.gamma);
            let mut fields = vec![
                ("kind", "search".to_json()),
                ("algo", job.spec.kind.name().to_json()),
                ("scale", job.scale.name.to_json()),
                ("seed", seed.to_json()),
                ("evals", history.records.len().to_json()),
                ("failed", history.failed_count().to_json()),
                ("total_cost", history.total_cost().to_json()),
            ];
            if let Some(b) = best {
                fields.push(("best_acc", b.acc.to_json()));
                fields.push(("best_pr", b.pr.to_json()));
                fields.push(("best_flops", b.flops.to_json()));
            }
            Some(obj(fields))
        }
    }
}

// ------------------------------------------------------------------------
// Connections
// ------------------------------------------------------------------------

fn handle_connection(shared: &Arc<Shared>, stream: TcpStream) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    while let Some(frame) = read_frame(&mut reader)? {
        let req = match Request::from_value(&frame) {
            Ok(req) => req,
            Err(why) => {
                write_frame(&mut writer, &error_frame(&why))?;
                continue;
            }
        };
        match req {
            Request::Submit(spec) => handle_submit(shared, spec, &mut writer)?,
            Request::Watch(id) => match find_job(shared, &id) {
                Some(job) => handle_watch(&job, &mut writer)?,
                None => write_frame(&mut writer, &error_frame("unknown job"))?,
            },
            Request::Status(id) => match find_job(shared, &id) {
                Some(job) => write_frame(
                    &mut writer,
                    &obj(vec![
                        ("type", "state".to_json()),
                        ("job", job.id.to_json()),
                        ("state", job.state().name().to_json()),
                    ]),
                )?,
                None => write_frame(&mut writer, &error_frame("unknown job"))?,
            },
            Request::Cancel(id) => match find_job(shared, &id) {
                Some(job) => {
                    job.request_cancel();
                    write_frame(&mut writer, &ok_frame())?;
                }
                None => write_frame(&mut writer, &error_frame("unknown job"))?,
            },
            Request::Result(id) => match find_job(shared, &id) {
                Some(job) => {
                    let terminal = lock(&job.inner).terminal.clone();
                    match terminal {
                        Some(frame) => write_frame(&mut writer, &frame)?,
                        None => write_frame(
                            &mut writer,
                            &error_frame(&format!(
                                "job not finished (state {})",
                                job.state().name()
                            )),
                        )?,
                    }
                }
                None => write_frame(&mut writer, &error_frame("unknown job"))?,
            },
            Request::Shutdown => {
                shared.shutdown.store(true, Ordering::SeqCst);
                write_frame(&mut writer, &ok_frame())?;
                writer.flush()?;
                return Ok(());
            }
        }
    }
    Ok(())
}

fn find_job(shared: &Arc<Shared>, id: &str) -> Option<Arc<Job>> {
    lock(&shared.jobs).get(id).cloned()
}

fn handle_submit(
    shared: &Arc<Shared>,
    spec: JobSpec,
    writer: &mut impl Write,
) -> std::io::Result<()> {
    let Some(scale) = orchestrator::scale_by_name(&spec.scale) else {
        return write_frame(
            writer,
            &error_frame(&format!("unknown scale {:?}", spec.scale)),
        );
    };
    let id = spec.job_id(&scale);
    let submitted = |job: &Arc<Job>, dedup: bool| {
        obj(vec![
            ("type", "submitted".to_json()),
            ("job", job.id.to_json()),
            ("state", job.state().name().to_json()),
            ("dedup", dedup.to_json()),
        ])
    };
    // Registry lock spans the lookup and the insert so two simultaneous
    // submits of one spec cannot both enqueue. A cancelled or failed job
    // is replaced by a fresh one under the same id — same journals, so
    // the re-run resumes from where the cancelled run stopped.
    let (job, dedup) = {
        let mut jobs = lock(&shared.jobs);
        match jobs.get(&id) {
            Some(existing)
                if !matches!(existing.state(), JobState::Cancelled | JobState::Failed) =>
            {
                (Arc::clone(existing), true)
            }
            _ => {
                let job = Job::new(id.clone(), spec, scale);
                jobs.insert(id.clone(), Arc::clone(&job));
                (job, false)
            }
        }
    };
    if dedup {
        return write_frame(writer, &submitted(&job, true));
    }
    match shared.queue.try_send(Arc::clone(&job)) {
        Ok(()) => {
            eprintln!("[serve] job {} queued ({})", job.id, job.spec.kind.name());
            write_frame(writer, &submitted(&job, false))
        }
        Err(e) => {
            lock(&shared.jobs).remove(&id);
            let why = match e {
                TrySendError::Full(_) => "job queue full",
                TrySendError::Disconnected(_) => "server is shutting down",
            };
            write_frame(writer, &error_frame(why))
        }
    }
}

/// Replay the job's frame log, then stream live frames until terminal.
fn handle_watch(job: &Arc<Job>, writer: &mut impl Write) -> std::io::Result<()> {
    let (snapshot, live) = {
        let mut inner = lock(&job.inner);
        let snapshot = inner.log.clone();
        if inner.state.is_terminal() {
            (snapshot, None)
        } else {
            let (tx, rx) = mpsc::channel();
            inner.subs.push(tx);
            (snapshot, Some(rx))
        }
    };
    for frame in &snapshot {
        write_frame(writer, frame)?;
    }
    let Some(rx) = live else { return Ok(()) };
    loop {
        match rx.recv_timeout(Duration::from_secs(1)) {
            Ok(frame) => {
                let done = frame.get("type").and_then(Value::as_str) == Some("done");
                write_frame(writer, &frame)?;
                if done {
                    return Ok(());
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                // Keep waiting; publish() under the registry lock means a
                // terminal frame cannot have slipped past this subscriber.
                continue;
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => return Ok(()),
        }
    }
}
