//! End-to-end daemon tests: every scenario starts a real `automc-serve`
//! child process (`CARGO_BIN_EXE_automc-serve`) at a shrunk smoke scale
//! and talks to it through the client library.
//!
//! Covered here (and required by the acceptance criteria):
//! - two concurrent clients submitting the same job share one
//!   computation and read byte-identical results, and a fresh re-run of
//!   the same work on the warm daemon reports a memo hit-rate > 0 in its
//!   streamed round frames;
//! - cooperative cancellation stops at a round boundary, leaves the
//!   round journal on disk, and a resubmitted identical spec resumes
//!   from the cancelled round instead of restarting;
//! - a daemon killed mid-job by an injected fault (`exit@eval`) loses no
//!   work: a restarted daemon given the same submission resumes from the
//!   journal, and the result matches an uninterrupted run exactly.

use automc_json::Value;
use automc_serve::client::{render_result, Client};
use automc_serve::protocol::{JobKind, JobSpec};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Tiny grid for the full-Table-2 concurrency test (seconds per run).
const KNOBS_TINY: [(&str, &str); 4] = [
    ("AUTOMC_SMOKE_TRAIN", "32"),
    ("AUTOMC_SMOKE_TEST", "16"),
    ("AUTOMC_SMOKE_EPOCHS", "1"),
    ("AUTOMC_SMOKE_BUDGET", "150"),
];

/// Heavier evaluations for the cancel test: each search round takes
/// seconds, so a cancel issued after the first round frame always lands
/// before the search finishes.
const KNOBS_SLOW: [(&str, &str); 4] = [
    ("AUTOMC_SMOKE_TRAIN", "1024"),
    ("AUTOMC_SMOKE_TEST", "64"),
    ("AUTOMC_SMOKE_EPOCHS", "8"),
    ("AUTOMC_SMOKE_BUDGET", "8000"),
];

/// Mid-weight knobs for the crash test: enough budget that the search
/// always reaches its third evaluation (where the exit fault fires).
const KNOBS_MID: [(&str, &str); 4] = [
    ("AUTOMC_SMOKE_TRAIN", "256"),
    ("AUTOMC_SMOKE_TEST", "32"),
    ("AUTOMC_SMOKE_EPOCHS", "2"),
    ("AUTOMC_SMOKE_BUDGET", "6000"),
];

struct Server {
    child: Child,
    addr: String,
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("automc-serve-e2e-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// Start a daemon child over `dir/results`, wait for its address file.
/// `tag` names the daemon's stderr log (`dir/server-<tag>.log`).
fn start_server(dir: &Path, tag: &str, knobs: &[(&str, &str)], faults: Option<&str>) -> Server {
    let addr_file = dir.join("addr");
    let _ = std::fs::remove_file(&addr_file);
    let log = std::fs::File::create(dir.join(format!("server-{tag}.log"))).expect("log file");
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_automc-serve"));
    cmd.args(["serve", "--jobs", "2", "--addr-file"])
        .arg(&addr_file)
        .env("AUTOMC_RESULTS_DIR", dir.join("results"))
        .env("AUTOMC_THREADS", "2")
        .stdout(Stdio::null())
        .stderr(log);
    // Stray state from the invoking environment must not leak in.
    for k in ["AUTOMC_FAULTS", "AUTOMC_SHARED_RESULTS_DIR", "AUTOMC_MEMO_SPILL_DIR"] {
        cmd.env_remove(k);
    }
    for (k, v) in knobs {
        cmd.env(k, v);
    }
    if let Some(spec) = faults {
        cmd.env("AUTOMC_FAULTS", spec);
    }
    let child = cmd.spawn().expect("serve binary must spawn");
    let deadline = Instant::now() + Duration::from_secs(30);
    let addr = loop {
        if let Ok(text) = std::fs::read_to_string(&addr_file) {
            if !text.trim().is_empty() {
                break text.trim().to_string();
            }
        }
        assert!(Instant::now() < deadline, "daemon never wrote its address file");
        std::thread::sleep(Duration::from_millis(50));
    };
    Server { child, addr }
}

fn spec(kind: JobKind, seed: u64, fresh: bool, label: &str) -> JobSpec {
    JobSpec { scale: "smoke".into(), seed, kind, fresh, label: label.into() }
}

/// Submit + watch to completion; returns (job id, round frames, terminal).
fn run_to_done(addr: &str, spec: &JobSpec) -> (String, Vec<Value>, Value) {
    let mut client = Client::connect(addr).expect("connect");
    let (job, _dedup) = client.submit(spec).expect("submit");
    let mut rounds = Vec::new();
    let terminal = client
        .watch(&job, |frame| {
            if frame.get("type").and_then(Value::as_str) == Some("round") {
                rounds.push(frame.clone());
            }
        })
        .expect("watch to terminal frame");
    (job, rounds, terminal)
}

fn state_of(frame: &Value) -> &str {
    frame.get("state").and_then(Value::as_str).unwrap_or("?")
}

fn round_no(frame: &Value) -> u64 {
    frame.get("round").and_then(Value::as_f64).unwrap_or(0.0) as u64
}

#[test]
fn concurrent_clients_share_one_computation_and_rerun_hits_the_memo() {
    let dir = fresh_dir("concurrent");
    let server = start_server(&dir, "main", &KNOBS_TINY, None);

    // Two clients race to submit the identical Table 2 job; the registry
    // must run it once and both must stream to the same terminal result.
    let table2 = spec(JobKind::Table2, 9, false, "");
    let (a, b) = std::thread::scope(|scope| {
        let ta = scope.spawn(|| run_to_done(&server.addr, &table2));
        let tb = scope.spawn(|| run_to_done(&server.addr, &table2));
        (ta.join().expect("client A"), tb.join().expect("client B"))
    });
    assert_eq!(a.0, b.0, "identical specs must map to one job id");
    assert_eq!(state_of(&a.2), "done", "terminal: {:?}", a.2);
    let rendered_a = render_result(&a.2).expect("client A table");
    let rendered_b = render_result(&b.2).expect("client B table");
    assert_eq!(rendered_a, rendered_b, "concurrent clients must read identical bytes");

    // A fresh re-run (cache bypassed, distinct label → distinct job)
    // recomputes on the warm daemon: byte-identical output again, and the
    // streamed round frames must show prefix-memo hits from the shared
    // store — the second client gets the first client's warm state.
    let (job2, rounds, terminal) = run_to_done(&server.addr, &spec(JobKind::Table2, 9, true, "rerun"));
    assert_ne!(job2, a.0, "label must separate job identities");
    assert_eq!(state_of(&terminal), "done", "terminal: {terminal:?}");
    let rendered_rerun = render_result(&terminal).expect("rerun table");
    assert_eq!(
        rendered_rerun, rendered_a,
        "a fresh recompute must be byte-identical to the cached run"
    );
    assert!(!rounds.is_empty(), "table2 searches must stream round frames");
    let memo_hits: f64 = rounds
        .iter()
        .filter_map(|r| r.get("memo_prefix_hits").and_then(Value::as_f64))
        .sum();
    assert!(
        memo_hits > 0.0,
        "re-run on a warm daemon must report prefix-memo hits, rounds: {rounds:?}"
    );
}

/// The daemon's stderr must record a journal resume — the proof that a
/// resubmitted job continued from disk instead of restarting.
fn assert_resumed(dir: &Path, tag: &str) {
    let path = dir.join(format!("server-{tag}.log"));
    let log = std::fs::read_to_string(&path).expect("server log");
    assert!(
        log.contains("[journal] resumed"),
        "daemon log {path:?} must record a journal resume:\n{log}"
    );
}

#[test]
fn cancel_stops_at_a_round_boundary_and_resubmit_resumes_the_journal() {
    let dir = fresh_dir("cancel");
    let server = start_server(&dir, "main", &KNOBS_SLOW, None);
    // Random search: exactly one evaluation per round, so rounds are
    // frequent and the cancel lands well inside the run.
    let job_spec = spec(JobKind::Search(automc_bench::harness::Algo::Random), 11, true, "");

    // Submit, then cancel from a second connection as soon as the first
    // round frame arrives; the slow knobs give each round seconds of
    // margin, so the cancel lands at a mid-run round boundary.
    let mut client = Client::connect(&server.addr).expect("connect");
    let (job, _) = client.submit(&job_spec).expect("submit");
    let mut cancelled_after = None;
    let terminal = client
        .watch(&job, |frame| {
            if frame.get("type").and_then(Value::as_str) == Some("round")
                && cancelled_after.is_none()
            {
                let mut side = Client::connect(&server.addr).expect("second connection");
                side.cancel(&job).expect("cancel");
                cancelled_after = Some(round_no(frame));
            }
        })
        .expect("watch");
    let cancelled_after = cancelled_after.expect("must have seen a round frame");
    assert_eq!(state_of(&terminal), "cancelled", "terminal: {terminal:?}");

    // The round journal must survive cancellation (that is the contract
    // that makes cancel cheap to undo).
    let journal_dir = dir.join("results").join("jobs").join(&job);
    let journal_files = std::fs::read_dir(&journal_dir)
        .map(|d| d.count())
        .unwrap_or(0);
    assert!(
        journal_files > 0,
        "cancelled job must leave its journal in {journal_dir:?}"
    );

    // Resubmitting the identical spec must resume the journal, not
    // restart: the daemon logs the resume, and any round frame the
    // resumed run streams continues past the cancelled round.
    let (job2, rounds, terminal) = run_to_done(&server.addr, &job_spec);
    assert_eq!(job2, job, "identical spec must key the same job/journals");
    assert_eq!(state_of(&terminal), "done", "terminal: {terminal:?}");
    assert_resumed(&dir, "main");
    if let Some(first_resumed) = rounds.first().map(round_no) {
        assert!(
            first_resumed > cancelled_after,
            "resume must continue after round {cancelled_after}, got {first_resumed}"
        );
    }

    // …and the resumed result must match an uninterrupted run bit for bit.
    let (_, _, reference) = run_to_done(&server.addr, &spec(
        JobKind::Search(automc_bench::harness::Algo::Random), 11, true, "reference",
    ));
    assert_eq!(
        render_result(&terminal).expect("resumed summary"),
        render_result(&reference).expect("reference summary"),
        "cancel + resume must not change the search result"
    );
}

#[test]
fn killed_daemon_resumes_the_job_after_restart() {
    let dir = fresh_dir("crash");
    // Random search again: one evaluation per round makes the fault
    // ordinal deterministic — evaluations 1 and 2 complete (journaling
    // rounds 1 and 2), the third one kills the daemon.
    let job_spec = spec(JobKind::Search(automc_bench::harness::Algo::Random), 13, true, "");

    let mut server = start_server(&dir, "one", &KNOBS_MID, Some("exit@eval:3"));
    let mut client = Client::connect(&server.addr).expect("connect");
    let (job, _) = client.submit(&job_spec).expect("submit");
    let mut rounds_before_crash = 0u64;
    let watch_result = client.watch(&job, |frame| {
        if frame.get("type").and_then(Value::as_str) == Some("round") {
            rounds_before_crash += 1;
        }
    });
    assert!(
        watch_result.is_err(),
        "watch must fail when the daemon dies mid-job, got {watch_result:?}"
    );
    assert!(
        rounds_before_crash >= 1,
        "round 1 must have been journaled (and streamed) before the crash"
    );
    let status = server.child.wait().expect("daemon #1 exit status");
    assert_eq!(status.code(), Some(87), "injected exit fault must have fired");

    // Daemon #2 over the same results dir, no faults: resubmitting the
    // identical spec resumes the journal instead of restarting.
    let server2 = start_server(&dir, "two", &KNOBS_MID, None);
    let (job2, rounds, terminal) = run_to_done(&server2.addr, &job_spec);
    assert_eq!(job2, job, "same spec must key the same job across restarts");
    assert_eq!(state_of(&terminal), "done", "terminal: {terminal:?}");
    assert_resumed(&dir, "two");
    let first_resumed = rounds.first().map(round_no).expect("resumed rounds");
    assert!(
        first_resumed > 1,
        "restarted daemon must resume past round 1, got round {first_resumed}"
    );

    // The recovered result must match an uninterrupted run bit for bit.
    let (_, _, reference) = run_to_done(&server2.addr, &spec(
        JobKind::Search(automc_bench::harness::Algo::Random), 13, true, "reference",
    ));
    assert_eq!(
        render_result(&terminal).expect("recovered summary"),
        render_result(&reference).expect("reference summary"),
        "crash + resume must not change the search result"
    );
}
