//! Zero-dependency JSON for the result cache.
//!
//! The offline build environment cannot fetch serde, so the workspace
//! carries its own small JSON layer: a [`Value`] model, a recursive-descent
//! parser ([`parse`]), a pretty-printer, and [`ToJson`]/[`FromJson`]
//! conversion traits with impls for the primitive and container types the
//! cache actually stores. Domain types (search histories, result rows)
//! implement the traits by hand — field-name keyed objects, so the on-disk
//! format matches what serde_json used to produce.

#![warn(missing_docs)]

use std::fmt::Write as _;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Render with two-space indentation and a trailing newline.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    /// Render on a single line with no insignificant whitespace. Suitable
    /// for newline-delimited framing: the output never contains `\n`
    /// (strings escape control characters).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    /// Strict wire form: [`to_string_compact`](Self::to_string_compact),
    /// but any non-finite number anywhere in the document is an error
    /// instead of being silently flattened to `null`. Use this for every
    /// frame that crosses a protocol boundary — on-disk caches tolerate
    /// the `null`↔NaN round-trip, a wire peer must not.
    pub fn to_wire(&self) -> Result<String, String> {
        self.check_finite("$")?;
        Ok(self.to_string_compact())
    }

    fn check_finite(&self, at: &str) -> Result<(), String> {
        match self {
            Value::Num(n) if !n.is_finite() => {
                Err(format!("non-finite number {n} at {at}"))
            }
            Value::Arr(items) => {
                for (i, item) in items.iter().enumerate() {
                    item.check_finite(&format!("{at}[{i}]"))?;
                }
                Ok(())
            }
            Value::Obj(fields) => {
                for (k, v) in fields {
                    v.check_finite(&format!("{at}.{k}"))?;
                }
                Ok(())
            }
            _ => Ok(()),
        }
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => write_num(out, *n),
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => write_num(out, *n),
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Value::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no Inf/NaN; null round-trips to NaN on read. Wire
        // serialisation rejects this case up front (`Value::to_wire`).
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.0e15 && !(n == 0.0 && n.is_sign_negative()) {
        // Integer fast path. `-0.0` is excluded: `-0.0 as i64` is `0`,
        // which would silently drop the sign bit on a round trip.
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

// ------------------------------------------------------------------------
// Strict parse mode
// ------------------------------------------------------------------------

std::thread_local! {
    static STRICT_PARSE: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Run `f` with strict number decoding on this thread: a `null` where a
/// float is expected is a shape mismatch (`None`) instead of decoding as
/// NaN. `Option<f32>`-style nullable fields still decode `null` as `None`
/// — strictness only affects bare float positions. The previous mode is
/// restored on exit (nesting is safe).
pub fn with_strict<T>(f: impl FnOnce() -> T) -> T {
    let prev = STRICT_PARSE.with(|s| s.replace(true));
    let out = f();
    STRICT_PARSE.with(|s| s.set(prev));
    out
}

/// Whether [`with_strict`] is active on this thread.
pub fn strict_parse() -> bool {
    STRICT_PARSE.with(|s| s.get())
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ------------------------------------------------------------------------
// Parser
// ------------------------------------------------------------------------

/// Parse a JSON document. Returns a byte-offset-tagged message on error.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let cp = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs are not needed for cache data;
                            // map unpaired surrogates to U+FFFD.
                            out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xC0 == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}

// ------------------------------------------------------------------------
// Conversion traits
// ------------------------------------------------------------------------

/// Types that can render themselves as a [`Value`].
pub trait ToJson {
    /// Convert to a JSON value.
    fn to_json(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait FromJson: Sized {
    /// Convert from a JSON value; `None` on shape mismatch.
    fn from_json(v: &Value) -> Option<Self>;
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl FromJson for Value {
    fn from_json(v: &Value) -> Option<Self> {
        Some(v.clone())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Value) -> Option<Self> {
        match v {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Value) -> Option<Self> {
        v.as_str().map(|s| s.to_string())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

macro_rules! float_json {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Value) -> Option<Self> {
                match v {
                    Value::Num(n) => Some(*n as $t),
                    // Non-finite floats are serialised as null by the
                    // lenient cache writer; in strict (wire) mode that is
                    // a shape mismatch instead.
                    Value::Null if !strict_parse() => Some(<$t>::NAN),
                    _ => None,
                }
            }
        }
    )*};
}

float_json!(f32, f64);

macro_rules! int_json {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Value) -> Option<Self> {
                let n = v.as_f64()?;
                if n.fract() != 0.0 {
                    return None;
                }
                <$t>::try_from(n as i64).ok()
            }
        }
    )*};
}

int_json!(usize, u64, u32, u8, i64, i32);

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Value) -> Option<Self> {
        v.as_arr()?.iter().map(T::from_json).collect()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(t) => t.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Value) -> Option<Self> {
        match v {
            Value::Null => Some(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: ToJson> ToJson for &T {
    fn to_json(&self) -> Value {
        (*self).to_json()
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

macro_rules! tuple_json {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: ToJson),+> ToJson for ($($name,)+) {
            fn to_json(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_json()),+])
            }
        }
        impl<$($name: FromJson),+> FromJson for ($($name,)+) {
            fn from_json(v: &Value) -> Option<Self> {
                let items = v.as_arr()?;
                let expected = [$(stringify!($idx)),+].len();
                if items.len() != expected {
                    return None;
                }
                Some(($($name::from_json(&items[$idx])?,)+))
            }
        }
    )+};
}

tuple_json!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

/// Build an object value from `(key, value)` pairs.
pub fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Pull a typed field out of an object.
pub fn field<T: FromJson>(v: &Value, key: &str) -> Option<T> {
    T::from_json(v.get(key)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse(" false ").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::Num(42.0));
        assert_eq!(parse("-1.5e3").unwrap(), Value::Num(-1500.0));
        assert_eq!(parse("\"hi\\n\\\"there\\\"\"").unwrap(), Value::Str("hi\n\"there\"".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, 2, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(field::<Vec<Value>>(&v, "a").unwrap().len(), 3);
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn pretty_output_reparses() {
        let v = obj(vec![
            ("name", "täst \"quoted\"\n".to_json()),
            ("nums", vec![1.5f32, -2.0, 0.25].to_json()),
            ("ints", vec![0usize, 7, 123456].to_json()),
            ("none", (None as Option<u32>).to_json()),
            ("flag", true.to_json()),
        ]);
        let text = v.to_string_pretty();
        let back = parse(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn float_round_trip_is_exact() {
        for &x in &[0.1f32, 1.0 / 3.0, f32::MIN_POSITIVE, 1e30, -7.25] {
            let text = x.to_json().to_string_pretty();
            let back: f32 = FromJson::from_json(&parse(&text).unwrap()).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} mangled to {back}");
        }
        let nan_text = f32::NAN.to_json().to_string_pretty();
        let back: f32 = FromJson::from_json(&parse(&nan_text).unwrap()).unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn int_round_trip_and_mismatch() {
        let text = 123456789usize.to_json().to_string_pretty();
        let back: usize = FromJson::from_json(&parse(&text).unwrap()).unwrap();
        assert_eq!(back, 123456789);
        // Type mismatches surface as None, not panics.
        assert!(<usize as FromJson>::from_json(&Value::Str("7".into())).is_none());
        assert!(<usize as FromJson>::from_json(&Value::Num(1.5)).is_none());
        assert!(<u8 as FromJson>::from_json(&Value::Num(300.0)).is_none());
    }

    #[test]
    fn tuples_round_trip() {
        let t = (3usize, vec![1.0f32, 2.0], 0.5f32, -0.25f32);
        let back: (usize, Vec<f32>, f32, f32) =
            FromJson::from_json(&parse(&t.to_json().to_string_pretty()).unwrap()).unwrap();
        assert_eq!(back, t);
        // Wrong arity is a mismatch.
        assert!(<(u32, u32) as FromJson>::from_json(&parse("[1,2,3]").unwrap()).is_none());
    }

    #[test]
    fn compact_output_is_one_line_and_reparses() {
        let v = obj(vec![
            ("name", "line\nbreak \"q\"".to_json()),
            ("nums", vec![1.5f64, -0.25, 3.0].to_json()),
            ("nested", obj(vec![("empty", Value::Arr(vec![])), ("n", Value::Null)])),
        ]);
        let text = v.to_string_compact();
        assert!(!text.contains('\n'), "compact frame contains a newline: {text}");
        assert!(!text.contains(": "), "compact frame has pretty spacing: {text}");
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn wire_round_trip_is_exact_for_edge_floats() {
        // -0.0, subnormals, and max-precision values must survive the
        // wire byte-for-byte (sign bit included).
        let cases: Vec<f64> = vec![
            -0.0,
            0.0,
            f64::MIN_POSITIVE,          // smallest normal
            f64::MIN_POSITIVE / 4.0,    // subnormal
            5e-324,                     // smallest subnormal
            -5e-324,
            0.1,
            1.0 / 3.0,
            f64::MAX,
            -f64::MAX,
            9.0e15,                     // just past the integer fast path
            9007199254740993.0,         // 2^53 + 1 (rounds to 2^53)
        ];
        for &x in &cases {
            let text = x.to_json().to_wire().unwrap();
            let back: f64 = FromJson::from_json(&parse(&text).unwrap()).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x:e} mangled to {back:e} via {text}");
        }
        // The f32 path too (wire frames carry f32 accuracies).
        for &x in &[-0.0f32, f32::MIN_POSITIVE / 2.0, 1.0 / 3.0, f32::MAX] {
            let text = x.to_json().to_wire().unwrap();
            let back: f32 = FromJson::from_json(&parse(&text).unwrap()).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x:e} mangled to {back:e} via {text}");
        }
    }

    #[test]
    fn wire_rejects_non_finite_on_serialize() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(bad.to_json().to_wire().is_err(), "{bad} serialised");
            // Nested positions are found and named.
            let nested = obj(vec![("a", Value::Arr(vec![Value::Num(1.0), bad.to_json()]))]);
            let err = nested.to_wire().unwrap_err();
            assert!(err.contains("$.a[1]"), "path missing from error: {err}");
        }
        // The lenient pretty writer still flattens to null for the cache.
        assert_eq!(f64::NAN.to_json().to_string_pretty().trim(), "null");
    }

    #[test]
    fn strict_parse_rejects_null_where_number() {
        // Lenient (cache) mode: null decodes as NaN.
        let lenient: f32 = FromJson::from_json(&Value::Null).unwrap();
        assert!(lenient.is_nan());
        with_strict(|| {
            assert!(<f32 as FromJson>::from_json(&Value::Null).is_none());
            assert!(<f64 as FromJson>::from_json(&Value::Null).is_none());
            // Nullable fields still decode: Option catches the null first.
            assert_eq!(<Option<f32> as FromJson>::from_json(&Value::Null), Some(None));
            // Real numbers are unaffected.
            assert_eq!(<f64 as FromJson>::from_json(&Value::Num(2.5)), Some(2.5));
        });
        // Mode is restored after the closure.
        let after: f64 = FromJson::from_json(&Value::Null).unwrap();
        assert!(after.is_nan());
    }

    #[test]
    fn unicode_and_control_escapes() {
        let s = "emoji \u{1F600} ctrl \u{1} end".to_string();
        let text = s.to_json().to_string_pretty();
        let back: String = FromJson::from_json(&parse(&text).unwrap()).unwrap();
        assert_eq!(back, s);
    }
}
