use automc_tensor::linalg;
use automc_tensor::nn::{BatchNorm2d, Conv2d, GlobalAvgPool, Layer, Linear, MaxPool2};
use automc_tensor::optim::Param;
use automc_tensor::{Rng, Tensor};

/// The convolution kernel of a [`ConvBnRelu`]: either a plain convolution
/// or a low-rank factored pair `pointwise ∘ basis`.
///
/// The factored form is what HOS's HOOI-style kernel approximation and
/// LFB's filter-basis method produce: a `rank`-filter spatial convolution
/// (the basis) followed by a `1×1` mixing convolution (the coefficients).
#[derive(Clone)]
pub enum ConvKernel {
    /// Plain convolution.
    Full(Conv2d),
    /// Factored low-rank pair.
    Factored {
        /// Spatial basis convolution `in_c → rank` (kernel of the original).
        basis: Conv2d,
        /// Pointwise coefficient convolution `rank → out_c`.
        point: Conv2d,
        /// LFB basis-sharing group: units with the same `Some(g)` share
        /// (and jointly train) their basis weights. `None` = private basis.
        tie_group: Option<usize>,
    },
}

impl ConvKernel {
    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        match self {
            ConvKernel::Full(c) => c.out_channels(),
            ConvKernel::Factored { point, .. } => point.out_channels(),
        }
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        match self {
            ConvKernel::Full(c) => c.in_channels(),
            ConvKernel::Factored { basis, .. } => basis.in_channels(),
        }
    }

    /// Rank of the factored form (basis filter count), if factored.
    pub fn rank(&self) -> Option<usize> {
        match self {
            ConvKernel::Full(_) => None,
            ConvKernel::Factored { basis, .. } => Some(basis.out_channels()),
        }
    }

    /// Spatial stride (of the spatial convolution).
    pub fn stride(&self) -> usize {
        match self {
            ConvKernel::Full(c) => c.stride(),
            ConvKernel::Factored { basis, .. } => basis.stride(),
        }
    }
}

/// Conv → BatchNorm → (optional) ReLU — the atomic unit every architecture
/// in this workspace is assembled from.
#[derive(Clone)]
pub struct ConvBnRelu {
    /// The (possibly factored) convolution kernel.
    pub kernel: ConvKernel,
    /// Batch normalisation over the kernel's output channels.
    pub bn: BatchNorm2d,
    /// Whether a ReLU follows (false for residual-sum pre-activations).
    pub with_relu: bool,
    relu_mask: Option<Vec<bool>>,
}

impl ConvBnRelu {
    /// A full-kernel unit.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        in_c: usize,
        out_c: usize,
        k: usize,
        stride: usize,
        pad: usize,
        with_relu: bool,
        rng: &mut Rng,
    ) -> Self {
        ConvBnRelu {
            kernel: ConvKernel::Full(Conv2d::new(in_c, out_c, k, k, stride, pad, false, rng)),
            bn: BatchNorm2d::new(out_c),
            with_relu,
            relu_mask: None,
        }
    }

    /// Reassemble a unit from deserialised layers (checkpoint restore).
    pub fn from_parts(kernel: ConvKernel, bn: BatchNorm2d, with_relu: bool) -> Self {
        ConvBnRelu { kernel, bn, with_relu, relu_mask: None }
    }

    /// Output channels.
    pub fn out_channels(&self) -> usize {
        self.kernel.out_channels()
    }

    /// Input channels.
    pub fn in_channels(&self) -> usize {
        self.kernel.in_channels()
    }

    /// FLOPs for an input of `h×w`, and the output spatial dims.
    pub fn flops(&self, h: usize, w: usize) -> (u64, usize, usize) {
        match &self.kernel {
            ConvKernel::Full(c) => {
                let f = c.flops(h, w);
                let s = c.stride();
                let g_h = (h + 2 * c.padding() - c.kernel().0) / s + 1;
                let g_w = (w + 2 * c.padding() - c.kernel().1) / s + 1;
                (f, g_h, g_w)
            }
            ConvKernel::Factored { basis, point, .. } => {
                let fb = basis.flops(h, w);
                let s = basis.stride();
                let g_h = (h + 2 * basis.padding() - basis.kernel().0) / s + 1;
                let g_w = (w + 2 * basis.padding() - basis.kernel().1) / s + 1;
                let fp = point.flops(g_h, g_w);
                (fb + fp, g_h, g_w)
            }
        }
    }

    /// Learnable parameter count (tied bases are counted by the caller).
    pub fn param_count(&self) -> usize {
        let kernel = match &self.kernel {
            ConvKernel::Full(c) => c.param_count(),
            ConvKernel::Factored { basis, point, .. } => basis.param_count() + point.param_count(),
        };
        kernel + self.bn.param_count()
    }

    /// Keep only the listed output filters.
    pub fn keep_filters(&mut self, keep: &[usize]) {
        match &mut self.kernel {
            ConvKernel::Full(c) => c.keep_filters(keep),
            ConvKernel::Factored { point, .. } => point.keep_filters(keep),
        }
        self.bn.keep_channels(keep);
    }

    /// Keep only the listed input channels.
    pub fn keep_in_channels(&mut self, keep: &[usize]) {
        match &mut self.kernel {
            ConvKernel::Full(c) => c.keep_in_channels(keep),
            ConvKernel::Factored { basis, .. } => basis.keep_in_channels(keep),
        }
    }

    /// Zero the listed output filters in place (soft pruning — SFP). The
    /// filters stay trainable and may regrow.
    pub fn zero_filters(&mut self, idxs: &[usize]) {
        match &mut self.kernel {
            ConvKernel::Full(c) => {
                for &i in idxs {
                    c.weight.row_mut(i).fill(0.0);
                }
            }
            ConvKernel::Factored { point, .. } => {
                for &i in idxs {
                    point.weight.row_mut(i).fill(0.0);
                }
            }
        }
    }

    /// Per-filter weight rows of the spatially-acting kernel matrix
    /// (`[out_c, in_c·k²]` for full, `[out_c, rank]` for factored).
    pub fn filter_rows(&self) -> &Tensor {
        match &self.kernel {
            ConvKernel::Full(c) => &c.weight,
            ConvKernel::Factored { point, .. } => &point.weight,
        }
    }

    /// Replace a full kernel by its best rank-`rank` factorisation
    /// (truncated SVD of the matricised kernel). No-op if already factored.
    /// Returns the relative reconstruction error.
    pub fn factorize(&mut self, rank: usize, tie_group: Option<usize>) -> f32 {
        let ConvKernel::Full(c) = &self.kernel else {
            return 0.0;
        };
        let rank = rank.clamp(1, c.out_channels().min(c.weight.dims()[1]));
        let (left, right) = linalg::low_rank_factors(&c.weight, rank);
        let recon = automc_tensor::matmul(&left, &right);
        let err = linalg::relative_error(&c.weight, &recon);
        let (kh, kw) = c.kernel();
        let basis = Conv2d::from_weight(right, None, c.in_channels(), kh, kw, c.stride(), c.padding());
        let point = Conv2d::from_weight(left, None, rank, 1, 1, 1, 0);
        self.kernel = ConvKernel::Factored { basis, point, tie_group };
        err
    }

    /// Replace a full kernel by a factorisation onto a *given* basis
    /// (LFB's shared filter basis): coefficients are the least-squares
    /// projection `C = W·Bᵀ` (valid because the basis rows are orthonormal —
    /// they come from an SVD). No-op if already factored. Returns the
    /// relative reconstruction error.
    pub fn factorize_onto_basis(&mut self, basis_rows: &Tensor, tie_group: Option<usize>) -> f32 {
        let ConvKernel::Full(c) = &self.kernel else {
            return 0.0;
        };
        debug_assert_eq!(basis_rows.dims()[1], c.weight.dims()[1], "basis width mismatch");
        let coeffs = automc_tensor::matmul_a_bt(&c.weight, basis_rows); // [oc, b]
        let recon = automc_tensor::matmul(&coeffs, basis_rows);
        let err = linalg::relative_error(&c.weight, &recon);
        let (kh, kw) = c.kernel();
        let rank = basis_rows.dims()[0];
        let basis = Conv2d::from_weight(
            basis_rows.clone(),
            None,
            c.in_channels(),
            kh,
            kw,
            c.stride(),
            c.padding(),
        );
        let point = Conv2d::from_weight(coeffs, None, rank, 1, 1, 1, 0);
        self.kernel = ConvKernel::Factored { basis, point, tie_group };
        err
    }

    /// Overwrite a factored kernel's basis weights (LFB shared basis).
    /// Panics if the kernel is not factored.
    pub fn set_basis_weights(&mut self, weights: &Tensor) {
        match &mut self.kernel {
            ConvKernel::Factored { basis, .. } => {
                assert_eq!(basis.weight.dims(), weights.dims(), "basis shape mismatch");
                basis.weight = weights.clone();
                basis.reset_grads();
            }
            ConvKernel::Full(_) => panic!("set_basis_weights on a full kernel"),
        }
    }
}

impl Layer for ConvBnRelu {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if !train {
            // Eval: fold the batch-norm (and ReLU) into the convolution's
            // post-matmul write — one GEMM per batch item with a fused
            // scale/shift epilogue, no separate normalisation pass, no
            // intermediate activation tensor, and no ReLU mask (backward
            // requires a train-mode forward anyway).
            let (scale, shift) = self.bn.fold_eval();
            return match &mut self.kernel {
                ConvKernel::Full(c) => c.forward_fused_bn(x, &scale, &shift, self.with_relu),
                ConvKernel::Factored { basis, point, .. } => {
                    let mid = basis.forward(x, false);
                    point.forward_fused_bn(&mid, &scale, &shift, self.with_relu)
                }
            };
        }
        let conv_out = match &mut self.kernel {
            ConvKernel::Full(c) => c.forward(x, train),
            ConvKernel::Factored { basis, point, .. } => {
                let mid = basis.forward(x, train);
                point.forward(&mid, train)
            }
        };
        let bn_out = self.bn.forward(&conv_out, train);
        if self.with_relu {
            self.relu_mask = Some(bn_out.data().iter().map(|&v| v > 0.0).collect());
            bn_out.map(|v| v.max(0.0))
        } else {
            bn_out
        }
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let g = if self.with_relu {
            let mask = self
                .relu_mask
                .as_ref()
                .expect("ConvBnRelu::backward before forward");
            let mut g = grad_out.clone();
            for (v, &keep) in g.data_mut().iter_mut().zip(mask) {
                if !keep {
                    *v = 0.0;
                }
            }
            g
        } else {
            grad_out.clone()
        };
        let g = self.bn.backward(&g);
        match &mut self.kernel {
            ConvKernel::Full(c) => c.backward(&g),
            ConvKernel::Factored { basis, point, .. } => {
                let g = point.backward(&g);
                basis.backward(&g)
            }
        }
    }

    fn params_mut(&mut self) -> Vec<Param<'_>> {
        let mut v = match &mut self.kernel {
            ConvKernel::Full(c) => c.params_mut(),
            ConvKernel::Factored { basis, point, .. } => {
                let mut v = basis.params_mut();
                v.extend(point.params_mut());
                v
            }
        };
        v.extend(self.bn.params_mut());
        v
    }

    fn param_count(&self) -> usize {
        ConvBnRelu::param_count(self)
    }
}

/// A ResNet basic block: two 3×3 conv units plus a residual shortcut.
#[derive(Clone)]
pub struct BasicBlock {
    /// First conv (with ReLU); its output channels are the block's
    /// freely-prunable *inner* channels.
    pub c1: ConvBnRelu,
    /// Second conv (no ReLU — activation happens after the residual sum).
    pub c2: ConvBnRelu,
    /// Projection shortcut (1×1, stride-matched) when shapes change;
    /// `None` = identity shortcut.
    pub shortcut: Option<ConvBnRelu>,
    relu_mask: Option<Vec<bool>>,
}

impl BasicBlock {
    /// Build a block `in_c → out_c` with the given stride.
    pub fn new(in_c: usize, out_c: usize, stride: usize, rng: &mut Rng) -> Self {
        let shortcut = (stride != 1 || in_c != out_c)
            .then(|| ConvBnRelu::new(in_c, out_c, 1, stride, 0, false, rng));
        BasicBlock {
            c1: ConvBnRelu::new(in_c, out_c, 3, stride, 1, true, rng),
            c2: ConvBnRelu::new(out_c, out_c, 3, 1, 1, false, rng),
            shortcut,
            relu_mask: None,
        }
    }

    /// Reassemble a block from deserialised units (checkpoint restore).
    pub fn from_parts(c1: ConvBnRelu, c2: ConvBnRelu, shortcut: Option<ConvBnRelu>) -> Self {
        BasicBlock { c1, c2, shortcut, relu_mask: None }
    }

    /// Output channels.
    pub fn out_channels(&self) -> usize {
        self.c2.out_channels()
    }

    /// Inner (prunable) channel count.
    pub fn inner_channels(&self) -> usize {
        self.c1.out_channels()
    }

    /// Prune inner channels: keep `keep` of c1's filters and the matching
    /// input channels of c2.
    pub fn prune_inner(&mut self, keep: &[usize]) {
        self.c1.keep_filters(keep);
        self.c2.keep_in_channels(keep);
    }

    /// FLOPs for `h×w` input and resulting spatial dims.
    pub fn flops(&self, h: usize, w: usize) -> (u64, usize, usize) {
        let (f1, h1, w1) = self.c1.flops(h, w);
        let (f2, h2, w2) = self.c2.flops(h1, w1);
        let fs = self
            .shortcut
            .as_ref()
            .map(|s| s.flops(h, w).0)
            .unwrap_or(0);
        (f1 + f2 + fs, h2, w2)
    }
}

impl Layer for BasicBlock {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let main = self.c2.forward(&self.c1.forward(x, train), train);
        let skip = match &mut self.shortcut {
            Some(s) => s.forward(x, train),
            None => x.clone(),
        };
        let sum = main.add(&skip);
        self.relu_mask = Some(sum.data().iter().map(|&v| v > 0.0).collect());
        sum.map(|v| v.max(0.0))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mask = self
            .relu_mask
            .as_ref()
            .expect("BasicBlock::backward before forward");
        let mut g = grad_out.clone();
        for (v, &keep) in g.data_mut().iter_mut().zip(mask) {
            if !keep {
                *v = 0.0;
            }
        }
        let g_main = self.c1.backward(&self.c2.backward(&g));
        let g_skip = match &mut self.shortcut {
            Some(s) => s.backward(&g),
            None => g,
        };
        g_main.add(&g_skip)
    }

    fn params_mut(&mut self) -> Vec<Param<'_>> {
        let mut v = self.c1.params_mut();
        v.extend(self.c2.params_mut());
        if let Some(s) = &mut self.shortcut {
            v.extend(s.params_mut());
        }
        v
    }

    fn param_count(&self) -> usize {
        self.c1.param_count()
            + self.c2.param_count()
            + self.shortcut.as_ref().map_or(0, |s| s.param_count())
    }
}

/// Classification head: global average pooling followed by a linear layer.
#[derive(Clone)]
pub struct Classifier {
    gap: GlobalAvgPool,
    /// The linear head (public for input pruning after upstream surgery).
    pub linear: Linear,
}

impl Classifier {
    /// Head mapping `in_c` channels to `classes` logits.
    pub fn new(in_c: usize, classes: usize, rng: &mut Rng) -> Self {
        Classifier { gap: GlobalAvgPool::new(), linear: Linear::new(in_c, classes, rng) }
    }

    /// Reassemble a head from a deserialised linear layer (checkpoint
    /// restore).
    pub fn from_linear(linear: Linear) -> Self {
        Classifier { gap: GlobalAvgPool::new(), linear }
    }

    /// Number of input channels expected.
    pub fn in_channels(&self) -> usize {
        self.linear.in_features()
    }
}

impl Layer for Classifier {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let pooled = self.gap.forward(x, train);
        self.linear.forward(&pooled, train)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        self.gap.backward(&self.linear.backward(grad_out))
    }

    fn params_mut(&mut self) -> Vec<Param<'_>> {
        self.linear.params_mut()
    }

    fn param_count(&self) -> usize {
        self.linear.param_count()
    }
}

/// One element of a [`crate::ConvNet`].
#[derive(Clone)]
pub enum Unit {
    /// Plain conv-bn-relu (VGG body, ResNet stem).
    Cbr(ConvBnRelu),
    /// Residual basic block.
    Block(BasicBlock),
    /// 2×2 max pool (VGG downsampling).
    Pool(MaxPool2),
    /// GAP + linear classification head.
    Classifier(Classifier),
}

impl Unit {
    /// Output channel count, or `None` for spatial-only units.
    pub fn out_channels(&self) -> Option<usize> {
        match self {
            Unit::Cbr(c) => Some(c.out_channels()),
            Unit::Block(b) => Some(b.out_channels()),
            Unit::Pool(_) => None,
            Unit::Classifier(_) => None,
        }
    }
}

impl Layer for Unit {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        match self {
            Unit::Cbr(u) => u.forward(x, train),
            Unit::Block(u) => u.forward(x, train),
            Unit::Pool(u) => u.forward(x, train),
            Unit::Classifier(u) => u.forward(x, train),
        }
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        match self {
            Unit::Cbr(u) => u.backward(grad_out),
            Unit::Block(u) => u.backward(grad_out),
            Unit::Pool(u) => u.backward(grad_out),
            Unit::Classifier(u) => u.backward(grad_out),
        }
    }

    fn params_mut(&mut self) -> Vec<Param<'_>> {
        match self {
            Unit::Cbr(u) => u.params_mut(),
            Unit::Block(u) => u.params_mut(),
            Unit::Pool(_) => Vec::new(),
            Unit::Classifier(u) => u.params_mut(),
        }
    }

    fn param_count(&self) -> usize {
        match self {
            Unit::Cbr(u) => u.param_count(),
            Unit::Block(u) => u.param_count(),
            Unit::Pool(_) => 0,
            Unit::Classifier(u) => u.param_count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use automc_tensor::rng_from_seed;

    #[test]
    fn cbr_forward_backward_shapes() {
        let mut rng = rng_from_seed(100);
        let mut u = ConvBnRelu::new(3, 8, 3, 1, 1, true, &mut rng);
        let x = Tensor::randn(&[2, 3, 8, 8], 1.0, &mut rng);
        let y = u.forward(&x, true);
        assert_eq!(y.dims(), &[2, 8, 8, 8]);
        assert!(y.data().iter().all(|&v| v >= 0.0));
        let g = u.backward(&Tensor::ones(&[2, 8, 8, 8]));
        assert_eq!(g.dims(), x.dims());
    }

    #[test]
    fn factorize_preserves_function_at_full_rank() {
        let mut rng = rng_from_seed(101);
        let mut u = ConvBnRelu::new(2, 4, 3, 1, 1, true, &mut rng);
        let x = Tensor::randn(&[1, 2, 6, 6], 1.0, &mut rng);
        let y_full = u.forward(&x, false);
        let err = u.factorize(4, None);
        assert!(err < 1e-3, "full-rank factorisation should be near-exact: {err}");
        let y_fact = u.forward(&x, false);
        for (a, b) in y_full.data().iter().zip(y_fact.data()) {
            assert!((a - b).abs() < 1e-2, "{a} vs {b}");
        }
    }

    #[test]
    fn factorize_reduces_params_at_low_rank() {
        let mut rng = rng_from_seed(102);
        let mut u = ConvBnRelu::new(8, 16, 3, 1, 1, true, &mut rng);
        let before = u.param_count();
        u.factorize(2, None);
        assert!(u.param_count() < before);
        assert_eq!(u.kernel.rank(), Some(2));
        assert_eq!(u.out_channels(), 16);
    }

    /// Bias BN shifts positive so ReLU kinks sit far from the operating
    /// point — finite differences across a kink are meaningless.
    fn debias_relu(u: &mut ConvBnRelu) {
        u.bn.beta = Tensor::full(&[u.out_channels()], 3.0);
        u.bn.gamma = Tensor::full(&[u.out_channels()], 0.5);
    }

    #[test]
    fn factored_gradcheck() {
        let mut rng = rng_from_seed(103);
        let mut u = ConvBnRelu::new(2, 4, 3, 1, 1, true, &mut rng);
        u.factorize(3, None);
        debias_relu(&mut u);
        let x = Tensor::randn(&[2, 2, 4, 4], 1.0, &mut rng);
        automc_tensor::nn::gradcheck::check_input_grad(&mut u, &x, 0.08);
        automc_tensor::nn::gradcheck::check_param_grads(&mut u, &x, 0.08);
    }

    #[test]
    fn cbr_gradcheck() {
        let mut rng = rng_from_seed(104);
        let mut u = ConvBnRelu::new(2, 3, 3, 1, 1, true, &mut rng);
        debias_relu(&mut u);
        let x = Tensor::randn(&[2, 2, 4, 4], 1.0, &mut rng);
        automc_tensor::nn::gradcheck::check_input_grad(&mut u, &x, 0.08);
        automc_tensor::nn::gradcheck::check_param_grads(&mut u, &x, 0.08);
    }

    #[test]
    fn cbr_no_relu_gradcheck() {
        // Kink-free composition check of conv + batch-norm.
        let mut rng = rng_from_seed(112);
        let mut u = ConvBnRelu::new(2, 3, 3, 1, 1, false, &mut rng);
        let x = Tensor::randn(&[2, 2, 4, 4], 1.0, &mut rng);
        automc_tensor::nn::gradcheck::check_input_grad(&mut u, &x, 0.08);
        automc_tensor::nn::gradcheck::check_param_grads(&mut u, &x, 0.08);
    }

    /// The fused eval path (BN folded into the conv's write epilogue) must
    /// agree with running conv, batch-norm and ReLU as separate layers.
    #[test]
    fn eval_fused_path_matches_composed_layers() {
        let mut rng = rng_from_seed(113);
        let mut u = ConvBnRelu::new(3, 6, 3, 1, 1, true, &mut rng);
        let x = Tensor::randn(&[2, 3, 6, 6], 1.0, &mut rng);
        // Move the running stats off their identity init so the fold is
        // non-trivial.
        u.forward(&x, true);
        u.forward(&x, true);
        let fused = u.forward(&x, false);
        let mut parts = u.clone();
        let ConvKernel::Full(c) = &mut parts.kernel else {
            panic!("expected full kernel")
        };
        let conv_out = c.forward(&x, false);
        let composed = parts.bn.forward(&conv_out, false).map(|v| v.max(0.0));
        assert_eq!(fused.dims(), composed.dims());
        for (a, b) in fused.data().iter().zip(composed.data()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    /// Same agreement for a factored kernel (fold lands on the pointwise
    /// conv) and without ReLU.
    #[test]
    fn eval_fused_path_matches_composed_layers_factored() {
        let mut rng = rng_from_seed(114);
        let mut u = ConvBnRelu::new(3, 6, 3, 1, 1, false, &mut rng);
        u.factorize(4, None);
        let x = Tensor::randn(&[2, 3, 6, 6], 1.0, &mut rng);
        u.forward(&x, true);
        let fused = u.forward(&x, false);
        let mut parts = u.clone();
        let ConvKernel::Factored { basis, point, .. } = &mut parts.kernel else {
            panic!("expected factored kernel")
        };
        let mid = basis.forward(&x, false);
        let conv_out = point.forward(&mid, false);
        let composed = parts.bn.forward(&conv_out, false);
        for (a, b) in fused.data().iter().zip(composed.data()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn block_identity_shortcut_shapes() {
        let mut rng = rng_from_seed(105);
        let mut b = BasicBlock::new(4, 4, 1, &mut rng);
        assert!(b.shortcut.is_none());
        let x = Tensor::randn(&[2, 4, 8, 8], 1.0, &mut rng);
        let y = b.forward(&x, true);
        assert_eq!(y.dims(), &[2, 4, 8, 8]);
        let g = b.backward(&Tensor::ones(&[2, 4, 8, 8]));
        assert_eq!(g.dims(), x.dims());
    }

    #[test]
    fn block_projection_shortcut_downsamples() {
        let mut rng = rng_from_seed(106);
        let mut b = BasicBlock::new(4, 8, 2, &mut rng);
        assert!(b.shortcut.is_some());
        let x = Tensor::randn(&[2, 4, 8, 8], 1.0, &mut rng);
        let y = b.forward(&x, true);
        assert_eq!(y.dims(), &[2, 8, 4, 4]);
    }

    #[test]
    fn block_gradcheck() {
        let mut rng = rng_from_seed(107);
        let mut b = BasicBlock::new(3, 3, 1, &mut rng);
        // Push both the inner ReLU and the post-sum ReLU away from their
        // kinks so finite differences are valid.
        debias_relu(&mut b.c1);
        debias_relu(&mut b.c2);
        let x = Tensor::randn(&[2, 3, 4, 4], 1.0, &mut rng);
        automc_tensor::nn::gradcheck::check_input_grad(&mut b, &x, 0.1);
        automc_tensor::nn::gradcheck::check_param_grads(&mut b, &x, 0.1);
    }

    #[test]
    fn block_prune_inner_keeps_io_shape() {
        let mut rng = rng_from_seed(108);
        let mut b = BasicBlock::new(4, 4, 1, &mut rng);
        let before = b.param_count();
        b.prune_inner(&[0, 2]);
        assert_eq!(b.inner_channels(), 2);
        assert_eq!(b.out_channels(), 4);
        assert!(b.param_count() < before);
        let x = Tensor::randn(&[1, 4, 6, 6], 1.0, &mut rng);
        assert_eq!(b.forward(&x, true).dims(), &[1, 4, 6, 6]);
    }

    #[test]
    fn classifier_shapes() {
        let mut rng = rng_from_seed(109);
        let mut h = Classifier::new(8, 10, &mut rng);
        let x = Tensor::randn(&[3, 8, 4, 4], 1.0, &mut rng);
        let y = h.forward(&x, true);
        assert_eq!(y.dims(), &[3, 10]);
        let g = h.backward(&Tensor::ones(&[3, 10]));
        assert_eq!(g.dims(), x.dims());
    }

    #[test]
    fn zero_filters_soft_prunes() {
        let mut rng = rng_from_seed(110);
        let mut u = ConvBnRelu::new(2, 4, 3, 1, 1, true, &mut rng);
        u.zero_filters(&[1, 3]);
        assert!(u.filter_rows().row(1).iter().all(|&v| v == 0.0));
        assert!(u.filter_rows().row(0).iter().any(|&v| v != 0.0));
        assert_eq!(u.out_channels(), 4, "soft pruning keeps the shape");
    }

    #[test]
    fn cbr_flops_factored_vs_full() {
        let mut rng = rng_from_seed(111);
        let mut u = ConvBnRelu::new(8, 16, 3, 1, 1, true, &mut rng);
        let (f_full, h, w) = u.flops(8, 8);
        assert_eq!((h, w), (8, 8));
        u.factorize(2, None);
        let (f_fact, _, _) = u.flops(8, 8);
        assert!(f_fact < f_full, "{f_fact} !< {f_full}");
    }
}
