//! # automc-models
//!
//! Compression-aware CNN model IR, architecture builders, and training
//! loops.
//!
//! The AutoMC paper compresses ResNet-20/56/164 and VGG-13/16/19. This
//! crate provides those architectures (at the reduced "repro scale"
//! documented in `DESIGN.md`) on top of an IR designed for structural
//! surgery:
//!
//! * [`ConvNet`] — an ordered list of [`Unit`]s (conv-bn-relu stacks,
//!   residual basic blocks, pooling, a GAP+linear classifier) with explicit
//!   forward/backward, parameter enumeration, and FLOPs accounting.
//! * [`ConvBnRelu`] — the atomic conv unit whose kernel can be *full* or
//!   *factored* (basis conv + pointwise conv), which is how the low-rank
//!   methods (HOS's kernel approximation, LFB's filter basis) rewrite the
//!   network. Factored bases can be *tied* across units (LFB shares one
//!   basis per group) — the net counts tied parameters once and sums their
//!   gradients.
//! * [`surgery`] — channel-level pruning that keeps producer/consumer
//!   shapes consistent (VGG chains, ResNet block-internal channels).
//! * [`train`] — SGD training with the auxiliary objectives compression
//!   methods need: knowledge distillation (LMA), teacher-logit matching
//!   (HOS/LFB), and BN-γ L1 sparsity (Network Slimming).
//!
//! Architecture fidelity notes (repro scale): ResNet-164 uses 27 basic
//! blocks per stage (the paper's model is a bottleneck net of equal depth);
//! VGG nets use four conv stages with a GAP head instead of the FC stack.
//! Depth ordering and stage structure — what compression interacts with —
//! are preserved.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod checkpoint;
mod convnet;
mod resnet;
pub mod serialize;
pub mod surgery;
pub mod train;
mod unit;
mod vgg;

pub use convnet::{CbrRole, ConvNet, ModelKind};
pub use resnet::resnet;
pub use unit::{BasicBlock, Classifier, ConvBnRelu, ConvKernel, Unit};
pub use vgg::vgg;

/// Model-side task features for `NN_exp` (paper §3.3.1: parameter amount,
/// FLOPs, accuracy score of the original model).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelFeatures {
    /// Parameter count `P(M)`.
    pub params: usize,
    /// FLOPs `F(M)` (multiply–accumulates per image).
    pub flops: u64,
    /// Accuracy score `A(M)` on the task's evaluation set, in `[0, 1]`.
    pub accuracy: f32,
}

impl ModelFeatures {
    /// Normalised feature vector (log-scaled params/FLOPs).
    pub fn to_vec(&self) -> Vec<f32> {
        vec![
            (self.params.max(1) as f32).ln() / 15.0,
            (self.flops.max(1) as f32).ln() / 20.0,
            self.accuracy,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_features_vectorise() {
        let f = ModelFeatures { params: 10_000, flops: 1_000_000, accuracy: 0.8 };
        let v = f.to_vec();
        assert_eq!(v.len(), 3);
        assert!(v.iter().all(|x| x.is_finite()));
    }
}
