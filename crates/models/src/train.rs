//! Training and evaluation loops, with the auxiliary objectives the
//! compression methods require.

use crate::ConvNet;
use automc_data::ImageSet;
use automc_tensor::fault::{self, FaultKind};
use automc_tensor::optim::{Optimizer, Sgd, SgdConfig};
use automc_tensor::{loss, Rng, Tensor};

pub mod divergence {
    //! Thread-local divergence latch.
    //!
    //! [`train`](super::train) bails out when a batch loss turns
    //! non-finite, but many call sites reach it through deep strategy
    //! plumbing (`apply_strategy` → fine-tune → distill) that has no
    //! channel for `TrainStats`. The latch gives supervisors one:
    //! [`reset`] before a candidate evaluation, [`take`] afterwards —
    //! any training run that diverged in between is reported. The latch
    //! is thread-local because candidate evaluations always train on the
    //! thread that submitted them.

    use std::cell::Cell;

    thread_local! {
        static DIVERGED: Cell<bool> = const { Cell::new(false) };
    }

    /// Clear the latch (call before a supervised evaluation).
    pub fn reset() {
        DIVERGED.with(|c| c.set(false));
    }

    /// Record a divergence (called by [`train`](super::train)).
    pub fn flag() {
        DIVERGED.with(|c| c.set(true));
    }

    /// Read and clear the latch.
    pub fn take() -> bool {
        DIVERGED.with(|c| c.replace(false))
    }
}

pub mod step_budget {
    //! Thread-local cooperative training-step budget.
    //!
    //! A hung evaluation (an infinite loop rather than a panic or NaN)
    //! cannot be caught by `catch_unwind` or the divergence latch; the
    //! only portable supervision is cooperative. Supervisors [`arm`] a
    //! per-evaluation batch cap before executing a candidate scheme;
    //! [`train`](super::train) consults [`register_batch`] before every
    //! mini-batch and bails out once the cap is reached, setting the
    //! exhausted latch for the supervisor to [`take_exhausted`]. Like the
    //! [`divergence`](super::divergence) latch it is thread-local:
    //! candidate evaluations always train on the thread that submitted
    //! them.
    //!
    //! The consumed-batch counter also runs while no cap is armed, so
    //! executors can meter how many batches a scheme prefix consumed
    //! ([`used`]) and re-charge them against the cap when a memoized
    //! prefix skips the actual training ([`charge`]).

    use std::cell::Cell;

    thread_local! {
        static LIMIT: Cell<u64> = const { Cell::new(0) };
        static USED: Cell<u64> = const { Cell::new(0) };
        static EXHAUSTED: Cell<bool> = const { Cell::new(false) };
    }

    /// Arm a batch cap for the evaluation about to run (0 = unlimited;
    /// batch counting still restarts from zero). Clears the latch.
    pub fn arm(limit: u64) {
        LIMIT.with(|c| c.set(limit));
        USED.with(|c| c.set(0));
        EXHAUSTED.with(|c| c.set(false));
    }

    /// Disarm the cap and clear the counters (call when the supervised
    /// evaluation is over, so unsupervised training is never capped).
    pub fn disarm() {
        arm(0);
    }

    /// Batches consumed since the last [`arm`]/[`disarm`].
    pub fn used() -> u64 {
        USED.with(|c| c.get())
    }

    /// Account `n` batches that were *skipped* (resumed from a memoized
    /// prefix) as consumed, so a capped evaluation charges the same
    /// budget whether or not the cache was warm. Does *not* latch
    /// exhaustion — only an actually denied batch does, so an evaluation
    /// classifies identically whether its prefix was replayed or cached.
    pub fn charge(n: u64) {
        USED.with(|c| c.set(c.get().saturating_add(n)));
    }

    /// Ask permission to run one more training batch. Returns `false` —
    /// and latches exhaustion — once the armed cap is spent.
    pub fn register_batch() -> bool {
        let limit = LIMIT.with(|c| c.get());
        let used = USED.with(|c| c.get());
        if limit > 0 && used >= limit {
            EXHAUSTED.with(|c| c.set(true));
            return false;
        }
        USED.with(|c| c.set(used + 1));
        true
    }

    /// Read and clear the exhausted latch.
    pub fn take_exhausted() -> bool {
        EXHAUSTED.with(|c| c.replace(false))
    }
}

/// Plain-supervision training hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Epochs; fractional values train a matching fraction of batches
    /// (the paper's `*0.1 … *0.5` fine-tuning budgets are fractional
    /// multiples of the pre-training epochs).
    pub epochs: f32,
    /// Mini-batch size.
    pub batch_size: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// Weight decay on conv/linear weights.
    pub weight_decay: f32,
    /// L1 pressure on BN γ (Network Slimming's sparsity regulariser;
    /// 0 disables).
    pub bn_gamma_l1: f32,
    /// Cosine-decay the learning rate to `lr · 0.01` over the run
    /// (stabilises the small-model training this workspace does).
    pub cosine_lr: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 1.0,
            batch_size: 32,
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 5e-4,
            bn_gamma_l1: 0.0,
            cosine_lr: true,
        }
    }
}

/// Auxiliary objective used on top of label cross-entropy.
pub enum Auxiliary<'a> {
    /// Supervised training only.
    None,
    /// Knowledge distillation (LMA / C1): temperature-softened KL to a
    /// teacher blended with CE by `alpha`.
    Distill {
        /// Frozen teacher network (run in eval mode).
        teacher: &'a mut ConvNet,
        /// Softmax temperature (HP4).
        temperature: f32,
        /// KD-vs-CE blend (HP5): 1.0 = pure distillation.
        alpha: f32,
    },
    /// Teacher-logit matching (HOS's auxiliary reconstruction loss, LFB's
    /// auxiliary loss): `CE(labels) + factor · match(student, teacher)`.
    LogitsMatch {
        /// Frozen teacher network (run in eval mode).
        teacher: &'a mut ConvNet,
        /// Loss weight (HP14 / HP15).
        factor: f32,
        /// Which matching loss (HP16 for LFB; HOS uses MSE).
        kind: AuxKind,
    },
}

/// The matching-loss family for [`Auxiliary::LogitsMatch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuxKind {
    /// Mean-squared error on raw logits.
    Mse,
    /// Cross-entropy against the teacher's soft distribution.
    Ce,
    /// Negative log-likelihood against the teacher's argmax pseudo-labels.
    Nll,
}

/// Summary statistics of a training run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainStats {
    /// Mean loss over the final epoch's batches.
    pub final_loss: f32,
    /// Batches executed.
    pub batches: usize,
    /// True if the run bailed out on a non-finite batch loss; the model
    /// keeps the weights from before the poisoned batch, and the
    /// thread-local [`divergence`] latch is flagged.
    pub diverged: bool,
}

/// Train `model` on `data` with optional auxiliary supervision.
pub fn train(
    model: &mut ConvNet,
    data: &ImageSet,
    cfg: &TrainConfig,
    mut aux: Auxiliary<'_>,
    rng: &mut Rng,
) -> TrainStats {
    let batches_per_epoch = data.len().div_ceil(cfg.batch_size).max(1);
    let total_batches = ((cfg.epochs * batches_per_epoch as f32).ceil() as usize).max(1);
    let mut opt = Sgd::new(SgdConfig {
        lr: cfg.lr,
        momentum: cfg.momentum,
        weight_decay: cfg.weight_decay,
    });
    // One fault probe per training run: `nan@train:N` poisons the first
    // batch loss of the N-th run, exercising the divergence bail-out.
    let inject_nan = fault::tick("train") == Some(FaultKind::Nan);
    let mut done = 0usize;
    let mut loss_sum = 0.0f32;
    let mut loss_count = 0usize;
    let mut diverged = false;
    'outer: loop {
        for (batch, labels) in data.batches(cfg.batch_size, rng) {
            if !step_budget::register_batch() {
                // The supervising evaluation's cooperative batch cap is
                // spent: stop training here; the supervisor reads the
                // exhausted latch and reports a timeout.
                break 'outer;
            }
            if cfg.cosine_lr {
                let progress = done as f32 / total_batches as f32;
                let scale = 0.01 + 0.99 * 0.5 * (1.0 + (std::f32::consts::PI * progress).cos());
                opt.set_lr(cfg.lr * scale);
            }
            let logits = model.forward(&batch, true);
            let (mut batch_loss, grad) = match &mut aux {
                Auxiliary::None => loss::softmax_cross_entropy(&logits, &labels),
                Auxiliary::Distill { teacher, temperature, alpha } => {
                    let t_logits = teacher.forward(&batch, false);
                    loss::distillation_composite(&logits, &t_logits, &labels, *temperature, *alpha)
                }
                Auxiliary::LogitsMatch { teacher, factor, kind } => {
                    let t_logits = teacher.forward(&batch, false);
                    let (ce, mut grad) = loss::softmax_cross_entropy(&logits, &labels);
                    let (aux_loss, aux_grad) = match kind {
                        AuxKind::Mse => loss::mse(&logits, &t_logits),
                        AuxKind::Ce => loss::distillation_kl(&logits, &t_logits, 1.0),
                        AuxKind::Nll => {
                            let pseudo: Vec<usize> =
                                (0..t_logits.rows()).map(|i| t_logits.argmax_row(i)).collect();
                            loss::softmax_cross_entropy(&logits, &pseudo)
                        }
                    };
                    grad.axpy(*factor, &aux_grad);
                    (ce + *factor * aux_loss, grad)
                }
            };
            if inject_nan && done == 0 {
                batch_loss = f32::NAN;
            }
            // A non-finite loss means the gradients are garbage: bail out
            // *before* the weight update so the model keeps its last
            // finite state, and flag the thread-local latch for whichever
            // supervisor drove this run.
            if !batch_loss.is_finite() {
                diverged = true;
                divergence::flag();
                break 'outer;
            }
            model.backward(&grad);
            if cfg.bn_gamma_l1 > 0.0 {
                let l1 = cfg.bn_gamma_l1;
                model.for_each_cbr_mut(|_, cbr| cbr.bn.apply_gamma_l1(l1));
            }
            opt.step(&mut model.params_mut());
            loss_sum += batch_loss;
            loss_count += 1;
            done += 1;
            if done >= total_batches {
                break 'outer;
            }
        }
    }
    TrainStats { final_loss: loss_sum / loss_count.max(1) as f32, batches: done, diverged }
}

/// Classification accuracy of `model` on `data` (eval mode, batched).
pub fn evaluate(model: &mut ConvNet, data: &ImageSet) -> f32 {
    if data.is_empty() {
        return 0.0;
    }
    let mut correct = 0usize;
    let chunk = 64usize;
    let mut i = 0usize;
    while i < data.len() {
        let idxs: Vec<usize> = (i..(i + chunk).min(data.len())).collect();
        let (batch, labels) = data.gather(&idxs);
        let logits = model.forward(&batch, false);
        correct += labels
            .iter()
            .enumerate()
            .filter(|&(row, &label)| logits.argmax_row(row) == label)
            .count();
        i += chunk;
    }
    correct as f32 / data.len() as f32
}

/// Teacher logits for a whole set (eval mode) — used by tests.
pub fn logits_of(model: &mut ConvNet, data: &ImageSet) -> Tensor {
    let (batch, _) = data.full_batch();
    model.forward(&batch, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resnet;
    use automc_data::{DatasetSpec, SyntheticKind};
    use automc_tensor::rng_from_seed;

    fn small_task() -> (ImageSet, ImageSet) {
        DatasetSpec {
            train: 200,
            test: 100,
            noise: 0.25,
            ..DatasetSpec::new(SyntheticKind::Cifar10Like)
        }
        .generate()
    }

    #[test]
    fn training_improves_accuracy() {
        let mut rng = rng_from_seed(150);
        let (train_set, test_set) = small_task();
        let mut net = resnet(20, 4, 10, (3, 8, 8), &mut rng);
        let acc_before = evaluate(&mut net, &test_set);
        let cfg = TrainConfig { epochs: 6.0, ..TrainConfig::default() };
        let stats = train(&mut net, &train_set, &cfg, Auxiliary::None, &mut rng);
        let acc_after = evaluate(&mut net, &test_set);
        assert!(stats.final_loss.is_finite());
        assert!(
            acc_after > acc_before + 0.15,
            "training should lift accuracy well above chance: {acc_before} → {acc_after}"
        );
    }

    #[test]
    fn fractional_epochs_limit_batches() {
        let mut rng = rng_from_seed(151);
        let (train_set, _) = small_task();
        let mut net = resnet(20, 4, 10, (3, 8, 8), &mut rng);
        let cfg = TrainConfig { epochs: 0.25, batch_size: 32, ..TrainConfig::default() };
        let stats = train(&mut net, &train_set, &cfg, Auxiliary::None, &mut rng);
        // 200/32 → 7 batches per epoch; 0.25 epochs → 2 batches.
        assert_eq!(stats.batches, 2);
    }

    #[test]
    fn bn_l1_shrinks_gammas() {
        let mut rng = rng_from_seed(152);
        let (train_set, _) = small_task();
        let mut net = resnet(20, 4, 10, (3, 8, 8), &mut rng);
        let gamma_norm = |net: &ConvNet| {
            let mut sum = 0.0f32;
            net.for_each_cbr(|_, cbr| sum += cbr.bn.gamma.data().iter().map(|v| v.abs()).sum::<f32>());
            sum
        };
        let before = gamma_norm(&net);
        let cfg = TrainConfig { epochs: 3.0, bn_gamma_l1: 0.05, ..TrainConfig::default() };
        train(&mut net, &train_set, &cfg, Auxiliary::None, &mut rng);
        let after = gamma_norm(&net);
        assert!(after < before, "L1 should shrink γ: {before} → {after}");
    }

    #[test]
    fn distillation_trains_student_toward_teacher() {
        let mut rng = rng_from_seed(153);
        let (train_set, test_set) = small_task();
        let mut teacher = resnet(20, 4, 10, (3, 8, 8), &mut rng);
        train(
            &mut teacher,
            &train_set,
            &TrainConfig { epochs: 6.0, ..TrainConfig::default() },
            Auxiliary::None,
            &mut rng,
        );
        let teacher_acc = evaluate(&mut teacher, &test_set);
        let mut student = resnet(20, 3, 10, (3, 8, 8), &mut rng);
        train(
            &mut student,
            &train_set,
            &TrainConfig { epochs: 8.0, ..TrainConfig::default() },
            Auxiliary::Distill { teacher: &mut teacher, temperature: 3.0, alpha: 0.5 },
            &mut rng,
        );
        let student_acc = evaluate(&mut student, &test_set);
        assert!(
            student_acc > 0.3,
            "distilled student should clearly beat chance, got {student_acc} (teacher {teacher_acc})"
        );
    }

    #[test]
    fn logits_match_kinds_all_run() {
        let mut rng = rng_from_seed(154);
        let (train_set, _) = small_task();
        let mut teacher = resnet(20, 4, 10, (3, 8, 8), &mut rng);
        for kind in [AuxKind::Mse, AuxKind::Ce, AuxKind::Nll] {
            let mut student = resnet(20, 4, 10, (3, 8, 8), &mut rng);
            let stats = train(
                &mut student,
                &train_set,
                &TrainConfig { epochs: 0.5, ..TrainConfig::default() },
                Auxiliary::LogitsMatch { teacher: &mut teacher, factor: 1.0, kind },
                &mut rng,
            );
            assert!(stats.final_loss.is_finite(), "{kind:?} produced NaN loss");
        }
    }

    #[test]
    fn injected_nan_bails_without_touching_weights() {
        use automc_tensor::fault::{self, FaultPlan};
        let mut rng = rng_from_seed(156);
        let (train_set, _) = small_task();
        let mut net = resnet(20, 4, 10, (3, 8, 8), &mut rng);
        let before: Vec<u32> = net
            .params_mut()
            .iter()
            .flat_map(|p| p.value.data().iter().map(|v| v.to_bits()))
            .collect();
        fault::install(FaultPlan::parse("nan@train:1").unwrap());
        divergence::reset();
        let stats = train(
            &mut net,
            &train_set,
            &TrainConfig { epochs: 1.0, ..TrainConfig::default() },
            Auxiliary::None,
            &mut rng,
        );
        fault::clear();
        assert!(stats.diverged);
        assert!(divergence::take(), "latch must be flagged");
        assert!(!divergence::take(), "take clears the latch");
        let after: Vec<u32> = net
            .params_mut()
            .iter()
            .flat_map(|p| p.value.data().iter().map(|v| v.to_bits()))
            .collect();
        assert_eq!(before, after, "bail-out must precede the weight update");
    }

    #[test]
    fn evaluate_empty_set_is_zero() {
        let mut rng = rng_from_seed(155);
        let mut net = resnet(20, 4, 10, (3, 8, 8), &mut rng);
        let empty = ImageSet::new(Vec::new(), Vec::new(), 3, 8, 8, 10);
        assert_eq!(evaluate(&mut net, &empty), 0.0);
    }
}
