use crate::convnet::{ConvNet, ModelKind};
use crate::unit::{BasicBlock, Classifier, ConvBnRelu, Unit};
use automc_tensor::Rng;

/// Build a CIFAR-style ResNet.
///
/// `depth` must satisfy `depth = 6n + 2` (20, 56, 164, …): three stages of
/// `n` basic blocks at widths `[w, 2w, 4w]`, a 3×3 stem, and a GAP+linear
/// head — the structure of He et al.'s CIFAR ResNets.
///
/// Fidelity note: the paper's ResNet-164 is a *bottleneck* network; at
/// repro scale we keep basic blocks throughout (27 per stage at depth 164)
/// so that depth comparisons exercise the same block type. `base_width`
/// defaults to 16 in the original; the repro scale uses 4–8.
pub fn resnet(
    depth: usize,
    base_width: usize,
    classes: usize,
    input_dims: (usize, usize, usize),
    rng: &mut Rng,
) -> ConvNet {
    assert!(depth >= 8 && (depth - 2) % 6 == 0, "ResNet depth must be 6n+2, got {depth}");
    let n = (depth - 2) / 6;
    let w = base_width;
    let mut units = Vec::with_capacity(2 + 3 * n);
    units.push(Unit::Cbr(ConvBnRelu::new(input_dims.0, w, 3, 1, 1, true, rng)));
    for (stage, &width) in [w, 2 * w, 4 * w].iter().enumerate() {
        for block in 0..n {
            let (in_c, stride) = if block == 0 {
                if stage == 0 {
                    (w, 1)
                } else {
                    (width / 2, 2)
                }
            } else {
                (width, 1)
            };
            units.push(Unit::Block(BasicBlock::new(in_c, width, stride, rng)));
        }
    }
    units.push(Unit::Classifier(Classifier::new(4 * w, classes, rng)));
    ConvNet::new(units, ModelKind::ResNet(depth), classes, input_dims)
}

#[cfg(test)]
mod tests {
    use super::*;
    use automc_tensor::rng_from_seed;

    #[test]
    fn block_counts_by_depth() {
        let mut rng = rng_from_seed(130);
        for (depth, blocks) in [(20usize, 9usize), (56, 27), (164, 81)] {
            let net = resnet(depth, 4, 10, (3, 8, 8), &mut rng);
            let n_blocks = net
                .units
                .iter()
                .filter(|u| matches!(u, Unit::Block(_)))
                .count();
            assert_eq!(n_blocks, blocks, "depth {depth}");
        }
    }

    #[test]
    #[should_panic(expected = "6n+2")]
    fn invalid_depth_panics() {
        let mut rng = rng_from_seed(131);
        resnet(21, 4, 10, (3, 8, 8), &mut rng);
    }

    #[test]
    fn stage_transitions_have_projection_shortcuts() {
        let mut rng = rng_from_seed(132);
        let net = resnet(20, 4, 10, (3, 8, 8), &mut rng);
        let mut projections = 0;
        for u in &net.units {
            if let Unit::Block(b) = u {
                if b.shortcut.is_some() {
                    projections += 1;
                }
            }
        }
        assert_eq!(projections, 2, "one projection per stage transition");
    }

    #[test]
    fn spatial_dims_shrink_by_stage() {
        // Verified indirectly via forward shape: 8x8 → stage3 at 2x2,
        // classifier flattens to classes.
        let mut rng = rng_from_seed(133);
        let mut net = resnet(20, 4, 7, (3, 8, 8), &mut rng);
        let x = automc_tensor::Tensor::randn(&[1, 3, 8, 8], 1.0, &mut rng);
        assert_eq!(net.forward(&x, false).dims(), &[1, 7]);
    }
}
