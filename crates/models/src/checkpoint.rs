//! Weight checkpointing: snapshot/restore a network's parameters, and a
//! small self-describing binary format for saving them to disk.
//!
//! Structure is *not* serialised — a checkpoint can only be restored into
//! an architecturally-identical network (same builders, same surgery
//! applied). Every tensor is shape-checked on restore, so a mismatch is an
//! error rather than silent corruption. This covers the workflows the
//! AutoMC pipeline needs: caching pre-trained base models and shipping
//! compressed results.

use crate::ConvNet;
use automc_tensor::Tensor;
use std::io::{self, Read, Write};

/// An in-memory snapshot of every learnable tensor, in parameter order.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    tensors: Vec<Tensor>,
}

/// Errors from checkpoint restore/decoding.
#[derive(Debug)]
pub enum CheckpointError {
    /// The parameter count differs from the target network's.
    ParamCountMismatch {
        /// Tensors in the checkpoint.
        expected: usize,
        /// Tensors in the network.
        actual: usize,
    },
    /// A tensor's shape differs from the target's.
    ShapeMismatch {
        /// Parameter position.
        index: usize,
        /// Dims in the checkpoint.
        expected: Vec<usize>,
        /// Dims in the network.
        actual: Vec<usize>,
    },
    /// Malformed byte stream.
    Corrupt(&'static str),
    /// Underlying I/O failure.
    Io(io::Error),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::ParamCountMismatch { expected, actual } => {
                write!(f, "checkpoint has {expected} tensors, network has {actual}")
            }
            CheckpointError::ShapeMismatch { index, expected, actual } => {
                write!(f, "tensor {index}: checkpoint {expected:?} vs network {actual:?}")
            }
            CheckpointError::Corrupt(what) => write!(f, "corrupt checkpoint: {what}"),
            CheckpointError::Io(e) => write!(f, "checkpoint i/o: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Take a snapshot of a network's parameters.
pub fn snapshot(net: &mut ConvNet) -> Snapshot {
    Snapshot {
        tensors: net.params_mut().iter().map(|p| p.value.clone()).collect(),
    }
}

/// Restore a snapshot into an architecturally-identical network.
pub fn restore(net: &mut ConvNet, snap: &Snapshot) -> Result<(), CheckpointError> {
    let mut params = net.params_mut();
    if params.len() != snap.tensors.len() {
        return Err(CheckpointError::ParamCountMismatch {
            expected: snap.tensors.len(),
            actual: params.len(),
        });
    }
    for (i, (p, t)) in params.iter().zip(&snap.tensors).enumerate() {
        if p.value.dims() != t.dims() {
            return Err(CheckpointError::ShapeMismatch {
                index: i,
                expected: t.dims().to_vec(),
                actual: p.value.dims().to_vec(),
            });
        }
    }
    for (p, t) in params.iter_mut().zip(&snap.tensors) {
        *p.value = t.clone();
    }
    Ok(())
}

const MAGIC: &[u8; 8] = b"AUTOMCv1";

/// Encode a snapshot: magic, tensor count, then per tensor rank, dims,
/// and little-endian `f32` data.
pub fn write_snapshot(snap: &Snapshot, w: &mut impl Write) -> Result<(), CheckpointError> {
    w.write_all(MAGIC)?;
    w.write_all(&(snap.tensors.len() as u64).to_le_bytes())?;
    for t in &snap.tensors {
        w.write_all(&(t.dims().len() as u32).to_le_bytes())?;
        for &d in t.dims() {
            w.write_all(&(d as u64).to_le_bytes())?;
        }
        for &v in t.data() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Decode a snapshot produced by [`write_snapshot`].
pub fn read_snapshot(r: &mut impl Read) -> Result<Snapshot, CheckpointError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(CheckpointError::Corrupt("bad magic"));
    }
    let mut u64buf = [0u8; 8];
    r.read_exact(&mut u64buf)?;
    let count = u64::from_le_bytes(u64buf) as usize;
    if count > 1_000_000 {
        return Err(CheckpointError::Corrupt("implausible tensor count"));
    }
    let mut tensors = Vec::with_capacity(count);
    for _ in 0..count {
        let mut u32buf = [0u8; 4];
        r.read_exact(&mut u32buf)?;
        let rank = u32::from_le_bytes(u32buf) as usize;
        if rank > 8 {
            return Err(CheckpointError::Corrupt("implausible rank"));
        }
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            r.read_exact(&mut u64buf)?;
            dims.push(u64::from_le_bytes(u64buf) as usize);
        }
        let numel: usize = dims.iter().product();
        if numel > 100_000_000 {
            return Err(CheckpointError::Corrupt("implausible tensor size"));
        }
        let mut data = vec![0f32; numel];
        let mut f32buf = [0u8; 4];
        for v in &mut data {
            r.read_exact(&mut f32buf)?;
            *v = f32::from_le_bytes(f32buf);
        }
        tensors.push(
            Tensor::from_vec(&dims, data)
                .map_err(|_| CheckpointError::Corrupt("dims/data mismatch"))?,
        );
    }
    Ok(Snapshot { tensors })
}

/// Convenience: save a network's weights to a file.
pub fn save_weights(net: &mut ConvNet, path: &std::path::Path) -> Result<(), CheckpointError> {
    let snap = snapshot(net);
    let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
    write_snapshot(&snap, &mut file)
}

/// Convenience: load weights from a file into an identical architecture.
pub fn load_weights(net: &mut ConvNet, path: &std::path::Path) -> Result<(), CheckpointError> {
    let mut file = std::io::BufReader::new(std::fs::File::open(path)?);
    let snap = read_snapshot(&mut file)?;
    restore(net, &snap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resnet;
    use automc_tensor::rng_from_seed;

    #[test]
    fn snapshot_roundtrip_in_memory() {
        let mut rng = rng_from_seed(500);
        let mut a = resnet(20, 4, 10, (3, 8, 8), &mut rng);
        let mut b = resnet(20, 4, 10, (3, 8, 8), &mut rng); // different init
        let x = automc_tensor::Tensor::randn(&[1, 3, 8, 8], 1.0, &mut rng);
        let ya = a.forward(&x, false);
        let snap = snapshot(&mut a);
        restore(&mut b, &snap).unwrap();
        let yb = b.forward(&x, false);
        assert_eq!(ya.data(), yb.data(), "restored net must compute identically");
    }

    #[test]
    fn binary_roundtrip() {
        let mut rng = rng_from_seed(501);
        let mut net = resnet(20, 4, 10, (3, 8, 8), &mut rng);
        let snap = snapshot(&mut net);
        let mut buf = Vec::new();
        write_snapshot(&snap, &mut buf).unwrap();
        let back = read_snapshot(&mut &buf[..]).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn restore_rejects_wrong_architecture() {
        let mut rng = rng_from_seed(502);
        let mut a = resnet(20, 4, 10, (3, 8, 8), &mut rng);
        let mut b = resnet(20, 8, 10, (3, 8, 8), &mut rng); // wider
        let snap = snapshot(&mut a);
        match restore(&mut b, &snap) {
            Err(CheckpointError::ShapeMismatch { .. }) => {}
            other => panic!("expected shape mismatch, got {other:?}"),
        }
    }

    #[test]
    fn restore_rejects_wrong_depth() {
        let mut rng = rng_from_seed(503);
        let mut a = resnet(20, 4, 10, (3, 8, 8), &mut rng);
        let mut b = resnet(56, 4, 10, (3, 8, 8), &mut rng);
        let snap = snapshot(&mut a);
        assert!(matches!(
            restore(&mut b, &snap),
            Err(CheckpointError::ParamCountMismatch { .. })
        ));
    }

    #[test]
    fn decode_rejects_garbage() {
        let garbage = vec![0u8; 64];
        assert!(matches!(
            read_snapshot(&mut &garbage[..]),
            Err(CheckpointError::Corrupt(_)) | Err(CheckpointError::Io(_))
        ));
        let mut truncated = Vec::new();
        truncated.extend_from_slice(MAGIC);
        truncated.extend_from_slice(&5u64.to_le_bytes());
        assert!(read_snapshot(&mut &truncated[..]).is_err());
    }

    #[test]
    fn file_roundtrip_preserves_pruned_structure() {
        // Checkpoints work on surgically-modified nets too, as long as the
        // same surgery was applied to the target.
        let mut rng = rng_from_seed(504);
        let mut a = resnet(20, 4, 10, (3, 8, 8), &mut rng);
        let sites = crate::surgery::prunable_sites(&a);
        crate::surgery::prune_site(&mut a, sites[0], &[0, 1]);
        let dir = std::env::temp_dir().join("automc-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pruned.automc");
        save_weights(&mut a, &path).unwrap();
        let mut b = resnet(20, 4, 10, (3, 8, 8), &mut rng);
        // Mismatched structure is rejected…
        assert!(load_weights(&mut b, &path).is_err());
        // …until the same surgery is applied.
        let sites_b = crate::surgery::prunable_sites(&b);
        crate::surgery::prune_site(&mut b, sites_b[0], &[0, 1]);
        load_weights(&mut b, &path).unwrap();
        let _ = std::fs::remove_file(&path);
    }
}
