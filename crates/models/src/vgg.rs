use crate::convnet::{ConvNet, ModelKind};
use crate::unit::{Classifier, ConvBnRelu, Unit};
use automc_tensor::nn::MaxPool2;
use automc_tensor::Rng;

/// Per-stage conv counts for each VGG depth at repro scale.
///
/// Fidelity note: the original VGG-13/16/19 use five conv stages on 32×32+
/// inputs and an FC stack. At 8×8 repro scale we use four stages (pooling
/// after the first three) and a GAP+linear head. Depth ordering is
/// preserved: 8, 11, and 14 convolutions respectively.
fn stage_convs(depth: usize) -> [usize; 4] {
    match depth {
        13 => [2, 2, 2, 2],
        16 => [2, 3, 3, 3],
        19 => [2, 4, 4, 4],
        other => panic!("unsupported VGG depth {other} (use 13, 16 or 19)"),
    }
}

/// Build a CIFAR-style VGG with batch-norm after every convolution.
///
/// Stage widths are `[w, 2w, 4w, 4w]` with 2×2 max-pooling between the
/// first three stages.
pub fn vgg(
    depth: usize,
    base_width: usize,
    classes: usize,
    input_dims: (usize, usize, usize),
    rng: &mut Rng,
) -> ConvNet {
    let convs = stage_convs(depth);
    let widths = [base_width, 2 * base_width, 4 * base_width, 4 * base_width];
    let mut units = Vec::new();
    let mut in_c = input_dims.0;
    for (stage, (&count, &width)) in convs.iter().zip(widths.iter()).enumerate() {
        for _ in 0..count {
            units.push(Unit::Cbr(ConvBnRelu::new(in_c, width, 3, 1, 1, true, rng)));
            in_c = width;
        }
        if stage < 3 {
            units.push(Unit::Pool(MaxPool2::new()));
        }
    }
    units.push(Unit::Classifier(Classifier::new(in_c, classes, rng)));
    ConvNet::new(units, ModelKind::Vgg(depth), classes, input_dims)
}

#[cfg(test)]
mod tests {
    use super::*;
    use automc_tensor::rng_from_seed;

    #[test]
    fn conv_counts_by_depth() {
        let mut rng = rng_from_seed(140);
        for (depth, convs) in [(13usize, 8usize), (16, 11), (19, 14)] {
            let net = vgg(depth, 8, 10, (3, 8, 8), &mut rng);
            let n = net
                .units
                .iter()
                .filter(|u| matches!(u, Unit::Cbr(_)))
                .count();
            assert_eq!(n, convs, "depth {depth}");
        }
    }

    #[test]
    #[should_panic(expected = "unsupported VGG depth")]
    fn invalid_depth_panics() {
        let mut rng = rng_from_seed(141);
        vgg(11, 8, 10, (3, 8, 8), &mut rng);
    }

    #[test]
    fn three_pools() {
        let mut rng = rng_from_seed(142);
        let net = vgg(16, 8, 10, (3, 8, 8), &mut rng);
        let pools = net
            .units
            .iter()
            .filter(|u| matches!(u, Unit::Pool(_)))
            .count();
        assert_eq!(pools, 3);
    }

    #[test]
    fn forward_shape_100_classes() {
        let mut rng = rng_from_seed(143);
        let mut net = vgg(19, 8, 100, (3, 8, 8), &mut rng);
        let x = automc_tensor::Tensor::randn(&[2, 3, 8, 8], 1.0, &mut rng);
        assert_eq!(net.forward(&x, false).dims(), &[2, 100]);
    }
}
