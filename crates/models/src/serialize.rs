//! Structural model serialisation: encode a [`ConvNet`] — architecture
//! *and* weights — to bytes and rebuild it exactly.
//!
//! [`crate::checkpoint`] deliberately stores weights only, which is
//! useless for the search journal: progressive-search nodes hold models
//! that surgery has already reshaped (pruned channels, factored kernels,
//! tied bases), and a resumed run has no way to replay that surgery
//! before restoring weights. This codec therefore records the full unit
//! list — kernel form, strides, tie groups, BN running statistics, the
//! tie-group watermark — so `read_model(write_model(net))` yields a
//! network that is bitwise-identical in every forward/backward pass.
//!
//! The format is self-describing little-endian binary under the magic
//! `AUTOMCs1`, with the same plausibility limits on restore as the weight
//! checkpoint: a corrupt stream is an error, never a garbage network.

use crate::checkpoint::CheckpointError;
use crate::unit::{BasicBlock, Classifier, ConvBnRelu, ConvKernel, Unit};
use crate::{ConvNet, ModelKind};
use automc_tensor::nn::{BatchNorm2d, Conv2d, Linear, MaxPool2};
use automc_tensor::Tensor;
use std::io::{Read, Write};

const MAGIC: &[u8; 8] = b"AUTOMCs1";

fn write_u64(w: &mut impl Write, v: u64) -> Result<(), CheckpointError> {
    w.write_all(&v.to_le_bytes())?;
    Ok(())
}

fn read_u64(r: &mut impl Read) -> Result<u64, CheckpointError> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

fn write_u8(w: &mut impl Write, v: u8) -> Result<(), CheckpointError> {
    w.write_all(&[v])?;
    Ok(())
}

fn read_u8(r: &mut impl Read) -> Result<u8, CheckpointError> {
    let mut buf = [0u8; 1];
    r.read_exact(&mut buf)?;
    Ok(buf[0])
}

fn write_tensor(w: &mut impl Write, t: &Tensor) -> Result<(), CheckpointError> {
    write_u64(w, t.dims().len() as u64)?;
    for &d in t.dims() {
        write_u64(w, d as u64)?;
    }
    for &v in t.data() {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

fn read_tensor(r: &mut impl Read) -> Result<Tensor, CheckpointError> {
    let rank = read_u64(r)? as usize;
    if rank > 8 {
        return Err(CheckpointError::Corrupt("implausible rank"));
    }
    let mut dims = Vec::with_capacity(rank);
    for _ in 0..rank {
        dims.push(read_u64(r)? as usize);
    }
    let numel: usize = dims.iter().product();
    if numel > 100_000_000 {
        return Err(CheckpointError::Corrupt("implausible tensor size"));
    }
    let mut data = vec![0f32; numel];
    let mut f32buf = [0u8; 4];
    for v in &mut data {
        r.read_exact(&mut f32buf)?;
        *v = f32::from_le_bytes(f32buf);
    }
    Tensor::from_vec(&dims, data).map_err(|_| CheckpointError::Corrupt("dims/data mismatch"))
}

fn write_conv(w: &mut impl Write, c: &Conv2d) -> Result<(), CheckpointError> {
    write_u64(w, c.in_channels() as u64)?;
    let (kh, kw) = c.kernel();
    write_u64(w, kh as u64)?;
    write_u64(w, kw as u64)?;
    write_u64(w, c.stride() as u64)?;
    write_u64(w, c.padding() as u64)?;
    write_u8(w, u8::from(c.bias.is_some()))?;
    write_tensor(w, &c.weight)?;
    if let Some(bias) = &c.bias {
        write_tensor(w, bias)?;
    }
    Ok(())
}

fn read_conv(r: &mut impl Read) -> Result<Conv2d, CheckpointError> {
    let in_c = read_u64(r)? as usize;
    let kh = read_u64(r)? as usize;
    let kw = read_u64(r)? as usize;
    let stride = read_u64(r)? as usize;
    let pad = read_u64(r)? as usize;
    if stride == 0 || kh == 0 || kw == 0 {
        return Err(CheckpointError::Corrupt("degenerate conv geometry"));
    }
    let has_bias = read_u8(r)? != 0;
    let weight = read_tensor(r)?;
    let bias = has_bias.then(|| read_tensor(r)).transpose()?;
    Ok(Conv2d::from_weight(weight, bias, in_c, kh, kw, stride, pad))
}

fn write_bn(w: &mut impl Write, bn: &BatchNorm2d) -> Result<(), CheckpointError> {
    write_tensor(w, &bn.gamma)?;
    write_tensor(w, &bn.beta)?;
    write_tensor(w, &bn.running_mean)?;
    write_tensor(w, &bn.running_var)?;
    Ok(())
}

fn read_bn(r: &mut impl Read) -> Result<BatchNorm2d, CheckpointError> {
    let gamma = read_tensor(r)?;
    let channels = gamma.dims().first().copied().unwrap_or(0);
    if channels == 0 {
        return Err(CheckpointError::Corrupt("batch-norm with no channels"));
    }
    let mut bn = BatchNorm2d::new(channels);
    bn.gamma = gamma;
    bn.beta = read_tensor(r)?;
    bn.running_mean = read_tensor(r)?;
    bn.running_var = read_tensor(r)?;
    if bn.beta.dims() != bn.gamma.dims()
        || bn.running_mean.dims() != bn.gamma.dims()
        || bn.running_var.dims() != bn.gamma.dims()
    {
        return Err(CheckpointError::Corrupt("batch-norm tensor shape mismatch"));
    }
    Ok(bn)
}

fn write_cbr(w: &mut impl Write, cbr: &ConvBnRelu) -> Result<(), CheckpointError> {
    write_u8(w, u8::from(cbr.with_relu))?;
    match &cbr.kernel {
        ConvKernel::Full(c) => {
            write_u8(w, 0)?;
            write_conv(w, c)?;
        }
        ConvKernel::Factored { basis, point, tie_group } => {
            write_u8(w, 1)?;
            write_conv(w, basis)?;
            write_conv(w, point)?;
            match tie_group {
                Some(g) => {
                    write_u8(w, 1)?;
                    write_u64(w, *g as u64)?;
                }
                None => write_u8(w, 0)?,
            }
        }
    }
    write_bn(w, &cbr.bn)
}

fn read_cbr(r: &mut impl Read) -> Result<ConvBnRelu, CheckpointError> {
    let with_relu = read_u8(r)? != 0;
    let kernel = match read_u8(r)? {
        0 => ConvKernel::Full(read_conv(r)?),
        1 => {
            let basis = read_conv(r)?;
            let point = read_conv(r)?;
            let tie_group = if read_u8(r)? != 0 {
                Some(read_u64(r)? as usize)
            } else {
                None
            };
            ConvKernel::Factored { basis, point, tie_group }
        }
        _ => return Err(CheckpointError::Corrupt("unknown kernel tag")),
    };
    let bn = read_bn(r)?;
    Ok(ConvBnRelu::from_parts(kernel, bn, with_relu))
}

fn write_unit(w: &mut impl Write, unit: &Unit) -> Result<(), CheckpointError> {
    match unit {
        Unit::Cbr(u) => {
            write_u8(w, 0)?;
            write_cbr(w, u)
        }
        Unit::Block(b) => {
            write_u8(w, 1)?;
            write_cbr(w, &b.c1)?;
            write_cbr(w, &b.c2)?;
            match &b.shortcut {
                Some(s) => {
                    write_u8(w, 1)?;
                    write_cbr(w, s)
                }
                None => write_u8(w, 0),
            }
        }
        Unit::Pool(_) => write_u8(w, 2),
        Unit::Classifier(c) => {
            write_u8(w, 3)?;
            write_tensor(w, &c.linear.weight)?;
            write_tensor(w, &c.linear.bias)
        }
    }
}

fn read_unit(r: &mut impl Read) -> Result<Unit, CheckpointError> {
    Ok(match read_u8(r)? {
        0 => Unit::Cbr(read_cbr(r)?),
        1 => {
            let c1 = read_cbr(r)?;
            let c2 = read_cbr(r)?;
            let shortcut = if read_u8(r)? != 0 { Some(read_cbr(r)?) } else { None };
            Unit::Block(BasicBlock::from_parts(c1, c2, shortcut))
        }
        2 => Unit::Pool(MaxPool2::new()),
        3 => {
            let weight = read_tensor(r)?;
            let bias = read_tensor(r)?;
            Unit::Classifier(Classifier::from_linear(Linear::from_weights(weight, bias)))
        }
        _ => return Err(CheckpointError::Corrupt("unknown unit tag")),
    })
}

/// Encode a network — structure and weights — to a byte stream.
pub fn write_model(net: &ConvNet, w: &mut impl Write) -> Result<(), CheckpointError> {
    w.write_all(MAGIC)?;
    match net.kind {
        ModelKind::ResNet(d) => {
            write_u8(w, 0)?;
            write_u64(w, d as u64)?;
        }
        ModelKind::Vgg(d) => {
            write_u8(w, 1)?;
            write_u64(w, d as u64)?;
        }
    }
    write_u64(w, net.classes() as u64)?;
    let (c, h, wd) = net.input_dims();
    write_u64(w, c as u64)?;
    write_u64(w, h as u64)?;
    write_u64(w, wd as u64)?;
    write_u64(w, net.tie_group_watermark() as u64)?;
    write_u64(w, net.units.len() as u64)?;
    for unit in &net.units {
        write_unit(w, unit)?;
    }
    Ok(())
}

/// Decode a network produced by [`write_model`].
pub fn read_model(r: &mut impl Read) -> Result<ConvNet, CheckpointError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(CheckpointError::Corrupt("bad model magic"));
    }
    let kind = match read_u8(r)? {
        0 => ModelKind::ResNet(read_u64(r)? as usize),
        1 => ModelKind::Vgg(read_u64(r)? as usize),
        _ => return Err(CheckpointError::Corrupt("unknown model kind")),
    };
    let classes = read_u64(r)? as usize;
    let input_dims = (
        read_u64(r)? as usize,
        read_u64(r)? as usize,
        read_u64(r)? as usize,
    );
    let watermark = read_u64(r)? as usize;
    let count = read_u64(r)? as usize;
    if count > 100_000 {
        return Err(CheckpointError::Corrupt("implausible unit count"));
    }
    let mut units = Vec::with_capacity(count);
    for _ in 0..count {
        units.push(read_unit(r)?);
    }
    let mut net = ConvNet::new(units, kind, classes, input_dims);
    net.set_tie_group_watermark(watermark);
    Ok(net)
}

/// Encode a network to an owned byte vector.
pub fn model_to_bytes(net: &ConvNet) -> Vec<u8> {
    let mut buf = Vec::new();
    write_model(net, &mut buf).expect("writing to Vec cannot fail");
    buf
}

/// Decode a network from bytes.
pub fn model_from_bytes(bytes: &[u8]) -> Result<ConvNet, CheckpointError> {
    let mut r = bytes;
    let net = read_model(&mut r)?;
    if !r.is_empty() {
        return Err(CheckpointError::Corrupt("trailing bytes after model"));
    }
    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{resnet, vgg, CbrRole};
    use automc_tensor::rng_from_seed;

    fn forward_bits(net: &mut ConvNet, x: &Tensor) -> Vec<u32> {
        net.forward(x, false).data().iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn roundtrip_resnet_is_bitwise_identical() {
        let mut rng = rng_from_seed(600);
        let mut net = resnet(20, 4, 10, (3, 8, 8), &mut rng);
        let x = Tensor::randn(&[2, 3, 8, 8], 1.0, &mut rng);
        let mut back = model_from_bytes(&model_to_bytes(&net)).unwrap();
        assert_eq!(back.kind, net.kind);
        assert_eq!(back.classes(), net.classes());
        assert_eq!(back.param_count(), net.param_count());
        assert_eq!(back.flops(), net.flops());
        assert_eq!(forward_bits(&mut net, &x), forward_bits(&mut back, &x));
    }

    #[test]
    fn roundtrip_preserves_surgery_and_tie_groups() {
        let mut rng = rng_from_seed(601);
        let mut net = vgg(13, 8, 10, (3, 8, 8), &mut rng);
        // Prune, factorise with a shared basis, and check the restored net
        // keeps the exact modified structure.
        let sites = crate::surgery::prunable_sites(&net);
        crate::surgery::prune_site(&mut net, sites[0], &[0, 2, 3]);
        let group = net.alloc_tie_group();
        let mut done = 0;
        net.for_each_cbr_mut(|role, cbr| {
            if role == CbrRole::VggConv
                && done < 2
                && cbr.in_channels() == 32
                && cbr.out_channels() == 32
            {
                cbr.factorize(4, Some(group));
                done += 1;
            }
        });
        assert_eq!(done, 2);
        let x = Tensor::randn(&[2, 3, 8, 8], 1.0, &mut rng);
        let mut back = model_from_bytes(&model_to_bytes(&net)).unwrap();
        assert_eq!(back.param_count(), net.param_count(), "tied bases still deduped");
        assert_eq!(
            back.tie_group_watermark(),
            net.tie_group_watermark(),
            "watermark survives so future groups stay fresh"
        );
        assert_eq!(forward_bits(&mut net, &x), forward_bits(&mut back, &x));
    }

    #[test]
    fn restored_net_trains_identically() {
        use crate::train::{train, Auxiliary, TrainConfig};
        use automc_data::{DatasetSpec, SyntheticKind};
        let mut rng = rng_from_seed(602);
        let (train_set, _) = DatasetSpec {
            train: 64,
            test: 32,
            ..DatasetSpec::new(SyntheticKind::Cifar10Like)
        }
        .generate();
        let mut net = resnet(20, 4, 10, (3, 8, 8), &mut rng);
        let mut back = model_from_bytes(&model_to_bytes(&net)).unwrap();
        let cfg = TrainConfig { epochs: 1.0, ..TrainConfig::default() };
        let mut rng_a = rng_from_seed(7);
        let mut rng_b = rng_from_seed(7);
        train(&mut net, &train_set, &cfg, Auxiliary::None, &mut rng_a);
        train(&mut back, &train_set, &cfg, Auxiliary::None, &mut rng_b);
        let x = Tensor::randn(&[2, 3, 8, 8], 1.0, &mut rng);
        assert_eq!(forward_bits(&mut net, &x), forward_bits(&mut back, &x));
    }

    #[test]
    fn corrupt_streams_are_rejected() {
        let mut rng = rng_from_seed(603);
        let net = resnet(20, 4, 10, (3, 8, 8), &mut rng);
        let bytes = model_to_bytes(&net);
        assert!(model_from_bytes(&bytes[..bytes.len() / 2]).is_err(), "truncation");
        let mut flipped = bytes.clone();
        flipped[3] ^= 0xFF;
        assert!(model_from_bytes(&flipped).is_err(), "bad magic");
        let mut trailing = bytes;
        trailing.push(0);
        assert!(model_from_bytes(&trailing).is_err(), "trailing bytes");
        assert!(model_from_bytes(&[]).is_err(), "empty");
    }
}
