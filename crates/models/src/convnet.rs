use crate::unit::{ConvBnRelu, ConvKernel, Unit};
use automc_tensor::nn::Layer;
use automc_tensor::optim::Param;
use automc_tensor::Tensor;

/// Which paper architecture a [`ConvNet`] instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// ResNet of the given depth (20 / 56 / 164).
    ResNet(usize),
    /// VGG of the given depth (13 / 16 / 19).
    Vgg(usize),
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelKind::ResNet(d) => write!(f, "ResNet-{d}"),
            ModelKind::Vgg(d) => write!(f, "VGG-{d}"),
        }
    }
}

/// Where a [`ConvBnRelu`] sits inside the network — determines what
/// compression surgery is legal on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CbrRole {
    /// Stem convolution (output feeds the residual stream — not prunable).
    Stem,
    /// A VGG body conv (freely prunable; consumer is the next conv/head).
    VggConv,
    /// First conv of a basic block (prunable inner channels).
    BlockC1,
    /// Second conv of a basic block (output residual-tied).
    BlockC2,
    /// Projection shortcut of a basic block (residual-tied).
    Shortcut,
}

/// A compression-aware convolutional network: an ordered unit list plus the
/// metadata (input dims, class count, LFB tie groups) that metric
/// accounting and surgery need.
pub struct ConvNet {
    /// The unit sequence, input to logits.
    pub units: Vec<Unit>,
    /// Which architecture this is (for reporting).
    pub kind: ModelKind,
    classes: usize,
    input_dims: (usize, usize, usize),
    next_tie_group: usize,
}

impl ConvNet {
    /// Assemble a network. `input_dims` is `(channels, height, width)`.
    pub fn new(
        units: Vec<Unit>,
        kind: ModelKind,
        classes: usize,
        input_dims: (usize, usize, usize),
    ) -> Self {
        ConvNet { units, kind, classes, input_dims, next_tie_group: 0 }
    }

    /// Class count of the head.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// `(channels, height, width)` the net expects.
    pub fn input_dims(&self) -> (usize, usize, usize) {
        self.input_dims
    }

    /// Forward pass to logits `[batch, classes]`.
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let mut cur = x.clone();
        for unit in &mut self.units {
            cur = unit.forward(&cur, train);
        }
        cur
    }

    /// Backward pass from logit gradients; accumulates parameter grads and
    /// synchronises tied (shared-basis) gradients.
    pub fn backward(&mut self, grad_logits: &Tensor) -> Tensor {
        let mut g = grad_logits.clone();
        for unit in self.units.iter_mut().rev() {
            g = unit.backward(&g);
        }
        self.sync_tied_gradients();
        g
    }

    /// All parameter views (tied bases appear once per member; gradients
    /// are pre-synchronised by [`ConvNet::backward`], so identical updates
    /// keep tied weights identical).
    pub fn params_mut(&mut self) -> Vec<Param<'_>> {
        self.units.iter_mut().flat_map(|u| u.params_mut()).collect()
    }

    /// `P(M)`: learnable parameter count, counting each tied basis once.
    pub fn param_count(&self) -> usize {
        let mut total: usize = self.units.iter().map(|u| u.param_count()).sum();
        // Subtract duplicate tied bases: every member after the first in a
        // tie group contributes a redundant copy.
        let mut seen: Vec<usize> = Vec::new();
        self.for_each_cbr(|_, cbr| {
            if let ConvKernel::Factored { basis, tie_group: Some(g), .. } = &cbr.kernel {
                if seen.contains(g) {
                    total -= basis.weight.numel();
                } else {
                    seen.push(*g);
                }
            }
        });
        total
    }

    /// `F(M)`: multiply–accumulates for one image at the net's input dims.
    pub fn flops(&self) -> u64 {
        let (_, mut h, mut w) = self.input_dims;
        let mut total = 0u64;
        for unit in &self.units {
            match unit {
                Unit::Cbr(u) => {
                    let (f, nh, nw) = u.flops(h, w);
                    total += f;
                    h = nh;
                    w = nw;
                }
                Unit::Block(b) => {
                    let (f, nh, nw) = b.flops(h, w);
                    total += f;
                    h = nh;
                    w = nw;
                }
                Unit::Pool(_) => {
                    h /= 2;
                    w /= 2;
                }
                Unit::Classifier(c) => {
                    total += (c.in_channels() * self.classes) as u64;
                }
            }
        }
        total
    }

    /// Visit every [`ConvBnRelu`] with its role, immutably.
    pub fn for_each_cbr(&self, mut f: impl FnMut(CbrRole, &ConvBnRelu)) {
        for (idx, unit) in self.units.iter().enumerate() {
            match unit {
                Unit::Cbr(u) => {
                    let role = if idx == 0 && matches!(self.kind, ModelKind::ResNet(_)) {
                        CbrRole::Stem
                    } else {
                        CbrRole::VggConv
                    };
                    f(role, u);
                }
                Unit::Block(b) => {
                    f(CbrRole::BlockC1, &b.c1);
                    f(CbrRole::BlockC2, &b.c2);
                    if let Some(s) = &b.shortcut {
                        f(CbrRole::Shortcut, s);
                    }
                }
                _ => {}
            }
        }
    }

    /// Visit every [`ConvBnRelu`] with its role, mutably.
    pub fn for_each_cbr_mut(&mut self, mut f: impl FnMut(CbrRole, &mut ConvBnRelu)) {
        let kind = self.kind;
        for (idx, unit) in self.units.iter_mut().enumerate() {
            match unit {
                Unit::Cbr(u) => {
                    let role = if idx == 0 && matches!(kind, ModelKind::ResNet(_)) {
                        CbrRole::Stem
                    } else {
                        CbrRole::VggConv
                    };
                    f(role, u);
                }
                Unit::Block(b) => {
                    f(CbrRole::BlockC1, &mut b.c1);
                    f(CbrRole::BlockC2, &mut b.c2);
                    if let Some(s) = &mut b.shortcut {
                        f(CbrRole::Shortcut, s);
                    }
                }
                _ => {}
            }
        }
    }

    /// Allocate a fresh LFB tie-group id.
    pub fn alloc_tie_group(&mut self) -> usize {
        let g = self.next_tie_group;
        self.next_tie_group += 1;
        g
    }

    /// Next tie-group id that [`ConvNet::alloc_tie_group`] would hand out
    /// (journaled so a restored net keeps allocating fresh ids).
    pub fn tie_group_watermark(&self) -> usize {
        self.next_tie_group
    }

    /// Restore the tie-group watermark from a checkpoint. `watermark` must
    /// be past every id in use, or future allocations would collide.
    pub fn set_tie_group_watermark(&mut self, watermark: usize) {
        self.next_tie_group = watermark;
    }

    /// Sum basis gradients within each tie group and distribute the sum to
    /// every member, so a uniform optimizer step keeps tied weights equal.
    pub fn sync_tied_gradients(&mut self) {
        // Gather (group, grad) sums.
        let mut sums: Vec<(usize, Tensor)> = Vec::new();
        self.for_each_cbr(|_, cbr| {
            if let ConvKernel::Factored { basis, tie_group: Some(g), .. } = &cbr.kernel {
                match sums.iter_mut().find(|(id, _)| id == g) {
                    Some((_, acc)) if acc.dims() == basis.grad_weight.dims() => {
                        acc.add_assign(&basis.grad_weight);
                    }
                    Some(_) => {} // shape drifted (shouldn't happen) — skip
                    None => sums.push((*g, basis.grad_weight.clone())),
                }
            }
        });
        if sums.is_empty() {
            return;
        }
        self.for_each_cbr_mut(|_, cbr| {
            if let ConvKernel::Factored { basis, tie_group: Some(g), .. } = &mut cbr.kernel {
                if let Some((_, sum)) = sums.iter().find(|(id, _)| id == g) {
                    if sum.dims() == basis.grad_weight.dims() {
                        basis.grad_weight = sum.clone();
                    }
                }
            }
        });
    }

    /// Deep copy of the network (weights; transient caches are cloned too,
    /// which is harmless).
    pub fn clone_net(&self) -> ConvNet {
        ConvNet {
            units: self.units.clone(),
            kind: self.kind,
            classes: self.classes,
            input_dims: self.input_dims,
            next_tie_group: self.next_tie_group,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{resnet, vgg};
    use automc_tensor::rng_from_seed;

    #[test]
    fn resnet_forward_shape() {
        let mut rng = rng_from_seed(120);
        let mut net = resnet(20, 4, 10, (3, 8, 8), &mut rng);
        let x = Tensor::randn(&[2, 3, 8, 8], 1.0, &mut rng);
        let y = net.forward(&x, true);
        assert_eq!(y.dims(), &[2, 10]);
    }

    #[test]
    fn vgg_forward_shape() {
        let mut rng = rng_from_seed(121);
        let mut net = vgg(16, 8, 100, (3, 8, 8), &mut rng);
        let x = Tensor::randn(&[2, 3, 8, 8], 1.0, &mut rng);
        let y = net.forward(&x, true);
        assert_eq!(y.dims(), &[2, 100]);
    }

    #[test]
    fn deeper_nets_have_more_params_and_flops() {
        let mut rng = rng_from_seed(122);
        let r20 = resnet(20, 4, 10, (3, 8, 8), &mut rng);
        let r56 = resnet(56, 4, 10, (3, 8, 8), &mut rng);
        let r164 = resnet(164, 4, 10, (3, 8, 8), &mut rng);
        assert!(r20.param_count() < r56.param_count());
        assert!(r56.param_count() < r164.param_count());
        assert!(r20.flops() < r56.flops());
        let v13 = vgg(13, 8, 100, (3, 8, 8), &mut rng);
        let v16 = vgg(16, 8, 100, (3, 8, 8), &mut rng);
        let v19 = vgg(19, 8, 100, (3, 8, 8), &mut rng);
        assert!(v13.param_count() < v16.param_count());
        assert!(v16.param_count() < v19.param_count());
    }

    #[test]
    fn clone_net_is_independent() {
        let mut rng = rng_from_seed(123);
        let net = resnet(20, 4, 10, (3, 8, 8), &mut rng);
        let mut copy = net.clone_net();
        assert_eq!(net.param_count(), copy.param_count());
        // Mutating the copy must not affect the original.
        if let Unit::Cbr(c) = &mut copy.units[0] {
            if let ConvKernel::Full(conv) = &mut c.kernel {
                conv.weight.data_mut()[0] += 100.0;
            }
        }
        let (orig_w, copy_w) = {
            let get = |n: &ConvNet| match &n.units[0] {
                Unit::Cbr(c) => match &c.kernel {
                    ConvKernel::Full(conv) => conv.weight.data()[0],
                    _ => panic!(),
                },
                _ => panic!(),
            };
            (get(&net), get(&copy))
        };
        assert!((copy_w - orig_w - 100.0).abs() < 1e-6);
    }

    #[test]
    fn backward_produces_input_grad() {
        let mut rng = rng_from_seed(124);
        let mut net = resnet(20, 4, 10, (3, 8, 8), &mut rng);
        let x = Tensor::randn(&[2, 3, 8, 8], 1.0, &mut rng);
        let y = net.forward(&x, true);
        let g = net.backward(&Tensor::ones(y.dims()));
        assert_eq!(g.dims(), x.dims());
        assert!(g.norm() > 0.0);
    }

    #[test]
    fn tied_basis_counted_once() {
        let mut rng = rng_from_seed(125);
        let mut net = vgg(13, 8, 10, (3, 8, 8), &mut rng);
        let before = net.param_count();
        // Factorise two same-shape convs with a shared tie group.
        let group = net.alloc_tie_group();
        let mut basis_numel = 0usize;
        let mut done = 0;
        net.for_each_cbr_mut(|role, cbr| {
            if role == CbrRole::VggConv
                && done < 2
                && cbr.in_channels() == 32
                && cbr.out_channels() == 32
            {
                cbr.factorize(4, Some(group));
                if let ConvKernel::Factored { basis, .. } = &cbr.kernel {
                    basis_numel = basis.weight.numel();
                }
                done += 1;
            }
        });
        assert_eq!(done, 2, "expected two 32→32 convs in VGG-13 stage 4");
        let after = net.param_count();
        // Untied accounting would count basis twice; tied counts once.
        let mut untied: usize = net.units.iter().map(|u| u.param_count()).sum();
        untied -= 0;
        assert_eq!(after + basis_numel, untied);
        assert!(after < before + basis_numel);
    }

    #[test]
    fn sync_tied_gradients_equalises() {
        let mut rng = rng_from_seed(126);
        let mut net = vgg(13, 8, 10, (3, 8, 8), &mut rng);
        let group = net.alloc_tie_group();
        let mut done = 0;
        net.for_each_cbr_mut(|role, cbr| {
            if role == CbrRole::VggConv
                && done < 2
                && cbr.in_channels() == 32
                && cbr.out_channels() == 32
            {
                cbr.factorize(4, Some(group));
                done += 1;
            }
        });
        let x = Tensor::randn(&[2, 3, 8, 8], 1.0, &mut rng);
        let y = net.forward(&x, true);
        net.backward(&Tensor::ones(y.dims()));
        let mut grads: Vec<Tensor> = Vec::new();
        net.for_each_cbr(|_, cbr| {
            if let ConvKernel::Factored { basis, tie_group: Some(_), .. } = &cbr.kernel {
                grads.push(basis.grad_weight.clone());
            }
        });
        assert_eq!(grads.len(), 2);
        assert_eq!(grads[0], grads[1], "tied gradients must match after sync");
    }
}
