//! Structural surgery: channel-level pruning that keeps producer/consumer
//! shapes consistent, plus the per-filter importance criteria the
//! compression methods rank by.
//!
//! Prunable sites:
//! * **VGG** — every body convolution; pruning its output filters also
//!   removes the matching input channels of the next convolution (or the
//!   classifier's input features).
//! * **ResNet** — each basic block's *inner* channels (output of `c1`,
//!   input of `c2`). Residual-stream channels (stem, block outputs,
//!   shortcuts) are tied across the network and are left intact, the
//!   standard practice for structured ResNet pruning.

use crate::convnet::ConvNet;
use crate::unit::{ConvBnRelu, Unit};

/// A per-filter importance criterion.
///
/// `L1Weight`/`L2Weight`/`L2BnParam` are LeGR's HP8 options; `K34` and
/// `SkewKur` are HOS's higher-order-statistics criteria (HP12); `L1Norm`
/// is HOS's first-order option.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Criterion {
    /// Sum of absolute kernel weights of the filter.
    L1Weight,
    /// Euclidean norm of the filter kernel.
    L2Weight,
    /// Magnitude of the following batch-norm's γ for the channel.
    L2BnParam,
    /// Higher-order statistic: excess kurtosis magnitude of the filter's
    /// weight distribution (HOS `k34`).
    K34,
    /// Combined |skewness| + |excess kurtosis| (HOS `skew_kur`).
    SkewKur,
}

/// A prunable channel group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PruneSite {
    /// Index into `ConvNet::units`.
    pub unit_idx: usize,
    /// Current channel count at the site.
    pub channels: usize,
}

/// Enumerate the prunable sites of a network.
pub fn prunable_sites(net: &ConvNet) -> Vec<PruneSite> {
    let mut sites = Vec::new();
    for (i, unit) in net.units.iter().enumerate() {
        match unit {
            Unit::Cbr(c) => {
                // The stem of a ResNet feeds the residual stream: skip it.
                if matches!(net.kind, crate::ModelKind::ResNet(_)) && i == 0 {
                    continue;
                }
                sites.push(PruneSite { unit_idx: i, channels: c.out_channels() });
            }
            Unit::Block(b) => {
                sites.push(PruneSite { unit_idx: i, channels: b.inner_channels() });
            }
            _ => {}
        }
    }
    sites
}

fn site_cbr<'a>(net: &'a ConvNet, site: PruneSite) -> &'a ConvBnRelu {
    match &net.units[site.unit_idx] {
        Unit::Cbr(c) => c,
        Unit::Block(b) => &b.c1,
        _ => panic!("unit {} is not a prunable site", site.unit_idx),
    }
}

/// Per-channel importance scores at a site under a criterion.
pub fn site_scores(net: &ConvNet, site: PruneSite, criterion: Criterion) -> Vec<f32> {
    let cbr = site_cbr(net, site);
    let rows = cbr.filter_rows();
    let n = cbr.out_channels();
    (0..n)
        .map(|i| {
            let row = rows.row(i);
            match criterion {
                Criterion::L1Weight => row.iter().map(|v| v.abs()).sum(),
                Criterion::L2Weight => row.iter().map(|v| v * v).sum::<f32>().sqrt(),
                Criterion::L2BnParam => cbr.bn.gamma.data()[i].abs(),
                Criterion::K34 => moments(row).1.abs(),
                Criterion::SkewKur => {
                    let (skew, kur) = moments(row);
                    skew.abs() + kur.abs()
                }
            }
        })
        .collect()
}

/// `(skewness, excess kurtosis)` of a weight row.
fn moments(row: &[f32]) -> (f32, f32) {
    let n = row.len().max(1) as f32;
    let mean = row.iter().sum::<f32>() / n;
    let m2 = row.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / n;
    let m3 = row.iter().map(|v| (v - mean).powi(3)).sum::<f32>() / n;
    let m4 = row.iter().map(|v| (v - mean).powi(4)).sum::<f32>() / n;
    let sd = m2.sqrt().max(1e-12);
    (m3 / sd.powi(3), m4 / (m2 * m2).max(1e-24) - 3.0)
}

/// Remove all channels *not* in `keep` at a site, fixing up the consumer.
pub fn prune_site(net: &mut ConvNet, site: PruneSite, keep: &[usize]) {
    assert!(!keep.is_empty(), "cannot prune a site to zero channels");
    match &mut net.units[site.unit_idx] {
        Unit::Block(b) => {
            b.prune_inner(keep);
            return;
        }
        Unit::Cbr(c) => c.keep_filters(keep),
        _ => panic!("unit {} is not a prunable site", site.unit_idx),
    }
    // VGG chain: fix the first downstream consumer.
    for j in site.unit_idx + 1..net.units.len() {
        match &mut net.units[j] {
            Unit::Cbr(c) => {
                c.keep_in_channels(keep);
                return;
            }
            Unit::Classifier(c) => {
                c.linear.keep_inputs(keep);
                return;
            }
            Unit::Pool(_) => continue,
            Unit::Block(_) => panic!("VGG chain should not contain blocks"),
        }
    }
    panic!("pruned site {} has no consumer", site.unit_idx);
}

/// Zero (soft-prune) the listed channels at a site — SFP's soft masking.
pub fn soft_zero_site(net: &mut ConvNet, site: PruneSite, idxs: &[usize]) {
    match &mut net.units[site.unit_idx] {
        Unit::Cbr(c) => c.zero_filters(idxs),
        Unit::Block(b) => b.c1.zero_filters(idxs),
        _ => panic!("unit {} is not a prunable site", site.unit_idx),
    }
}

/// Parameters freed by removing one channel at a site (producer row + BN
/// pair + consumer columns). Used to convert a parameter-reduction target
/// into a channel count.
pub fn per_channel_cost(net: &ConvNet, site: PruneSite) -> usize {
    let producer = {
        let cbr = site_cbr(net, site);
        cbr.filter_rows().dims()[1] + 2 // kernel row + (γ, β)
    };
    let consumer = match &net.units[site.unit_idx] {
        Unit::Block(b) => {
            // c2 loses one input channel: kh·kw weights per output filter.
            let rows = b.c2.filter_rows();
            rows.numel() / b.c2.in_channels().max(1)
        }
        _ => {
            // VGG: find the consumer.
            let mut cost = 0;
            for j in site.unit_idx + 1..net.units.len() {
                match &net.units[j] {
                    Unit::Cbr(c) => {
                        let rows = c.filter_rows();
                        cost = rows.numel() / c.in_channels().max(1);
                        break;
                    }
                    Unit::Classifier(c) => {
                        cost = c.linear.out_features();
                        break;
                    }
                    _ => continue,
                }
            }
            cost
        }
    };
    producer + consumer
}

/// Outcome of a global pruning pass.
#[derive(Debug, Clone, PartialEq)]
pub struct PruneOutcome {
    /// Parameters removed (estimate used for the stopping rule).
    pub removed_params: usize,
    /// `(site, kept channel indices)` in application order.
    pub kept: Vec<(PruneSite, Vec<usize>)>,
}

/// Globally prune the lowest-scoring channels until roughly
/// `target_fraction` of `P(M)` is removed.
///
/// `scores[s]` are per-channel scores for `sites[s]` (higher = keep).
/// `max_ratio` caps the fraction of channels removable at any one site
/// (LeGR's HP6); at least two channels always survive per site.
pub fn global_prune_by_scores(
    net: &mut ConvNet,
    sites: &[PruneSite],
    scores: &[Vec<f32>],
    target_fraction: f32,
    max_ratio: f32,
) -> PruneOutcome {
    assert_eq!(sites.len(), scores.len());
    let total_params = net.param_count();
    let target = (total_params as f32 * target_fraction.clamp(0.0, 0.95)) as usize;
    // Candidate list: (score, site index, channel).
    let mut candidates: Vec<(f32, usize, usize)> = Vec::new();
    for (s, score_vec) in scores.iter().enumerate() {
        for (ch, &sc) in score_vec.iter().enumerate() {
            candidates.push((sc, s, ch));
        }
    }
    candidates.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut removed_per_site: Vec<Vec<usize>> = vec![Vec::new(); sites.len()];
    let mut removed_params = 0usize;
    for (_, s, ch) in candidates {
        if removed_params >= target {
            break;
        }
        let site = sites[s];
        let cap = ((site.channels as f32 * max_ratio) as usize).min(site.channels.saturating_sub(2));
        if removed_per_site[s].len() >= cap {
            continue;
        }
        removed_per_site[s].push(ch);
        removed_params += per_channel_cost(net, site);
    }
    // Apply: prune sites in order (unit indices are stable — pruning never
    // removes units).
    let mut kept_all = Vec::new();
    for (s, removed) in removed_per_site.iter().enumerate() {
        if removed.is_empty() {
            continue;
        }
        let site = sites[s];
        let keep: Vec<usize> = (0..site.channels).filter(|c| !removed.contains(c)).collect();
        prune_site(net, site, &keep);
        kept_all.push((site, keep));
    }
    PruneOutcome { removed_params, kept: kept_all }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{resnet, vgg, ConvNet};
    use automc_tensor::{rng_from_seed, Tensor};

    fn nets() -> (ConvNet, ConvNet) {
        let mut rng = rng_from_seed(160);
        (
            resnet(20, 4, 10, (3, 8, 8), &mut rng),
            vgg(13, 8, 10, (3, 8, 8), &mut rng),
        )
    }

    #[test]
    fn site_enumeration() {
        let (r, v) = nets();
        let rs = prunable_sites(&r);
        assert_eq!(rs.len(), 9, "one site per ResNet-20 block");
        let vs = prunable_sites(&v);
        assert_eq!(vs.len(), 8, "one site per VGG-13 conv");
    }

    #[test]
    fn scores_have_site_lengths() {
        let (r, _) = nets();
        for site in prunable_sites(&r) {
            for crit in [
                Criterion::L1Weight,
                Criterion::L2Weight,
                Criterion::L2BnParam,
                Criterion::K34,
                Criterion::SkewKur,
            ] {
                let s = site_scores(&r, site, crit);
                assert_eq!(s.len(), site.channels);
                assert!(s.iter().all(|v| v.is_finite()));
            }
        }
    }

    #[test]
    fn vgg_prune_keeps_network_runnable() {
        let (_, mut v) = nets();
        let mut rng = rng_from_seed(161);
        let before = v.param_count();
        for site in prunable_sites(&v) {
            let keep: Vec<usize> = (0..site.channels / 2).collect();
            prune_site(&mut v, site, &keep);
        }
        assert!(v.param_count() < before);
        let x = Tensor::randn(&[2, 3, 8, 8], 1.0, &mut rng);
        assert_eq!(v.forward(&x, false).dims(), &[2, 10]);
    }

    #[test]
    fn resnet_prune_keeps_network_runnable() {
        let (mut r, _) = nets();
        let mut rng = rng_from_seed(162);
        let before = r.param_count();
        for site in prunable_sites(&r) {
            let keep: Vec<usize> = (0..(site.channels - 1).max(1)).collect();
            prune_site(&mut r, site, &keep);
        }
        assert!(r.param_count() < before);
        let x = Tensor::randn(&[2, 3, 8, 8], 1.0, &mut rng);
        assert_eq!(r.forward(&x, false).dims(), &[2, 10]);
    }

    #[test]
    fn global_prune_hits_target_roughly() {
        let (_, mut v) = nets();
        let before = v.param_count();
        let sites = prunable_sites(&v);
        let scores: Vec<Vec<f32>> = sites
            .iter()
            .map(|&s| site_scores(&v, s, Criterion::L2Weight))
            .collect();
        let outcome = global_prune_by_scores(&mut v, &sites, &scores, 0.3, 0.9);
        let after = v.param_count();
        let actual = 1.0 - after as f32 / before as f32;
        assert!(outcome.removed_params > 0);
        assert!(
            (0.15..=0.5).contains(&actual),
            "requested ~30% reduction, got {actual}"
        );
    }

    #[test]
    fn max_ratio_caps_per_site_removal() {
        let (_, mut v) = nets();
        let sites = prunable_sites(&v);
        let scores: Vec<Vec<f32>> = sites
            .iter()
            .map(|&s| site_scores(&v, s, Criterion::L1Weight))
            .collect();
        global_prune_by_scores(&mut v, &sites, &scores, 0.9, 0.5);
        for site in prunable_sites(&v) {
            // Original sites had ≥8 channels; at most half may go.
            assert!(site.channels >= 4, "site kept {} channels", site.channels);
        }
    }

    #[test]
    fn soft_zero_preserves_shapes() {
        let (mut r, _) = nets();
        let mut rng = rng_from_seed(163);
        let sites = prunable_sites(&r);
        soft_zero_site(&mut r, sites[0], &[0, 1]);
        let x = Tensor::randn(&[1, 3, 8, 8], 1.0, &mut rng);
        assert_eq!(r.forward(&x, false).dims(), &[1, 10]);
        let scores = site_scores(&r, sites[0], Criterion::L2Weight);
        assert_eq!(scores[0], 0.0);
        assert_eq!(scores[1], 0.0);
        assert!(scores[2] > 0.0);
    }

    #[test]
    fn per_channel_cost_positive_everywhere() {
        let (r, v) = nets();
        for net in [&r, &v] {
            for site in prunable_sites(net) {
                assert!(per_channel_cost(net, site) > 0);
            }
        }
    }

    #[test]
    fn pruning_reduces_flops_too() {
        let (_, mut v) = nets();
        let before = v.flops();
        let sites = prunable_sites(&v);
        let keep: Vec<usize> = (0..sites[0].channels / 2).collect();
        prune_site(&mut v, sites[0], &keep);
        assert!(v.flops() < before);
    }
}
