//! Property-based tests of the structural-surgery invariants: any legal
//! sequence of pruning operations must leave the network runnable with
//! consistent parameter/FLOPs accounting.

use automc_models::surgery::{prunable_sites, prune_site, site_scores, Criterion};
use automc_models::{resnet, vgg, ConvNet};
use automc_tensor::{rng_from_seed, Tensor};
use proptest::prelude::*;

fn check_consistent(net: &mut ConvNet, classes: usize) {
    let mut rng = rng_from_seed(0xCAFE);
    let x = Tensor::randn(&[2, 3, 8, 8], 1.0, &mut rng);
    let y = net.forward(&x, false);
    assert_eq!(y.dims(), &[2, classes]);
    assert!(y.data().iter().all(|v| v.is_finite()));
    // Backward must run too (training a pruned net is the common path).
    let y = net.forward(&x, true);
    let g = net.backward(&Tensor::ones(y.dims()));
    assert_eq!(g.dims(), x.dims());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_prune_sequences_keep_resnet_consistent(
        seed in 0u64..1000,
        fractions in proptest::collection::vec(0.1f32..0.8, 1..4),
    ) {
        let mut rng = rng_from_seed(seed);
        let mut net = resnet(20, 4, 10, (3, 8, 8), &mut rng);
        let mut last_params = net.param_count();
        for f in fractions {
            for site in prunable_sites(&net) {
                let keep_n = ((site.channels as f32 * (1.0 - f)) as usize).max(2).min(site.channels);
                let keep: Vec<usize> = (0..keep_n).collect();
                if keep_n < site.channels {
                    prune_site(&mut net, site, &keep);
                }
            }
            let params = net.param_count();
            prop_assert!(params <= last_params);
            last_params = params;
        }
        check_consistent(&mut net, 10);
    }

    #[test]
    fn random_prune_sequences_keep_vgg_consistent(
        seed in 0u64..1000,
        fraction in 0.1f32..0.7,
    ) {
        let mut rng = rng_from_seed(seed);
        let mut net = vgg(13, 8, 10, (3, 8, 8), &mut rng);
        let before_flops = net.flops();
        for site in prunable_sites(&net) {
            let keep_n = ((site.channels as f32 * (1.0 - fraction)) as usize).max(2);
            if keep_n < site.channels {
                let keep: Vec<usize> = (0..keep_n).collect();
                prune_site(&mut net, site, &keep);
            }
        }
        prop_assert!(net.flops() < before_flops);
        check_consistent(&mut net, 10);
    }

    #[test]
    fn scores_are_finite_and_sized(seed in 0u64..500) {
        let mut rng = rng_from_seed(seed);
        let net = vgg(13, 8, 10, (3, 8, 8), &mut rng);
        for site in prunable_sites(&net) {
            for crit in [
                Criterion::L1Weight,
                Criterion::L2Weight,
                Criterion::L2BnParam,
                Criterion::K34,
                Criterion::SkewKur,
            ] {
                let s = site_scores(&net, site, crit);
                prop_assert_eq!(s.len(), site.channels);
                prop_assert!(s.iter().all(|v| v.is_finite()));
            }
        }
    }

    #[test]
    fn factorisation_then_prune_stays_consistent(
        seed in 0u64..500,
        rank in 1usize..6,
    ) {
        let mut rng = rng_from_seed(seed);
        let mut net = vgg(13, 8, 10, (3, 8, 8), &mut rng);
        // Factor every eligible conv, then prune every site.
        net.for_each_cbr_mut(|_, cbr| {
            cbr.factorize(rank, None);
        });
        for site in prunable_sites(&net) {
            let keep: Vec<usize> = (0..(site.channels / 2).max(2)).collect();
            if keep.len() < site.channels {
                prune_site(&mut net, site, &keep);
            }
        }
        check_consistent(&mut net, 10);
    }
}
