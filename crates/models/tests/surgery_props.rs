//! Randomised tests of the structural-surgery invariants: any legal
//! sequence of pruning operations must leave the network runnable with
//! consistent parameter/FLOPs accounting. Seeded loops; each case is
//! reproducible from its printed seed.

use automc_models::surgery::{prunable_sites, prune_site, site_scores, Criterion};
use automc_models::{resnet, vgg, ConvNet};
use automc_tensor::{rng_from_seed, Tensor};
use rand::Rng as _;

fn check_consistent(net: &mut ConvNet, classes: usize) {
    let mut rng = rng_from_seed(0xCAFE);
    let x = Tensor::randn(&[2, 3, 8, 8], 1.0, &mut rng);
    let y = net.forward(&x, false);
    assert_eq!(y.dims(), &[2, classes]);
    assert!(y.data().iter().all(|v| v.is_finite()));
    // Backward must run too (training a pruned net is the common path).
    let y = net.forward(&x, true);
    let g = net.backward(&Tensor::ones(y.dims()));
    assert_eq!(g.dims(), x.dims());
}

#[test]
fn random_prune_sequences_keep_resnet_consistent() {
    for case in 0..24u64 {
        let mut gen = rng_from_seed(0x21_000 + case);
        let seed = gen.gen_range(0u64..1000);
        let rounds = gen.gen_range(1usize..4);
        let fractions: Vec<f32> =
            (0..rounds).map(|_| gen.gen_range(0.1f32..0.8)).collect();
        let mut rng = rng_from_seed(seed);
        let mut net = resnet(20, 4, 10, (3, 8, 8), &mut rng);
        let mut last_params = net.param_count();
        for f in fractions {
            for site in prunable_sites(&net) {
                let keep_n =
                    ((site.channels as f32 * (1.0 - f)) as usize).max(2).min(site.channels);
                let keep: Vec<usize> = (0..keep_n).collect();
                if keep_n < site.channels {
                    prune_site(&mut net, site, &keep);
                }
            }
            let params = net.param_count();
            assert!(params <= last_params, "case {case}: params grew");
            last_params = params;
        }
        check_consistent(&mut net, 10);
    }
}

#[test]
fn random_prune_sequences_keep_vgg_consistent() {
    for case in 0..24u64 {
        let mut gen = rng_from_seed(0x22_000 + case);
        let seed = gen.gen_range(0u64..1000);
        let fraction = gen.gen_range(0.1f32..0.7);
        let mut rng = rng_from_seed(seed);
        let mut net = vgg(13, 8, 10, (3, 8, 8), &mut rng);
        let before_flops = net.flops();
        for site in prunable_sites(&net) {
            let keep_n = ((site.channels as f32 * (1.0 - fraction)) as usize).max(2);
            if keep_n < site.channels {
                let keep: Vec<usize> = (0..keep_n).collect();
                prune_site(&mut net, site, &keep);
            }
        }
        assert!(net.flops() < before_flops, "case {case}: FLOPs did not drop");
        check_consistent(&mut net, 10);
    }
}

#[test]
fn scores_are_finite_and_sized() {
    for case in 0..8u64 {
        let mut rng = rng_from_seed(0x23_000 + case);
        let net = vgg(13, 8, 10, (3, 8, 8), &mut rng);
        for site in prunable_sites(&net) {
            for crit in [
                Criterion::L1Weight,
                Criterion::L2Weight,
                Criterion::L2BnParam,
                Criterion::K34,
                Criterion::SkewKur,
            ] {
                let s = site_scores(&net, site, crit);
                assert_eq!(s.len(), site.channels, "case {case}");
                assert!(s.iter().all(|v| v.is_finite()), "case {case}");
            }
        }
    }
}

#[test]
fn factorisation_then_prune_stays_consistent() {
    for case in 0..8u64 {
        let mut gen = rng_from_seed(0x24_000 + case);
        let seed = gen.gen_range(0u64..500);
        let rank = gen.gen_range(1usize..6);
        let mut rng = rng_from_seed(seed);
        let mut net = vgg(13, 8, 10, (3, 8, 8), &mut rng);
        // Factor every eligible conv, then prune every site.
        net.for_each_cbr_mut(|_, cbr| {
            cbr.factorize(rank, None);
        });
        for site in prunable_sites(&net) {
            let keep: Vec<usize> = (0..(site.channels / 2).max(2)).collect();
            if keep.len() < site.channels {
                prune_site(&mut net, site, &keep);
            }
        }
        check_consistent(&mut net, 10);
    }
}
