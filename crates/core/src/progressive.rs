//! Algorithm 2 — AutoMC's progressive search.
//!
//! The search space is explored *one strategy at a time*: every evaluated
//! scheme keeps its compressed model snapshot, each round the evaluator
//! `F_mo` scores all unexplored one-step extensions of a sampled set of
//! evaluated schemes (Eq. 4), the predicted-Pareto-optimal extensions are
//! executed for real (costing a *single* strategy application thanks to
//! the cached prefix), and `F_mo` is retrained on the observed deltas
//! (Eq. 5). Newly evaluated schemes join the history and expand the
//! frontier for the next round.

use crate::context::SearchContext;
use crate::fmo::{Fmo, StepSample};
use crate::history::{EvalRecord, EvalStatus, SearchHistory};
use crate::journal::{self, JournalOptions, NodeSnapshot, SearchJournal};
use crate::pareto;
use automc_compress::{
    execute_scheme_checked, EvalCost, EvalOutcome, Metrics, Scheme, StrategyId,
};
use automc_models::serialize;
use automc_models::ConvNet;
use automc_tensor::fault;
use automc_tensor::Rng;
use rand::seq::SliceRandom;
use std::collections::HashSet;

/// Knobs of the progressive search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoMcConfig {
    /// Schemes sampled from the history per round (`H_sub`).
    pub sample_schemes: usize,
    /// Maximum real evaluations per round (cap on `|ParetoO|`).
    pub evals_per_round: usize,
    /// Candidates scored per sampled scheme (0 = the whole space).
    pub candidate_sample: usize,
    /// `F_mo` training epochs per round.
    pub fmo_train_epochs: usize,
}

impl Default for AutoMcConfig {
    fn default() -> Self {
        AutoMcConfig {
            sample_schemes: 6,
            evals_per_round: 4,
            candidate_sample: 512,
            fmo_train_epochs: 3,
        }
    }
}

/// An evaluated scheme kept alive for extension.
struct Node {
    scheme: Scheme,
    model: ConvNet,
    metrics: Metrics,
    /// Cumulative execution cost of the scheme from the base model;
    /// one-step extensions are charged their *marginal* cost over this.
    cost: EvalCost,
    explored: HashSet<StrategyId>,
}

/// Hash of everything that shapes a run: the problem instance, the search
/// configuration, the strategy embeddings, and the RNG's starting state.
/// Journals carry this so a resumed run can only pick up state produced
/// by an identical run.
fn run_fingerprint(
    ctx: &SearchContext<'_>,
    embeddings: &[Vec<f32>],
    cfg: &AutoMcConfig,
    rng_state: [u64; 4],
) -> u64 {
    let mut buf: Vec<u8> = Vec::new();
    buf.extend_from_slice(b"AutoMC-progressive-v3");
    for w in [
        ctx.space.len() as u64,
        ctx.budget.units,
        ctx.max_len as u64,
        ctx.gamma.to_bits() as u64,
        ctx.base_metrics.params as u64,
        ctx.base_metrics.flops,
        ctx.base_metrics.acc.to_bits() as u64,
        cfg.sample_schemes as u64,
        cfg.evals_per_round as u64,
        cfg.candidate_sample as u64,
        cfg.fmo_train_epochs as u64,
    ] {
        buf.extend_from_slice(&w.to_le_bytes());
    }
    for w in rng_state {
        buf.extend_from_slice(&w.to_le_bytes());
    }
    for row in embeddings {
        buf.extend_from_slice(&(row.len() as u64).to_le_bytes());
        for &v in row {
            buf.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }
    journal::fnv1a64(&buf)
}

/// Decode a journal back into live search state. `None` (= start fresh)
/// if any node model fails to deserialise.
fn decode_nodes(snapshots: Vec<NodeSnapshot>) -> Option<Vec<Node>> {
    let mut nodes = Vec::with_capacity(snapshots.len());
    for snap in snapshots {
        let model = serialize::model_from_bytes(&snap.model).ok()?;
        nodes.push(Node {
            scheme: snap.scheme,
            model,
            metrics: snap.metrics,
            cost: snap.cost,
            explored: snap.explored.into_iter().collect(),
        });
    }
    Some(nodes)
}

fn snapshot_run(
    fingerprint: u64,
    round: u64,
    spent: u64,
    rng: &Rng,
    history: &SearchHistory,
    fmo: &Fmo,
    nodes: &[Node],
) -> SearchJournal {
    SearchJournal {
        fingerprint,
        round,
        spent,
        rng: rng.state(),
        history: history.clone(),
        state: fmo.state_to_bytes(),
        fault_counters: fault::counters(),
        nodes: nodes
            .iter()
            .map(|n| {
                let mut explored: Vec<StrategyId> = n.explored.iter().copied().collect();
                explored.sort_unstable();
                NodeSnapshot {
                    scheme: n.scheme.clone(),
                    metrics: n.metrics,
                    cost: n.cost,
                    explored,
                    model: serialize::model_to_bytes(&n.model),
                }
            })
            .collect(),
    }
}

/// Run AutoMC's progressive search until the budget is exhausted.
///
/// `embeddings` are the Algorithm 1 strategy embeddings (ablations pass
/// differently-learned ones). Returns the full evaluation history; the
/// Pareto-optimal schemes with `PR ≥ γ` are the paper's final output
/// (`SearchHistory::pareto_indices`).
///
/// Thin wrapper over [`progressive_search_journaled`] with journaling
/// disabled.
pub fn progressive_search(
    ctx: &SearchContext<'_>,
    embeddings: Vec<Vec<f32>>,
    cfg: &AutoMcConfig,
    rng: &mut Rng,
) -> SearchHistory {
    progressive_search_journaled(ctx, embeddings, cfg, rng, &JournalOptions::default())
}

/// [`progressive_search`] with supervised candidate evaluations and a
/// crash-safe round journal.
///
/// Every candidate evaluation goes through the supervised
/// [`execute_scheme_checked`] executor: a panicking, diverging, or
/// timed-out evaluation is recorded in the history as an infeasible
/// [`EvalStatus`] failure (still charged at least one evaluation's
/// budget, so failures cannot stall the search) and the round continues
/// with the surviving candidates.
///
/// With `opts.path` set, the complete resumable state is journaled after
/// every round with atomic writes; with `opts.resume`, a valid journal is
/// restored and the run continues *bitwise identically* to one that was
/// never interrupted. Fresh runs (no journal on disk) are also bitwise
/// identical to un-journaled runs. The journal is deleted on normal
/// completion.
pub fn progressive_search_journaled(
    ctx: &SearchContext<'_>,
    embeddings: Vec<Vec<f32>>,
    cfg: &AutoMcConfig,
    rng: &mut Rng,
    opts: &JournalOptions,
) -> SearchHistory {
    assert_eq!(embeddings.len(), ctx.space.len(), "one embedding per strategy");
    let fingerprint = run_fingerprint(ctx, &embeddings, cfg, rng.state());
    let loaded = if opts.resume {
        opts.path.as_deref().and_then(|p| journal::load(p, fingerprint))
    } else {
        None
    };

    // Construct the evaluator unconditionally so a fresh (or
    // failed-restore) run consumes exactly the same RNG draws as an
    // un-journaled one.
    let pre_fmo_rng = rng.state();
    let mut fmo = Fmo::new(embeddings.clone(), rng);
    let mut history = SearchHistory::new("AutoMC");
    let mut nodes: Vec<Node> = vec![Node {
        scheme: Vec::new(),
        model: ctx.base_model.clone_net(),
        metrics: ctx.base_metrics,
        cost: EvalCost::default(),
        explored: HashSet::new(),
    }];
    let mut spent = 0u64;
    let mut round = 0u64;
    // Persistent-failure policy: a journal write that still fails after
    // bounded retries disables journaling for the rest of the run, rather
    // than leaving a stale checkpoint on disk that a resume would trust.
    let mut journal_to = opts.path.as_deref();

    if let Some(j) = loaded {
        let restored = decode_nodes(j.nodes).and_then(|decoded| {
            // `restore_state` may leave the evaluator partially
            // overwritten on failure; the fallback below rebuilds it.
            fmo.restore_state(&j.state).map(|()| decoded)
        });
        match restored {
            Some(decoded) => {
                history = j.history;
                nodes = decoded;
                spent = j.spent;
                round = j.round;
                *rng = Rng::from_state(j.rng);
                fault::restore_counters(&j.fault_counters);
                eprintln!(
                    "[journal] resumed AutoMC search at round {round} \
                     ({spent}/{} units spent)",
                    ctx.budget.units
                );
            }
            None => {
                eprintln!(
                    "warning: journal passed validation but did not decode; \
                     starting fresh"
                );
                *rng = Rng::from_state(pre_fmo_rng);
                fmo = Fmo::new(embeddings, rng);
            }
        }
    }

    let memo_start = automc_compress::memo::stats();
    while spent < ctx.budget.units {
        // ---- Sample H_sub: Pareto-front nodes plus random extras. ------
        let extendable: Vec<usize> = (0..nodes.len())
            .filter(|&i| ctx.can_extend(nodes[i].scheme.len()))
            .filter(|&i| nodes[i].explored.len() < ctx.space.len())
            .collect();
        if extendable.is_empty() {
            break;
        }
        let points: Vec<(f32, f32)> = extendable
            .iter()
            .map(|&i| {
                let m = &nodes[i].metrics;
                (m.acc, -(m.params as f32))
            })
            .collect();
        let front = pareto::pareto_front(&points);
        let mut picked: Vec<usize> = front.iter().map(|&k| extendable[k]).collect();
        picked.truncate(cfg.sample_schemes);
        if picked.len() < cfg.sample_schemes {
            let mut rest: Vec<usize> = extendable
                .iter()
                .copied()
                .filter(|i| !picked.contains(i))
                .collect();
            rest.shuffle(rng);
            picked.extend(rest.into_iter().take(cfg.sample_schemes - picked.len()));
        }

        // ---- Score one-step extensions with F_mo (Eq. 4). --------------
        // Candidate tuples: (node index, strategy, ACC_pred, PAR_pred).
        let mut tuples: Vec<(usize, StrategyId, f32, f32)> = Vec::new();
        for &ni in &picked {
            let node_state = [
                nodes[ni].metrics.acc,
                nodes[ni].metrics.params as f32 / ctx.base_metrics.params.max(1) as f32,
            ];
            let mut cands: Vec<StrategyId> = (0..ctx.space.len())
                .filter(|s| !nodes[ni].explored.contains(s))
                .collect();
            if cfg.candidate_sample > 0 && cands.len() > cfg.candidate_sample {
                cands.shuffle(rng);
                cands.truncate(cfg.candidate_sample);
            }
            let preds = fmo.predict_batch(&nodes[ni].scheme, node_state, &cands);
            for (c, (ar_hat, pr_hat)) in cands.into_iter().zip(preds) {
                let acc_pred = nodes[ni].metrics.acc * (1.0 + ar_hat);
                let par_pred = nodes[ni].metrics.params as f32 * (1.0 - pr_hat);
                tuples.push((ni, c, acc_pred, par_pred));
            }
        }
        if tuples.is_empty() {
            break;
        }

        // ---- ParetoO: maximise ACC, minimise PAR. -----------------------
        let objective: Vec<(f32, f32)> =
            tuples.iter().map(|t| (t.2, -t.3)).collect();
        let mut chosen = pareto::pareto_front(&objective);
        chosen.shuffle(rng);
        chosen.truncate(cfg.evals_per_round);

        // ---- Evaluate the chosen extensions for real, supervised. ------
        // Each candidate re-executes its *full* scheme through the
        // supervised executor; the shared prefix cache serves the node's
        // already-evaluated prefix, so the extension costs a single
        // strategy application. A failed candidate becomes an infeasible
        // history record and the round carries on.
        for &ti in &chosen {
            if spent >= ctx.budget.units {
                break;
            }
            let (ni, cand, _, _) = tuples[ti];
            let prev_metrics = nodes[ni].metrics;
            nodes[ni].explored.insert(cand);
            let mut scheme = nodes[ni].scheme.clone();
            scheme.push(cand);

            journal::record_eval_intent(journal_to, fingerprint);
            let result = execute_scheme_checked(
                ctx.base_model,
                &ctx.base_metrics,
                &scheme,
                ctx.space,
                ctx.search_train,
                ctx.eval_set,
                &ctx.exec,
            );
            // Charge the *marginal* cost over the node's cached prefix,
            // floored at one evaluation pass so a candidate that fails
            // instantly still drains the budget.
            let marginal =
                result.cost().units().saturating_sub(nodes[ni].cost.units());
            spent += marginal.max((ctx.eval_set.len() as u64).max(1));
            let (model, outcome) = match result {
                EvalOutcome::Ok { model, outcome } => (model, outcome),
                EvalOutcome::Diverged { .. } => {
                    history.push_failure(scheme, EvalStatus::Diverged, spent);
                    continue;
                }
                EvalOutcome::Panicked { msg, .. } => {
                    history.push_failure(scheme, EvalStatus::Panicked(msg), spent);
                    continue;
                }
                EvalOutcome::TimedOut { .. } => {
                    history.push_failure(scheme, EvalStatus::TimedOut, spent);
                    continue;
                }
            };
            let metrics = outcome.metrics;

            // Observe the step for F_mo (Eq. 5 training data).
            fmo.observe(StepSample {
                seq: nodes[ni].scheme.clone(),
                cand,
                state: [
                    prev_metrics.acc,
                    prev_metrics.params as f32 / ctx.base_metrics.params.max(1) as f32,
                ],
                ar_step: metrics.ar(&prev_metrics),
                pr_step: metrics.pr(&prev_metrics),
            });
            // Record against the base model.
            history.records.push(EvalRecord {
                scheme: scheme.clone(),
                pr: outcome.pr,
                fr: outcome.fr,
                ar: outcome.ar,
                acc: metrics.acc,
                params: metrics.params,
                flops: metrics.flops,
                cost_so_far: spent,
                status: EvalStatus::Ok,
            });
            nodes.push(Node {
                scheme,
                model,
                metrics,
                cost: outcome.cost,
                explored: HashSet::new(),
            });
        }

        // ---- Retrain F_mo on everything observed so far (Eq. 5). -------
        fmo.train(cfg.fmo_train_epochs, rng);
        round += 1;

        // ---- Journal the completed round (atomic write + retry). -------
        if let Some(path) = journal_to {
            let snap = snapshot_run(fingerprint, round, spent, rng, &history, &fmo, &nodes);
            if let Err(e) = journal::save(path, &snap) {
                eprintln!(
                    "warning: journal {} keeps failing ({e}); journaling \
                     disabled for the rest of this run",
                    path.display()
                );
                journal::discard(path);
                journal_to = None;
            }
        }
        if opts.abort_after_rounds.is_some_and(|k| round >= k as u64) {
            // Simulated crash for the resume-determinism tests: the
            // journal stays on disk, the partial history is returned.
            return history;
        }
        if crate::progress::report_round(opts, &history, ctx, round, spent, &memo_start) {
            // Cooperative cancel: like the crash hook above, the journal
            // stays on disk so a resubmitted run resumes at this round.
            return history;
        }
    }
    if let Some(path) = opts.path.as_deref() {
        journal::discard(path);
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{SearchBudget, SearchContext};
    use automc_compress::{ExecConfig, StrategySpace};
    use automc_data::{DatasetSpec, SyntheticKind};
    use automc_models::resnet;
    use automc_models::train::{train, Auxiliary, TrainConfig};
    use automc_tensor::rng_from_seed;

    #[test]
    fn progressive_search_finds_feasible_schemes() {
        let mut rng = rng_from_seed(310);
        let (train_set, eval_set) = DatasetSpec {
            train: 160,
            test: 80,
            noise: 0.25,
            ..DatasetSpec::new(SyntheticKind::Cifar10Like)
        }
        .generate();
        let mut base = resnet(20, 4, 10, (3, 8, 8), &mut rng);
        train(
            &mut base,
            &train_set,
            &TrainConfig { epochs: 4.0, ..Default::default() },
            Auxiliary::None,
            &mut rng,
        );
        let base_metrics = Metrics::measure(&mut base, &eval_set);
        let space = StrategySpace::full();
        let ctx = SearchContext {
            space: &space,
            base_model: &base,
            base_metrics,
            search_train: &train_set,
            eval_set: &eval_set,
            exec: ExecConfig { pretrain_epochs: 4.0, ..Default::default() },
            max_len: 3,
            gamma: 0.2,
            budget: SearchBudget::new(8_000),
        };
        // Cheap random embeddings: the search must function even with
        // uninformative priors (the ablations rely on this).
        let emb: Vec<Vec<f32>> = (0..space.len())
            .map(|i| vec![(i % 97) as f32 / 97.0, (i % 13) as f32 / 13.0, 0.5, 0.1])
            .collect();
        let cfg = AutoMcConfig { candidate_sample: 64, ..Default::default() };
        let history = progressive_search(&ctx, emb, &cfg, &mut rng);
        assert!(!history.records.is_empty(), "search evaluated nothing");
        assert!(history.total_cost() >= ctx.budget.units.min(1));
        // At least one scheme should achieve meaningful reduction.
        assert!(
            history.records.iter().any(|r| r.pr > 0.1),
            "no scheme reduced parameters"
        );
        // Scheme lengths respect L.
        assert!(history.records.iter().all(|r| r.scheme.len() <= 3));
        // Costs are monotone.
        assert!(history
            .records
            .windows(2)
            .all(|w| w[1].cost_so_far >= w[0].cost_so_far));
    }
}
