//! Transfer study (paper §4.4, Table 3): re-execute a searched compression
//! scheme on a *different* model of the same family.

use automc_compress::{execute_scheme, ExecConfig, Metrics, Scheme, SchemeOutcome, StrategySpace};
use automc_data::ImageSet;
use automc_models::ConvNet;

/// Apply a searched scheme to a new (pre-trained) target model and report
/// its metrics on that model. Randomness derives from `exec.eval_seed`
/// and the scheme itself, and the execution shares the cross-search
/// prefix-model cache — transferring several schemes with a common prefix
/// to the same target retrains only the differing suffixes.
#[allow(clippy::too_many_arguments)]
pub fn transfer_scheme(
    scheme: &Scheme,
    target_model: &ConvNet,
    target_base: &Metrics,
    space: &StrategySpace,
    train_set: &ImageSet,
    eval_set: &ImageSet,
    exec: &ExecConfig,
) -> SchemeOutcome {
    let (_, outcome) = execute_scheme(
        target_model,
        target_base,
        scheme,
        space,
        train_set,
        eval_set,
        exec,
    );
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use automc_compress::StrategySpace;
    use automc_data::{DatasetSpec, SyntheticKind};
    use automc_models::resnet;
    use automc_models::train::{train, Auxiliary, TrainConfig};
    use automc_tensor::rng_from_seed;

    #[test]
    fn scheme_transfers_across_depths() {
        let mut rng = rng_from_seed(350);
        let (train_set, eval_set) = DatasetSpec {
            train: 120,
            test: 60,
            ..DatasetSpec::new(SyntheticKind::Cifar10Like)
        }
        .generate();
        let space = StrategySpace::full();
        // Scheme searched on a ResNet-20…
        let scheme: Scheme = vec![space.iter().find(|(_, s)| s.ratio() > 0.15).unwrap().0];
        // …transfers to a ResNet-56.
        let mut target = resnet(56, 4, 10, (3, 8, 8), &mut rng);
        train(
            &mut target,
            &train_set,
            &TrainConfig { epochs: 2.0, ..Default::default() },
            Auxiliary::None,
            &mut rng,
        );
        let base = Metrics::measure(&mut target, &eval_set);
        let exec = ExecConfig { pretrain_epochs: 2.0, ..Default::default() };
        let outcome =
            transfer_scheme(&scheme, &target, &base, &space, &train_set, &eval_set, &exec);
        assert!(outcome.pr > 0.05, "transferred scheme should still prune: {}", outcome.pr);
        assert!(outcome.metrics.acc > 0.0);
    }
}
