//! Crash-safe round journal shared by all four search strategies.
//!
//! At the end of every search round the full resumable state — the
//! evaluation history, the algorithm's opaque learner state (`F_mo` for
//! AutoMC, the REINFORCE controller for RL, the population for the EA),
//! every extension node's model reference, the budget spent, the RNG
//! state, and the fault-injection counters — is written to one journal
//! file. Writes are atomic (temp file + rename) so a crash mid-write
//! leaves the previous round's journal intact, and the payload is
//! checksummed (FNV-1a 64) so torn or corrupted files are detected and
//! treated as "no journal" rather than trusted.
//!
//! Node models are stored as *content-addressed blobs* in a sibling
//! `<journal>.blobs/` directory, keyed by the FNV-1a 64 hash of their
//! bytes: the journal only references hashes, a blob is written once when
//! its node first appears, and unreferenced blobs are garbage-collected
//! after each successful journal write — so the per-round write cost is
//! O(new nodes), not O(frontier). Blob contents are re-hashed on load; a
//! missing or corrupt blob invalidates the journal.
//!
//! A journal is keyed by a *run fingerprint* hashed from everything that
//! shapes the run (problem instance, configuration, embeddings, seed); a
//! journal whose fingerprint does not match the requesting run is ignored
//! with a warning. Restoring a journal reproduces the interrupted run
//! bitwise: resumed and uninterrupted searches emit identical histories.
//!
//! Persistent write failures follow a retry-then-disable policy: each
//! write is retried with backoff ([`write_atomic_retry`]), and a save that
//! still fails is reported to the caller, which disables journaling for
//! the rest of the run rather than silently continuing to trust a stale
//! checkpoint.

use crate::history::SearchHistory;
use automc_compress::{EvalCost, Metrics, Scheme, StrategyId};
use automc_json::{field, obj, ToJson, Value};
use automc_tensor::{fault, Rng};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

// The durable-write primitives (FNV-1a checksum, atomic fsync'd writes,
// bounded retry) now live in `automc_compress::store` — the crash-safe
// blob store and this journal share one write discipline, and the store
// sits lower in the crate graph. Re-exported here so every existing
// `journal::fnv1a64` / `journal::write_atomic*` caller keeps working.
pub use automc_compress::store::{fnv1a64, write_atomic, write_atomic_retry};

/// Hash a run fingerprint from a version tag, the run-shaping words
/// (problem instance + algorithm configuration), and the RNG's starting
/// state. Bump the tag whenever an algorithm's journal format or RNG
/// draw order changes — an old journal must not resume a new binary.
pub fn fingerprint(tag: &str, words: &[u64], rng_state: [u64; 4]) -> u64 {
    let mut buf: Vec<u8> = Vec::with_capacity(tag.len() + (words.len() + 4) * 8);
    buf.extend_from_slice(tag.as_bytes());
    for &w in words {
        buf.extend_from_slice(&w.to_le_bytes());
    }
    for w in rng_state {
        buf.extend_from_slice(&w.to_le_bytes());
    }
    fnv1a64(&buf)
}

/// Lowercase hex encoding of a byte string.
pub fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// Decode [`to_hex`] output; `None` on odd length or non-hex characters.
pub fn from_hex(s: &str) -> Option<Vec<u8>> {
    if s.len() % 2 != 0 || !s.is_ascii() {
        return None;
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).ok())
        .collect()
}

// ------------------------------------------------------------------------
// Checksummed envelopes
// ------------------------------------------------------------------------

/// Version of the checksummed-envelope schema. Bump it whenever the
/// envelope or payload format changes incompatibly; readers treat a
/// different version as "from another era, start fresh" rather than as
/// corruption. Envelopes written before the field existed read as v1.
pub const SCHEMA_VERSION: u64 = 2;

/// Wrap `payload` in a `{schema, checksum, payload}` envelope and write
/// it atomically with retry. Shared by the search journal, pre-eval
/// intent records, and the harness's grid checkpoints.
pub fn save_checksummed(path: &Path, payload: &str) -> io::Result<()> {
    let envelope = obj(vec![
        ("schema", SCHEMA_VERSION.to_json()),
        (
            "checksum",
            Value::Str(format!("{:016x}", fnv1a64(payload.as_bytes()))),
        ),
        ("payload", Value::Str(payload.to_string())),
    ]);
    write_atomic_retry(path, envelope.to_string_pretty().as_bytes())
}

/// Read a [`save_checksummed`] envelope back, validating the schema
/// version and the checksum. `None` on a missing file (silent — the
/// normal fresh-run case), on a schema from a different era (logged as
/// such), or on corruption (logged).
pub fn load_checksummed(path: &Path) -> Option<String> {
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return None,
        Err(e) => {
            eprintln!("warning: cannot read journal {}: {e}", path.display());
            return None;
        }
    };
    let invalid = || {
        eprintln!(
            "warning: journal {} is corrupt; starting fresh",
            path.display()
        );
    };
    let Ok(envelope) = automc_json::parse(&text) else {
        invalid();
        return None;
    };
    // Schema drift is not corruption: say so and start fresh.
    if let Some(schema) = envelope.get("schema").and_then(|s| s.as_f64()) {
        let schema = schema as u64;
        if schema != SCHEMA_VERSION {
            eprintln!(
                "warning: journal {} uses schema v{schema} \
                 (this build writes v{SCHEMA_VERSION}); starting fresh",
                path.display()
            );
            return None;
        }
    }
    let (Some(checksum), Some(payload)) = (
        envelope
            .get("checksum")
            .and_then(|c| c.as_str())
            .and_then(|c| u64::from_str_radix(c, 16).ok()),
        envelope.get("payload").and_then(|p| p.as_str()),
    ) else {
        invalid();
        return None;
    };
    if fnv1a64(payload.as_bytes()) != checksum {
        invalid();
        return None;
    }
    Some(payload.to_string())
}

// ------------------------------------------------------------------------
// Pre-eval intent records
// ------------------------------------------------------------------------

/// The sibling file holding a journal's pre-eval intent record.
pub fn intent_path(journal: &Path) -> PathBuf {
    let mut p = journal.as_os_str().to_owned();
    p.push(".intent");
    PathBuf::from(p)
}

/// Journal the *intent* to begin one supervised evaluation, before its
/// `eval` fault tick fires.
///
/// An `exit@eval:N` fault kills the process at the tick itself, so the
/// round journal — written only at round boundaries — still holds the
/// pre-eval counters. Restoring those re-arms the same ordinal and the
/// resumed run is killed again, forever. The intent record captures the
/// counters *as they will read after the tick* ("eval" bumped by one);
/// [`load`] max-merges it into the journal's counters so a fault that
/// already fired never re-arms.
///
/// Only written while a fault plan is active (no per-eval I/O otherwise)
/// and journaling is enabled; write errors are logged and ignored — an
/// intent record is an optimisation of resume, not required state.
pub fn record_eval_intent(journal_to: Option<&Path>, fingerprint: u64) {
    if !fault::plan_active() {
        return;
    }
    let Some(path) = journal_to else { return };
    let mut counters = fault::counters();
    match counters.iter_mut().find(|(site, _)| site == "eval") {
        Some((_, n)) => *n += 1,
        None => counters.push(("eval".to_string(), 1)),
    }
    counters.sort();
    let payload = obj(vec![
        ("fingerprint", Value::Str(format!("{fingerprint:016x}"))),
        ("fault_counters", counters.to_json()),
    ])
    .to_string_pretty();
    let ip = intent_path(path);
    if let Err(e) = save_checksummed(&ip, &payload) {
        eprintln!("warning: cannot write intent record {}: {e}", ip.display());
    }
}

/// Max-merge a matching intent record into restored fault counters.
///
/// Called automatically by [`load`]; checkpoint mechanisms that bypass
/// [`load`] (the bench method-grid) call it directly after restoring
/// their own counters.
pub fn merge_eval_intent(path: &Path, fingerprint: u64, counters: &mut Vec<(String, u64)>) {
    let ip = intent_path(path);
    let Some(payload) = load_checksummed(&ip) else { return };
    let Ok(v) = automc_json::parse(&payload) else { return };
    let Some(fp) = v
        .get("fingerprint")
        .and_then(|f| f.as_str())
        .and_then(|f| u64::from_str_radix(f, 16).ok())
    else {
        return;
    };
    if fp != fingerprint {
        return;
    }
    let Some(intent) = field::<Vec<(String, u64)>>(&v, "fault_counters") else {
        return;
    };
    for (site, n) in intent {
        match counters.iter_mut().find(|(s, _)| *s == site) {
            Some((_, cur)) => *cur = (*cur).max(n),
            None => counters.push((site, n)),
        }
    }
    counters.sort();
    eprintln!(
        "[journal] merged pre-eval intent record for {}",
        path.display()
    );
}

// ------------------------------------------------------------------------
// Worker heartbeats
// ------------------------------------------------------------------------

/// One worker heartbeat, written (checksummed + atomic — the same
/// envelope discipline as the journal itself) by a sharded worker process
/// at a fixed cadence and read by its supervisor. The supervisor tracks
/// `seq` changes against a wall-clock deadline to distinguish a hung
/// worker from a slow one; `eval` and `tasks_done` report *where* the
/// worker is, for logs and diagnosis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Heartbeat {
    /// Worker shard index.
    pub worker: u64,
    /// OS process id of the emitting worker.
    pub pid: u64,
    /// Monotonic beat counter; a supervisor treats a worker whose `seq`
    /// has not advanced within its deadline as hung.
    pub seq: u64,
    /// Process-wide supervised-evaluation ordinal at emit time
    /// (`automc_tensor::fault::eval_ordinal`).
    pub eval: u64,
    /// Shard tasks completed so far.
    pub tasks_done: u64,
    /// True on the final beat, written after the last task's results are
    /// persisted.
    pub done: bool,
}

impl Heartbeat {
    fn to_json(&self) -> Value {
        obj(vec![
            ("worker", self.worker.to_json()),
            ("pid", self.pid.to_json()),
            ("seq", self.seq.to_json()),
            ("eval", self.eval.to_json()),
            ("tasks_done", self.tasks_done.to_json()),
            ("done", self.done.to_json()),
        ])
    }

    fn from_json(v: &Value) -> Option<Self> {
        Some(Heartbeat {
            worker: field(v, "worker")?,
            pid: field(v, "pid")?,
            seq: field(v, "seq")?,
            eval: field(v, "eval")?,
            tasks_done: field(v, "tasks_done")?,
            done: field(v, "done")?,
        })
    }

    /// Write the heartbeat to `path` (checksummed envelope, atomic,
    /// durable).
    pub fn save(&self, path: &Path) -> io::Result<()> {
        save_checksummed(path, &self.to_json().to_string_pretty())
    }

    /// Read a heartbeat back; `None` on a missing, torn, or corrupt file
    /// (the supervisor treats all three as "no beat yet").
    pub fn load(path: &Path) -> Option<Heartbeat> {
        let payload = load_checksummed(path)?;
        automc_json::parse(&payload).ok().as_ref().and_then(Self::from_json)
    }
}

// ------------------------------------------------------------------------
// Content-addressed model blobs
// ------------------------------------------------------------------------

/// The sibling directory holding a journal's content-addressed model
/// blobs.
pub fn blob_dir(journal: &Path) -> PathBuf {
    let mut dir = journal.as_os_str().to_owned();
    dir.push(".blobs");
    PathBuf::from(dir)
}

fn blob_path(dir: &Path, hash: u64) -> PathBuf {
    dir.join(format!("{hash:016x}.bin"))
}

/// Write `bytes` as a blob under `dir` unless its content hash is already
/// present (content addressing makes re-writes pure overhead).
fn store_blob(dir: &Path, hash: u64, bytes: &[u8]) -> io::Result<()> {
    let path = blob_path(dir, hash);
    if path.exists() {
        return Ok(());
    }
    write_atomic_retry(&path, bytes)
}

/// Read a blob back and verify its content hash — a mismatch means disk
/// corruption and invalidates the journal that referenced it.
fn load_blob(dir: &Path, hash: u64) -> Option<Vec<u8>> {
    let path = blob_path(dir, hash);
    let bytes = match fs::read(&path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("warning: cannot read model blob {}: {e}", path.display());
            return None;
        }
    };
    if fnv1a64(&bytes) != hash {
        eprintln!("warning: model blob {} fails its content hash", path.display());
        return None;
    }
    Some(bytes)
}

/// Delete every blob in `dir` whose hash is not in `live` — called after
/// a successful journal write, so the old journal (already replaced) can
/// no longer reference the removed blobs. Errors are ignored: a stray
/// blob only wastes space.
fn collect_garbage(dir: &Path, live: &[u64]) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(stem) = name.to_str().and_then(|n| n.strip_suffix(".bin")) else {
            continue;
        };
        let Ok(hash) = u64::from_str_radix(stem, 16) else { continue };
        if !live.contains(&hash) {
            let _ = fs::remove_file(entry.path());
        }
    }
}

// ------------------------------------------------------------------------
// The journal itself
// ------------------------------------------------------------------------

/// Crash-safety knobs shared by all four search strategies. The default
/// is no journaling — identical to the pre-journal behaviour.
#[derive(Debug, Clone, Default)]
pub struct JournalOptions {
    /// Journal file written after every round (`None` = no journaling).
    pub path: Option<PathBuf>,
    /// Attempt to resume from an existing journal at `path` before
    /// starting. A missing, corrupt, or mismatched journal falls back to
    /// a fresh run.
    pub resume: bool,
    /// Test hook: return (as if the process died) once this many rounds
    /// have completed, leaving the journal on disk for a resumed run.
    pub abort_after_rounds: Option<usize>,
    /// Progress/cancel observer invoked after every round's journal write
    /// (see [`crate::progress`]). A cancelled search returns its partial
    /// history and keeps its journal, exactly like `abort_after_rounds`.
    pub hook: crate::progress::RoundHook,
}

impl JournalOptions {
    /// Journal to `path`, resuming if a valid journal is already there.
    pub fn resuming(path: PathBuf) -> Self {
        JournalOptions { path: Some(path), resume: true, ..Default::default() }
    }
}

/// Per-job journal directory: `base/jobs/<job_id>/`, created on first
/// use. The serve daemon keys each job's journals by a spec-derived job
/// id, so concurrent jobs never share a journal file while a resubmitted
/// job (same spec → same id, even across a server crash) lands on the
/// same directory and resumes for free.
pub fn job_dir(base: &Path, job_id: &str) -> PathBuf {
    let dir = base.join("jobs").join(job_id);
    if let Err(e) = fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create job journal dir {}: {e}", dir.display());
    }
    dir
}

/// One extension node of the progressive search, with its compressed model
/// serialised by `automc_models::serialize`.
#[derive(Debug, Clone)]
pub struct NodeSnapshot {
    /// The strategy sequence that produced this node.
    pub scheme: Scheme,
    /// Measured metrics of the node's model.
    pub metrics: Metrics,
    /// Cumulative evaluation cost of producing this node from the base
    /// model (used for marginal budget charging when the node is
    /// extended). Journals written before the field default to zero.
    pub cost: EvalCost,
    /// Strategies already tried as one-step extensions (sorted).
    pub explored: Vec<StrategyId>,
    /// `automc_models::serialize::model_to_bytes` of the node's model.
    pub model: Vec<u8>,
}

impl NodeSnapshot {
    /// JSON form with the model replaced by its content hash; the bytes
    /// themselves live in the blob store.
    fn to_json_ref(&self, hash: u64) -> Value {
        obj(vec![
            ("scheme", self.scheme.to_json()),
            ("acc", self.metrics.acc.to_json()),
            ("params", self.metrics.params.to_json()),
            ("flops", self.metrics.flops.to_json()),
            ("cost_trained", self.cost.trained_images.to_json()),
            ("cost_eval", self.cost.eval_images.to_json()),
            ("explored", self.explored.to_json()),
            ("model_blob", Value::Str(format!("{hash:016x}"))),
        ])
    }

    /// Decode a node, resolving its model either from the legacy inline
    /// hex field or from the blob store.
    fn from_json_with_blobs(v: &Value, blobs: &Path) -> Option<Self> {
        let model = if let Some(hex) = v.get("model").and_then(|m| m.as_str()) {
            // Legacy journal with the model inline.
            from_hex(hex)?
        } else {
            let hash =
                u64::from_str_radix(v.get("model_blob")?.as_str()?, 16).ok()?;
            load_blob(blobs, hash)?
        };
        Some(NodeSnapshot {
            scheme: field(v, "scheme")?,
            metrics: Metrics {
                acc: field(v, "acc")?,
                params: field(v, "params")?,
                flops: field(v, "flops")?,
            },
            cost: EvalCost {
                trained_images: field(v, "cost_trained").unwrap_or(0),
                eval_images: field(v, "cost_eval").unwrap_or(0),
            },
            explored: field(v, "explored")?,
            model,
        })
    }
}

/// The complete resumable state of one search run after a finished round.
/// Shared by all four searches: the baselines leave `nodes` empty and pack
/// their learner into `state` (the progressive search packs `F_mo` there).
#[derive(Debug, Clone)]
pub struct SearchJournal {
    /// Hash of everything that shapes the run; a mismatch means the
    /// journal belongs to a different run and must be ignored.
    pub fingerprint: u64,
    /// Number of completed rounds.
    pub round: u64,
    /// Budget units spent so far.
    pub spent: u64,
    /// xoshiro256** RNG state at the end of the round.
    pub rng: [u64; 4],
    /// Evaluation history so far.
    pub history: SearchHistory,
    /// Algorithm-opaque learner state (`Fmo::state_to_bytes` for AutoMC,
    /// controller weights for RL, the population for the EA, empty for
    /// random search).
    pub state: Vec<u8>,
    /// Every live extension node (progressive search only).
    pub nodes: Vec<NodeSnapshot>,
    /// Per-site fault-injection counters at the end of the round
    /// (`automc_tensor::fault::counters`), journaled so resume and
    /// `AUTOMC_FAULTS` compose: each planned fault fires exactly once
    /// across a kill/resume boundary. Empty outside fault-injection runs.
    pub fault_counters: Vec<(String, u64)>,
}

impl SearchJournal {
    fn to_json_with_hashes(&self, hashes: &[u64]) -> Value {
        let rng_hex = self
            .rng
            .iter()
            .map(|w| Value::Str(format!("{w:016x}")))
            .collect::<Vec<_>>();
        let nodes = self
            .nodes
            .iter()
            .zip(hashes)
            .map(|(n, &h)| n.to_json_ref(h))
            .collect::<Vec<_>>();
        obj(vec![
            ("fingerprint", Value::Str(format!("{:016x}", self.fingerprint))),
            ("round", self.round.to_json()),
            ("spent", self.spent.to_json()),
            ("rng", Value::Arr(rng_hex)),
            ("history", self.history.to_json()),
            ("state", Value::Str(to_hex(&self.state))),
            ("nodes", Value::Arr(nodes)),
            ("fault_counters", self.fault_counters.to_json()),
        ])
    }

    fn from_json_with_blobs(v: &Value, blobs: &Path) -> Option<Self> {
        let fingerprint =
            u64::from_str_radix(v.get("fingerprint")?.as_str()?, 16).ok()?;
        let Value::Arr(rng_words) = v.get("rng")? else { return None };
        if rng_words.len() != 4 {
            return None;
        }
        let mut rng = [0u64; 4];
        for (dst, w) in rng.iter_mut().zip(rng_words) {
            *dst = u64::from_str_radix(w.as_str()?, 16).ok()?;
        }
        // `state` replaced the AutoMC-specific `fmo` field when journaling
        // grew to the baselines; accept the old name.
        let state_hex = v
            .get("state")
            .or_else(|| v.get("fmo"))?
            .as_str()?;
        let Value::Arr(node_values) = v.get("nodes")? else { return None };
        let mut nodes = Vec::with_capacity(node_values.len());
        for nv in node_values {
            nodes.push(NodeSnapshot::from_json_with_blobs(nv, blobs)?);
        }
        Some(SearchJournal {
            fingerprint,
            round: field(v, "round")?,
            spent: field(v, "spent")?,
            rng,
            history: field(v, "history")?,
            state: from_hex(state_hex)?,
            nodes,
            fault_counters: field(v, "fault_counters").unwrap_or_default(),
        })
    }
}

/// Persist a journal atomically: node models go to the content-addressed
/// blob store first (new blobs only), then the checksummed journal
/// envelope is renamed into place, then blobs no longer referenced are
/// garbage-collected. A crash at any point leaves either the previous
/// journal (with all its blobs) or the new one intact.
pub fn save(path: &Path, journal: &SearchJournal) -> io::Result<()> {
    let hashes: Vec<u64> = journal.nodes.iter().map(|n| fnv1a64(&n.model)).collect();
    let blobs = blob_dir(path);
    if !journal.nodes.is_empty() {
        fs::create_dir_all(&blobs)?;
        for (node, &hash) in journal.nodes.iter().zip(&hashes) {
            store_blob(&blobs, hash, &node.model)?;
        }
    }
    let payload = journal.to_json_with_hashes(&hashes).to_string_pretty();
    save_checksummed(path, &payload)?;
    collect_garbage(&blobs, &hashes);
    Ok(())
}

/// Load a journal, validating the envelope checksum, the run fingerprint,
/// and every referenced blob's content hash. Any failure — missing file,
/// unparsable JSON, checksum mismatch, wrong fingerprint, missing or
/// corrupt blob — returns `None`; corruption and mismatches are reported
/// on stderr (a missing file is silent: that is the normal fresh-run
/// case).
pub fn load(path: &Path, fingerprint: u64) -> Option<SearchJournal> {
    let payload = load_checksummed(path)?;
    let invalid = || {
        eprintln!(
            "warning: journal {} is corrupt; starting fresh",
            path.display()
        );
    };
    let mut journal = match automc_json::parse(&payload)
        .ok()
        .and_then(|v| SearchJournal::from_json_with_blobs(&v, &blob_dir(path)))
    {
        Some(j) => j,
        None => {
            invalid();
            return None;
        }
    };
    if journal.fingerprint != fingerprint {
        eprintln!(
            "warning: journal {} belongs to a different run \
             (fingerprint {:016x}, expected {fingerprint:016x}); ignoring",
            path.display(),
            journal.fingerprint,
        );
        return None;
    }
    merge_eval_intent(path, fingerprint, &mut journal.fault_counters);
    Some(journal)
}

/// Journal one completed round of a baseline search (no extension nodes;
/// the learner packed into `state`), applying the retry-then-disable
/// policy: if the save still fails after [`write_atomic_retry`]'s
/// attempts, the stale journal is discarded and `journal_to` is cleared so
/// the run continues un-journaled — a later resume must never trust a
/// checkpoint older than the run that wrote it.
pub fn checkpoint_round(
    journal_to: &mut Option<&Path>,
    fingerprint: u64,
    round: u64,
    spent: u64,
    rng: &Rng,
    history: &SearchHistory,
    state: Vec<u8>,
) {
    let Some(path) = *journal_to else { return };
    let snap = SearchJournal {
        fingerprint,
        round,
        spent,
        rng: rng.state(),
        history: history.clone(),
        state,
        nodes: Vec::new(),
        fault_counters: fault::counters(),
    };
    if let Err(e) = save(path, &snap) {
        eprintln!(
            "warning: journal {} keeps failing ({e}); journaling disabled \
             for the rest of this run",
            path.display()
        );
        discard(path);
        *journal_to = None;
    }
}

/// Remove a journal and its blob store once the run has completed. Errors
/// (including the files already being gone) are ignored: a stale journal
/// is merely re-validated and discarded on the next run.
pub fn discard(path: &Path) {
    let _ = fs::remove_file(path);
    let _ = fs::remove_file(intent_path(path));
    let _ = fs::remove_dir_all(blob_dir(path));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::EvalStatus;
    use std::path::PathBuf;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "automc-journal-test-{}-{tag}.json",
            std::process::id()
        ))
    }

    fn sample_journal() -> SearchJournal {
        let mut history = SearchHistory::new("AutoMC");
        history.push_failure(vec![1, 2], EvalStatus::Diverged, 40);
        SearchJournal {
            fingerprint: 0xdead_beef_cafe_f00d,
            round: 3,
            spent: 1234,
            rng: [1, u64::MAX, 0x1234_5678_9abc_def0, 42],
            history,
            state: vec![0, 1, 2, 255, 128],
            nodes: vec![NodeSnapshot {
                scheme: vec![7],
                metrics: Metrics { acc: 0.875, params: 999, flops: 123_456 },
                cost: EvalCost { trained_images: 11, eval_images: 22 },
                explored: vec![0, 7, 12],
                model: vec![9, 8, 7],
            }],
            fault_counters: vec![("eval".into(), 5), ("train".into(), 17)],
        }
    }

    #[test]
    fn hex_roundtrip() {
        let bytes = vec![0u8, 1, 15, 16, 127, 128, 255];
        assert_eq!(from_hex(&to_hex(&bytes)).unwrap(), bytes);
        assert!(from_hex("abc").is_none(), "odd length");
        assert!(from_hex("zz").is_none(), "non-hex");
        assert_eq!(from_hex("").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn save_load_roundtrip() {
        let path = temp_path("roundtrip");
        let j = sample_journal();
        save(&path, &j).unwrap();
        let back = load(&path, j.fingerprint).expect("journal loads");
        assert_eq!(back.round, 3);
        assert_eq!(back.spent, 1234);
        assert_eq!(back.rng, j.rng);
        assert_eq!(back.state, j.state);
        assert_eq!(back.fault_counters, j.fault_counters);
        assert_eq!(back.history.records.len(), 1);
        assert_eq!(back.history.records[0].status, EvalStatus::Diverged);
        assert_eq!(back.nodes.len(), 1);
        assert_eq!(back.nodes[0].scheme, vec![7]);
        assert_eq!(back.nodes[0].metrics.acc.to_bits(), 0.875f32.to_bits());
        assert_eq!(
            back.nodes[0].cost,
            EvalCost { trained_images: 11, eval_images: 22 }
        );
        assert_eq!(back.nodes[0].explored, vec![0, 7, 12]);
        assert_eq!(back.nodes[0].model, vec![9, 8, 7]);
        discard(&path);
        assert!(load(&path, j.fingerprint).is_none(), "discard removes it");
        assert!(!blob_dir(&path).exists(), "discard removes the blob store");
    }

    #[test]
    fn corrupt_or_mismatched_journals_are_rejected() {
        let path = temp_path("corrupt");
        let j = sample_journal();
        save(&path, &j).unwrap();
        // Wrong fingerprint → ignored.
        assert!(load(&path, j.fingerprint ^ 1).is_none());
        // Flipped byte inside the payload → checksum mismatch.
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] = bytes[mid].wrapping_add(1);
        fs::write(&path, &bytes).unwrap();
        assert!(load(&path, j.fingerprint).is_none());
        // Truncation → unparsable.
        let good = {
            save(&path, &j).unwrap();
            fs::read(&path).unwrap()
        };
        fs::write(&path, &good[..good.len() / 2]).unwrap();
        assert!(load(&path, j.fingerprint).is_none());
        // Not JSON at all.
        fs::write(&path, b"hello").unwrap();
        assert!(load(&path, j.fingerprint).is_none());
        discard(&path);
    }

    #[test]
    fn blobs_are_content_addressed_and_garbage_collected() {
        let path = temp_path("blobs");
        let mut j = sample_journal();
        j.nodes.push(NodeSnapshot {
            scheme: vec![1, 2],
            metrics: Metrics { acc: 0.5, params: 10, flops: 20 },
            cost: EvalCost::default(),
            explored: vec![],
            model: vec![9, 8, 7], // same bytes as node 0 → same blob
        });
        save(&path, &j).unwrap();
        let dir = blob_dir(&path);
        let count = fs::read_dir(&dir).unwrap().count();
        assert_eq!(count, 1, "identical models share one blob");

        // A new node adds exactly one blob; dropping a node GCs its blob.
        j.nodes.push(NodeSnapshot {
            scheme: vec![3],
            metrics: Metrics { acc: 0.6, params: 11, flops: 21 },
            cost: EvalCost::default(),
            explored: vec![],
            model: vec![1, 1, 2, 3, 5, 8],
        });
        save(&path, &j).unwrap();
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 2);
        j.nodes.truncate(2); // drop the fibonacci model again
        save(&path, &j).unwrap();
        assert_eq!(
            fs::read_dir(&dir).unwrap().count(),
            1,
            "unreferenced blobs are collected"
        );
        let back = load(&path, j.fingerprint).unwrap();
        assert_eq!(back.nodes.len(), 2);
        assert_eq!(back.nodes[1].model, vec![9, 8, 7]);
        discard(&path);
    }

    #[test]
    fn corrupt_or_missing_blob_invalidates_the_journal() {
        let path = temp_path("blob-corrupt");
        let j = sample_journal();
        save(&path, &j).unwrap();
        let dir = blob_dir(&path);
        let blob = fs::read_dir(&dir).unwrap().next().unwrap().unwrap().path();
        // Corrupt the blob: content no longer matches its hash.
        fs::write(&blob, b"junk").unwrap();
        assert!(load(&path, j.fingerprint).is_none(), "corrupt blob rejected");
        // Remove it entirely.
        save(&path, &j).unwrap();
        let blob = fs::read_dir(&dir).unwrap().next().unwrap().unwrap().path();
        fs::remove_file(&blob).unwrap();
        assert!(load(&path, j.fingerprint).is_none(), "missing blob rejected");
        discard(&path);
    }

    #[test]
    fn legacy_inline_model_journals_still_load() {
        let path = temp_path("legacy");
        let j = sample_journal();
        // Hand-build the pre-blob format: model hex inline, `fmo` field.
        let node = &j.nodes[0];
        let node_json = obj(vec![
            ("scheme", node.scheme.to_json()),
            ("acc", node.metrics.acc.to_json()),
            ("params", node.metrics.params.to_json()),
            ("flops", node.metrics.flops.to_json()),
            ("explored", node.explored.to_json()),
            ("model", Value::Str(to_hex(&node.model))),
        ]);
        let payload = obj(vec![
            ("fingerprint", Value::Str(format!("{:016x}", j.fingerprint))),
            ("round", j.round.to_json()),
            ("spent", j.spent.to_json()),
            (
                "rng",
                Value::Arr(
                    j.rng.iter().map(|w| Value::Str(format!("{w:016x}"))).collect(),
                ),
            ),
            ("history", j.history.to_json()),
            ("fmo", Value::Str(to_hex(&j.state))),
            ("nodes", Value::Arr(vec![node_json])),
        ])
        .to_string_pretty();
        save_checksummed(&path, &payload).unwrap();
        let back = load(&path, j.fingerprint).expect("legacy journal loads");
        assert_eq!(back.state, j.state);
        assert_eq!(back.nodes[0].model, j.nodes[0].model);
        assert_eq!(
            back.nodes[0].cost,
            EvalCost::default(),
            "pre-cost journals default to zero"
        );
        assert!(back.fault_counters.is_empty(), "legacy journals have no counters");
        discard(&path);
    }

    #[test]
    fn foreign_schema_versions_start_fresh() {
        let path = temp_path("schema");
        let payload = "{}";
        // Hand-build an envelope claiming a future schema; the checksum is
        // valid, so rejection must come from the version check alone.
        let envelope = obj(vec![
            ("schema", 99u64.to_json()),
            (
                "checksum",
                Value::Str(format!("{:016x}", fnv1a64(payload.as_bytes()))),
            ),
            ("payload", Value::Str(payload.to_string())),
        ]);
        fs::write(&path, envelope.to_string_pretty()).unwrap();
        assert!(
            load_checksummed(&path).is_none(),
            "a foreign schema version must not be trusted"
        );
        // The version this build writes round-trips.
        save_checksummed(&path, payload).unwrap();
        assert_eq!(load_checksummed(&path).as_deref(), Some(payload));
        // Envelopes that predate the field (v1) still load.
        let envelope = obj(vec![
            (
                "checksum",
                Value::Str(format!("{:016x}", fnv1a64(payload.as_bytes()))),
            ),
            ("payload", Value::Str(payload.to_string())),
        ]);
        fs::write(&path, envelope.to_string_pretty()).unwrap();
        assert_eq!(load_checksummed(&path).as_deref(), Some(payload));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn intent_record_max_merges_into_restored_counters() {
        use automc_tensor::fault::{self, FaultPlan};
        let path = temp_path("intent");
        let j = sample_journal(); // journals eval=5, train=17
        save(&path, &j).unwrap();

        // No plan active → no intent is written.
        record_eval_intent(Some(&path), j.fingerprint);
        assert!(!intent_path(&path).exists());

        // With a plan and live counters ahead of the journal, the intent
        // captures them with "eval" bumped by one (the tick about to
        // fire).
        fault::install(FaultPlan::parse("exit@eval:9").unwrap());
        fault::restore_counters(&[("eval".into(), 6), ("train".into(), 17)]);
        record_eval_intent(Some(&path), j.fingerprint);
        fault::clear();
        assert!(intent_path(&path).exists());

        let back = load(&path, j.fingerprint).expect("journal loads");
        let get = |site: &str| {
            back.fault_counters
                .iter()
                .find(|(s, _)| s == site)
                .map(|(_, n)| *n)
        };
        assert_eq!(get("eval"), Some(7), "journal eval=5 max intent eval=6+1");
        assert_eq!(get("train"), Some(17));

        // An intent for a different run is ignored.
        record_eval_intent(Some(&path), j.fingerprint); // rewrite with no plan: no-op
        fault::install(FaultPlan::parse("exit@eval:9").unwrap());
        record_eval_intent(Some(&path), j.fingerprint ^ 1);
        fault::clear();
        let back = load(&path, j.fingerprint).expect("journal loads");
        assert_eq!(
            back.fault_counters
                .iter()
                .find(|(s, _)| s == "eval")
                .map(|(_, n)| *n),
            Some(5),
            "mismatched-fingerprint intents must not merge"
        );
        discard(&path);
        assert!(!intent_path(&path).exists(), "discard removes the intent");
    }

    #[test]
    fn heartbeat_roundtrips_and_rejects_corruption() {
        let path = temp_path("heartbeat");
        let hb = Heartbeat {
            worker: 3,
            pid: 4242,
            seq: 17,
            eval: 905,
            tasks_done: 5,
            done: false,
        };
        hb.save(&path).unwrap();
        assert_eq!(Heartbeat::load(&path), Some(hb.clone()));
        // A final beat overwrites the previous one atomically.
        let last = Heartbeat { seq: 18, done: true, ..hb };
        last.save(&path).unwrap();
        assert_eq!(Heartbeat::load(&path), Some(last));
        // Corruption is "no beat", never garbage.
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] = bytes[mid].wrapping_add(1);
        fs::write(&path, &bytes).unwrap();
        assert!(Heartbeat::load(&path).is_none());
        let _ = fs::remove_file(&path);
        assert!(Heartbeat::load(&path).is_none(), "missing file is no beat");
    }

    #[test]
    fn persistent_write_failure_is_reported() {
        // A journal path whose parent is a regular file cannot be created;
        // the retry loop must exhaust its attempts and surface the error.
        let parent = temp_path("not-a-dir");
        fs::write(&parent, b"file").unwrap();
        let path = parent.join("journal.json");
        assert!(save(&path, &sample_journal()).is_err());
        let _ = fs::remove_file(&parent);
    }
}
