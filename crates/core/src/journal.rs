//! Crash-safe round journal for the progressive search.
//!
//! At the end of every search round the full resumable state — the
//! evaluation history, `F_mo`'s learned weights and replay buffer, every
//! extension node's model snapshot, the budget spent, and the RNG state —
//! is written to one journal file. Writes are atomic (temp file + rename)
//! so a crash mid-write leaves the previous round's journal intact, and
//! the payload is checksummed (FNV-1a 64) so torn or corrupted files are
//! detected and treated as "no journal" rather than trusted.
//!
//! A journal is keyed by a *run fingerprint* hashed from everything that
//! shapes the run (problem instance, configuration, embeddings, seed); a
//! journal whose fingerprint does not match the requesting run is ignored
//! with a warning. Restoring a journal reproduces the interrupted run
//! bitwise: resumed and uninterrupted searches emit identical histories.

use crate::history::SearchHistory;
use automc_compress::{Metrics, Scheme, StrategyId};
use automc_json::{field, obj, FromJson, ToJson, Value};
use std::fs;
use std::io;
use std::path::Path;

/// FNV-1a 64-bit hash — the journal and result-cache checksum.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Lowercase hex encoding of a byte string.
pub fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// Decode [`to_hex`] output; `None` on odd length or non-hex characters.
pub fn from_hex(s: &str) -> Option<Vec<u8>> {
    if s.len() % 2 != 0 || !s.is_ascii() {
        return None;
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).ok())
        .collect()
}

/// Write `bytes` to `path` atomically: write a sibling temp file, then
/// rename over the destination. Readers either see the old file or the
/// new one, never a torn write.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    fs::write(&tmp, bytes)?;
    fs::rename(&tmp, path)
}

/// One extension node of the progressive search, with its compressed model
/// serialised by `automc_models::serialize`.
#[derive(Debug, Clone)]
pub struct NodeSnapshot {
    /// The strategy sequence that produced this node.
    pub scheme: Scheme,
    /// Measured metrics of the node's model.
    pub metrics: Metrics,
    /// Strategies already tried as one-step extensions (sorted).
    pub explored: Vec<StrategyId>,
    /// `automc_models::serialize::model_to_bytes` of the node's model.
    pub model: Vec<u8>,
}

impl ToJson for NodeSnapshot {
    fn to_json(&self) -> Value {
        obj(vec![
            ("scheme", self.scheme.to_json()),
            ("acc", self.metrics.acc.to_json()),
            ("params", self.metrics.params.to_json()),
            ("flops", self.metrics.flops.to_json()),
            ("explored", self.explored.to_json()),
            ("model", Value::Str(to_hex(&self.model))),
        ])
    }
}

impl FromJson for NodeSnapshot {
    fn from_json(v: &Value) -> Option<Self> {
        Some(NodeSnapshot {
            scheme: field(v, "scheme")?,
            metrics: Metrics {
                acc: field(v, "acc")?,
                params: field(v, "params")?,
                flops: field(v, "flops")?,
            },
            explored: field(v, "explored")?,
            model: from_hex(v.get("model")?.as_str()?)?,
        })
    }
}

/// The complete resumable state of one search run after a finished round.
#[derive(Debug, Clone)]
pub struct SearchJournal {
    /// Hash of everything that shapes the run; a mismatch means the
    /// journal belongs to a different run and must be ignored.
    pub fingerprint: u64,
    /// Number of completed rounds.
    pub round: u64,
    /// Budget units spent so far.
    pub spent: u64,
    /// xoshiro256** RNG state at the end of the round.
    pub rng: [u64; 4],
    /// Evaluation history so far.
    pub history: SearchHistory,
    /// `Fmo::state_to_bytes` snapshot.
    pub fmo: Vec<u8>,
    /// Every live extension node (including the root).
    pub nodes: Vec<NodeSnapshot>,
}

impl ToJson for SearchJournal {
    fn to_json(&self) -> Value {
        let rng_hex = self
            .rng
            .iter()
            .map(|w| Value::Str(format!("{w:016x}")))
            .collect::<Vec<_>>();
        obj(vec![
            ("fingerprint", Value::Str(format!("{:016x}", self.fingerprint))),
            ("round", self.round.to_json()),
            ("spent", self.spent.to_json()),
            ("rng", Value::Arr(rng_hex)),
            ("history", self.history.to_json()),
            ("fmo", Value::Str(to_hex(&self.fmo))),
            ("nodes", self.nodes.to_json()),
        ])
    }
}

impl FromJson for SearchJournal {
    fn from_json(v: &Value) -> Option<Self> {
        let fingerprint =
            u64::from_str_radix(v.get("fingerprint")?.as_str()?, 16).ok()?;
        let Value::Arr(rng_words) = v.get("rng")? else { return None };
        if rng_words.len() != 4 {
            return None;
        }
        let mut rng = [0u64; 4];
        for (dst, w) in rng.iter_mut().zip(rng_words) {
            *dst = u64::from_str_radix(w.as_str()?, 16).ok()?;
        }
        Some(SearchJournal {
            fingerprint,
            round: field(v, "round")?,
            spent: field(v, "spent")?,
            rng,
            history: field(v, "history")?,
            fmo: from_hex(v.get("fmo")?.as_str()?)?,
            nodes: field(v, "nodes")?,
        })
    }
}

/// Persist a journal atomically. The JSON payload is wrapped in a
/// checksummed envelope so corruption is detectable on load.
pub fn save(path: &Path, journal: &SearchJournal) -> io::Result<()> {
    let payload = journal.to_json().to_string_pretty();
    let envelope = obj(vec![
        (
            "checksum",
            Value::Str(format!("{:016x}", fnv1a64(payload.as_bytes()))),
        ),
        ("payload", Value::Str(payload)),
    ]);
    write_atomic(path, envelope.to_string_pretty().as_bytes())
}

/// Load a journal, validating the envelope checksum and the run
/// fingerprint. Any failure — missing file, unparsable JSON, checksum
/// mismatch, wrong fingerprint — returns `None`; corruption and
/// mismatches are reported on stderr (a missing file is silent: that is
/// the normal fresh-run case).
pub fn load(path: &Path, fingerprint: u64) -> Option<SearchJournal> {
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return None,
        Err(e) => {
            eprintln!("warning: cannot read journal {}: {e}", path.display());
            return None;
        }
    };
    let invalid = || {
        eprintln!(
            "warning: journal {} is corrupt; starting fresh",
            path.display()
        );
    };
    let Ok(envelope) = automc_json::parse(&text) else {
        invalid();
        return None;
    };
    let (Some(checksum), Some(payload)) = (
        envelope
            .get("checksum")
            .and_then(|c| c.as_str())
            .and_then(|c| u64::from_str_radix(c, 16).ok()),
        envelope.get("payload").and_then(|p| p.as_str()),
    ) else {
        invalid();
        return None;
    };
    if fnv1a64(payload.as_bytes()) != checksum {
        invalid();
        return None;
    }
    let journal = match automc_json::parse(payload).ok().and_then(|v| SearchJournal::from_json(&v)) {
        Some(j) => j,
        None => {
            invalid();
            return None;
        }
    };
    if journal.fingerprint != fingerprint {
        eprintln!(
            "warning: journal {} belongs to a different run \
             (fingerprint {:016x}, expected {fingerprint:016x}); ignoring",
            path.display(),
            journal.fingerprint,
        );
        return None;
    }
    Some(journal)
}

/// Remove a journal once its run has completed. Errors (including the
/// file already being gone) are ignored: a stale journal is merely
/// re-validated and discarded on the next run.
pub fn discard(path: &Path) {
    let _ = fs::remove_file(path);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::EvalStatus;
    use std::path::PathBuf;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "automc-journal-test-{}-{tag}.json",
            std::process::id()
        ))
    }

    fn sample_journal() -> SearchJournal {
        let mut history = SearchHistory::new("AutoMC");
        history.push_failure(vec![1, 2], EvalStatus::Diverged, 40);
        SearchJournal {
            fingerprint: 0xdead_beef_cafe_f00d,
            round: 3,
            spent: 1234,
            rng: [1, u64::MAX, 0x1234_5678_9abc_def0, 42],
            history,
            fmo: vec![0, 1, 2, 255, 128],
            nodes: vec![NodeSnapshot {
                scheme: vec![7],
                metrics: Metrics { acc: 0.875, params: 999, flops: 123_456 },
                explored: vec![0, 7, 12],
                model: vec![9, 8, 7],
            }],
        }
    }

    #[test]
    fn hex_roundtrip() {
        let bytes = vec![0u8, 1, 15, 16, 127, 128, 255];
        assert_eq!(from_hex(&to_hex(&bytes)).unwrap(), bytes);
        assert!(from_hex("abc").is_none(), "odd length");
        assert!(from_hex("zz").is_none(), "non-hex");
        assert_eq!(from_hex("").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn save_load_roundtrip() {
        let path = temp_path("roundtrip");
        let j = sample_journal();
        save(&path, &j).unwrap();
        let back = load(&path, j.fingerprint).expect("journal loads");
        assert_eq!(back.round, 3);
        assert_eq!(back.spent, 1234);
        assert_eq!(back.rng, j.rng);
        assert_eq!(back.fmo, j.fmo);
        assert_eq!(back.history.records.len(), 1);
        assert_eq!(back.history.records[0].status, EvalStatus::Diverged);
        assert_eq!(back.nodes.len(), 1);
        assert_eq!(back.nodes[0].scheme, vec![7]);
        assert_eq!(back.nodes[0].metrics.acc.to_bits(), 0.875f32.to_bits());
        assert_eq!(back.nodes[0].explored, vec![0, 7, 12]);
        assert_eq!(back.nodes[0].model, vec![9, 8, 7]);
        discard(&path);
        assert!(load(&path, j.fingerprint).is_none(), "discard removes it");
    }

    #[test]
    fn corrupt_or_mismatched_journals_are_rejected() {
        let path = temp_path("corrupt");
        let j = sample_journal();
        save(&path, &j).unwrap();
        // Wrong fingerprint → ignored.
        assert!(load(&path, j.fingerprint ^ 1).is_none());
        // Flipped byte inside the payload → checksum mismatch.
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] = bytes[mid].wrapping_add(1);
        fs::write(&path, &bytes).unwrap();
        assert!(load(&path, j.fingerprint).is_none());
        // Truncation → unparsable.
        let good = {
            save(&path, &j).unwrap();
            fs::read(&path).unwrap()
        };
        fs::write(&path, &good[..good.len() / 2]).unwrap();
        assert!(load(&path, j.fingerprint).is_none());
        // Not JSON at all.
        fs::write(&path, b"hello").unwrap();
        assert!(load(&path, j.fingerprint).is_none());
        discard(&path);
    }
}
