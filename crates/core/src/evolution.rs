//! Multi-objective evolutionary search (the paper's EA baseline [6]):
//! NSGA-II-style selection over whole compression schemes with one-point
//! crossover and replace/insert/delete mutation.

use crate::context::SearchContext;
use crate::history::{EvalRecord, EvalStatus, SearchHistory};
use crate::pareto;
use automc_compress::{EvalOutcome, Scheme};
use automc_tensor::Rng;
use rand::Rng as _;

/// EA knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvolutionConfig {
    /// Population capacity.
    pub population: usize,
    /// Per-position replacement probability during mutation.
    pub mutation_rate: f32,
}

impl Default for EvolutionConfig {
    fn default() -> Self {
        EvolutionConfig { population: 8, mutation_rate: 0.3 }
    }
}

struct Individual {
    scheme: Scheme,
    ar: f32,
    pr: f32,
}

/// Run the EA until the budget is exhausted.
pub fn evolution_search(
    ctx: &SearchContext<'_>,
    cfg: &EvolutionConfig,
    rng: &mut Rng,
) -> SearchHistory {
    let mut history = SearchHistory::new("Evolution");
    let mut spent = 0u64;
    let mut population: Vec<Individual> = Vec::new();

    // Supervised evaluation: a panicking or diverging scheme is logged as
    // infeasible (charged at least one evaluation's budget) and produces
    // no individual — the population only ever holds viable schemes.
    let evaluate = |scheme: Scheme, spent: &mut u64, history: &mut SearchHistory, rng: &mut Rng| -> Option<Individual> {
        let result = automc_compress::execute_scheme_checked(
            ctx.base_model,
            &ctx.base_metrics,
            &scheme,
            ctx.space,
            ctx.search_train,
            ctx.eval_set,
            &ctx.exec,
            rng,
        );
        *spent += result.charged_units((ctx.eval_set.len() as u64).max(1));
        match result {
            EvalOutcome::Ok { outcome, .. } => {
                history
                    .records
                    .push(EvalRecord::from_outcome(scheme.clone(), &outcome, *spent));
                Some(Individual { scheme, ar: outcome.ar, pr: outcome.pr })
            }
            EvalOutcome::Diverged { .. } => {
                history.push_failure(scheme, EvalStatus::Diverged, *spent);
                None
            }
            EvalOutcome::Panicked { msg, .. } => {
                history.push_failure(scheme, EvalStatus::Panicked(msg), *spent);
                None
            }
        }
    };

    // Seed population.
    while population.len() < cfg.population && spent < ctx.budget.units {
        let len = rng.gen_range(1..=ctx.max_len);
        let scheme: Scheme = (0..len).map(|_| rng.gen_range(0..ctx.space.len())).collect();
        population.extend(evaluate(scheme, &mut spent, &mut history, rng));
    }

    while spent < ctx.budget.units && population.len() >= 2 {
        // Binary tournament by Pareto rank then crowding.
        let points: Vec<(f32, f32)> = population.iter().map(|i| (i.ar, i.pr)).collect();
        let ranks = pareto::non_dominated_ranks(&points);
        let tournament = |rng: &mut Rng| -> usize {
            let a = rng.gen_range(0..population.len());
            let b = rng.gen_range(0..population.len());
            if ranks[a] <= ranks[b] {
                a
            } else {
                b
            }
        };
        let pa = tournament(rng);
        let pb = tournament(rng);
        // One-point crossover.
        let (sa, sb) = (&population[pa].scheme, &population[pb].scheme);
        let cut_a = rng.gen_range(0..=sa.len());
        let cut_b = rng.gen_range(0..=sb.len());
        let mut child: Scheme = sa[..cut_a].to_vec();
        child.extend_from_slice(&sb[cut_b..]);
        child.truncate(ctx.max_len);
        // Mutation.
        for slot in child.iter_mut() {
            if rng.gen::<f32>() < cfg.mutation_rate {
                *slot = rng.gen_range(0..ctx.space.len());
            }
        }
        if child.len() < ctx.max_len && rng.gen::<f32>() < 0.2 {
            child.push(rng.gen_range(0..ctx.space.len()));
        }
        if child.len() > 1 && rng.gen::<f32>() < 0.2 {
            let drop = rng.gen_range(0..child.len());
            child.remove(drop);
        }
        if child.is_empty() {
            child.push(rng.gen_range(0..ctx.space.len()));
        }
        // Evaluate and insert; truncate by (rank, crowding).
        let Some(ind) = evaluate(child, &mut spent, &mut history, rng) else {
            continue;
        };
        population.push(ind);
        if population.len() > cfg.population {
            let points: Vec<(f32, f32)> = population.iter().map(|i| (i.ar, i.pr)).collect();
            let ranks = pareto::non_dominated_ranks(&points);
            // Crowding within each rank.
            let mut keyed: Vec<(usize, f32, usize)> = Vec::new(); // (rank, -crowding, idx)
            let max_rank = ranks.iter().copied().max().unwrap_or(0);
            for r in 0..=max_rank {
                let members: Vec<usize> =
                    (0..population.len()).filter(|&i| ranks[i] == r).collect();
                let crowd = pareto::crowding_distance(&points, &members);
                for (k, &i) in members.iter().enumerate() {
                    keyed.push((r, -crowd[k], i));
                }
            }
            keyed.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
            let keep: Vec<usize> = keyed.iter().take(cfg.population).map(|k| k.2).collect();
            let mut new_pop = Vec::with_capacity(cfg.population);
            for (i, ind) in population.drain(..).enumerate() {
                if keep.contains(&i) {
                    new_pop.push(ind);
                }
            }
            population = new_pop;
        }
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{SearchBudget, SearchContext};
    use automc_compress::{ExecConfig, Metrics, StrategySpace};
    use automc_data::{DatasetSpec, SyntheticKind};
    use automc_models::resnet;
    use automc_tensor::rng_from_seed;

    #[test]
    fn evolution_search_runs_and_improves_coverage() {
        let mut rng = rng_from_seed(330);
        let (train_set, eval_set) = DatasetSpec {
            train: 100,
            test: 60,
            ..DatasetSpec::new(SyntheticKind::Cifar10Like)
        }
        .generate();
        let mut base = resnet(20, 4, 10, (3, 8, 8), &mut rng);
        let base_metrics = Metrics::measure(&mut base, &eval_set);
        let space = StrategySpace::full();
        let ctx = SearchContext {
            space: &space,
            base_model: &base,
            base_metrics,
            search_train: &train_set,
            eval_set: &eval_set,
            exec: ExecConfig { pretrain_epochs: 2.0, ..Default::default() },
            max_len: 3,
            gamma: 0.2,
            budget: SearchBudget::new(6_000),
        };
        let history = evolution_search(&ctx, &EvolutionConfig::default(), &mut rng);
        assert!(history.records.len() >= 4, "EA should evaluate several schemes");
        assert!(history.records.iter().all(|r| !r.scheme.is_empty()));
        assert!(history.records.iter().all(|r| r.scheme.len() <= 3));
    }
}
