//! Multi-objective evolutionary search (the paper's EA baseline [6]):
//! NSGA-II-style selection over whole compression schemes with one-point
//! crossover and replace/insert/delete mutation.

use crate::context::SearchContext;
use crate::history::{EvalRecord, EvalStatus, SearchHistory};
use crate::journal::{self, JournalOptions};
use crate::pareto;
use crate::statebytes::{read_f32, read_u64, write_f32, write_u64};
use automc_compress::{EvalOutcome, Scheme};
use automc_tensor::fault;
use automc_tensor::Rng;
use rand::Rng as _;

/// EA knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvolutionConfig {
    /// Population capacity.
    pub population: usize,
    /// Per-position replacement probability during mutation.
    pub mutation_rate: f32,
}

impl Default for EvolutionConfig {
    fn default() -> Self {
        EvolutionConfig { population: 8, mutation_rate: 0.3 }
    }
}

struct Individual {
    scheme: Scheme,
    ar: f32,
    pr: f32,
}

const STATE_MAGIC: &[u8; 8] = b"AUTOMCe1";

/// Serialise the population (the EA's complete learner state).
fn population_to_bytes(population: &[Individual]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(STATE_MAGIC);
    write_u64(&mut out, population.len() as u64);
    for ind in population {
        write_u64(&mut out, ind.scheme.len() as u64);
        for &sid in &ind.scheme {
            write_u64(&mut out, sid as u64);
        }
        write_f32(&mut out, ind.ar);
        write_f32(&mut out, ind.pr);
    }
    out
}

/// Restore a [`population_to_bytes`] snapshot; `None` on corruption.
fn population_from_bytes(bytes: &[u8], space_len: usize, max_len: usize) -> Option<Vec<Individual>> {
    let mut r = bytes;
    if crate::statebytes::take_bytes(&mut r, 8)? != STATE_MAGIC {
        return None;
    }
    let count = read_u64(&mut r)? as usize;
    if count > 100_000 {
        return None;
    }
    let mut population = Vec::with_capacity(count);
    for _ in 0..count {
        let len = read_u64(&mut r)? as usize;
        if len > max_len {
            return None;
        }
        let mut scheme = Vec::with_capacity(len);
        for _ in 0..len {
            let sid = read_u64(&mut r)? as usize;
            if sid >= space_len {
                return None;
            }
            scheme.push(sid);
        }
        let ar = read_f32(&mut r)?;
        let pr = read_f32(&mut r)?;
        population.push(Individual { scheme, ar, pr });
    }
    if !r.is_empty() {
        return None;
    }
    Some(population)
}

/// Run the EA until the budget is exhausted.
///
/// Thin wrapper over [`evolution_search_journaled`] with journaling
/// disabled.
pub fn evolution_search(
    ctx: &SearchContext<'_>,
    cfg: &EvolutionConfig,
    rng: &mut Rng,
) -> SearchHistory {
    evolution_search_journaled(ctx, cfg, rng, &JournalOptions::default())
}

/// [`evolution_search`] with a crash-safe per-evaluation journal.
///
/// With `opts.path` set, the complete resumable state — history, the
/// current population, RNG state, budget spent, and fault-injection
/// counters — is journaled after every evaluation (both during population
/// seeding and in the main loop); with `opts.resume`, a valid journal is
/// restored and the run continues *bitwise identically* to one that was
/// never interrupted. The journal is deleted on normal completion.
pub fn evolution_search_journaled(
    ctx: &SearchContext<'_>,
    cfg: &EvolutionConfig,
    rng: &mut Rng,
    opts: &JournalOptions,
) -> SearchHistory {
    let mut words = ctx.fingerprint_words().to_vec();
    words.extend([cfg.population as u64, cfg.mutation_rate.to_bits() as u64]);
    let fingerprint = journal::fingerprint("AutoMC-evolution-v3", &words, rng.state());
    let loaded = if opts.resume {
        opts.path.as_deref().and_then(|p| journal::load(p, fingerprint))
    } else {
        None
    };

    let mut history = SearchHistory::new("Evolution");
    let mut spent = 0u64;
    let mut round = 0u64;
    let mut population: Vec<Individual> = Vec::new();
    let mut journal_to = opts.path.as_deref();
    let memo_start = automc_compress::memo::stats();

    if let Some(j) = loaded {
        match population_from_bytes(&j.state, ctx.space.len(), ctx.max_len) {
            Some(pop) => {
                population = pop;
                history = j.history;
                spent = j.spent;
                round = j.round;
                *rng = Rng::from_state(j.rng);
                fault::restore_counters(&j.fault_counters);
                eprintln!(
                    "[journal] resumed Evolution search at evaluation {round} \
                     ({spent}/{} units spent)",
                    ctx.budget.units
                );
            }
            None => {
                // No RNG draws happen before the loop, so there is nothing
                // to rewind: just start fresh.
                eprintln!(
                    "warning: journal passed validation but did not decode; \
                     starting fresh"
                );
            }
        }
    }

    // Supervised evaluation: a panicking or diverging scheme is logged as
    // infeasible (charged at least one evaluation's budget) and produces
    // no individual — the population only ever holds viable schemes.
    let evaluate = |scheme: Scheme,
                    spent: &mut u64,
                    history: &mut SearchHistory,
                    journal_to: Option<&std::path::Path>|
     -> Option<Individual> {
        journal::record_eval_intent(journal_to, fingerprint);
        let result = automc_compress::execute_scheme_checked(
            ctx.base_model,
            &ctx.base_metrics,
            &scheme,
            ctx.space,
            ctx.search_train,
            ctx.eval_set,
            &ctx.exec,
        );
        *spent += result.charged_units((ctx.eval_set.len() as u64).max(1));
        match result {
            EvalOutcome::Ok { outcome, .. } => {
                history
                    .records
                    .push(EvalRecord::from_outcome(scheme.clone(), &outcome, *spent));
                Some(Individual { scheme, ar: outcome.ar, pr: outcome.pr })
            }
            EvalOutcome::Diverged { .. } => {
                history.push_failure(scheme, EvalStatus::Diverged, *spent);
                None
            }
            EvalOutcome::Panicked { msg, .. } => {
                history.push_failure(scheme, EvalStatus::Panicked(msg), *spent);
                None
            }
            EvalOutcome::TimedOut { .. } => {
                history.push_failure(scheme, EvalStatus::TimedOut, *spent);
                None
            }
        }
    };

    // Seed population. Resuming mid-seed is fine: the loop condition
    // re-derives progress from the restored population.
    while population.len() < cfg.population && spent < ctx.budget.units {
        let len = rng.gen_range(1..=ctx.max_len);
        let scheme: Scheme = (0..len).map(|_| rng.gen_range(0..ctx.space.len())).collect();
        population.extend(evaluate(scheme, &mut spent, &mut history, journal_to));
        round += 1;
        journal::checkpoint_round(
            &mut journal_to,
            fingerprint,
            round,
            spent,
            rng,
            &history,
            population_to_bytes(&population),
        );
        if opts.abort_after_rounds.is_some_and(|k| round >= k as u64) {
            // Simulated crash for the resume-determinism tests.
            return history;
        }
        if crate::progress::report_round(opts, &history, ctx, round, spent, &memo_start) {
            return history;
        }
    }

    while spent < ctx.budget.units && population.len() >= 2 {
        // Binary tournament by Pareto rank then crowding.
        let points: Vec<(f32, f32)> = population.iter().map(|i| (i.ar, i.pr)).collect();
        let ranks = pareto::non_dominated_ranks(&points);
        let tournament = |rng: &mut Rng| -> usize {
            let a = rng.gen_range(0..population.len());
            let b = rng.gen_range(0..population.len());
            if ranks[a] <= ranks[b] {
                a
            } else {
                b
            }
        };
        let pa = tournament(rng);
        let pb = tournament(rng);
        // One-point crossover.
        let (sa, sb) = (&population[pa].scheme, &population[pb].scheme);
        let cut_a = rng.gen_range(0..=sa.len());
        let cut_b = rng.gen_range(0..=sb.len());
        let mut child: Scheme = sa[..cut_a].to_vec();
        child.extend_from_slice(&sb[cut_b..]);
        child.truncate(ctx.max_len);
        // Mutation.
        for slot in child.iter_mut() {
            if rng.gen::<f32>() < cfg.mutation_rate {
                *slot = rng.gen_range(0..ctx.space.len());
            }
        }
        if child.len() < ctx.max_len && rng.gen::<f32>() < 0.2 {
            child.push(rng.gen_range(0..ctx.space.len()));
        }
        if child.len() > 1 && rng.gen::<f32>() < 0.2 {
            let drop = rng.gen_range(0..child.len());
            child.remove(drop);
        }
        if child.is_empty() {
            child.push(rng.gen_range(0..ctx.space.len()));
        }
        // Evaluate and insert; truncate by (rank, crowding).
        let evaluated = evaluate(child, &mut spent, &mut history, journal_to);
        round += 1;
        if let Some(ind) = evaluated {
            population.push(ind);
            if population.len() > cfg.population {
                let points: Vec<(f32, f32)> = population.iter().map(|i| (i.ar, i.pr)).collect();
                let ranks = pareto::non_dominated_ranks(&points);
                // Crowding within each rank.
                let mut keyed: Vec<(usize, f32, usize)> = Vec::new(); // (rank, -crowding, idx)
                let max_rank = ranks.iter().copied().max().unwrap_or(0);
                for r in 0..=max_rank {
                    let members: Vec<usize> =
                        (0..population.len()).filter(|&i| ranks[i] == r).collect();
                    let crowd = pareto::crowding_distance(&points, &members);
                    for (k, &i) in members.iter().enumerate() {
                        keyed.push((r, -crowd[k], i));
                    }
                }
                keyed.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
                let keep: Vec<usize> = keyed.iter().take(cfg.population).map(|k| k.2).collect();
                let mut new_pop = Vec::with_capacity(cfg.population);
                for (i, ind) in population.drain(..).enumerate() {
                    if keep.contains(&i) {
                        new_pop.push(ind);
                    }
                }
                population = new_pop;
            }
        }
        journal::checkpoint_round(
            &mut journal_to,
            fingerprint,
            round,
            spent,
            rng,
            &history,
            population_to_bytes(&population),
        );
        if opts.abort_after_rounds.is_some_and(|k| round >= k as u64) {
            // Simulated crash for the resume-determinism tests.
            return history;
        }
        if crate::progress::report_round(opts, &history, ctx, round, spent, &memo_start) {
            return history;
        }
    }
    if let Some(path) = opts.path.as_deref() {
        journal::discard(path);
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{SearchBudget, SearchContext};
    use automc_compress::{ExecConfig, Metrics, StrategySpace};
    use automc_data::{DatasetSpec, SyntheticKind};
    use automc_models::resnet;
    use automc_tensor::rng_from_seed;

    #[test]
    fn population_bytes_roundtrip_and_reject_corruption() {
        let pop = vec![
            Individual { scheme: vec![0, 3, 2], ar: -0.05, pr: 0.4 },
            Individual { scheme: vec![5], ar: 0.01, pr: 0.1 },
        ];
        let bytes = population_to_bytes(&pop);
        let back = population_from_bytes(&bytes, 8, 3).expect("roundtrip");
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].scheme, vec![0, 3, 2]);
        assert_eq!(back[0].ar.to_bits(), (-0.05f32).to_bits());
        assert_eq!(back[1].pr.to_bits(), 0.1f32.to_bits());
        // Out-of-range strategy ids, over-long schemes, truncation.
        assert!(population_from_bytes(&bytes, 4, 3).is_none(), "sid 5 out of range");
        assert!(population_from_bytes(&bytes, 8, 2).is_none(), "scheme too long");
        assert!(population_from_bytes(&bytes[..bytes.len() - 1], 8, 3).is_none());
        let mut bad = bytes;
        bad[3] ^= 0xFF;
        assert!(population_from_bytes(&bad, 8, 3).is_none(), "bad magic");
    }

    #[test]
    fn evolution_search_runs_and_improves_coverage() {
        let mut rng = rng_from_seed(330);
        let (train_set, eval_set) = DatasetSpec {
            train: 100,
            test: 60,
            ..DatasetSpec::new(SyntheticKind::Cifar10Like)
        }
        .generate();
        let mut base = resnet(20, 4, 10, (3, 8, 8), &mut rng);
        let base_metrics = Metrics::measure(&mut base, &eval_set);
        let space = StrategySpace::full();
        let ctx = SearchContext {
            space: &space,
            base_model: &base,
            base_metrics,
            search_train: &train_set,
            eval_set: &eval_set,
            exec: ExecConfig { pretrain_epochs: 2.0, ..Default::default() },
            max_len: 3,
            gamma: 0.2,
            budget: SearchBudget::new(6_000),
        };
        let history = evolution_search(&ctx, &EvolutionConfig::default(), &mut rng);
        assert!(history.records.len() >= 4, "EA should evaluate several schemes");
        assert!(history.records.iter().all(|r| !r.scheme.is_empty()));
        assert!(history.records.iter().all(|r| r.scheme.len() <= 3));
    }
}
