//! Round-boundary progress reporting and cooperative cancellation.
//!
//! All four search strategies journal their state at the end of every
//! round; that same boundary is the only safe place to pause or stop a
//! search (mid-round state is not resumable). A [`RoundHook`] threads an
//! observer through [`JournalOptions`](crate::journal::JournalOptions):
//! after each journal write the search reports a [`RoundEvent`] (round
//! number, budget spent, best feasible candidate so far, memo counters)
//! and the observer answers [`RoundControl::Continue`] or
//! [`RoundControl::Cancel`]. A cancelled search returns its partial
//! history and — exactly like the `abort_after_rounds` crash hook — keeps
//! the journal on disk, so a resubmitted run resumes from the cancelled
//! round for free.
//!
//! The hook runs on whichever thread executes the search (a `par` pool
//! worker under the bench harness), so observers must be `Send + Sync`
//! and should return quickly: the search loop blocks on them.

use crate::history::SearchHistory;
use automc_compress::memo::MemoStats;
use std::fmt;
use std::sync::Arc;

/// What the observer wants the search to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoundControl {
    /// Keep searching.
    Continue,
    /// Stop at this round boundary: return the partial history and leave
    /// the journal on disk (resumable).
    Cancel,
}

/// One completed search round, reported after its journal write.
#[derive(Debug, Clone, Default)]
pub struct RoundEvent {
    /// Algorithm name (from the history), so interleaved events from
    /// concurrent searches stay attributable.
    pub algorithm: String,
    /// Rounds completed so far (1-based: the first event has `round == 1`).
    pub round: u64,
    /// Budget units spent so far.
    pub spent: u64,
    /// Total budget for the run.
    pub budget: u64,
    /// Evaluations recorded so far (feasible + failed).
    pub evals: usize,
    /// Failed evaluations among `evals`.
    pub failed: usize,
    /// Accuracy of the best feasible candidate so far, if any.
    pub best_acc: Option<f32>,
    /// FLOPs of that candidate.
    pub best_flops: Option<u64>,
    /// Pruning rate of that candidate.
    pub best_pr: Option<f32>,
    /// Memo-cache counters accumulated by this search since it started
    /// (thread-local, so concurrent searches don't bleed into each other;
    /// the spill-store fields are process-wide).
    pub memo: MemoStats,
}

impl RoundEvent {
    /// Build an event from the search's live state. `memo_start` is the
    /// [`automc_compress::memo::stats`] snapshot taken when the search
    /// began on this thread.
    pub fn from_history(
        history: &SearchHistory,
        gamma: f32,
        round: u64,
        spent: u64,
        budget: u64,
        memo_start: &MemoStats,
    ) -> Self {
        let best = history.best(gamma);
        RoundEvent {
            algorithm: history.algorithm.clone(),
            round,
            spent,
            budget,
            evals: history.records.len(),
            failed: history.failed_count(),
            best_acc: best.map(|r| r.acc),
            best_flops: best.map(|r| r.flops),
            best_pr: best.map(|r| r.pr),
            memo: automc_compress::memo::stats().since(memo_start),
        }
    }
}

/// Observer invoked at every round boundary of a journaled search.
pub trait RoundObserver: Send + Sync {
    /// Called after each round's journal write; the return value decides
    /// whether the search continues.
    fn on_round(&self, ev: &RoundEvent) -> RoundControl;

    /// Polled between whole work units (e.g. by the bench harness before
    /// starting each grid task) where no round event is available. The
    /// default never cancels.
    fn cancelled(&self) -> bool {
        false
    }
}

/// An optional shared [`RoundObserver`], defaulting to "no observer".
/// Cloning shares the observer. Carried by
/// [`JournalOptions`](crate::journal::JournalOptions) so the hook reaches
/// every search without widening their signatures.
#[derive(Clone, Default)]
pub struct RoundHook(Option<Arc<dyn RoundObserver>>);

impl RoundHook {
    /// Wrap an observer.
    pub fn new(observer: Arc<dyn RoundObserver>) -> Self {
        RoundHook(Some(observer))
    }

    /// Whether an observer is attached.
    pub fn is_set(&self) -> bool {
        self.0.is_some()
    }

    /// Report a round; `Continue` when no observer is attached.
    pub fn observe(&self, ev: &RoundEvent) -> RoundControl {
        match &self.0 {
            Some(obs) => obs.on_round(ev),
            None => RoundControl::Continue,
        }
    }

    /// Poll for cancellation between work units; `false` when no observer
    /// is attached.
    pub fn cancelled(&self) -> bool {
        self.0.as_ref().is_some_and(|obs| obs.cancelled())
    }
}

/// Shared round-boundary hook call for the four search loops: build a
/// [`RoundEvent`] from the live state and consult the observer. Returns
/// `true` when the observer cancelled — the caller must return its
/// partial history immediately, leaving the journal on disk. A no-op
/// (`false`) when no observer is attached.
pub fn report_round(
    opts: &crate::journal::JournalOptions,
    history: &SearchHistory,
    ctx: &crate::context::SearchContext<'_>,
    round: u64,
    spent: u64,
    memo_start: &MemoStats,
) -> bool {
    if !opts.hook.is_set() {
        return false;
    }
    let ev =
        RoundEvent::from_history(history, ctx.gamma, round, spent, ctx.budget.units, memo_start);
    opts.hook.observe(&ev) == RoundControl::Cancel
}

impl fmt::Debug for RoundHook {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.0.is_some() { "RoundHook(set)" } else { "RoundHook(none)" })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct CountingObserver {
        seen: AtomicU64,
        cancel_at: u64,
    }

    impl RoundObserver for CountingObserver {
        fn on_round(&self, ev: &RoundEvent) -> RoundControl {
            self.seen.fetch_add(1, Ordering::SeqCst);
            if ev.round >= self.cancel_at {
                RoundControl::Cancel
            } else {
                RoundControl::Continue
            }
        }
    }

    #[test]
    fn default_hook_never_cancels() {
        let hook = RoundHook::default();
        assert!(!hook.is_set());
        assert!(!hook.cancelled());
        assert_eq!(hook.observe(&RoundEvent::default()), RoundControl::Continue);
    }

    #[test]
    fn hook_reports_and_cancels() {
        let obs = Arc::new(CountingObserver { seen: AtomicU64::new(0), cancel_at: 2 });
        let hook = RoundHook::new(obs.clone());
        let mut ev = RoundEvent::default();
        ev.round = 1;
        assert_eq!(hook.observe(&ev), RoundControl::Continue);
        ev.round = 2;
        assert_eq!(hook.observe(&ev), RoundControl::Cancel);
        assert_eq!(obs.seen.load(Ordering::SeqCst), 2);
    }
}
