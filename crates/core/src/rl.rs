//! The RL baseline: a recurrent controller samples whole schemes and is
//! trained with REINFORCE on a scalarised multi-objective reward (the
//! paper's "RL search strategy that combines recurrent neural network
//! controller" [6]).
//!
//! The controller embeds the previous action, feeds it through a tanh RNN,
//! and emits logits over `|C| + 1` actions (every strategy plus STOP).
//! The reward encourages accuracy increase and parameter reduction and
//! penalises missing the target rate γ.

use crate::context::SearchContext;
use crate::history::{EvalRecord, EvalStatus, SearchHistory};
use automc_compress::{EvalOutcome, Scheme};
use automc_tensor::nn::Rnn;
use automc_tensor::optim::{Adam, AdamConfig, Optimizer, Param};
use automc_tensor::{loss, Rng, Tensor};
use rand::Rng as _;

/// RL knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RlConfig {
    /// Action-embedding dimension.
    pub emb_dim: usize,
    /// Controller hidden size.
    pub hidden: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Reward-baseline EMA coefficient.
    pub baseline_decay: f32,
}

impl Default for RlConfig {
    fn default() -> Self {
        RlConfig { emb_dim: 16, hidden: 32, lr: 5e-3, baseline_decay: 0.9 }
    }
}

/// Scalarised multi-objective reward.
fn reward(ar: f32, pr: f32, gamma: f32) -> f32 {
    ar + pr - 2.0 * (gamma - pr).max(0.0)
}

/// Run the RL controller until the budget is exhausted.
pub fn rl_search(ctx: &SearchContext<'_>, cfg: &RlConfig, rng: &mut Rng) -> SearchHistory {
    let n = ctx.space.len();
    let actions = n + 1; // + STOP
    let stop = n;
    let start_token = n; // reuse the STOP row as the start embedding
    let mut emb = Tensor::randn(&[actions, cfg.emb_dim], 0.1, rng);
    let mut emb_grad = Tensor::zeros(&[actions, cfg.emb_dim]);
    let mut rnn = Rnn::new(cfg.emb_dim, cfg.hidden, rng);
    let mut w = Tensor::randn(&[actions, cfg.hidden], 0.05, rng);
    let mut w_grad = Tensor::zeros(&[actions, cfg.hidden]);
    let mut opt = Adam::new(AdamConfig { lr: cfg.lr, ..Default::default() });
    let mut baseline = 0.0f32;
    let mut baseline_init = false;

    let mut history = SearchHistory::new("RL");
    let mut spent = 0u64;

    while spent < ctx.budget.units {
        // ---- Sample an episode. ----------------------------------------
        rnn.reset();
        let mut h = rnn.init_state(1);
        let mut prev_action = start_token;
        let mut scheme: Scheme = Vec::new();
        let mut step_states: Vec<Tensor> = Vec::new(); // h_t per emitted step
        let mut step_actions: Vec<usize> = Vec::new();
        let mut step_probs: Vec<Vec<f32>> = Vec::new();
        for t in 0..ctx.max_len {
            let x = Tensor::from_slice(&[1, cfg.emb_dim], emb.row(prev_action));
            h = rnn.step(&x, &h);
            // logits = W · h
            let logits: Vec<f32> = (0..actions)
                .map(|a| {
                    w.row(a)
                        .iter()
                        .zip(h.row(0))
                        .map(|(wv, hv)| wv * hv)
                        .sum()
                })
                .collect();
            let mut logits_t = Tensor::from_slice(&[1, actions], &logits);
            if t == 0 {
                // Empty schemes are useless: mask STOP at the first step.
                logits_t.row_mut(0)[stop] = f32::NEG_INFINITY;
            }
            let probs = loss::softmax(&logits_t);
            // Sample an action.
            let u: f32 = rng.gen();
            let mut acc = 0.0;
            let mut action = stop;
            for (a, &p) in probs.row(0).iter().enumerate() {
                acc += p;
                if u <= acc {
                    action = a;
                    break;
                }
            }
            step_states.push(h.clone());
            step_actions.push(action);
            step_probs.push(probs.row(0).to_vec());
            if action == stop {
                break;
            }
            scheme.push(action);
            prev_action = action;
        }
        if scheme.is_empty() {
            continue;
        }

        // ---- Evaluate (supervised). --------------------------------------
        // A failed episode is logged as infeasible, charged a budget
        // floor, and yields no REINFORCE update: there is no trustworthy
        // reward to learn from.
        let result = automc_compress::execute_scheme_checked(
            ctx.base_model,
            &ctx.base_metrics,
            &scheme,
            ctx.space,
            ctx.search_train,
            ctx.eval_set,
            &ctx.exec,
            rng,
        );
        spent += result.charged_units((ctx.eval_set.len() as u64).max(1));
        let outcome = match result {
            EvalOutcome::Ok { outcome, .. } => outcome,
            EvalOutcome::Diverged { .. } => {
                history.push_failure(scheme, EvalStatus::Diverged, spent);
                continue;
            }
            EvalOutcome::Panicked { msg, .. } => {
                history.push_failure(scheme, EvalStatus::Panicked(msg), spent);
                continue;
            }
        };
        history
            .records
            .push(EvalRecord::from_outcome(scheme.clone(), &outcome, spent));

        // ---- REINFORCE update. -------------------------------------------
        let r = reward(outcome.ar, outcome.pr, ctx.gamma);
        if !baseline_init {
            baseline = r;
            baseline_init = true;
        }
        let advantage = r - baseline;
        baseline = cfg.baseline_decay * baseline + (1.0 - cfg.baseline_decay) * r;
        // Per-step gradient on logits: (softmax − onehot) · advantage.
        let mut h_grads: Vec<Option<Tensor>> = vec![None; step_actions.len()];
        for (t, (&action, probs)) in step_actions.iter().zip(&step_probs).enumerate() {
            let mut glogits = probs.clone();
            glogits[action] -= 1.0;
            for g in glogits.iter_mut() {
                *g *= advantage;
            }
            // dW += glogits ⊗ h_t ; dh_t = Wᵀ glogits
            let mut dh = vec![0.0f32; cfg.hidden];
            for (a, &g) in glogits.iter().enumerate() {
                if g == 0.0 || !g.is_finite() {
                    continue;
                }
                let wrow = w.row(a);
                let grow = w_grad.row_mut(a);
                for j in 0..cfg.hidden {
                    grow[j] += g * step_states[t].row(0)[j];
                    dh[j] += g * wrow[j];
                }
            }
            h_grads[t] = Some(Tensor::from_slice(&[1, cfg.hidden], &dh));
        }
        let dx = rnn.backward_through_time(&h_grads);
        // Embedding-table gradients from the per-step input grads.
        let mut prev = start_token;
        for (t, dxt) in dx.iter().enumerate() {
            let row = emb_grad.row_mut(prev);
            for (g, &d) in row.iter_mut().zip(dxt.row(0)) {
                *g += d;
            }
            if t < step_actions.len() && step_actions[t] != stop {
                prev = step_actions[t];
            }
        }
        let mut params = rnn.params_mut();
        params.push(Param { value: &mut w, grad: &mut w_grad, weight_decay: false });
        params.push(Param { value: &mut emb, grad: &mut emb_grad, weight_decay: false });
        opt.step(&mut params);
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{SearchBudget, SearchContext};
    use automc_compress::{ExecConfig, Metrics, StrategySpace};
    use automc_data::{DatasetSpec, SyntheticKind};
    use automc_models::resnet;
    use automc_tensor::rng_from_seed;

    #[test]
    fn reward_shapes_objectives() {
        assert!(reward(0.1, 0.4, 0.3) > reward(-0.1, 0.4, 0.3));
        assert!(reward(0.0, 0.35, 0.3) > reward(0.0, 0.1, 0.3), "missing γ is penalised");
    }

    #[test]
    fn rl_search_produces_valid_schemes() {
        let mut rng = rng_from_seed(340);
        let (train_set, eval_set) = DatasetSpec {
            train: 100,
            test: 60,
            ..DatasetSpec::new(SyntheticKind::Cifar10Like)
        }
        .generate();
        let mut base = resnet(20, 4, 10, (3, 8, 8), &mut rng);
        let base_metrics = Metrics::measure(&mut base, &eval_set);
        let space = StrategySpace::full();
        let ctx = SearchContext {
            space: &space,
            base_model: &base,
            base_metrics,
            search_train: &train_set,
            eval_set: &eval_set,
            exec: ExecConfig { pretrain_epochs: 2.0, ..Default::default() },
            max_len: 3,
            gamma: 0.2,
            budget: SearchBudget::new(5_000),
        };
        let history = rl_search(&ctx, &RlConfig::default(), &mut rng);
        assert!(!history.records.is_empty());
        assert!(history
            .records
            .iter()
            .all(|r| !r.scheme.is_empty() && r.scheme.len() <= 3));
        assert!(history
            .records
            .iter()
            .all(|r| r.scheme.iter().all(|&s| s < space.len())));
    }
}
