//! The RL baseline: a recurrent controller samples whole schemes and is
//! trained with REINFORCE on a scalarised multi-objective reward (the
//! paper's "RL search strategy that combines recurrent neural network
//! controller" [6]).
//!
//! The controller embeds the previous action, feeds it through a tanh RNN,
//! and emits logits over `|C| + 1` actions (every strategy plus STOP).
//! The reward encourages accuracy increase and parameter reduction and
//! penalises missing the target rate γ.

use crate::context::SearchContext;
use crate::history::{EvalRecord, EvalStatus, SearchHistory};
use crate::journal::{self, JournalOptions};
use crate::statebytes::{
    read_f32, read_tensor_list, read_u64, take_bytes, write_f32, write_tensor_list, write_u64,
};
use automc_compress::{EvalOutcome, Scheme};
use automc_tensor::fault;
use automc_tensor::nn::Rnn;
use automc_tensor::optim::{Adam, AdamConfig, AdamState, Optimizer, Param};
use automc_tensor::{loss, Rng, Tensor};
use rand::Rng as _;

/// RL knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RlConfig {
    /// Action-embedding dimension.
    pub emb_dim: usize,
    /// Controller hidden size.
    pub hidden: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Reward-baseline EMA coefficient.
    pub baseline_decay: f32,
}

impl Default for RlConfig {
    fn default() -> Self {
        RlConfig { emb_dim: 16, hidden: 32, lr: 5e-3, baseline_decay: 0.9 }
    }
}

/// Scalarised multi-objective reward.
fn reward(ar: f32, pr: f32, gamma: f32) -> f32 {
    ar + pr - 2.0 * (gamma - pr).max(0.0)
}

const STATE_MAGIC: &[u8; 8] = b"AUTOMCr1";

/// The recurrent controller with its optimizer and reward baseline — the
/// complete learner state, grouped so a journal can snapshot and restore
/// it as one opaque byte string.
struct Controller {
    emb: Tensor,
    emb_grad: Tensor,
    rnn: Rnn,
    w: Tensor,
    w_grad: Tensor,
    opt: Adam,
    baseline: f32,
    baseline_init: bool,
}

impl Controller {
    fn new(actions: usize, cfg: &RlConfig, rng: &mut Rng) -> Self {
        Controller {
            emb: Tensor::randn(&[actions, cfg.emb_dim], 0.1, rng),
            emb_grad: Tensor::zeros(&[actions, cfg.emb_dim]),
            rnn: Rnn::new(cfg.emb_dim, cfg.hidden, rng),
            w: Tensor::randn(&[actions, cfg.hidden], 0.05, rng),
            w_grad: Tensor::zeros(&[actions, cfg.hidden]),
            opt: Adam::new(AdamConfig { lr: cfg.lr, ..Default::default() }),
            baseline: 0.0,
            baseline_init: false,
        }
    }

    /// Serialise weights, Adam moments, and the reward baseline. Gradients
    /// are not included: snapshots are taken between episodes, where both
    /// accumulators are zero.
    fn state_to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(STATE_MAGIC);
        write_tensor_list(
            &mut out,
            &[&self.emb, &self.rnn.w_xh, &self.rnn.w_hh, &self.rnn.b, &self.w],
        );
        let opt = self.opt.export_state();
        write_u64(&mut out, opt.t);
        write_tensor_list(&mut out, &opt.m.iter().collect::<Vec<_>>());
        write_tensor_list(&mut out, &opt.v.iter().collect::<Vec<_>>());
        write_f32(&mut out, self.baseline);
        out.push(self.baseline_init as u8);
        out
    }

    /// Restore a [`Controller::state_to_bytes`] snapshot into a controller
    /// of the same shape. `None` (leaving `self` partially overwritten —
    /// callers must rebuild) on a corrupt or mismatched stream.
    fn restore_state(&mut self, bytes: &[u8]) -> Option<()> {
        let mut r = bytes;
        if take_bytes(&mut r, 8)? != STATE_MAGIC {
            return None;
        }
        let weights = read_tensor_list(&mut r)?;
        let mut targets = [
            &mut self.emb,
            &mut self.rnn.w_xh,
            &mut self.rnn.w_hh,
            &mut self.rnn.b,
            &mut self.w,
        ];
        if weights.len() != targets.len() {
            return None;
        }
        for (dst, src) in targets.iter_mut().zip(weights) {
            if dst.dims() != src.dims() {
                return None;
            }
            **dst = src;
        }
        let t = read_u64(&mut r)?;
        let m = read_tensor_list(&mut r)?;
        let v = read_tensor_list(&mut r)?;
        self.opt.import_state(AdamState { m, v, t });
        self.baseline = read_f32(&mut r)?;
        let flag = take_bytes(&mut r, 1)?[0];
        if flag > 1 {
            return None;
        }
        self.baseline_init = flag == 1;
        if !r.is_empty() {
            return None;
        }
        Some(())
    }

    /// One REINFORCE step from a finished episode's reward.
    #[allow(clippy::too_many_arguments)]
    fn reinforce(
        &mut self,
        cfg: &RlConfig,
        r: f32,
        step_states: &[Tensor],
        step_actions: &[usize],
        step_probs: &[Vec<f32>],
        start_token: usize,
        stop: usize,
    ) {
        if !self.baseline_init {
            self.baseline = r;
            self.baseline_init = true;
        }
        let advantage = r - self.baseline;
        self.baseline = cfg.baseline_decay * self.baseline + (1.0 - cfg.baseline_decay) * r;
        // Per-step gradient on logits: (softmax − onehot) · advantage.
        let mut h_grads: Vec<Option<Tensor>> = vec![None; step_actions.len()];
        for (t, (&action, probs)) in step_actions.iter().zip(step_probs).enumerate() {
            let mut glogits = probs.clone();
            glogits[action] -= 1.0;
            for g in glogits.iter_mut() {
                *g *= advantage;
            }
            // dW += glogits ⊗ h_t ; dh_t = Wᵀ glogits
            let mut dh = vec![0.0f32; cfg.hidden];
            for (a, &g) in glogits.iter().enumerate() {
                if g == 0.0 || !g.is_finite() {
                    continue;
                }
                let wrow = self.w.row(a);
                let grow = self.w_grad.row_mut(a);
                for j in 0..cfg.hidden {
                    grow[j] += g * step_states[t].row(0)[j];
                    dh[j] += g * wrow[j];
                }
            }
            h_grads[t] = Some(Tensor::from_slice(&[1, cfg.hidden], &dh));
        }
        let dx = self.rnn.backward_through_time(&h_grads);
        // Embedding-table gradients from the per-step input grads.
        let mut prev = start_token;
        for (t, dxt) in dx.iter().enumerate() {
            let row = self.emb_grad.row_mut(prev);
            for (g, &d) in row.iter_mut().zip(dxt.row(0)) {
                *g += d;
            }
            if t < step_actions.len() && step_actions[t] != stop {
                prev = step_actions[t];
            }
        }
        let mut params = self.rnn.params_mut();
        params.push(Param { value: &mut self.w, grad: &mut self.w_grad, weight_decay: false });
        params.push(Param { value: &mut self.emb, grad: &mut self.emb_grad, weight_decay: false });
        self.opt.step(&mut params);
    }
}

/// Run the RL controller until the budget is exhausted.
///
/// Thin wrapper over [`rl_search_journaled`] with journaling disabled.
pub fn rl_search(ctx: &SearchContext<'_>, cfg: &RlConfig, rng: &mut Rng) -> SearchHistory {
    rl_search_journaled(ctx, cfg, rng, &JournalOptions::default())
}

/// [`rl_search`] with a crash-safe per-episode journal.
///
/// With `opts.path` set, the complete resumable state — history,
/// controller weights, Adam moments, reward baseline, RNG state, budget
/// spent, and fault-injection counters — is journaled after every
/// evaluated episode; with `opts.resume`, a valid journal is restored and
/// the run continues *bitwise identically* to one that was never
/// interrupted. The journal is deleted on normal completion.
pub fn rl_search_journaled(
    ctx: &SearchContext<'_>,
    cfg: &RlConfig,
    rng: &mut Rng,
    opts: &JournalOptions,
) -> SearchHistory {
    let n = ctx.space.len();
    let actions = n + 1; // + STOP
    let stop = n;
    let start_token = n; // reuse the STOP row as the start embedding
    let mut words = ctx.fingerprint_words().to_vec();
    words.extend([
        cfg.emb_dim as u64,
        cfg.hidden as u64,
        cfg.lr.to_bits() as u64,
        cfg.baseline_decay.to_bits() as u64,
    ]);
    let fingerprint = journal::fingerprint("AutoMC-rl-v3", &words, rng.state());
    let loaded = if opts.resume {
        opts.path.as_deref().and_then(|p| journal::load(p, fingerprint))
    } else {
        None
    };

    // Construct the controller unconditionally so a fresh (or
    // failed-restore) run consumes exactly the same RNG draws as an
    // un-journaled one.
    let pre_init_rng = rng.state();
    let mut ctrl = Controller::new(actions, cfg, rng);
    let mut history = SearchHistory::new("RL");
    let mut spent = 0u64;
    let mut round = 0u64;
    let mut journal_to = opts.path.as_deref();

    if let Some(j) = loaded {
        match ctrl.restore_state(&j.state) {
            Some(()) => {
                history = j.history;
                spent = j.spent;
                round = j.round;
                *rng = Rng::from_state(j.rng);
                fault::restore_counters(&j.fault_counters);
                eprintln!(
                    "[journal] resumed RL search at episode {round} \
                     ({spent}/{} units spent)",
                    ctx.budget.units
                );
            }
            None => {
                eprintln!(
                    "warning: journal passed validation but did not decode; \
                     starting fresh"
                );
                *rng = Rng::from_state(pre_init_rng);
                ctrl = Controller::new(actions, cfg, rng);
            }
        }
    }

    let memo_start = automc_compress::memo::stats();
    while spent < ctx.budget.units {
        // ---- Sample an episode. ----------------------------------------
        ctrl.rnn.reset();
        let mut h = ctrl.rnn.init_state(1);
        let mut prev_action = start_token;
        let mut scheme: Scheme = Vec::new();
        let mut step_states: Vec<Tensor> = Vec::new(); // h_t per emitted step
        let mut step_actions: Vec<usize> = Vec::new();
        let mut step_probs: Vec<Vec<f32>> = Vec::new();
        for t in 0..ctx.max_len {
            let x = Tensor::from_slice(&[1, cfg.emb_dim], ctrl.emb.row(prev_action));
            h = ctrl.rnn.step(&x, &h);
            // logits = W · h
            let logits: Vec<f32> = (0..actions)
                .map(|a| {
                    ctrl.w
                        .row(a)
                        .iter()
                        .zip(h.row(0))
                        .map(|(wv, hv)| wv * hv)
                        .sum()
                })
                .collect();
            let mut logits_t = Tensor::from_slice(&[1, actions], &logits);
            if t == 0 {
                // Empty schemes are useless: mask STOP at the first step.
                logits_t.row_mut(0)[stop] = f32::NEG_INFINITY;
            }
            let probs = loss::softmax(&logits_t);
            // Sample an action.
            let u: f32 = rng.gen();
            let mut acc = 0.0;
            let mut action = stop;
            for (a, &p) in probs.row(0).iter().enumerate() {
                acc += p;
                if u <= acc {
                    action = a;
                    break;
                }
            }
            step_states.push(h.clone());
            step_actions.push(action);
            step_probs.push(probs.row(0).to_vec());
            if action == stop {
                break;
            }
            scheme.push(action);
            prev_action = action;
        }
        if scheme.is_empty() {
            // Nothing was evaluated and no budget spent: replaying this
            // draw after a resume is deterministic, so no journal write.
            continue;
        }

        // ---- Evaluate (supervised). --------------------------------------
        // A failed episode is logged as infeasible, charged a budget
        // floor, and yields no REINFORCE update: there is no trustworthy
        // reward to learn from.
        journal::record_eval_intent(journal_to, fingerprint);
        let result = automc_compress::execute_scheme_checked(
            ctx.base_model,
            &ctx.base_metrics,
            &scheme,
            ctx.space,
            ctx.search_train,
            ctx.eval_set,
            &ctx.exec,
        );
        spent += result.charged_units((ctx.eval_set.len() as u64).max(1));
        let outcome = match result {
            EvalOutcome::Ok { outcome, .. } => Some(outcome),
            EvalOutcome::Diverged { .. } => {
                history.push_failure(scheme.clone(), EvalStatus::Diverged, spent);
                None
            }
            EvalOutcome::Panicked { msg, .. } => {
                history.push_failure(scheme.clone(), EvalStatus::Panicked(msg), spent);
                None
            }
            EvalOutcome::TimedOut { .. } => {
                history.push_failure(scheme.clone(), EvalStatus::TimedOut, spent);
                None
            }
        };
        if let Some(outcome) = outcome {
            history
                .records
                .push(EvalRecord::from_outcome(scheme.clone(), &outcome, spent));
            // ---- REINFORCE update. -------------------------------------
            let r = reward(outcome.ar, outcome.pr, ctx.gamma);
            ctrl.reinforce(
                cfg,
                r,
                &step_states,
                &step_actions,
                &step_probs,
                start_token,
                stop,
            );
        }

        // ---- Journal the completed episode (atomic write + retry). -----
        round += 1;
        journal::checkpoint_round(
            &mut journal_to,
            fingerprint,
            round,
            spent,
            rng,
            &history,
            ctrl.state_to_bytes(),
        );
        if opts.abort_after_rounds.is_some_and(|k| round >= k as u64) {
            // Simulated crash for the resume-determinism tests.
            return history;
        }
        if crate::progress::report_round(opts, &history, ctx, round, spent, &memo_start) {
            return history;
        }
    }
    if let Some(path) = opts.path.as_deref() {
        journal::discard(path);
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{SearchBudget, SearchContext};
    use automc_compress::{ExecConfig, Metrics, StrategySpace};
    use automc_data::{DatasetSpec, SyntheticKind};
    use automc_models::resnet;
    use automc_tensor::rng_from_seed;

    #[test]
    fn reward_shapes_objectives() {
        assert!(reward(0.1, 0.4, 0.3) > reward(-0.1, 0.4, 0.3));
        assert!(reward(0.0, 0.35, 0.3) > reward(0.0, 0.1, 0.3), "missing γ is penalised");
    }

    #[test]
    fn controller_state_roundtrips_bitwise() {
        let mut rng = rng_from_seed(341);
        let cfg = RlConfig::default();
        let mut a = Controller::new(9, &cfg, &mut rng);
        a.baseline = 0.37;
        a.baseline_init = true;
        let bytes = a.state_to_bytes();
        let mut b = Controller::new(9, &cfg, &mut rng_from_seed(77));
        b.restore_state(&bytes).expect("snapshot restores");
        assert_eq!(b.state_to_bytes(), bytes, "roundtrip is bitwise");
        // Truncated or wrong-magic streams are rejected.
        assert!(Controller::new(9, &cfg, &mut rng)
            .restore_state(&bytes[..bytes.len() - 2])
            .is_none());
        let mut bad = bytes;
        bad[0] ^= 0xFF;
        assert!(Controller::new(9, &cfg, &mut rng).restore_state(&bad).is_none());
    }

    #[test]
    fn rl_search_produces_valid_schemes() {
        let mut rng = rng_from_seed(340);
        let (train_set, eval_set) = DatasetSpec {
            train: 100,
            test: 60,
            ..DatasetSpec::new(SyntheticKind::Cifar10Like)
        }
        .generate();
        let mut base = resnet(20, 4, 10, (3, 8, 8), &mut rng);
        let base_metrics = Metrics::measure(&mut base, &eval_set);
        let space = StrategySpace::full();
        let ctx = SearchContext {
            space: &space,
            base_model: &base,
            base_metrics,
            search_train: &train_set,
            eval_set: &eval_set,
            exec: ExecConfig { pretrain_epochs: 2.0, ..Default::default() },
            max_len: 3,
            gamma: 0.2,
            budget: SearchBudget::new(5_000),
        };
        let history = rl_search(&ctx, &RlConfig::default(), &mut rng);
        assert!(!history.records.is_empty());
        assert!(history
            .records
            .iter()
            .all(|r| !r.scheme.is_empty() && r.scheme.len() <= 3));
        assert!(history
            .records
            .iter()
            .all(|r| r.scheme.iter().all(|&s| s < space.len())));
    }
}
