//! Random search — the standard AutoML baseline: sample whole schemes
//! uniformly and evaluate them end to end.

use crate::context::SearchContext;
use crate::history::{EvalRecord, EvalStatus, SearchHistory};
use crate::journal::{self, JournalOptions};
use automc_compress::{execute_scheme_checked, EvalOutcome, Scheme};
use automc_tensor::fault;
use automc_tensor::Rng;
use rand::Rng as _;

/// Run random search until the budget is exhausted. Evaluations are
/// supervised: a panicking or diverging scheme is logged as infeasible
/// (charged at least one evaluation's budget) and the search continues.
///
/// Thin wrapper over [`random_search_journaled`] with journaling disabled.
pub fn random_search(ctx: &SearchContext<'_>, rng: &mut Rng) -> SearchHistory {
    random_search_journaled(ctx, rng, &JournalOptions::default())
}

/// [`random_search`] with a crash-safe per-evaluation journal.
///
/// Random search has no learner, so the journal's `state` stays empty:
/// the resumable state is just the history, the RNG stream, the budget
/// spent, and the fault-injection counters. With `opts.resume`, a valid
/// journal is restored and the run continues *bitwise identically* to one
/// that was never interrupted. The journal is deleted on normal
/// completion.
pub fn random_search_journaled(
    ctx: &SearchContext<'_>,
    rng: &mut Rng,
    opts: &JournalOptions,
) -> SearchHistory {
    let fingerprint =
        journal::fingerprint("AutoMC-random-v3", &ctx.fingerprint_words(), rng.state());
    let loaded = if opts.resume {
        opts.path.as_deref().and_then(|p| journal::load(p, fingerprint))
    } else {
        None
    };

    let mut history = SearchHistory::new("Random");
    let mut spent = 0u64;
    let mut round = 0u64;
    let mut journal_to = opts.path.as_deref();

    if let Some(j) = loaded {
        if j.state.is_empty() {
            history = j.history;
            spent = j.spent;
            round = j.round;
            *rng = Rng::from_state(j.rng);
            fault::restore_counters(&j.fault_counters);
            eprintln!(
                "[journal] resumed Random search at evaluation {round} \
                 ({spent}/{} units spent)",
                ctx.budget.units
            );
        } else {
            eprintln!(
                "warning: journal passed validation but did not decode; \
                 starting fresh"
            );
        }
    }

    let memo_start = automc_compress::memo::stats();
    let floor = (ctx.eval_set.len() as u64).max(1);
    while spent < ctx.budget.units {
        let len = rng.gen_range(1..=ctx.max_len);
        let scheme: Scheme = (0..len).map(|_| rng.gen_range(0..ctx.space.len())).collect();
        journal::record_eval_intent(journal_to, fingerprint);
        let result = execute_scheme_checked(
            ctx.base_model,
            &ctx.base_metrics,
            &scheme,
            ctx.space,
            ctx.search_train,
            ctx.eval_set,
            &ctx.exec,
        );
        spent += result.charged_units(floor);
        match result {
            EvalOutcome::Ok { outcome, .. } => {
                history.records.push(EvalRecord::from_outcome(scheme, &outcome, spent));
            }
            EvalOutcome::Diverged { .. } => {
                history.push_failure(scheme, EvalStatus::Diverged, spent);
            }
            EvalOutcome::Panicked { msg, .. } => {
                history.push_failure(scheme, EvalStatus::Panicked(msg), spent);
            }
            EvalOutcome::TimedOut { .. } => {
                history.push_failure(scheme, EvalStatus::TimedOut, spent);
            }
        }
        round += 1;
        journal::checkpoint_round(
            &mut journal_to,
            fingerprint,
            round,
            spent,
            rng,
            &history,
            Vec::new(),
        );
        if opts.abort_after_rounds.is_some_and(|k| round >= k as u64) {
            // Simulated crash for the resume-determinism tests.
            return history;
        }
        if crate::progress::report_round(opts, &history, ctx, round, spent, &memo_start) {
            return history;
        }
    }
    if let Some(path) = opts.path.as_deref() {
        journal::discard(path);
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{SearchBudget, SearchContext};
    use automc_compress::{ExecConfig, Metrics, StrategySpace};
    use automc_data::{DatasetSpec, SyntheticKind};
    use automc_models::resnet;
    use automc_tensor::rng_from_seed;

    #[test]
    fn random_search_respects_budget_and_length() {
        let mut rng = rng_from_seed(320);
        let (train_set, eval_set) = DatasetSpec {
            train: 100,
            test: 60,
            ..DatasetSpec::new(SyntheticKind::Cifar10Like)
        }
        .generate();
        let mut base = resnet(20, 4, 10, (3, 8, 8), &mut rng);
        let base_metrics = Metrics::measure(&mut base, &eval_set);
        let space = StrategySpace::full();
        let ctx = SearchContext {
            space: &space,
            base_model: &base,
            base_metrics,
            search_train: &train_set,
            eval_set: &eval_set,
            exec: ExecConfig { pretrain_epochs: 2.0, ..Default::default() },
            max_len: 2,
            gamma: 0.2,
            budget: SearchBudget::new(4_000),
        };
        let history = random_search(&ctx, &mut rng);
        assert!(!history.records.is_empty());
        assert!(history.records.iter().all(|r| (1..=2).contains(&r.scheme.len())));
        assert!(history.total_cost() >= ctx.budget.units);
    }

    #[test]
    fn random_search_degrades_gracefully_under_faults() {
        use automc_tensor::fault::{self, FaultPlan};

        let mut rng = rng_from_seed(321);
        let (train_set, eval_set) = DatasetSpec {
            train: 80,
            test: 40,
            ..DatasetSpec::new(SyntheticKind::Cifar10Like)
        }
        .generate();
        let mut base = resnet(20, 4, 10, (3, 8, 8), &mut rng);
        let base_metrics = Metrics::measure(&mut base, &eval_set);
        let space = StrategySpace::full();
        let ctx = SearchContext {
            space: &space,
            base_model: &base,
            base_metrics,
            search_train: &train_set,
            eval_set: &eval_set,
            exec: ExecConfig { pretrain_epochs: 2.0, ..Default::default() },
            max_len: 2,
            gamma: 0.2,
            budget: SearchBudget::new(3_000),
        };
        // Panic the very first evaluation and poison an early training run;
        // the search must absorb both and still exhaust its budget.
        fault::install(FaultPlan::parse("panic@eval:1,nan@train:2").unwrap());
        let history = random_search(&ctx, &mut rng);
        fault::clear();
        assert!(history.total_cost() >= ctx.budget.units, "search must finish");
        assert!(history.failed_count() >= 1, "injected faults must be recorded");
        assert!(
            history.records.iter().any(|r| matches!(r.status, EvalStatus::Panicked(_))),
            "the first evaluation was panicked by the plan"
        );
        // Failures never reach the reported front.
        for i in history.pareto_indices(0.0) {
            assert!(history.records[i].is_feasible());
        }
    }
}
