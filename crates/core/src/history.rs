//! Search-history logging: every scheme evaluation any algorithm performs
//! is recorded here. Tables 2–3 and Figures 4–6 are rendered from these
//! logs, and the bench harness serialises them to a JSON cache.

use crate::pareto;
use automc_compress::{Scheme, SchemeOutcome};
use automc_json::{field, obj, FromJson, ToJson, Value};

/// How a recorded evaluation ended. Failed candidates stay in the history
/// — the search learned from spending budget on them — but are infeasible
/// for Pareto selection and reporting.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum EvalStatus {
    /// Evaluation completed with finite metrics.
    #[default]
    Ok,
    /// Training diverged (non-finite loss/metrics); evaluation abandoned.
    Diverged,
    /// A panic was caught during evaluation; the message is kept for
    /// diagnosis.
    Panicked(String),
    /// The evaluation exhausted its cooperative training-step budget
    /// (`max_train_steps`) and was abandoned instead of hanging.
    TimedOut,
}

impl EvalStatus {
    /// True for [`EvalStatus::Ok`].
    pub fn is_ok(&self) -> bool {
        matches!(self, EvalStatus::Ok)
    }

    fn to_json_value(&self) -> Value {
        match self {
            EvalStatus::Ok => Value::Str("ok".into()),
            EvalStatus::Diverged => Value::Str("diverged".into()),
            EvalStatus::Panicked(msg) => Value::Str(format!("panicked:{msg}")),
            EvalStatus::TimedOut => Value::Str("timed_out".into()),
        }
    }

    fn from_json_value(v: Option<&Value>) -> Option<EvalStatus> {
        // Missing field = legacy record from before supervised execution.
        let Some(v) = v else { return Some(EvalStatus::Ok) };
        let Value::Str(s) = v else { return None };
        Some(match s.as_str() {
            "ok" => EvalStatus::Ok,
            "diverged" => EvalStatus::Diverged,
            "timed_out" => EvalStatus::TimedOut,
            other => EvalStatus::Panicked(
                other.strip_prefix("panicked:").unwrap_or(other).to_string(),
            ),
        })
    }
}

/// One evaluated scheme.
#[derive(Debug, Clone)]
pub struct EvalRecord {
    /// The strategy-id sequence.
    pub scheme: Scheme,
    /// `PR` vs the base model.
    pub pr: f32,
    /// `FR` vs the base model.
    pub fr: f32,
    /// `AR` vs the base model.
    pub ar: f32,
    /// Final accuracy.
    pub acc: f32,
    /// Final parameter count.
    pub params: usize,
    /// Final FLOPs.
    pub flops: u64,
    /// Cumulative budget units spent when this evaluation finished.
    pub cost_so_far: u64,
    /// How the evaluation ended.
    pub status: EvalStatus,
}

impl EvalRecord {
    /// Build from an execution outcome.
    pub fn from_outcome(scheme: Scheme, out: &SchemeOutcome, cost_so_far: u64) -> Self {
        EvalRecord {
            scheme,
            pr: out.pr,
            fr: out.fr,
            ar: out.ar,
            acc: out.metrics.acc,
            params: out.metrics.params,
            flops: out.metrics.flops,
            cost_so_far,
            status: EvalStatus::Ok,
        }
    }

    /// An infeasible record for a failed evaluation: zeroed metrics,
    /// `pr = -1` (below any feasibility threshold `γ ≥ 0`), with the
    /// failure mode kept in `status`.
    pub fn failure(scheme: Scheme, status: EvalStatus, cost_so_far: u64) -> Self {
        debug_assert!(!status.is_ok(), "failure records need a failure status");
        EvalRecord {
            scheme,
            pr: -1.0,
            fr: -1.0,
            ar: -1.0,
            acc: 0.0,
            params: 0,
            flops: 0,
            cost_so_far,
            status,
        }
    }

    /// True if this record may participate in Pareto selection.
    pub fn is_feasible(&self) -> bool {
        self.status.is_ok()
    }
}

impl ToJson for EvalRecord {
    fn to_json(&self) -> Value {
        obj(vec![
            ("scheme", self.scheme.to_json()),
            ("pr", self.pr.to_json()),
            ("fr", self.fr.to_json()),
            ("ar", self.ar.to_json()),
            ("acc", self.acc.to_json()),
            ("params", self.params.to_json()),
            ("flops", self.flops.to_json()),
            ("cost_so_far", self.cost_so_far.to_json()),
            ("status", self.status.to_json_value()),
        ])
    }
}

impl FromJson for EvalRecord {
    fn from_json(v: &Value) -> Option<Self> {
        Some(EvalRecord {
            scheme: field(v, "scheme")?,
            pr: field(v, "pr")?,
            fr: field(v, "fr")?,
            ar: field(v, "ar")?,
            acc: field(v, "acc")?,
            params: field(v, "params")?,
            flops: field(v, "flops")?,
            cost_so_far: field(v, "cost_so_far")?,
            status: EvalStatus::from_json_value(v.get("status"))?,
        })
    }
}

/// The full log of one search run.
#[derive(Debug, Clone, Default)]
pub struct SearchHistory {
    /// Algorithm name (for reporting).
    pub algorithm: String,
    /// Every evaluation, in execution order.
    pub records: Vec<EvalRecord>,
}

impl ToJson for SearchHistory {
    fn to_json(&self) -> Value {
        obj(vec![
            ("algorithm", self.algorithm.to_json()),
            ("records", self.records.to_json()),
        ])
    }
}

impl FromJson for SearchHistory {
    fn from_json(v: &Value) -> Option<Self> {
        Some(SearchHistory {
            algorithm: field(v, "algorithm")?,
            records: field(v, "records")?,
        })
    }
}

impl SearchHistory {
    /// Empty history for an algorithm.
    pub fn new(algorithm: impl Into<String>) -> Self {
        SearchHistory { algorithm: algorithm.into(), records: Vec::new() }
    }

    /// Total budget spent (cost of the last record).
    pub fn total_cost(&self) -> u64 {
        self.records.last().map_or(0, |r| r.cost_so_far)
    }

    /// Record a failed evaluation as an infeasible entry.
    pub fn push_failure(&mut self, scheme: Scheme, status: EvalStatus, cost_so_far: u64) {
        self.records.push(EvalRecord::failure(scheme, status, cost_so_far));
    }

    /// Number of evaluations that ended in a failure.
    pub fn failed_count(&self) -> usize {
        self.records.iter().filter(|r| !r.is_feasible()).count()
    }

    /// Indices of Pareto-optimal records on `[AR, PR]` among those meeting
    /// the target `PR ≥ γ` (the paper's final-output rule). Failed
    /// evaluations are never feasible.
    pub fn pareto_indices(&self, gamma: f32) -> Vec<usize> {
        let feasible: Vec<usize> = (0..self.records.len())
            .filter(|&i| self.records[i].is_feasible() && self.records[i].pr >= gamma)
            .collect();
        let points: Vec<(f32, f32)> =
            feasible.iter().map(|&i| (self.records[i].ar, self.records[i].pr)).collect();
        pareto::pareto_front(&points)
            .into_iter()
            .map(|k| feasible[k])
            .collect()
    }

    /// The Pareto-optimal record with the highest accuracy (the "best
    /// compression scheme" the paper reports), if any is feasible.
    pub fn best(&self, gamma: f32) -> Option<&EvalRecord> {
        self.pareto_indices(gamma)
            .into_iter()
            .map(|i| &self.records[i])
            .max_by(|a, b| a.acc.total_cmp(&b.acc))
    }

    /// `(cost, best feasible accuracy so far)` curve — Fig. 4's
    /// accuracy-vs-search-time series.
    pub fn best_acc_curve(&self, gamma: f32) -> Vec<(u64, f32)> {
        let mut best = f32::NEG_INFINITY;
        let mut curve = Vec::new();
        for r in &self.records {
            if r.is_feasible() && r.pr >= gamma && r.acc > best {
                best = r.acc;
            }
            if best.is_finite() {
                curve.push((r.cost_so_far, best));
            }
        }
        curve
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(pr: f32, ar: f32, acc: f32, cost: u64) -> EvalRecord {
        EvalRecord {
            scheme: vec![],
            pr,
            fr: pr,
            ar,
            acc,
            params: 100,
            flops: 100,
            cost_so_far: cost,
            status: EvalStatus::Ok,
        }
    }

    #[test]
    fn pareto_respects_gamma() {
        let mut h = SearchHistory::new("test");
        h.records.push(rec(0.1, 0.5, 0.9, 1)); // infeasible (pr < γ)
        h.records.push(rec(0.4, 0.0, 0.8, 2));
        h.records.push(rec(0.5, -0.1, 0.7, 3));
        let front = h.pareto_indices(0.3);
        assert!(!front.contains(&0));
        assert!(front.contains(&1));
        assert!(front.contains(&2));
    }

    #[test]
    fn best_is_highest_accuracy_on_front() {
        let mut h = SearchHistory::new("test");
        h.records.push(rec(0.4, 0.02, 0.82, 1));
        h.records.push(rec(0.35, 0.05, 0.84, 2));
        h.records.push(rec(0.6, -0.2, 0.64, 3));
        let best = h.best(0.3).unwrap();
        assert!((best.acc - 0.84).abs() < 1e-6);
    }

    #[test]
    fn curve_is_monotone() {
        let mut h = SearchHistory::new("test");
        h.records.push(rec(0.4, -0.1, 0.7, 1));
        h.records.push(rec(0.4, -0.3, 0.5, 2));
        h.records.push(rec(0.4, 0.1, 0.9, 3));
        let curve = h.best_acc_curve(0.3);
        assert_eq!(curve.len(), 3);
        assert!(curve.windows(2).all(|w| w[1].1 >= w[0].1));
        assert!((curve[2].1 - 0.9).abs() < 1e-6);
    }

    #[test]
    fn empty_history_has_no_best() {
        let h = SearchHistory::new("test");
        assert!(h.best(0.3).is_none());
        assert_eq!(h.total_cost(), 0);
    }

    #[test]
    fn roundtrips_through_json() {
        let mut h = SearchHistory::new("roundtrip");
        h.records.push(rec(0.4, 0.02, 0.82, 7));
        h.push_failure(vec![3, 1], EvalStatus::Panicked("boom: at step".into()), 9);
        h.push_failure(vec![2], EvalStatus::Diverged, 12);
        h.push_failure(vec![4], EvalStatus::TimedOut, 15);
        let text = h.to_json().to_string_pretty();
        let back = SearchHistory::from_json(&automc_json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.algorithm, "roundtrip");
        assert_eq!(back.records.len(), 4);
        assert_eq!(back.records[0].cost_so_far, 7);
        assert_eq!(back.records[1].status, EvalStatus::Panicked("boom: at step".into()));
        assert_eq!(back.records[2].status, EvalStatus::Diverged);
        assert_eq!(back.records[3].status, EvalStatus::TimedOut);
        assert_eq!(back.failed_count(), 3);
    }

    #[test]
    fn legacy_records_without_status_are_ok() {
        let text = r#"{"algorithm":"old","records":[{"scheme":[1],"pr":0.4,"fr":0.4,
            "ar":0.1,"acc":0.8,"params":10,"flops":20,"cost_so_far":5}]}"#;
        let back = SearchHistory::from_json(&automc_json::parse(text).unwrap()).unwrap();
        assert_eq!(back.records[0].status, EvalStatus::Ok);
    }

    #[test]
    fn failures_are_infeasible_everywhere() {
        let mut h = SearchHistory::new("test");
        h.records.push(rec(0.4, 0.02, 0.82, 1));
        h.push_failure(vec![5], EvalStatus::Diverged, 2);
        h.push_failure(vec![6], EvalStatus::Panicked("kaboom".into()), 3);
        let front = h.pareto_indices(0.0);
        assert_eq!(front, vec![0], "failed records must stay off the front");
        assert!((h.best(0.0).unwrap().acc - 0.82).abs() < 1e-6);
        let curve = h.best_acc_curve(0.0);
        assert!(curve.iter().all(|&(_, acc)| (acc - 0.82).abs() < 1e-6));
        assert_eq!(h.failed_count(), 2);
        assert_eq!(h.total_cost(), 3, "failures still drain the budget");
    }
}
