//! Search-history logging: every scheme evaluation any algorithm performs
//! is recorded here. Tables 2–3 and Figures 4–6 are rendered from these
//! logs, and the bench harness serialises them to a JSON cache.

use crate::pareto;
use automc_compress::{Scheme, SchemeOutcome};
use automc_json::{field, obj, FromJson, ToJson, Value};

/// One evaluated scheme.
#[derive(Debug, Clone)]
pub struct EvalRecord {
    /// The strategy-id sequence.
    pub scheme: Scheme,
    /// `PR` vs the base model.
    pub pr: f32,
    /// `FR` vs the base model.
    pub fr: f32,
    /// `AR` vs the base model.
    pub ar: f32,
    /// Final accuracy.
    pub acc: f32,
    /// Final parameter count.
    pub params: usize,
    /// Final FLOPs.
    pub flops: u64,
    /// Cumulative budget units spent when this evaluation finished.
    pub cost_so_far: u64,
}

impl EvalRecord {
    /// Build from an execution outcome.
    pub fn from_outcome(scheme: Scheme, out: &SchemeOutcome, cost_so_far: u64) -> Self {
        EvalRecord {
            scheme,
            pr: out.pr,
            fr: out.fr,
            ar: out.ar,
            acc: out.metrics.acc,
            params: out.metrics.params,
            flops: out.metrics.flops,
            cost_so_far,
        }
    }
}

impl ToJson for EvalRecord {
    fn to_json(&self) -> Value {
        obj(vec![
            ("scheme", self.scheme.to_json()),
            ("pr", self.pr.to_json()),
            ("fr", self.fr.to_json()),
            ("ar", self.ar.to_json()),
            ("acc", self.acc.to_json()),
            ("params", self.params.to_json()),
            ("flops", self.flops.to_json()),
            ("cost_so_far", self.cost_so_far.to_json()),
        ])
    }
}

impl FromJson for EvalRecord {
    fn from_json(v: &Value) -> Option<Self> {
        Some(EvalRecord {
            scheme: field(v, "scheme")?,
            pr: field(v, "pr")?,
            fr: field(v, "fr")?,
            ar: field(v, "ar")?,
            acc: field(v, "acc")?,
            params: field(v, "params")?,
            flops: field(v, "flops")?,
            cost_so_far: field(v, "cost_so_far")?,
        })
    }
}

/// The full log of one search run.
#[derive(Debug, Clone, Default)]
pub struct SearchHistory {
    /// Algorithm name (for reporting).
    pub algorithm: String,
    /// Every evaluation, in execution order.
    pub records: Vec<EvalRecord>,
}

impl ToJson for SearchHistory {
    fn to_json(&self) -> Value {
        obj(vec![
            ("algorithm", self.algorithm.to_json()),
            ("records", self.records.to_json()),
        ])
    }
}

impl FromJson for SearchHistory {
    fn from_json(v: &Value) -> Option<Self> {
        Some(SearchHistory {
            algorithm: field(v, "algorithm")?,
            records: field(v, "records")?,
        })
    }
}

impl SearchHistory {
    /// Empty history for an algorithm.
    pub fn new(algorithm: impl Into<String>) -> Self {
        SearchHistory { algorithm: algorithm.into(), records: Vec::new() }
    }

    /// Total budget spent (cost of the last record).
    pub fn total_cost(&self) -> u64 {
        self.records.last().map_or(0, |r| r.cost_so_far)
    }

    /// Indices of Pareto-optimal records on `[AR, PR]` among those meeting
    /// the target `PR ≥ γ` (the paper's final-output rule).
    pub fn pareto_indices(&self, gamma: f32) -> Vec<usize> {
        let feasible: Vec<usize> = (0..self.records.len())
            .filter(|&i| self.records[i].pr >= gamma)
            .collect();
        let points: Vec<(f32, f32)> =
            feasible.iter().map(|&i| (self.records[i].ar, self.records[i].pr)).collect();
        pareto::pareto_front(&points)
            .into_iter()
            .map(|k| feasible[k])
            .collect()
    }

    /// The Pareto-optimal record with the highest accuracy (the "best
    /// compression scheme" the paper reports), if any is feasible.
    pub fn best(&self, gamma: f32) -> Option<&EvalRecord> {
        self.pareto_indices(gamma)
            .into_iter()
            .map(|i| &self.records[i])
            .max_by(|a, b| a.acc.total_cmp(&b.acc))
    }

    /// `(cost, best feasible accuracy so far)` curve — Fig. 4's
    /// accuracy-vs-search-time series.
    pub fn best_acc_curve(&self, gamma: f32) -> Vec<(u64, f32)> {
        let mut best = f32::NEG_INFINITY;
        let mut curve = Vec::new();
        for r in &self.records {
            if r.pr >= gamma && r.acc > best {
                best = r.acc;
            }
            if best.is_finite() {
                curve.push((r.cost_so_far, best));
            }
        }
        curve
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(pr: f32, ar: f32, acc: f32, cost: u64) -> EvalRecord {
        EvalRecord { scheme: vec![], pr, fr: pr, ar, acc, params: 100, flops: 100, cost_so_far: cost }
    }

    #[test]
    fn pareto_respects_gamma() {
        let mut h = SearchHistory::new("test");
        h.records.push(rec(0.1, 0.5, 0.9, 1)); // infeasible (pr < γ)
        h.records.push(rec(0.4, 0.0, 0.8, 2));
        h.records.push(rec(0.5, -0.1, 0.7, 3));
        let front = h.pareto_indices(0.3);
        assert!(!front.contains(&0));
        assert!(front.contains(&1));
        assert!(front.contains(&2));
    }

    #[test]
    fn best_is_highest_accuracy_on_front() {
        let mut h = SearchHistory::new("test");
        h.records.push(rec(0.4, 0.02, 0.82, 1));
        h.records.push(rec(0.35, 0.05, 0.84, 2));
        h.records.push(rec(0.6, -0.2, 0.64, 3));
        let best = h.best(0.3).unwrap();
        assert!((best.acc - 0.84).abs() < 1e-6);
    }

    #[test]
    fn curve_is_monotone() {
        let mut h = SearchHistory::new("test");
        h.records.push(rec(0.4, -0.1, 0.7, 1));
        h.records.push(rec(0.4, -0.3, 0.5, 2));
        h.records.push(rec(0.4, 0.1, 0.9, 3));
        let curve = h.best_acc_curve(0.3);
        assert_eq!(curve.len(), 3);
        assert!(curve.windows(2).all(|w| w[1].1 >= w[0].1));
        assert!((curve[2].1 - 0.9).abs() < 1e-6);
    }

    #[test]
    fn empty_history_has_no_best() {
        let h = SearchHistory::new("test");
        assert!(h.best(0.3).is_none());
        assert_eq!(h.total_cost(), 0);
    }

    #[test]
    fn roundtrips_through_json() {
        let mut h = SearchHistory::new("roundtrip");
        h.records.push(rec(0.4, 0.02, 0.82, 7));
        let text = h.to_json().to_string_pretty();
        let back = SearchHistory::from_json(&automc_json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.algorithm, "roundtrip");
        assert_eq!(back.records.len(), 1);
        assert_eq!(back.records[0].cost_so_far, 7);
    }
}
