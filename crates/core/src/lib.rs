//! # automc-core
//!
//! The AutoMC search strategies — the paper's primary contribution — plus
//! the AutoML baselines it is compared against.
//!
//! * [`SearchContext`] — one automatic-model-compression problem instance
//!   (Definition 1): base model, target reduction rate γ, the strategy
//!   space, the 10% search sample, and an evaluation budget.
//! * [`Fmo`] — the multi-objective step evaluator (Fig. 3): an RNN encodes
//!   the strategy sequence, an MLP head predicts the step deltas
//!   `(AR_step, PR_step)` for a candidate next strategy; trained online by
//!   Eq. 5.
//! * [`progressive_search`] — Algorithm 2. Evaluated schemes keep their
//!   compressed model snapshots, so extending a scheme by one strategy
//!   costs one strategy execution (the efficiency the paper claims for
//!   progressive exploration).
//! * Baselines: [`random_search`], [`evolution_search`] (multi-objective
//!   EA), [`rl_search`] (recurrent controller + REINFORCE) — all evaluate
//!   *complete* schemes, as in the paper.
//! * [`SearchHistory`] — per-evaluation log all algorithms emit; the
//!   tables and figures are rendered from it.

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod context;
mod evolution;
mod fmo;
pub mod history;
pub mod journal;
pub mod pareto;
pub mod progress;
mod progressive;
mod random;
mod rl;
mod statebytes;
pub mod transfer;

pub use context::{SearchBudget, SearchContext};
pub use evolution::{evolution_search, evolution_search_journaled, EvolutionConfig};
pub use fmo::Fmo;
pub use history::{EvalRecord, EvalStatus, SearchHistory};
pub use journal::JournalOptions;
pub use progress::{RoundControl, RoundEvent, RoundHook, RoundObserver};
pub use progressive::{progressive_search, progressive_search_journaled, AutoMcConfig};
pub use random::{random_search, random_search_journaled};
pub use rl::{rl_search, rl_search_journaled, RlConfig};
