//! Pareto-front utilities for the two-objective `[AR, PR]` optimisation.

/// `a` dominates `b` when it is no worse on both objectives and strictly
/// better on at least one (both objectives maximised).
pub fn dominates(a: (f32, f32), b: (f32, f32)) -> bool {
    a.0 >= b.0 && a.1 >= b.1 && (a.0 > b.0 || a.1 > b.1)
}

/// Indices of the Pareto-optimal points (maximising both coordinates).
pub fn pareto_front(points: &[(f32, f32)]) -> Vec<usize> {
    let mut front = Vec::new();
    'outer: for (i, &p) in points.iter().enumerate() {
        for (j, &q) in points.iter().enumerate() {
            if i != j && (dominates(q, p) || (q == p && j < i)) {
                continue 'outer; // dominated, or duplicate kept once
            }
        }
        front.push(i);
    }
    front
}

/// Fast non-dominated sorting (NSGA-II): returns the front index of every
/// point (0 = non-dominated).
pub fn non_dominated_ranks(points: &[(f32, f32)]) -> Vec<usize> {
    let n = points.len();
    let mut dominated_by = vec![0usize; n]; // count of dominators
    let mut dominates_list: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        for j in 0..n {
            if i != j && dominates(points[i], points[j]) {
                dominates_list[i].push(j);
            }
        }
    }
    for (i, doms) in dominates_list.iter().enumerate() {
        let _ = i;
        for &j in doms {
            dominated_by[j] += 1;
        }
    }
    let mut rank = vec![usize::MAX; n];
    let mut current: Vec<usize> = (0..n).filter(|&i| dominated_by[i] == 0).collect();
    let mut level = 0usize;
    while !current.is_empty() {
        let mut next = Vec::new();
        for &i in &current {
            rank[i] = level;
            for &j in &dominates_list[i] {
                dominated_by[j] -= 1;
                if dominated_by[j] == 0 {
                    next.push(j);
                }
            }
        }
        current = next;
        level += 1;
    }
    rank
}

/// Crowding distance within one front (NSGA-II diversity measure).
pub fn crowding_distance(points: &[(f32, f32)], members: &[usize]) -> Vec<f32> {
    let m = members.len();
    let mut dist = vec![0.0f32; m];
    if m <= 2 {
        return vec![f32::INFINITY; m];
    }
    for obj in 0..2 {
        let get = |i: usize| if obj == 0 { points[members[i]].0 } else { points[members[i]].1 };
        let mut order: Vec<usize> = (0..m).collect();
        order.sort_by(|&a, &b| get(a).total_cmp(&get(b)));
        dist[order[0]] = f32::INFINITY;
        dist[order[m - 1]] = f32::INFINITY;
        let span = (get(order[m - 1]) - get(order[0])).abs().max(1e-12);
        for w in 1..m - 1 {
            dist[order[w]] += (get(order[w + 1]) - get(order[w - 1])).abs() / span;
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_basics() {
        assert!(dominates((1.0, 1.0), (0.0, 0.0)));
        assert!(dominates((1.0, 0.0), (0.0, 0.0)));
        assert!(!dominates((1.0, 0.0), (0.0, 1.0)));
        assert!(!dominates((1.0, 1.0), (1.0, 1.0)), "equal points do not dominate");
    }

    #[test]
    fn front_excludes_dominated() {
        let pts = vec![(0.0, 1.0), (1.0, 0.0), (0.5, 0.5), (0.2, 0.2)];
        let front = pareto_front(&pts);
        assert_eq!(front, vec![0, 1, 2]);
    }

    #[test]
    fn duplicates_kept_once() {
        let pts = vec![(1.0, 1.0), (1.0, 1.0)];
        assert_eq!(pareto_front(&pts), vec![0]);
    }

    #[test]
    fn ranks_are_layered() {
        let pts = vec![(2.0, 2.0), (1.0, 1.0), (0.0, 0.0), (2.5, 1.5)];
        let ranks = non_dominated_ranks(&pts);
        assert_eq!(ranks[0], 0);
        assert_eq!(ranks[3], 0);
        assert_eq!(ranks[1], 1);
        assert_eq!(ranks[2], 2);
    }

    #[test]
    fn crowding_boundary_is_infinite() {
        let pts = vec![(0.0, 1.0), (0.5, 0.5), (1.0, 0.0)];
        let members = vec![0, 1, 2];
        let d = crowding_distance(&pts, &members);
        assert!(d[0].is_infinite());
        assert!(d[2].is_infinite());
        assert!(d[1].is_finite() && d[1] > 0.0);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(pareto_front(&[]).is_empty());
        assert_eq!(pareto_front(&[(1.0, 2.0)]), vec![0]);
        assert_eq!(non_dominated_ranks(&[]), Vec::<usize>::new());
    }
}
