use automc_compress::{ExecConfig, Metrics, StrategySpace};
use automc_data::ImageSet;
use automc_models::ConvNet;

/// Evaluation budget in simulated cost units (see
/// [`automc_compress::EvalCost::units`]) — the stand-in for the paper's
/// equal-GPU-time protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchBudget {
    /// Total units each algorithm may spend.
    pub units: u64,
}

impl SearchBudget {
    /// A budget of `units`.
    pub fn new(units: u64) -> Self {
        SearchBudget { units }
    }
}

/// One automatic-model-compression problem instance (Definition 1).
pub struct SearchContext<'a> {
    /// The strategy space `C`.
    pub space: &'a StrategySpace,
    /// The pre-trained model `M`.
    pub base_model: &'a ConvNet,
    /// `P(M)`, `F(M)`, `A(M)` of the base model on `eval_set`.
    pub base_metrics: Metrics,
    /// Training data visible to strategies during search (the paper's 10%
    /// sample of `D`).
    pub search_train: &'a ImageSet,
    /// Held-out evaluation data for `A(M)`.
    pub eval_set: &'a ImageSet,
    /// Execution-scale configuration.
    pub exec: ExecConfig,
    /// Maximum scheme length `L` (paper: 5).
    pub max_len: usize,
    /// Target parameter-reduction rate γ.
    pub gamma: f32,
    /// Evaluation budget.
    pub budget: SearchBudget,
}

impl SearchContext<'_> {
    /// Whether a scheme may still be extended.
    pub fn can_extend(&self, len: usize) -> bool {
        len < self.max_len
    }

    /// The problem-instance words every search folds into its run
    /// fingerprint (see [`crate::journal::fingerprint`]): a journal may
    /// only be resumed by a run with an identical instance.
    pub fn fingerprint_words(&self) -> [u64; 7] {
        [
            self.space.len() as u64,
            self.budget.units,
            self.max_len as u64,
            self.gamma.to_bits() as u64,
            self.base_metrics.params as u64,
            self.base_metrics.flops,
            self.base_metrics.acc.to_bits() as u64,
        ]
    }
}
