//! `F_mo` — the multi-objective step evaluator (paper Fig. 3, Eq. 4–5).
//!
//! An RNN encodes the evaluated scheme `seq = (s₁ → … → s_t)` from the
//! high-level strategy embeddings of Algorithm 1; an MLP head takes the
//! sequence encoding, a candidate strategy's embedding, and the current
//! model state `(accuracy, parameter fraction)` and predicts the step
//! deltas `(AR_step, PR_step)` the candidate would produce. It is trained
//! online on the real deltas of every evaluation performed so far (Eq. 5).

use automc_compress::{Scheme, StrategyId};
use automc_tensor::nn::{Layer, Linear, Relu, Rnn};
use automc_tensor::optim::{Adam, AdamConfig, Optimizer, Param};
use automc_tensor::{loss, par, Rng, Tensor};
use rand::seq::SliceRandom;

/// One observed step: `(seq, s, state) → (AR_step, PR_step)`.
#[derive(Debug, Clone)]
pub struct StepSample {
    /// The prefix scheme.
    pub seq: Scheme,
    /// The strategy appended to it.
    pub cand: StrategyId,
    /// `(A(seq[M]), P(seq[M]) / P(M))` before the step.
    pub state: [f32; 2],
    /// Observed accuracy-change rate.
    pub ar_step: f32,
    /// Observed parameter-reduction rate.
    pub pr_step: f32,
}

/// The MLP head of `F_mo`. A concrete (cloneable) stack rather than a
/// `Sequential` of boxed layers, so candidate-scoring shards can each run
/// forward on their own copy concurrently.
#[derive(Clone)]
struct Head {
    l1: Linear,
    act: Relu,
    l2: Linear,
}

impl Head {
    fn new(in_dim: usize, rng: &mut Rng) -> Self {
        Head {
            l1: Linear::new(in_dim, 32, rng),
            act: Relu::new(),
            l2: Linear::new(32, 2, rng),
        }
    }

    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let a = self.l1.forward(x, train);
        let b = self.act.forward(&a, train);
        self.l2.forward(&b, train)
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let g = self.l2.backward(grad);
        let g = self.act.backward(&g);
        self.l1.backward(&g)
    }

    fn params_mut(&mut self) -> Vec<Param<'_>> {
        let mut v = self.l1.params_mut();
        v.extend(self.act.params_mut());
        v.extend(self.l2.params_mut());
        v
    }
}

const STATE_MAGIC: &[u8; 8] = b"AUTOMCf1";

use crate::statebytes::{read_tensor_list, take_bytes, write_tensor_list};

/// The multi-objective evaluator.
pub struct Fmo {
    rnn: Rnn,
    head: Head,
    opt: Adam,
    emb: Vec<Vec<f32>>,
    emb_dim: usize,
    hidden: usize,
    /// Replay buffer of every observed step.
    pub samples: Vec<StepSample>,
}

impl Fmo {
    /// Build from pre-learned strategy embeddings (Algorithm 1 output).
    pub fn new(embeddings: Vec<Vec<f32>>, rng: &mut Rng) -> Self {
        let emb_dim = embeddings.first().map_or(8, |e| e.len());
        let hidden = 32;
        let rnn = Rnn::new(emb_dim, hidden, rng);
        let head = Head::new(hidden + emb_dim + 2, rng);
        Fmo {
            rnn,
            head,
            opt: Adam::new(AdamConfig::default()),
            emb: embeddings,
            emb_dim,
            hidden,
            samples: Vec::new(),
        }
    }

    fn embedding_row(&self, sid: StrategyId) -> Tensor {
        Tensor::from_slice(&[1, self.emb_dim], &self.emb[sid])
    }

    /// Encode a scheme prefix (empty scheme → zero state).
    fn encode(&mut self, seq: &Scheme) -> Tensor {
        self.rnn.reset();
        let mut h = self.rnn.init_state(1);
        for &sid in seq {
            let x = self.embedding_row(sid);
            h = self.rnn.step(&x, &h);
        }
        h
    }

    /// Predict `(AR_step, PR_step)` for every candidate appended to `seq`.
    pub fn predict_batch(
        &mut self,
        seq: &Scheme,
        state: [f32; 2],
        candidates: &[StrategyId],
    ) -> Vec<(f32, f32)> {
        if candidates.is_empty() {
            return Vec::new();
        }
        let h = self.encode(seq);
        self.rnn.reset();
        let width = self.hidden + self.emb_dim + 2;
        let mut x = Tensor::zeros(&[candidates.len(), width]);
        for (row, &cand) in candidates.iter().enumerate() {
            let dst = x.row_mut(row);
            dst[..self.hidden].copy_from_slice(h.row(0));
            dst[self.hidden..self.hidden + self.emb_dim].copy_from_slice(&self.emb[cand]);
            dst[self.hidden + self.emb_dim] = state[0];
            dst[self.hidden + self.emb_dim + 1] = state[1];
        }
        let shards = par::current_threads().min(candidates.len());
        if shards <= 1 {
            let y = self.head.forward(&x, false);
            return (0..candidates.len())
                .map(|i| (y.row(i)[0], y.row(i)[1]))
                .collect();
        }
        // Shard candidate rows across the pool, one head clone per shard.
        // Each output row is an independent dot product, so the sharded
        // result is bitwise identical to the full-batch forward.
        let ranges = par::split_ranges(candidates.len(), shards);
        let head = &self.head;
        let xd = x.data();
        let per_shard: Vec<Vec<(f32, f32)>> = par::par_map(ranges.len(), |s| {
            let r = ranges[s].clone();
            let xs = Tensor::from_slice(&[r.len(), width], &xd[r.start * width..r.end * width]);
            let mut local = head.clone();
            let y = local.forward(&xs, false);
            (0..r.len()).map(|i| (y.row(i)[0], y.row(i)[1])).collect()
        });
        per_shard.concat()
    }

    /// Record an observed step for future training.
    pub fn observe(&mut self, sample: StepSample) {
        self.samples.push(sample);
    }

    /// Every learned tensor, in the same order [`Fmo::train_one`] hands
    /// them to the optimizer (so Adam's position-keyed moments line up).
    fn state_tensors(&self) -> Vec<&Tensor> {
        vec![
            &self.rnn.w_xh,
            &self.rnn.w_hh,
            &self.rnn.b,
            &self.head.l1.weight,
            &self.head.l1.bias,
            &self.head.l2.weight,
            &self.head.l2.bias,
        ]
    }

    fn state_tensors_mut(&mut self) -> Vec<&mut Tensor> {
        vec![
            &mut self.rnn.w_xh,
            &mut self.rnn.w_hh,
            &mut self.rnn.b,
            &mut self.head.l1.weight,
            &mut self.head.l1.bias,
            &mut self.head.l2.weight,
            &mut self.head.l2.bias,
        ]
    }

    /// Serialise the evaluator's learned state — weights, Adam moments,
    /// and the replay buffer — so a resumed search continues training the
    /// exact same evaluator. Strategy embeddings are *not* included; they
    /// are an input recreated at construction.
    pub fn state_to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(STATE_MAGIC);
        let opt = self.opt.export_state();
        write_tensor_list(&mut out, &self.state_tensors());
        out.extend_from_slice(&opt.t.to_le_bytes());
        write_tensor_list(&mut out, &opt.m.iter().collect::<Vec<_>>());
        write_tensor_list(&mut out, &opt.v.iter().collect::<Vec<_>>());
        out.extend_from_slice(&(self.samples.len() as u64).to_le_bytes());
        for s in &self.samples {
            out.extend_from_slice(&(s.seq.len() as u64).to_le_bytes());
            for &sid in &s.seq {
                out.extend_from_slice(&(sid as u64).to_le_bytes());
            }
            out.extend_from_slice(&(s.cand as u64).to_le_bytes());
            for v in [s.state[0], s.state[1], s.ar_step, s.pr_step] {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        out
    }

    /// Restore state captured by [`Fmo::state_to_bytes`] into an evaluator
    /// built with the same embeddings. Returns `None` (leaving `self`
    /// partially overwritten and unusable) on a corrupt or mismatched
    /// stream — callers should discard the evaluator in that case.
    pub fn restore_state(&mut self, bytes: &[u8]) -> Option<()> {
        let mut r = bytes;
        let magic = take_bytes(&mut r, 8)?;
        if magic != STATE_MAGIC {
            return None;
        }
        let weights = read_tensor_list(&mut r)?;
        let mut targets = self.state_tensors_mut();
        if weights.len() != targets.len() {
            return None;
        }
        for (dst, src) in targets.iter_mut().zip(weights) {
            if dst.dims() != src.dims() {
                return None;
            }
            **dst = src;
        }
        let t = u64::from_le_bytes(take_bytes(&mut r, 8)?.try_into().ok()?);
        let m = read_tensor_list(&mut r)?;
        let v = read_tensor_list(&mut r)?;
        self.opt.import_state(automc_tensor::optim::AdamState { m, v, t });
        let count = u64::from_le_bytes(take_bytes(&mut r, 8)?.try_into().ok()?) as usize;
        if count > 10_000_000 {
            return None;
        }
        let mut samples = Vec::with_capacity(count);
        for _ in 0..count {
            let seq_len = u64::from_le_bytes(take_bytes(&mut r, 8)?.try_into().ok()?) as usize;
            if seq_len > 10_000 {
                return None;
            }
            let mut seq = Vec::with_capacity(seq_len);
            for _ in 0..seq_len {
                seq.push(u64::from_le_bytes(take_bytes(&mut r, 8)?.try_into().ok()?) as usize);
            }
            let cand = u64::from_le_bytes(take_bytes(&mut r, 8)?.try_into().ok()?) as usize;
            let mut f = [0f32; 4];
            for slot in &mut f {
                *slot = f32::from_le_bytes(take_bytes(&mut r, 4)?.try_into().ok()?);
            }
            samples.push(StepSample {
                seq,
                cand,
                state: [f[0], f[1]],
                ar_step: f[2],
                pr_step: f[3],
            });
        }
        if !r.is_empty() {
            return None;
        }
        self.samples = samples;
        Some(())
    }

    /// Train on the replay buffer (Eq. 5). Returns the mean squared error
    /// of the final epoch.
    pub fn train(&mut self, epochs: usize, rng: &mut Rng) -> f32 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut last = 0.0;
        for _ in 0..epochs {
            let mut order: Vec<usize> = (0..self.samples.len()).collect();
            order.shuffle(rng);
            let mut total = 0.0f32;
            for &i in &order {
                let sample = self.samples[i].clone();
                total += self.train_one(&sample);
            }
            last = total / order.len() as f32;
        }
        last
    }

    fn train_one(&mut self, s: &StepSample) -> f32 {
        // Forward: RNN (train) → head (train).
        self.rnn.reset();
        let mut h = self.rnn.init_state(1);
        for &sid in &s.seq {
            let x = self.embedding_row(sid);
            h = self.rnn.step(&x, &h);
        }
        let width = self.hidden + self.emb_dim + 2;
        let mut x = Tensor::zeros(&[1, width]);
        {
            let dst = x.row_mut(0);
            dst[..self.hidden].copy_from_slice(h.row(0));
            dst[self.hidden..self.hidden + self.emb_dim].copy_from_slice(&self.emb[s.cand]);
            dst[self.hidden + self.emb_dim] = s.state[0];
            dst[self.hidden + self.emb_dim + 1] = s.state[1];
        }
        let pred = self.head.forward(&x, true);
        let target = Tensor::from_slice(&[1, 2], &[s.ar_step, s.pr_step]);
        let (mse, grad) = loss::mse(&pred, &target);
        let grad_in = self.head.backward(&grad);
        // Route the sequence-encoding part of the gradient through the RNN.
        if !s.seq.is_empty() {
            let gh = Tensor::from_slice(&[1, self.hidden], &grad_in.row(0)[..self.hidden]);
            let mut slots: Vec<Option<Tensor>> = vec![None; s.seq.len()];
            *slots.last_mut().expect("non-empty") = Some(gh);
            let _ = self.rnn.backward_through_time(&slots);
        } else {
            self.rnn.reset();
        }
        // Joint step over RNN + head parameters.
        let mut params = self.rnn.params_mut();
        params.extend(self.head.params_mut());
        self.opt.step(&mut params);
        mse
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use automc_tensor::rng_from_seed;

    fn toy_embeddings(n: usize, dim: usize, rng: &mut Rng) -> Vec<Vec<f32>> {
        (0..n)
            .map(|_| Tensor::randn(&[dim], 1.0, rng).into_vec())
            .collect()
    }

    #[test]
    fn predict_shapes() {
        let mut rng = rng_from_seed(300);
        let emb = toy_embeddings(10, 8, &mut rng);
        let mut fmo = Fmo::new(emb, &mut rng);
        let preds = fmo.predict_batch(&vec![1, 2], [0.8, 0.9], &[0, 3, 7]);
        assert_eq!(preds.len(), 3);
        assert!(preds.iter().all(|(a, p)| a.is_finite() && p.is_finite()));
        assert!(fmo.predict_batch(&vec![], [0.8, 1.0], &[]).is_empty());
    }

    #[test]
    fn training_fits_structured_targets() {
        // Candidates 0..5 yield PR_step = 0.1·id — learnable from the
        // embedding alone.
        let mut rng = rng_from_seed(301);
        let emb = toy_embeddings(6, 8, &mut rng);
        let mut fmo = Fmo::new(emb, &mut rng);
        for id in 0..6usize {
            for _ in 0..4 {
                fmo.observe(StepSample {
                    seq: vec![],
                    cand: id,
                    state: [0.8, 1.0],
                    ar_step: -0.05,
                    pr_step: 0.1 * id as f32,
                });
            }
        }
        let first = fmo.train(1, &mut rng);
        let last = fmo.train(60, &mut rng);
        assert!(last < first * 0.5, "loss should halve: {first} → {last}");
        let preds = fmo.predict_batch(&vec![], [0.8, 1.0], &[0, 5]);
        assert!(
            preds[1].1 > preds[0].1,
            "predicted PR_step must order candidates: {preds:?}"
        );
    }

    #[test]
    fn sequence_context_affects_prediction() {
        let mut rng = rng_from_seed(302);
        let emb = toy_embeddings(6, 8, &mut rng);
        let mut fmo = Fmo::new(emb, &mut rng);
        // The same candidate yields different PR depending on the prefix.
        for _ in 0..30 {
            fmo.observe(StepSample {
                seq: vec![],
                cand: 0,
                state: [0.8, 1.0],
                ar_step: 0.0,
                pr_step: 0.4,
            });
            fmo.observe(StepSample {
                seq: vec![1, 2],
                cand: 0,
                state: [0.8, 1.0],
                ar_step: 0.0,
                pr_step: 0.05,
            });
        }
        fmo.train(40, &mut rng);
        let fresh = fmo.predict_batch(&vec![], [0.8, 1.0], &[0])[0].1;
        let after = fmo.predict_batch(&vec![1, 2], [0.8, 1.0], &[0])[0].1;
        assert!(
            fresh > after + 0.1,
            "prefix must matter: fresh {fresh} vs after {after}"
        );
    }

    #[test]
    fn state_roundtrip_resumes_training_identically() {
        let mut rng = rng_from_seed(304);
        let emb = toy_embeddings(6, 8, &mut rng);
        let samples: Vec<StepSample> = (0..12)
            .map(|i| StepSample {
                seq: if i % 2 == 0 { vec![] } else { vec![i % 6] },
                cand: i % 6,
                state: [0.8, 1.0],
                ar_step: -0.01 * i as f32,
                pr_step: 0.05 * i as f32,
            })
            .collect();

        // Straight run: 6 training epochs.
        let mut straight = Fmo::new(emb.clone(), &mut rng_from_seed(1));
        for s in &samples {
            straight.observe(s.clone());
        }
        let mut rng_s = rng_from_seed(2);
        straight.train(3, &mut rng_s);
        let snapshot = straight.state_to_bytes();
        straight.train(3, &mut rng_s);

        // Resumed run: restore the 3-epoch snapshot into a fresh evaluator
        // (different init RNG on purpose — weights come from the snapshot)
        // and train the remaining epochs with the same RNG stream position.
        let mut resumed = Fmo::new(emb, &mut rng_from_seed(99));
        resumed.restore_state(&snapshot).expect("snapshot restores");
        assert_eq!(resumed.samples.len(), samples.len());
        // Advance the RNG past the first 3 epochs' shuffles exactly (each
        // training epoch draws from the RNG only to shuffle the buffer).
        let mut rng_r = rng_from_seed(2);
        for _ in 0..3 {
            let mut order: Vec<usize> = (0..samples.len()).collect();
            order.shuffle(&mut rng_r);
        }
        resumed.train(3, &mut rng_r);

        let a = straight.predict_batch(&vec![1, 2], [0.8, 0.9], &[0, 3, 5]);
        let b = resumed.predict_batch(&vec![1, 2], [0.8, 0.9], &[0, 3, 5]);
        for ((a1, a2), (b1, b2)) in a.iter().zip(&b) {
            assert_eq!(a1.to_bits(), b1.to_bits());
            assert_eq!(a2.to_bits(), b2.to_bits());
        }
    }

    #[test]
    fn restore_rejects_corrupt_state() {
        let mut rng = rng_from_seed(305);
        let emb = toy_embeddings(4, 8, &mut rng);
        let fmo = Fmo::new(emb.clone(), &mut rng);
        let bytes = fmo.state_to_bytes();
        let mut truncated = bytes.clone();
        truncated.truncate(bytes.len() - 3);
        assert!(Fmo::new(emb.clone(), &mut rng).restore_state(&truncated).is_none());
        let mut bad_magic = bytes;
        bad_magic[0] ^= 0xFF;
        assert!(Fmo::new(emb, &mut rng).restore_state(&bad_magic).is_none());
    }

    #[test]
    fn observe_grows_replay_buffer() {
        let mut rng = rng_from_seed(303);
        let emb = toy_embeddings(3, 4, &mut rng);
        let mut fmo = Fmo::new(emb, &mut rng);
        assert_eq!(fmo.samples.len(), 0);
        fmo.observe(StepSample { seq: vec![0], cand: 1, state: [0.5, 0.5], ar_step: 0.0, pr_step: 0.1 });
        assert_eq!(fmo.samples.len(), 1);
        assert_eq!(fmo.train(0, &mut rng), 0.0);
    }
}
