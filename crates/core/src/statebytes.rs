//! Little-endian byte codecs shared by the journalable learner states
//! (`F_mo`'s snapshot, the RL controller, the EA population). All readers
//! are bounds-checked and return `None` on truncation or implausible
//! sizes — a corrupt state stream must fail restore, never build garbage.

use automc_tensor::Tensor;

/// Split `n` bytes off the front of `r`; `None` if fewer remain.
pub(crate) fn take_bytes<'a>(r: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
    if r.len() < n {
        return None;
    }
    let (head, tail) = r.split_at(n);
    *r = tail;
    Some(head)
}

/// Append a `u64` in little-endian.
pub(crate) fn write_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Read a [`write_u64`] value.
pub(crate) fn read_u64(r: &mut &[u8]) -> Option<u64> {
    Some(u64::from_le_bytes(take_bytes(r, 8)?.try_into().ok()?))
}

/// Append an `f32` in little-endian.
pub(crate) fn write_f32(out: &mut Vec<u8>, v: f32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Read a [`write_f32`] value.
pub(crate) fn read_f32(r: &mut &[u8]) -> Option<f32> {
    Some(f32::from_le_bytes(take_bytes(r, 4)?.try_into().ok()?))
}

/// Append a counted list of tensors (count, then per-tensor rank, dims,
/// and raw f32 data).
pub(crate) fn write_tensor_list(out: &mut Vec<u8>, tensors: &[&Tensor]) {
    write_u64(out, tensors.len() as u64);
    for t in tensors {
        write_u64(out, t.dims().len() as u64);
        for &d in t.dims() {
            write_u64(out, d as u64);
        }
        for &v in t.data() {
            write_f32(out, v);
        }
    }
}

/// Read a [`write_tensor_list`] list, rejecting implausible counts,
/// ranks, and element totals.
pub(crate) fn read_tensor_list(r: &mut &[u8]) -> Option<Vec<Tensor>> {
    let count = read_u64(r)? as usize;
    if count > 1_000 {
        return None;
    }
    let mut tensors = Vec::with_capacity(count);
    for _ in 0..count {
        let rank = read_u64(r)? as usize;
        if rank > 8 {
            return None;
        }
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            dims.push(read_u64(r)? as usize);
        }
        let numel: usize = dims.iter().product();
        if numel > 100_000_000 {
            return None;
        }
        let mut data = vec![0f32; numel];
        for v in &mut data {
            *v = read_f32(r)?;
        }
        tensors.push(Tensor::from_vec(&dims, data).ok()?);
    }
    Some(tensors)
}
