//! Crash/resume determinism: a progressive search that is killed after
//! round `k` and resumed from its journal must produce a final history —
//! and therefore a final Pareto set — bitwise identical to a run that was
//! never interrupted, at any thread count.

use automc_compress::{ExecConfig, Metrics, StrategySpace};
use automc_core::{
    progressive_search_journaled, AutoMcConfig, JournalOptions, SearchBudget,
    SearchContext, SearchHistory,
};
use automc_data::{DatasetSpec, ImageSet, SyntheticKind};
use automc_json::ToJson;
use automc_models::{resnet, ConvNet};
use automc_tensor::{par, rng_from_seed};
use std::path::PathBuf;

const SEED: u64 = 777;

fn fixture() -> (ConvNet, ImageSet, ImageSet) {
    let mut rng = rng_from_seed(SEED);
    let (train_set, eval_set) = DatasetSpec {
        train: 100,
        test: 50,
        noise: 0.25,
        ..DatasetSpec::new(SyntheticKind::Cifar10Like)
    }
    .generate();
    let base = resnet(20, 4, 10, (3, 8, 8), &mut rng);
    (base, train_set, eval_set)
}

fn run(
    base: &ConvNet,
    train_set: &ImageSet,
    eval_set: &ImageSet,
    opts: &JournalOptions,
) -> SearchHistory {
    let mut base_model = base.clone_net();
    let base_metrics = Metrics::measure(&mut base_model, eval_set);
    let space = StrategySpace::full();
    let ctx = SearchContext {
        space: &space,
        base_model: base,
        base_metrics,
        search_train: train_set,
        eval_set,
        exec: ExecConfig { pretrain_epochs: 2.0, ..Default::default() },
        max_len: 2,
        gamma: 0.2,
        budget: SearchBudget::new(5_000),
    };
    let emb: Vec<Vec<f32>> = (0..space.len())
        .map(|i| vec![(i % 97) as f32 / 97.0, (i % 13) as f32 / 13.0, 0.5, 0.1])
        .collect();
    let cfg = AutoMcConfig { candidate_sample: 32, ..Default::default() };
    // Every run restarts the RNG from the same seed: resuming must restore
    // the stream position from the journal, not rely on the caller.
    let mut rng = rng_from_seed(SEED + 1);
    progressive_search_journaled(&ctx, emb, &cfg, &mut rng, opts)
}

/// Canonical byte representation of a history, for bitwise comparison.
fn fingerprint(h: &SearchHistory) -> String {
    h.to_json().to_string_pretty()
}

fn journal_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "automc-resume-test-{}-{tag}.journal",
        std::process::id()
    ))
}

fn check_resume_identical(threads: usize) {
    let (base, train_set, eval_set) = fixture();
    par::with_threads(threads, || {
        // Reference: never interrupted, never journaled.
        let reference = run(&base, &train_set, &eval_set, &JournalOptions::default());
        assert!(
            reference.records.len() > reference.pareto_indices(0.2).len(),
            "fixture too small to be interesting"
        );

        let path = journal_path(&format!("t{threads}"));
        let _ = std::fs::remove_file(&path);

        // Interrupted run: dies (simulated) after the first round, leaving
        // its journal behind.
        let interrupted = run(
            &base,
            &train_set,
            &eval_set,
            &JournalOptions {
                path: Some(path.clone()),
                resume: false,
                abort_after_rounds: Some(1),
                ..Default::default()
            },
        );
        assert!(path.exists(), "the crashed run must leave a journal");
        assert!(
            interrupted.records.len() < reference.records.len(),
            "the interrupted run must have stopped early"
        );

        // Resumed run: picks the journal up and finishes.
        let resumed = run(&base, &train_set, &eval_set, &JournalOptions::resuming(path.clone()));
        assert_eq!(
            fingerprint(&resumed),
            fingerprint(&reference),
            "resumed history must be bitwise identical (threads={threads})"
        );
        assert_eq!(
            resumed.pareto_indices(0.2),
            reference.pareto_indices(0.2),
            "resumed Pareto set must be identical (threads={threads})"
        );
        // The prefix recorded before the crash is a prefix of the final log.
        for (a, b) in interrupted.records.iter().zip(&resumed.records) {
            assert_eq!(a.scheme, b.scheme);
            assert_eq!(a.acc.to_bits(), b.acc.to_bits());
            assert_eq!(a.cost_so_far, b.cost_so_far);
        }
        assert!(!path.exists(), "journal is deleted on normal completion");

        // A journaled-but-uninterrupted run must equal the un-journaled one.
        let journaled = run(&base, &train_set, &eval_set, &JournalOptions::resuming(path.clone()));
        assert_eq!(fingerprint(&journaled), fingerprint(&reference));
        let _ = std::fs::remove_file(&path);
    });
}

#[test]
fn resume_is_bitwise_identical_single_thread() {
    check_resume_identical(1);
}

#[test]
fn resume_is_bitwise_identical_four_threads() {
    check_resume_identical(4);
}
