//! Randomised tests of the Pareto utilities that both the progressive
//! search (ParetoO selection) and the EA baseline depend on. Seeded
//! loops; each case reproduces from its printed case number.

use automc_core::pareto::{crowding_distance, dominates, non_dominated_ranks, pareto_front};
use automc_tensor::rng_from_seed;
use rand::Rng as _;

const CASES: u64 = 128;

fn points(n: usize, seed: u64) -> Vec<(f32, f32)> {
    let mut rng = rng_from_seed(seed);
    let len = rng.gen_range(1usize..n);
    (0..len)
        .map(|_| (rng.gen_range(0.0f32..1.0), rng.gen_range(0.0f32..1.0)))
        .collect()
}

#[test]
fn front_members_are_mutually_nondominated() {
    for case in 0..CASES {
        let pts = points(40, 0x41_000 + case);
        let front = pareto_front(&pts);
        for &i in &front {
            for &j in &front {
                assert!(
                    !(i != j && dominates(pts[i], pts[j]) && dominates(pts[j], pts[i])),
                    "case {case}"
                );
            }
        }
    }
}

#[test]
fn nothing_outside_front_dominates_a_member() {
    for case in 0..CASES {
        let pts = points(40, 0x42_000 + case);
        let front = pareto_front(&pts);
        assert!(!front.is_empty(), "case {case}");
        for &i in &front {
            for (j, &q) in pts.iter().enumerate() {
                if j != i {
                    assert!(
                        !dominates(q, pts[i]),
                        "case {case}: point {j} {q:?} dominates front member {i} {:?}",
                        pts[i]
                    );
                }
            }
        }
    }
}

#[test]
fn every_non_front_point_is_dominated_or_duplicate() {
    for case in 0..CASES {
        let pts = points(40, 0x43_000 + case);
        let front = pareto_front(&pts);
        for (i, &p) in pts.iter().enumerate() {
            if front.contains(&i) {
                continue;
            }
            let covered = pts
                .iter()
                .enumerate()
                .any(|(j, &q)| j != i && (dominates(q, p) || (q == p && j < i)));
            assert!(covered, "case {case}: point {i} {p:?} excluded without a dominator");
        }
    }
}

#[test]
fn rank_zero_equals_front() {
    for case in 0..CASES {
        let pts = points(30, 0x44_000 + case);
        let front: std::collections::HashSet<usize> = pareto_front(&pts).into_iter().collect();
        let ranks = non_dominated_ranks(&pts);
        for (i, &r) in ranks.iter().enumerate() {
            if r == 0 {
                // Rank-0 points are non-dominated; the front keeps one copy
                // of duplicates, so rank-0 ⊇ front and rank-0 \ front are
                // duplicates of front members.
                let in_front = front.contains(&i)
                    || pts
                        .iter()
                        .enumerate()
                        .any(|(j, &q)| j != i && q == pts[i] && front.contains(&j));
                assert!(in_front, "case {case}: rank-0 point {i} not in the front");
            } else {
                assert!(!front.contains(&i), "case {case}");
            }
        }
    }
}

#[test]
fn ranks_are_total_and_respect_dominance() {
    for case in 0..CASES {
        let pts = points(25, 0x45_000 + case);
        let ranks = non_dominated_ranks(&pts);
        assert!(ranks.iter().all(|&r| r != usize::MAX), "case {case}");
        for i in 0..pts.len() {
            for j in 0..pts.len() {
                if dominates(pts[i], pts[j]) {
                    assert!(
                        ranks[i] < ranks[j],
                        "case {case}: dominator rank {} !< dominated rank {}",
                        ranks[i],
                        ranks[j]
                    );
                }
            }
        }
    }
}

#[test]
fn crowding_is_nonnegative() {
    for case in 0..CASES {
        let pts = points(20, 0x46_000 + case);
        let members: Vec<usize> = (0..pts.len()).collect();
        let d = crowding_distance(&pts, &members);
        assert_eq!(d.len(), members.len(), "case {case}");
        assert!(d.iter().all(|&v| v >= 0.0), "case {case}");
    }
}
