//! Property-based tests of the Pareto utilities that both the progressive
//! search (ParetoO selection) and the EA baseline depend on.

use automc_core::pareto::{crowding_distance, dominates, non_dominated_ranks, pareto_front};
use proptest::prelude::*;

fn points(n: usize) -> impl Strategy<Value = Vec<(f32, f32)>> {
    proptest::collection::vec((0.0f32..1.0, 0.0f32..1.0), 1..n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn front_members_are_mutually_nondominated(pts in points(40)) {
        let front = pareto_front(&pts);
        for &i in &front {
            for &j in &front {
                prop_assert!(!(i != j && dominates(pts[i], pts[j]) && dominates(pts[j], pts[i])));
            }
        }
    }

    #[test]
    fn nothing_outside_front_dominates_a_member(pts in points(40)) {
        let front = pareto_front(&pts);
        prop_assert!(!front.is_empty());
        for &i in &front {
            for (j, &q) in pts.iter().enumerate() {
                if j != i {
                    prop_assert!(!dominates(q, pts[i]),
                        "point {j} {q:?} dominates front member {i} {:?}", pts[i]);
                }
            }
        }
    }

    #[test]
    fn every_non_front_point_is_dominated_or_duplicate(pts in points(40)) {
        let front = pareto_front(&pts);
        for (i, &p) in pts.iter().enumerate() {
            if front.contains(&i) {
                continue;
            }
            let covered = pts
                .iter()
                .enumerate()
                .any(|(j, &q)| j != i && (dominates(q, p) || (q == p && j < i)));
            prop_assert!(covered, "point {i} {p:?} excluded without a dominator");
        }
    }

    #[test]
    fn rank_zero_equals_front(pts in points(30)) {
        let front: std::collections::HashSet<usize> = pareto_front(&pts).into_iter().collect();
        let ranks = non_dominated_ranks(&pts);
        for (i, &r) in ranks.iter().enumerate() {
            if r == 0 {
                // Rank-0 points are non-dominated; the front keeps one copy
                // of duplicates, so rank-0 ⊇ front and rank-0 \ front are
                // duplicates of front members.
                let in_front = front.contains(&i)
                    || pts.iter().enumerate().any(|(j, &q)| j != i && q == pts[i] && front.contains(&j));
                prop_assert!(in_front, "rank-0 point {i} not represented in the front");
            } else {
                prop_assert!(!front.contains(&i));
            }
        }
    }

    #[test]
    fn ranks_are_total_and_respect_dominance(pts in points(25)) {
        let ranks = non_dominated_ranks(&pts);
        prop_assert!(ranks.iter().all(|&r| r != usize::MAX));
        for i in 0..pts.len() {
            for j in 0..pts.len() {
                if dominates(pts[i], pts[j]) {
                    prop_assert!(ranks[i] < ranks[j],
                        "dominator rank {} !< dominated rank {}", ranks[i], ranks[j]);
                }
            }
        }
    }

    #[test]
    fn crowding_is_nonnegative(pts in points(20)) {
        let members: Vec<usize> = (0..pts.len()).collect();
        let d = crowding_distance(&pts, &members);
        prop_assert_eq!(d.len(), members.len());
        prop_assert!(d.iter().all(|&v| v >= 0.0));
    }
}
