//! Crash/resume determinism for the baseline searches (RL, Evolution,
//! Random), mirroring `resume_determinism.rs` for the progressive search:
//! a search killed after round `k` and resumed from its journal must
//! produce a final history bitwise identical to a run that was never
//! interrupted, at any thread count. Also the regression test that a
//! resumed run composes with an active fault plan: each planned fault
//! fires exactly once across the kill/resume boundary.

use automc_compress::{ExecConfig, Metrics, StrategySpace};
use automc_core::{
    evolution_search_journaled, random_search_journaled, rl_search_journaled, EvolutionConfig,
    JournalOptions, RlConfig, SearchBudget, SearchContext, SearchHistory,
};
use automc_data::{DatasetSpec, ImageSet, SyntheticKind};
use automc_json::ToJson;
use automc_models::{resnet, ConvNet};
use automc_tensor::fault::{self, FaultPlan};
use automc_tensor::{par, rng_from_seed};
use std::path::PathBuf;

const SEED: u64 = 779;

#[derive(Clone, Copy)]
enum Baseline {
    Rl,
    Evolution,
    Random,
}

impl Baseline {
    fn name(self) -> &'static str {
        match self {
            Baseline::Rl => "rl",
            Baseline::Evolution => "evolution",
            Baseline::Random => "random",
        }
    }
}

fn fixture() -> (ConvNet, ImageSet, ImageSet) {
    let mut rng = rng_from_seed(SEED);
    let (train_set, eval_set) = DatasetSpec {
        train: 64,
        test: 32,
        noise: 0.25,
        ..DatasetSpec::new(SyntheticKind::Cifar10Like)
    }
    .generate();
    let base = resnet(20, 4, 10, (3, 8, 8), &mut rng);
    (base, train_set, eval_set)
}

fn run(
    algo: Baseline,
    base: &ConvNet,
    train_set: &ImageSet,
    eval_set: &ImageSet,
    opts: &JournalOptions,
) -> SearchHistory {
    let mut base_model = base.clone_net();
    let base_metrics = Metrics::measure(&mut base_model, eval_set);
    let space = StrategySpace::full();
    let ctx = SearchContext {
        space: &space,
        base_model: base,
        base_metrics,
        search_train: train_set,
        eval_set,
        exec: ExecConfig { pretrain_epochs: 2.0, ..Default::default() },
        max_len: 2,
        gamma: 0.2,
        budget: SearchBudget::new(2_500),
    };
    // Every run restarts the RNG from the same seed: resuming must restore
    // the stream position from the journal, not rely on the caller.
    let mut rng = rng_from_seed(SEED + 1);
    match algo {
        Baseline::Rl => rl_search_journaled(&ctx, &RlConfig::default(), &mut rng, opts),
        Baseline::Evolution => {
            let cfg = EvolutionConfig { population: 4, ..Default::default() };
            evolution_search_journaled(&ctx, &cfg, &mut rng, opts)
        }
        Baseline::Random => random_search_journaled(&ctx, &mut rng, opts),
    }
}

/// Canonical byte representation of a history, for bitwise comparison.
fn fingerprint(h: &SearchHistory) -> String {
    h.to_json().to_string_pretty()
}

fn journal_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "automc-baseline-resume-test-{}-{tag}.journal",
        std::process::id()
    ))
}

fn check_resume_identical(algo: Baseline, threads: usize) {
    let (base, train_set, eval_set) = fixture();
    par::with_threads(threads, || {
        // Reference: never interrupted, never journaled.
        let reference = run(algo, &base, &train_set, &eval_set, &JournalOptions::default());
        assert!(
            reference.records.len() >= 3,
            "fixture too small to be interesting ({} evals)",
            reference.records.len()
        );

        let path = journal_path(&format!("{}-t{threads}", algo.name()));
        let _ = std::fs::remove_file(&path);

        // Interrupted run: dies (simulated) after two rounds, leaving its
        // journal behind.
        let interrupted = run(
            algo,
            &base,
            &train_set,
            &eval_set,
            &JournalOptions {
                path: Some(path.clone()),
                resume: false,
                abort_after_rounds: Some(2),
                ..Default::default()
            },
        );
        assert!(path.exists(), "the crashed run must leave a journal");
        assert!(
            interrupted.records.len() < reference.records.len(),
            "the interrupted run must have stopped early"
        );

        // Resumed run: picks the journal up and finishes.
        let resumed =
            run(algo, &base, &train_set, &eval_set, &JournalOptions::resuming(path.clone()));
        assert_eq!(
            fingerprint(&resumed),
            fingerprint(&reference),
            "resumed {} history must be bitwise identical (threads={threads})",
            algo.name()
        );
        assert_eq!(
            resumed.pareto_indices(0.2),
            reference.pareto_indices(0.2),
            "resumed Pareto set must be identical (threads={threads})"
        );
        // The prefix recorded before the crash is a prefix of the final log.
        for (a, b) in interrupted.records.iter().zip(&resumed.records) {
            assert_eq!(a.scheme, b.scheme);
            assert_eq!(a.acc.to_bits(), b.acc.to_bits());
            assert_eq!(a.cost_so_far, b.cost_so_far);
        }
        assert!(!path.exists(), "journal is deleted on normal completion");

        // A journaled-but-uninterrupted run must equal the un-journaled one.
        let journaled =
            run(algo, &base, &train_set, &eval_set, &JournalOptions::resuming(path.clone()));
        assert_eq!(fingerprint(&journaled), fingerprint(&reference));
        let _ = std::fs::remove_file(&path);
    });
}

#[test]
fn rl_resume_is_bitwise_identical_single_thread() {
    check_resume_identical(Baseline::Rl, 1);
}

#[test]
fn rl_resume_is_bitwise_identical_four_threads() {
    check_resume_identical(Baseline::Rl, 4);
}

#[test]
fn evolution_resume_is_bitwise_identical_single_thread() {
    check_resume_identical(Baseline::Evolution, 1);
}

#[test]
fn evolution_resume_is_bitwise_identical_four_threads() {
    check_resume_identical(Baseline::Evolution, 4);
}

#[test]
fn random_resume_is_bitwise_identical_single_thread() {
    check_resume_identical(Baseline::Random, 1);
}

#[test]
fn random_resume_is_bitwise_identical_four_threads() {
    check_resume_identical(Baseline::Random, 4);
}

/// Regression test for the fault-counter journaling: with a fault plan
/// active, killing the run after the fault fired and resuming (with a
/// freshly-installed plan, as a restarted process would have) must inject
/// the fault exactly once overall — the journaled counters carry the
/// "already fired" position across the restart.
#[test]
fn planned_faults_fire_exactly_once_across_resume() {
    let (base, train_set, eval_set) = fixture();
    par::with_threads(1, || {
        let plan = || FaultPlan::parse("panic@eval:2").expect("valid plan");
        let panicked = |h: &SearchHistory| {
            h.records
                .iter()
                .filter(|r| matches!(r.status, automc_core::EvalStatus::Panicked(_)))
                .count()
        };

        // Reference: the plan runs uninterrupted; the second evaluation
        // panics and is recorded as infeasible.
        fault::install(plan());
        let reference =
            run(Baseline::Random, &base, &train_set, &eval_set, &JournalOptions::default());
        fault::clear();
        assert_eq!(panicked(&reference), 1, "the plan fires once uninterrupted");

        let path = journal_path("fault-once");
        let _ = std::fs::remove_file(&path);

        // Interrupted run: the fault fires on evaluation 2, the run dies
        // (simulated) after evaluation 3 — after the journal recorded the
        // fault counters.
        fault::install(plan());
        let interrupted = run(
            Baseline::Random,
            &base,
            &train_set,
            &eval_set,
            &JournalOptions {
                path: Some(path.clone()),
                resume: false,
                abort_after_rounds: Some(3),
                ..Default::default()
            },
        );
        fault::clear();
        assert_eq!(panicked(&interrupted), 1, "the fault fired before the kill");
        assert!(path.exists());

        // Resumed run in a "fresh process": the plan is installed anew
        // (counters at zero). Without counter journaling, `panic@eval:2`
        // would fire a second time two evaluations into the resumed run.
        fault::install(plan());
        let resumed = run(
            Baseline::Random,
            &base,
            &train_set,
            &eval_set,
            &JournalOptions::resuming(path.clone()),
        );
        fault::clear();
        assert_eq!(
            panicked(&resumed),
            1,
            "each planned fault must fire exactly once across the restart"
        );
        assert_eq!(
            fingerprint(&resumed),
            fingerprint(&reference),
            "fault-injected resume must still be bitwise identical"
        );
        let _ = std::fs::remove_file(&path);
    });
}
