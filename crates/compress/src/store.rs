//! Crash-safe, multi-process, content-addressed blob store.
//!
//! The shared memo cache is the product at scale: warm hits are a
//! 180–225x search speedup, and the serve daemon plus N orchestrator
//! workers all point at one spill directory. That directory therefore has
//! to survive concurrent, crashing, adversarial clients. This module is
//! that store; `automc_compress::memo` spills through it and the bench
//! result cache rides its durable-write primitives.
//!
//! # Publish protocol (write-once)
//!
//! A blob is published under its 64-bit content key by writing a sealed
//! envelope (`AUTOMCb1` magic + payload + FNV-1a 64 trailer — the same
//! checksum discipline as the search journal) to a per-process temp file,
//! fsyncing it, renaming it over `<key:016x>.bin`, and fsyncing the
//! directory. Readers can observe the old state or the new blob, never a
//! torn write. Keys are content addresses, so concurrent writers of one
//! key are idempotent: whoever renames second changes nothing.
//!
//! # Index (append-only, checksummed, compacted on open)
//!
//! `index.log` is a journal of `P`ut / `T`ouch / `E`vict records, one
//! ASCII line each, each line carrying its own FNV-1a 64 checksum.
//! Appends are single `O_APPEND` writes, so concurrent processes
//! interleave whole records. The index replaces per-GC directory scans:
//! byte totals and recency come from replaying the log, and each GC pass
//! *re-anchors* its accounting by tailing records appended by sibling
//! processes since the last read. A torn final record (a crash mid-append)
//! is dropped silently; a corrupt interior record triggers a rebuild from
//! a directory scan, where blob mtimes stand in for recency — the only
//! remaining use of mtime, which also covers index-less legacy spill
//! directories from earlier releases. Blobs whose metadata cannot be read
//! during such a scan are *skipped and logged*, never treated as
//! oldest-first eviction fodder.
//!
//! # Generational GC (grace window + advisory lock)
//!
//! [`BlobStore::gc`] runs under an advisory lockfile (`.lock`, holder pid
//! inside, stale holders detected by liveness/age and broken) and never
//! deletes a blob whose last put/touch lies within the in-use grace
//! window (`AUTOMC_STORE_GRACE_MS`, default 10 s): a sibling that just
//! opened a blob cannot have it evicted out from under a read. Outside
//! the window, eviction is oldest-recency-first until the byte budget is
//! met, with an `E` record appended per victim. Readers additionally
//! treat a blob vanishing between lookup and read — a sibling GC racing
//! the grace window — as a clean miss, never an error.
//!
//! # Corruption quarantine
//!
//! A blob failing its envelope checksum is *moved aside* into
//! `quarantine/` (for post-mortems; the directory is trimmed, not grown
//! without bound), logged, counted as a healed miss, and its key freed —
//! the next writer republishes it. Deletion-free healing means a bad disk
//! sector can be diagnosed after the fact instead of silently vanishing.
//!
//! # Fault sites
//!
//! Every failure path above is exercised deterministically through
//! `AUTOMC_FAULTS` (`automc_tensor::fault`):
//!
//! * `torn@spill:n` — the n-th spill-store operation, if it is a publish,
//!   writes a truncated envelope straight to the final path (simulating a
//!   torn write by a crashed legacy writer); the next reader must
//!   quarantine and heal it.
//! * `evict@spill:n` — the n-th spill-store operation, if it is a read of
//!   an existing blob, has the blob deleted under it (simulating a
//!   sibling GC winning the race); the reader must return a clean miss.
//! * `corrupt@index:n` — the n-th index append is corrupted in flight;
//!   the next open must detect the bad record and rebuild from scan.

use automc_tensor::fault::{self, FaultKind};
use std::collections::HashMap;
use std::fs;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

// ------------------------------------------------------------------------
// Durable-write primitives (shared: the search journal re-exports these)
// ------------------------------------------------------------------------

/// FNV-1a 64-bit hash — the workspace-wide journal/cache/store checksum.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Write `bytes` to `path` atomically and durably: write a sibling temp
/// file, fsync it, rename it over the destination, then fsync the parent
/// directory. Readers either see the old file or the new one, never a
/// torn write — and once this returns, a crash (of this process *or* the
/// machine) cannot make the rename itself vanish: without the directory
/// fsync a resumed supervisor could observe a journal entry that a
/// crashed worker "wrote" but whose directory update never reached disk.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => {
            fs::create_dir_all(p)?;
            Some(p)
        }
        _ => None,
    };
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(&format!(".tmp.{}", std::process::id()));
    let tmp = PathBuf::from(tmp);
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    if let Err(e) = fs::rename(&tmp, path) {
        let _ = fs::remove_file(&tmp);
        return Err(e);
    }
    if let Some(parent) = parent {
        fsync_dir(parent)?;
    }
    Ok(())
}

/// Flush a directory's metadata (the rename recorded in it) to disk.
/// Directory fsync is a Unix concept; elsewhere it is a no-op.
#[cfg(unix)]
fn fsync_dir(dir: &Path) -> io::Result<()> {
    fs::File::open(dir)?.sync_all()
}

#[cfg(not(unix))]
fn fsync_dir(_dir: &Path) -> io::Result<()> {
    Ok(())
}

/// [`write_atomic`] with bounded retry and backoff for transient I/O
/// errors (NFS hiccups, momentary ENOSPC). Three attempts with 10 ms /
/// 50 ms pauses; each failure is logged, and the last error is returned
/// once the attempts are exhausted so the caller can apply its
/// persistent-failure policy (disable journaling/caching for the run).
pub fn write_atomic_retry(path: &Path, bytes: &[u8]) -> io::Result<()> {
    const BACKOFF_MS: [u64; 2] = [10, 50];
    let mut attempt = 0usize;
    loop {
        match write_atomic(path, bytes) {
            Ok(()) => return Ok(()),
            Err(e) if attempt < BACKOFF_MS.len() => {
                eprintln!(
                    "warning: write of {} failed ({e}); retrying in {} ms",
                    path.display(),
                    BACKOFF_MS[attempt]
                );
                std::thread::sleep(Duration::from_millis(BACKOFF_MS[attempt]));
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

/// Move a corrupt file aside instead of deleting it: rename it into a
/// `quarantine/` directory next to it, tagged with the discovering pid.
/// Returns the quarantine path on success. Used by the blob store for its
/// own blobs and by the bench result cache for corrupt entries.
pub fn quarantine_file(path: &Path) -> Option<PathBuf> {
    let dir = path.parent()?.join("quarantine");
    fs::create_dir_all(&dir).ok()?;
    let name = path.file_name()?.to_string_lossy().into_owned();
    let dest = dir.join(format!("{name}.{}", std::process::id()));
    match fs::rename(path, &dest) {
        Ok(()) => Some(dest),
        Err(_) => {
            // Cross-device or racing rename: fall back to removal so the
            // corrupt bytes can at least never be trusted again.
            let _ = fs::remove_file(path);
            None
        }
    }
}

// ------------------------------------------------------------------------
// Sealed blob envelope
// ------------------------------------------------------------------------

const BLOB_MAGIC: &[u8; 8] = b"AUTOMCb1";

/// Wrap a payload in the store envelope: magic, payload, FNV-1a 64
/// trailer over everything before it.
pub fn seal(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 16);
    out.extend_from_slice(BLOB_MAGIC);
    out.extend_from_slice(payload);
    let checksum = fnv1a64(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Validate a [`seal`]ed envelope and return the payload; `None` on a
/// missing magic, truncation, or checksum mismatch.
pub fn unseal(bytes: &[u8]) -> Option<&[u8]> {
    if bytes.len() < BLOB_MAGIC.len() + 8 {
        return None;
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let mut cks = [0u8; 8];
    cks.copy_from_slice(tail);
    if fnv1a64(body) != u64::from_le_bytes(cks) {
        return None;
    }
    body.strip_prefix(BLOB_MAGIC)
}

// ------------------------------------------------------------------------
// Per-process counters
// ------------------------------------------------------------------------

static PUBLISHES: AtomicU64 = AtomicU64::new(0);
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static EVICTIONS: AtomicU64 = AtomicU64::new(0);
static EVICTED_BYTES: AtomicU64 = AtomicU64::new(0);
static HEALED: AtomicU64 = AtomicU64::new(0);
static RACED: AtomicU64 = AtomicU64::new(0);
static REBUILDS: AtomicU64 = AtomicU64::new(0);

/// Process-wide blob-store activity counters (all stores in the process;
/// in practice one shared spill store). Surfaced through
/// `memo::MemoStats` and the `[memo]` stderr lines.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreCounters {
    /// Blobs this process published (first writer wins; idempotent
    /// re-publishes do not count).
    pub publishes: u64,
    /// Blob reads that returned a valid payload.
    pub hits: u64,
    /// Blob reads that found nothing (including healed and raced misses).
    pub misses: u64,
    /// Blobs this process evicted under the byte budget.
    pub evictions: u64,
    /// Bytes reclaimed by those evictions.
    pub evicted_bytes: u64,
    /// Corrupt blobs quarantined — each one a healed miss.
    pub healed: u64,
    /// Reads that lost the race against a sibling's eviction (clean miss).
    pub raced: u64,
    /// Index rebuilds forced by a corrupt record or a legacy directory.
    pub index_rebuilds: u64,
}

impl StoreCounters {
    /// `self - earlier`, counter-wise. The counters are process-wide and
    /// monotonic, so a snapshot taken at job start diffed against one at
    /// a round boundary yields that job's *window* of store activity
    /// (shared with any concurrently running jobs — the store is one
    /// process-wide cache by design). Saturating, so a stale `earlier`
    /// degrades to zeros rather than panicking.
    pub fn since(&self, earlier: &StoreCounters) -> StoreCounters {
        StoreCounters {
            publishes: self.publishes.saturating_sub(earlier.publishes),
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            evicted_bytes: self.evicted_bytes.saturating_sub(earlier.evicted_bytes),
            healed: self.healed.saturating_sub(earlier.healed),
            raced: self.raced.saturating_sub(earlier.raced),
            index_rebuilds: self.index_rebuilds.saturating_sub(earlier.index_rebuilds),
        }
    }

    /// Hit rate over reads in percent (0 when nothing was read).
    pub fn hit_rate_pct(&self) -> f64 {
        let reads = self.hits + self.misses;
        if reads == 0 {
            0.0
        } else {
            100.0 * self.hits as f64 / reads as f64
        }
    }
}

/// Snapshot the process-wide [`StoreCounters`].
pub fn counters() -> StoreCounters {
    StoreCounters {
        publishes: PUBLISHES.load(Ordering::Relaxed),
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        evictions: EVICTIONS.load(Ordering::Relaxed),
        evicted_bytes: EVICTED_BYTES.load(Ordering::Relaxed),
        healed: HEALED.load(Ordering::Relaxed),
        raced: RACED.load(Ordering::Relaxed),
        index_rebuilds: REBUILDS.load(Ordering::Relaxed),
    }
}

// ------------------------------------------------------------------------
// Tunables
// ------------------------------------------------------------------------

/// Default in-use grace window: a blob put or touched within the last
/// this-many milliseconds is never evicted.
pub const DEFAULT_GRACE_MS: u64 = 10_000;

fn grace_cell() -> &'static AtomicU64 {
    static GRACE: OnceLock<AtomicU64> = OnceLock::new();
    GRACE.get_or_init(|| {
        AtomicU64::new(
            std::env::var("AUTOMC_STORE_GRACE_MS")
                .ok()
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or(DEFAULT_GRACE_MS),
        )
    })
}

/// Override the in-use grace window (tests; `AUTOMC_STORE_GRACE_MS`
/// otherwise).
pub fn set_grace_ms(ms: u64) {
    grace_cell().store(ms, Ordering::Relaxed);
}

/// A lock held longer than this is assumed abandoned even if its pid
/// cannot be probed.
const LOCK_STALE_MS: u64 = 30_000;

/// How long to wait for the advisory lock before proceeding without it.
const LOCK_WAIT_MS: u64 = 5_000;

/// Quarantined blobs kept for post-mortems; older ones are trimmed.
const QUARANTINE_KEEP: usize = 32;

/// Compact the index on open once it holds this many times more records
/// than live blobs (plus slack for small stores).
const COMPACT_SLACK: usize = 64;

fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

// ------------------------------------------------------------------------
// Advisory lock
// ------------------------------------------------------------------------

#[cfg(target_os = "linux")]
fn pid_alive(pid: u32) -> bool {
    Path::new(&format!("/proc/{pid}")).exists()
}

#[cfg(not(target_os = "linux"))]
fn pid_alive(_pid: u32) -> bool {
    true // liveness unknowable portably; the age check decides
}

struct LockGuard {
    path: PathBuf,
    held: bool,
}

impl Drop for LockGuard {
    fn drop(&mut self) {
        if self.held {
            let _ = fs::remove_file(&self.path);
        }
    }
}

/// Take the store's advisory lock: create-exclusive a `.lock` file with
/// the holder's pid inside. A holder that is dead (pid gone) or has held
/// the lock past [`LOCK_STALE_MS`] is declared stale and its lock broken.
/// If the lock cannot be won within [`LOCK_WAIT_MS`] the caller proceeds
/// *without* it (logged): GC races are tolerable — blob reads are
/// checksummed and vanishing blobs are clean misses — whereas a
/// deadlocked store is not.
fn acquire_lock(dir: &Path) -> LockGuard {
    let path = dir.join(".lock");
    let start = std::time::Instant::now();
    loop {
        match fs::OpenOptions::new().write(true).create_new(true).open(&path) {
            Ok(mut f) => {
                let _ = f.write_all(std::process::id().to_string().as_bytes());
                return LockGuard { path, held: true };
            }
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                let stale = match fs::read_to_string(&path) {
                    Ok(body) => match body.trim().parse::<u32>() {
                        Ok(pid) if pid != std::process::id() => {
                            !pid_alive(pid) || lock_age_ms(&path) > LOCK_STALE_MS
                        }
                        // Our own pid (a crashed predecessor that recycled
                        // it, or a bug): we are demonstrably not holding
                        // it, so it is stale. Unparsable bodies age out.
                        Ok(_) => true,
                        Err(_) => lock_age_ms(&path) > LOCK_STALE_MS,
                    },
                    // Vanished between create_new and read: retry.
                    Err(_) => false,
                };
                if stale {
                    eprintln!(
                        "[store] breaking stale lock {} (holder dead or expired)",
                        path.display()
                    );
                    let _ = fs::remove_file(&path);
                    continue;
                }
                if start.elapsed() > Duration::from_millis(LOCK_WAIT_MS) {
                    eprintln!(
                        "[store] could not win lock {} in {LOCK_WAIT_MS} ms; \
                         proceeding without it",
                        path.display()
                    );
                    return LockGuard { path, held: false };
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => {
                // The directory itself is unusable; locking is moot.
                return LockGuard { path, held: false };
            }
        }
    }
}

fn lock_age_ms(path: &Path) -> u64 {
    fs::metadata(path)
        .and_then(|m| m.modified())
        .ok()
        .and_then(|t| SystemTime::now().duration_since(t).ok())
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

// ------------------------------------------------------------------------
// Index records
// ------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Record {
    Put { key: u64, len: u64, ts: u64 },
    Touch { key: u64, ts: u64 },
    Evict { key: u64, ts: u64 },
}

impl Record {
    fn body(&self) -> String {
        match self {
            Record::Put { key, len, ts } => format!("P {key:016x} {len} {ts}"),
            Record::Touch { key, ts } => format!("T {key:016x} {ts}"),
            Record::Evict { key, ts } => format!("E {key:016x} {ts}"),
        }
    }

    fn to_line(&self) -> String {
        let body = self.body();
        format!("{body} {:016x}\n", fnv1a64(body.as_bytes()))
    }

    /// Parse one complete line; `None` means the record is corrupt.
    fn parse(line: &str) -> Option<Record> {
        let (body, cks) = line.rsplit_once(' ')?;
        if u64::from_str_radix(cks, 16).ok()? != fnv1a64(body.as_bytes()) {
            return None;
        }
        let mut it = body.split(' ');
        let tag = it.next()?;
        let key = u64::from_str_radix(it.next()?, 16).ok()?;
        let rec = match tag {
            "P" => Record::Put { key, len: it.next()?.parse().ok()?, ts: it.next()?.parse().ok()? },
            "T" => Record::Touch { key, ts: it.next()?.parse().ok()? },
            "E" => Record::Evict { key, ts: it.next()?.parse().ok()? },
            _ => return None,
        };
        if it.next().is_some() {
            return None;
        }
        Some(rec)
    }
}

// ------------------------------------------------------------------------
// The store
// ------------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
struct Entry {
    len: u64,
    last_used: u64, // ms since epoch (logical recency)
}

#[derive(Default)]
struct Inner {
    entries: HashMap<u64, Entry>,
    total: u64,
    /// Bytes of `index.log` this process has replayed.
    log_offset: u64,
    /// Records appended (by anyone) since the last compaction we saw.
    records_seen: usize,
    /// Scan-rebuilds this store instance has performed.
    rebuilds: u64,
}

impl Inner {
    fn apply(&mut self, rec: Record) {
        self.records_seen += 1;
        match rec {
            Record::Put { key, len, ts } => match self.entries.get_mut(&key) {
                Some(e) => {
                    // Replaying our own append or a sibling's idempotent
                    // re-publish: recency advances, bytes do not.
                    e.last_used = e.last_used.max(ts);
                }
                None => {
                    self.entries.insert(key, Entry { len, last_used: ts });
                    self.total += len;
                }
            },
            Record::Touch { key, ts } => {
                if let Some(e) = self.entries.get_mut(&key) {
                    e.last_used = e.last_used.max(ts);
                }
            }
            Record::Evict { key, .. } => {
                if let Some(e) = self.entries.remove(&key) {
                    self.total -= e.len;
                }
            }
        }
    }
}

/// A crash-safe, multi-process, content-addressed blob store rooted at
/// one directory. See the module docs for the protocol.
pub struct BlobStore {
    dir: PathBuf,
    inner: Mutex<Inner>,
}

impl BlobStore {
    /// Open (creating if needed) the store at `dir`: acquire the advisory
    /// lock, replay the index — rebuilding it from a directory scan if it
    /// is corrupt or missing while blobs exist (a legacy mtime-LRU spill
    /// dir) — and compact it if it has grown far past its live set.
    pub fn open(dir: &Path) -> io::Result<BlobStore> {
        fs::create_dir_all(dir)?;
        let store = BlobStore { dir: dir.to_path_buf(), inner: Mutex::new(Inner::default()) };
        {
            let _lock = acquire_lock(&store.dir);
            let mut inner = store.locked();
            let clean = tail_log(&mut inner, &store.dir);
            if !clean || (inner.entries.is_empty() && has_blobs(&store.dir)) {
                let reason = if clean { "legacy index-less directory" } else { "corrupt index record" };
                rebuild_from_scan(&mut inner, &store.dir, reason);
                compact(&mut inner, &store.dir);
            } else if inner.records_seen > inner.entries.len() * 8 + COMPACT_SLACK {
                compact(&mut inner, &store.dir);
            }
        }
        Ok(store)
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn locked(&self) -> std::sync::MutexGuard<'_, Inner> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn blob_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.bin"))
    }

    fn index_path(&self) -> PathBuf {
        self.dir.join("index.log")
    }

    /// Append one record to the index (a single `O_APPEND` write, so
    /// concurrent processes interleave whole lines). The `corrupt@index`
    /// fault site damages the line in flight, exactly as a bad sector
    /// would; the next open detects and rebuilds. Append failures are
    /// logged and tolerated — the index is an accelerator, the blobs and
    /// their checksums are the truth.
    fn append_record(&self, rec: Record) {
        let mut line = rec.to_line().into_bytes();
        if fault::tick("index") == Some(FaultKind::Corrupt) {
            eprintln!("[store] injecting index corruption into the next append");
            let mid = line.len() / 2;
            line[mid] = line[mid].wrapping_add(1);
        }
        let res = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.index_path())
            .and_then(|mut f| f.write_all(&line));
        if let Err(e) = res {
            eprintln!(
                "warning: cannot append to store index {} ({e})",
                self.index_path().display()
            );
        }
    }

    /// Publish `payload` under `key`, write-once: if the blob already
    /// exists (locally known or published by a sibling) this is a no-op.
    /// Returns `true` when this call actually published.
    pub fn publish(&self, key: u64, payload: &[u8]) -> bool {
        let path = self.blob_path(key);
        {
            let inner = self.locked();
            if inner.entries.contains_key(&key) && path.exists() {
                return false;
            }
        }
        if path.exists() {
            // A sibling won the race; adopt its blob (content addressing
            // makes it identical by construction).
            let len = fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
            let ts = now_ms();
            let mut inner = self.locked();
            inner.apply(Record::Put { key, len, ts });
            drop(inner);
            self.append_record(Record::Touch { key, ts });
            return false;
        }
        let sealed = seal(payload);
        let ts = now_ms();
        if fault::tick("spill") == Some(FaultKind::Torn) {
            // Simulate a torn write reaching the final path (a crashed
            // pre-protocol writer): truncate inside the checksum trailer.
            let torn = &sealed[..sealed.len().saturating_sub(9)];
            eprintln!("[store] injecting torn publish of {key:016x}");
            let _ = fs::write(&path, torn);
            let len = torn.len() as u64;
            self.locked().apply(Record::Put { key, len, ts });
            self.append_record(Record::Put { key, len, ts });
            PUBLISHES.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        if let Err(e) = write_atomic(&path, &sealed) {
            eprintln!("warning: store publish of {key:016x} failed ({e})");
            return false;
        }
        let len = sealed.len() as u64;
        self.locked().apply(Record::Put { key, len, ts });
        self.append_record(Record::Put { key, len, ts });
        PUBLISHES.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Read the blob under `key`, verifying its envelope. Misses are
    /// clean (`None`): unknown keys, a blob a sibling evicted mid-read
    /// (counted as raced), and corrupt blobs — which are quarantined, not
    /// deleted, and counted as healed so the next writer republishes.
    pub fn get(&self, key: u64) -> Option<Vec<u8>> {
        let path = self.blob_path(key);
        let known = self.locked().entries.contains_key(&key);
        if !known && !path.exists() {
            MISSES.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        if fault::tick("spill") == Some(FaultKind::Evict) {
            eprintln!("[store] injecting evict race on {key:016x}");
            let _ = fs::remove_file(&path);
        }
        match fs::read(&path) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                // A sibling's GC won the race between lookup and read:
                // a clean miss. Its `E` record reconciles our view at the
                // next tail; drop the local entry now.
                if known {
                    RACED.fetch_add(1, Ordering::Relaxed);
                    let mut inner = self.locked();
                    if let Some(e) = inner.entries.remove(&key) {
                        inner.total -= e.len;
                    }
                }
                MISSES.fetch_add(1, Ordering::Relaxed);
                None
            }
            Err(e) => {
                eprintln!("warning: cannot read store blob {key:016x} ({e})");
                MISSES.fetch_add(1, Ordering::Relaxed);
                None
            }
            Ok(bytes) => match unseal(&bytes) {
                Some(payload) => {
                    let payload = payload.to_vec();
                    let ts = now_ms();
                    let throttle = grace_cell().load(Ordering::Relaxed) / 2;
                    let mut inner = self.locked();
                    let prev = inner.entries.get(&key).map(|e| e.last_used).unwrap_or(0);
                    inner.apply(if known {
                        Record::Touch { key, ts }
                    } else {
                        // Adopt a sibling's blob we had not yet seen.
                        Record::Put { key, len: bytes.len() as u64, ts }
                    });
                    drop(inner);
                    // Touch records feed sibling GCs' recency, but one per
                    // read would grow the log linearly with hits; recency
                    // finer than half the grace window changes nothing.
                    if ts.saturating_sub(prev) > throttle {
                        self.append_record(Record::Touch { key, ts });
                    }
                    HITS.fetch_add(1, Ordering::Relaxed);
                    Some(payload)
                }
                None => {
                    self.quarantine(key);
                    MISSES.fetch_add(1, Ordering::Relaxed);
                    None
                }
            },
        }
    }

    /// Move the blob under `key` aside as corrupt (see the module docs).
    /// Public so payload-level validation failures above the envelope —
    /// e.g. the memo codec rejecting a sealed-but-nonsense blob — heal
    /// the same way.
    pub fn quarantine(&self, key: u64) {
        let path = self.blob_path(key);
        match quarantine_file(&path) {
            Some(dest) => eprintln!(
                "[store] quarantined corrupt blob {key:016x} -> {} (healed miss)",
                dest.display()
            ),
            None => eprintln!("[store] removed corrupt blob {key:016x} (healed miss)"),
        }
        HEALED.fetch_add(1, Ordering::Relaxed);
        let ts = now_ms();
        let mut inner = self.locked();
        if let Some(e) = inner.entries.remove(&key) {
            inner.total -= e.len;
        }
        drop(inner);
        self.append_record(Record::Evict { key, ts });
    }

    /// Total live bytes per the index, re-anchored by tailing sibling
    /// records first.
    pub fn total_bytes(&self) -> u64 {
        let mut inner = self.locked();
        tail_log(&mut inner, &self.dir);
        inner.total
    }

    /// Live blob count (this process's view of the index).
    pub fn len(&self) -> usize {
        self.locked().entries.len()
    }

    /// True when the index holds no live blobs.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Index rebuilds (directory scans) this store instance has performed
    /// — 0 on a clean open, 1 after adopting a legacy directory or
    /// recovering from a corrupt index record.
    pub fn rebuild_count(&self) -> u64 {
        self.locked().rebuilds
    }

    /// Enforce `budget`: under the advisory lock, re-anchor byte totals
    /// from the index (picking up sibling puts and evicts — the fix for
    /// cross-process accounting drift), then evict oldest-recency-first
    /// until the total fits, skipping blobs inside the in-use grace
    /// window. Returns the bytes evicted.
    pub fn gc(&self, budget: u64) -> u64 {
        let _lock = acquire_lock(&self.dir);
        let mut inner = self.locked();
        if !tail_log(&mut inner, &self.dir) {
            rebuild_from_scan(&mut inner, &self.dir, "corrupt index record");
            compact(&mut inner, &self.dir);
        }
        if inner.total <= budget {
            return 0;
        }
        let now = now_ms();
        let grace = grace_cell().load(Ordering::Relaxed);
        let mut victims: Vec<(u64, u64, u64)> = inner
            .entries
            .iter()
            .filter(|(_, e)| e.last_used.saturating_add(grace) <= now)
            .map(|(&k, e)| (e.last_used, k, e.len))
            .collect();
        // Oldest recency first; key breaks ties deterministically.
        victims.sort_unstable();
        let mut evicted_bytes = 0u64;
        let mut evicted = Vec::new();
        for &(_, key, len) in &victims {
            if inner.total <= budget {
                break;
            }
            let path = self.blob_path(key);
            match fs::remove_file(&path) {
                Ok(()) | Err(_) if !path.exists() => {
                    inner.entries.remove(&key);
                    inner.total -= len;
                    evicted_bytes += len;
                    evicted.push(key);
                }
                _ => {
                    eprintln!("warning: cannot evict store blob {key:016x}; skipping");
                }
            }
        }
        let total = inner.total;
        let in_grace = inner.entries.len();
        drop(inner);
        for key in &evicted {
            self.append_record(Record::Evict { key: *key, ts: now });
        }
        if evicted_bytes > 0 {
            EVICTIONS.fetch_add(evicted.len() as u64, Ordering::Relaxed);
            EVICTED_BYTES.fetch_add(evicted_bytes, Ordering::Relaxed);
            eprintln!(
                "[store] GC: evicted {evicted_bytes} bytes ({} blobs), \
                 {total} bytes retained",
                evicted.len()
            );
        } else if total > budget {
            eprintln!(
                "[store] GC: {total} bytes over the {budget} budget but all \
                 {in_grace} blobs are inside the grace window; deferring"
            );
        }
        trim_quarantine(&self.dir);
        evicted_bytes
    }
}

fn has_blobs(dir: &Path) -> bool {
    let Ok(entries) = fs::read_dir(dir) else { return false };
    entries.flatten().any(|e| {
        e.path().extension().and_then(|x| x.to_str()) == Some("bin")
    })
}

/// Replay index records appended since this process's last read. Returns
/// `false` when a *complete* record fails to parse or checksum — real
/// corruption, the caller must rebuild. A trailing partial line (a crash
/// or sibling mid-append) is not consumed and not an error.
fn tail_log(inner: &mut Inner, dir: &Path) -> bool {
    let path = dir.join("index.log");
    let mut f = match fs::File::open(&path) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return true,
        Err(e) => {
            eprintln!("warning: cannot open store index {} ({e})", path.display());
            return true;
        }
    };
    let file_len = f.metadata().map(|m| m.len()).unwrap_or(0);
    if file_len < inner.log_offset {
        // The log shrank under us: a sibling compacted it. Our entries
        // are a superset-modulo-evictions of the snapshot; replay from
        // the top idempotently.
        inner.log_offset = 0;
    }
    if f.seek(SeekFrom::Start(inner.log_offset)).is_err() {
        return true;
    }
    let mut buf = Vec::new();
    if f.read_to_end(&mut buf).is_err() {
        return true;
    }
    let mut consumed = 0usize;
    let mut clean = true;
    for chunk in buf.split_inclusive(|&b| b == b'\n') {
        if chunk.last() != Some(&b'\n') {
            break; // torn tail: leave for the writer to finish
        }
        let line = String::from_utf8_lossy(&chunk[..chunk.len() - 1]);
        match Record::parse(line.trim_end()) {
            Some(rec) => inner.apply(rec),
            None => {
                eprintln!(
                    "warning: corrupt record in store index {} ({line:?}); \
                     rebuilding from scan",
                    path.display()
                );
                clean = false;
                consumed += chunk.len();
                break;
            }
        }
        consumed += chunk.len();
    }
    inner.log_offset += consumed as u64;
    clean
}

/// Rebuild the in-memory index from a directory scan — the fallback for
/// corrupt indexes and legacy (index-less, mtime-LRU) spill directories.
/// Blob mtime stands in for recency. A blob whose metadata cannot be read
/// is *skipped and logged*, never adopted with epoch recency (which would
/// make transient stat failures evict-first fodder).
fn rebuild_from_scan(inner: &mut Inner, dir: &Path, reason: &str) {
    REBUILDS.fetch_add(1, Ordering::Relaxed);
    inner.rebuilds += 1;
    inner.entries.clear();
    inner.total = 0;
    let Ok(entries) = fs::read_dir(dir) else { return };
    let mut scanned = 0usize;
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("bin") {
            continue;
        }
        let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else { continue };
        let Ok(key) = u64::from_str_radix(stem, 16) else { continue };
        if format!("{key:016x}") != stem {
            // Non-canonical stem: `blob_path(key)` would point at a
            // different file, so adopting it would make every later
            // touch/evict a phantom. No writer ever produces such names;
            // leave the file alone and say so.
            eprintln!(
                "warning: ignoring non-canonical blob name {} in the rebuild",
                path.display()
            );
            continue;
        }
        let Ok(meta) = entry.metadata() else {
            eprintln!(
                "warning: cannot stat store blob {}; skipping it in the rebuild",
                path.display()
            );
            continue;
        };
        let last_used = match meta.modified() {
            Ok(t) => t
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_millis() as u64)
                .unwrap_or(0),
            Err(e) => {
                eprintln!(
                    "warning: cannot read mtime of store blob {} ({e}); \
                     skipping it in the rebuild",
                    path.display()
                );
                continue;
            }
        };
        inner.apply(Record::Put { key, len: meta.len(), ts: last_used });
        scanned += 1;
    }
    eprintln!(
        "[store] index rebuilt from scan ({reason}): {scanned} blobs, {} bytes",
        inner.total
    );
}

/// Rewrite the index as a minimal snapshot of the live set (one `P` line
/// per blob, carrying its latest recency), atomically. Run under the
/// advisory lock. A sibling holding an offset into the old file will
/// mis-parse at its next tail and rebuild — logged, rare, and harmless.
fn compact(inner: &mut Inner, dir: &Path) {
    let mut keys: Vec<&u64> = inner.entries.keys().collect();
    keys.sort_unstable();
    let mut out = String::new();
    for &key in keys {
        let e = inner.entries[&key];
        out.push_str(
            &Record::Put { key, len: e.len, ts: e.last_used }.to_line(),
        );
    }
    let path = dir.join("index.log");
    match write_atomic_retry(&path, out.as_bytes()) {
        Ok(()) => {
            inner.log_offset = out.len() as u64;
            inner.records_seen = inner.entries.len();
        }
        Err(e) => {
            eprintln!(
                "warning: cannot compact store index {} ({e}); keeping the log",
                path.display()
            );
        }
    }
}

/// Keep the quarantine directory from growing without bound: retain the
/// newest [`QUARANTINE_KEEP`] files, remove the rest (oldest mtime
/// first). Unstattable files are left alone.
fn trim_quarantine(dir: &Path) {
    let qdir = dir.join("quarantine");
    let Ok(entries) = fs::read_dir(&qdir) else { return };
    let mut files: Vec<(SystemTime, PathBuf)> = entries
        .flatten()
        .filter_map(|e| {
            let meta = e.metadata().ok()?;
            Some((meta.modified().ok()?, e.path()))
        })
        .collect();
    if files.len() <= QUARANTINE_KEEP {
        return;
    }
    files.sort_by(|a, b| (&a.0, &a.1).cmp(&(&b.0, &b.1)));
    let excess = files.len() - QUARANTINE_KEEP;
    for (_, path) in files.into_iter().take(excess) {
        let _ = fs::remove_file(path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "automc-store-test-{}-{tag}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create test dir");
        dir
    }

    #[test]
    fn seal_unseal_roundtrip_and_rejection() {
        let payload = b"hello blob".to_vec();
        let sealed = seal(&payload);
        assert_eq!(unseal(&sealed), Some(payload.as_slice()));
        assert!(unseal(&sealed[..sealed.len() - 1]).is_none(), "truncation");
        let mut bad = sealed.clone();
        bad[10] ^= 0x40;
        assert!(unseal(&bad).is_none(), "bit flip");
        assert!(unseal(b"short").is_none());
        assert_eq!(unseal(&seal(b"")), Some(&b""[..]), "empty payload");
    }

    #[test]
    fn record_lines_roundtrip_and_reject_corruption() {
        for rec in [
            Record::Put { key: 0xdead_beef, len: 123, ts: 456 },
            Record::Touch { key: 1, ts: 2 },
            Record::Evict { key: u64::MAX, ts: 0 },
        ] {
            let line = rec.to_line();
            assert_eq!(Record::parse(line.trim_end()), Some(rec));
            let mut bad = line.trim_end().to_string().into_bytes();
            bad[3] = bad[3].wrapping_add(1);
            assert!(Record::parse(&String::from_utf8(bad).unwrap()).is_none());
        }
        assert!(Record::parse("").is_none());
        assert!(Record::parse("X 00 1 2 deadbeef").is_none());
    }

    #[test]
    fn publish_is_write_once_and_get_roundtrips() {
        let dir = tmp("roundtrip");
        let store = BlobStore::open(&dir).unwrap();
        assert!(store.is_empty());
        assert!(store.publish(7, b"seven"));
        assert!(!store.publish(7, b"seven"), "second publish is a no-op");
        assert_eq!(store.get(7), Some(b"seven".to_vec()));
        assert_eq!(store.get(8), None, "unknown key is a clean miss");
        assert_eq!(store.len(), 1);
        assert!(store.total_bytes() > 0);

        // A fresh open (a "new process") replays the index.
        let again = BlobStore::open(&dir).unwrap();
        assert_eq!(again.len(), 1);
        assert_eq!(again.get(7), Some(b"seven".to_vec()));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_blob_is_quarantined_and_republishable() {
        let dir = tmp("quarantine");
        let store = BlobStore::open(&dir).unwrap();
        store.publish(0xabc, b"payload");
        let path = dir.join(format!("{:016x}.bin", 0xabc));
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        fs::write(&path, &bytes).unwrap();

        let healed_before = counters().healed;
        assert_eq!(store.get(0xabc), None, "corrupt blob is a miss");
        // `>=`: the counter is process-global and other tests may heal
        // concurrently; ours contributes at least one.
        assert!(counters().healed >= healed_before + 1);
        assert!(!path.exists(), "corrupt blob is gone from the live set");
        assert_eq!(
            fs::read_dir(dir.join("quarantine")).unwrap().count(),
            1,
            "moved aside, not deleted"
        );
        // The next writer heals it.
        assert!(store.publish(0xabc, b"payload"), "key is free again");
        assert_eq!(store.get(0xabc), Some(b"payload".to_vec()));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_evicts_oldest_outside_grace_and_respects_grace_window() {
        let dir = tmp("gc");
        set_grace_ms(0);
        let store = BlobStore::open(&dir).unwrap();
        store.publish(1, &[1u8; 100]);
        std::thread::sleep(Duration::from_millis(5));
        store.publish(2, &[2u8; 100]);
        std::thread::sleep(Duration::from_millis(5));
        store.publish(3, &[3u8; 100]);
        let blob = 100 + 16; // payload + magic + checksum
        let total = store.total_bytes();
        assert_eq!(total, 3 * blob as u64);

        // With no grace, the oldest blob goes first.
        let evicted = store.gc(2 * blob as u64);
        assert_eq!(evicted, blob as u64);
        assert!(!dir.join(format!("{:016x}.bin", 1)).exists());
        assert!(dir.join(format!("{:016x}.bin", 2)).exists());
        assert_eq!(store.get(1), None);
        assert_eq!(store.get(2), Some(vec![2u8; 100]));

        // Touching 2 makes 3 the next victim.
        std::thread::sleep(Duration::from_millis(5));
        assert!(store.get(2).is_some());
        assert_eq!(store.gc(blob as u64), blob as u64);
        assert!(dir.join(format!("{:016x}.bin", 2)).exists());
        assert!(!dir.join(format!("{:016x}.bin", 3)).exists());

        // A huge grace window protects everything: over budget, no evicts.
        set_grace_ms(3_600_000);
        assert_eq!(store.gc(0), 0, "grace window must defer eviction");
        assert!(dir.join(format!("{:016x}.bin", 2)).exists());
        set_grace_ms(DEFAULT_GRACE_MS);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_mtime_directory_is_adopted_with_mtime_recency() {
        let dir = tmp("legacy");
        // Raw pre-store blobs: hex names, no index, old mtimes.
        let t0 = SystemTime::now() - Duration::from_secs(300);
        for (i, name) in ["00000000000000aa.bin", "00000000000000bb.bin"].iter().enumerate() {
            let path = dir.join(name);
            fs::write(&path, vec![7u8; 50]).unwrap();
            let f = fs::OpenOptions::new().write(true).open(&path).unwrap();
            f.set_modified(t0 + Duration::from_secs(60 * i as u64)).unwrap();
        }
        fs::write(dir.join("stray.tmp"), b"x").unwrap();

        let store = BlobStore::open(&dir).unwrap();
        assert_eq!(store.len(), 2, "legacy blobs adopted from scan");
        assert_eq!(store.rebuild_count(), 1, "adoption is a scan rebuild");
        assert!(dir.join("index.log").exists(), "rebuild writes an index");
        // Old mtimes are outside any sane grace window: LRU applies.
        let evicted = store.gc(60);
        assert_eq!(evicted, 50);
        assert!(!dir.join("00000000000000aa.bin").exists(), "oldest first");
        assert!(dir.join("00000000000000bb.bin").exists());
        assert!(dir.join("stray.tmp").exists(), "non-blobs untouched");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_index_record_triggers_rebuild_on_open() {
        let dir = tmp("index-corrupt");
        {
            let store = BlobStore::open(&dir).unwrap();
            store.publish(5, b"five");
            store.publish(6, b"six");
        }
        // Corrupt the first record (a complete line), keep the second.
        let path = dir.join("index.log");
        let mut bytes = fs::read(&path).unwrap();
        bytes[4] = bytes[4].wrapping_add(1);
        fs::write(&path, &bytes).unwrap();

        let store = BlobStore::open(&dir).unwrap();
        assert_eq!(store.rebuild_count(), 1, "corrupt record forces a rebuild");
        assert_eq!(store.len(), 2, "rebuild recovers the live set");
        assert_eq!(store.get(5), Some(b"five".to_vec()));
        // The rebuild compacted: a fresh open parses cleanly.
        let again = BlobStore::open(&dir).unwrap();
        assert_eq!(again.len(), 2);
        assert_eq!(again.rebuild_count(), 0, "no further rebuild");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_record_is_dropped_without_rebuild() {
        let dir = tmp("torn-tail");
        {
            let store = BlobStore::open(&dir).unwrap();
            store.publish(9, b"nine");
        }
        // Simulate a crash mid-append: a partial line with no newline.
        let path = dir.join("index.log");
        let mut f = fs::OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"P 00000000000000ff 1").unwrap();
        drop(f);

        let store = BlobStore::open(&dir).unwrap();
        assert_eq!(store.len(), 1, "torn tail is ignored");
        assert_eq!(store.rebuild_count(), 0, "torn tail must not force a rebuild");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_torn_publish_heals_on_read() {
        use automc_tensor::fault::FaultPlan;
        let dir = tmp("fault-torn");
        let store = BlobStore::open(&dir).unwrap();
        fault::install(FaultPlan::parse("torn@spill:1").unwrap());
        store.publish(0x77, b"torn victim");
        fault::clear();
        let healed_before = counters().healed;
        assert_eq!(store.get(0x77), None, "torn blob must fail its checksum");
        assert!(counters().healed >= healed_before + 1);
        assert!(store.publish(0x77, b"torn victim"), "republish heals");
        assert_eq!(store.get(0x77), Some(b"torn victim".to_vec()));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_evict_race_is_a_clean_miss() {
        use automc_tensor::fault::FaultPlan;
        let dir = tmp("fault-evict");
        let store = BlobStore::open(&dir).unwrap();
        store.publish(0x55, b"doomed");
        // `install` resets the site counters, so the next spill tick —
        // the read below — is ordinal 1.
        fault::install(FaultPlan::parse("evict@spill:1").unwrap());
        let raced_before = counters().raced;
        assert_eq!(store.get(0x55), None, "raced read is a clean miss");
        fault::clear();
        assert!(counters().raced >= raced_before + 1);
        assert_eq!(store.get(0x55), None, "and stays gone");
        assert!(store.publish(0x55, b"doomed"), "republish works");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn sibling_publishes_are_adopted_through_the_index() {
        let dir = tmp("sibling");
        let a = BlobStore::open(&dir).unwrap();
        let b = BlobStore::open(&dir).unwrap();
        a.publish(0x11, b"from a");
        // b has no local entry, but finds the blob on disk.
        assert_eq!(b.get(0x11), Some(b"from a".to_vec()));
        assert_eq!(b.len(), 1, "adopted into b's view");
        // b's budget check sees a's bytes after re-anchoring.
        assert_eq!(a.total_bytes(), b.total_bytes());
        // a publishing through b's existing blob is idempotent.
        assert!(!b.publish(0x11, b"from a"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_lock_is_broken() {
        let dir = tmp("lock");
        // A lock held by a pid that cannot exist.
        fs::write(dir.join(".lock"), "4194304999").unwrap();
        let start = std::time::Instant::now();
        let guard = acquire_lock(&dir);
        assert!(guard.held, "stale lock must be broken, not waited out");
        assert!(
            start.elapsed() < Duration::from_millis(LOCK_WAIT_MS),
            "breaking must not burn the full wait budget"
        );
        drop(guard);
        assert!(!dir.join(".lock").exists(), "drop releases");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn quarantine_is_trimmed() {
        let dir = tmp("qtrim");
        let qdir = dir.join("quarantine");
        fs::create_dir_all(&qdir).unwrap();
        for i in 0..(QUARANTINE_KEEP + 10) {
            fs::write(qdir.join(format!("q{i:04}.bin")), b"x").unwrap();
        }
        trim_quarantine(&dir);
        assert_eq!(fs::read_dir(&qdir).unwrap().count(), QUARANTINE_KEEP);
        let _ = fs::remove_dir_all(&dir);
    }
}
