//! C6 — LFB: learning a shared low-rank filter basis (Li et al.).
//!
//! Convolutions with identical kernel signatures `(in_c, out_c, k, stride)`
//! are grouped; each group learns *one shared spatial basis* (from the SVD
//! of the stacked member kernels) while every member keeps private mixing
//! coefficients. Shared bases are *tied* during fine-tuning — gradients
//! are summed across members and the weights stay identical, and the
//! parameter counter counts each basis once. Fine-tuning uses the
//! auxiliary loss HP16 (NLL / CE / MSE) against the pre-compression
//! teacher, weighted by HP15.

use super::{rank, train_cost, ExecConfig};
use crate::scheme::EvalCost;
use automc_data::ImageSet;
use automc_models::train::{train, Auxiliary, AuxKind};
use automc_models::{ConvKernel, ConvNet};
use automc_tensor::{linalg, Rng, Tensor};

#[allow(clippy::too_many_arguments)]
pub fn apply(
    model: &mut ConvNet,
    train_set: &ImageSet,
    cfg: &ExecConfig,
    ft_epochs: f32,
    ratio: f32,
    aux_factor: f32,
    aux_loss: AuxKind,
    rng: &mut Rng,
) -> EvalCost {
    let mut teacher = model.clone_net();
    let before = model.param_count();
    let target = (before as f32 * ratio) as usize;

    // Group factorisation candidates by kernel signature.
    let fsites = rank::factor_sites(model);
    let mut signatures: Vec<(usize, usize)> = Vec::new(); // (width, out_c) per site
    let mut sig_of_site: Vec<usize> = Vec::new();
    {
        // Collect signatures in visit order (width identifies in_c·k²).
        for s in &fsites {
            let sig = (s.width, 0usize); // group by kernel-matrix width only
            let idx = match signatures.iter().position(|&x| x.0 == sig.0) {
                Some(i) => i,
                None => {
                    signatures.push(sig);
                    signatures.len() - 1
                }
            };
            sig_of_site.push(idx);
        }
    }

    // Choose a shared-basis rank per group via binary search on a common
    // fraction of the group's max rank.
    let group_sites: Vec<Vec<usize>> = (0..signatures.len())
        .map(|g| {
            (0..fsites.len()).filter(|&i| sig_of_site[i] == g).collect::<Vec<_>>()
        })
        .collect();
    // The shared basis conv runs once *per member*, so FLOPs shrink only
    // when the basis rank stays below each member's own break-even point;
    // parameters shrink when it is below the group break-even. Cap at the
    // tighter of the two.
    let group_max_rank = |members: &[usize]| -> usize {
        let width = fsites[members[0]].width;
        let total_oc: usize = members.iter().map(|&i| fsites[i].out_c).sum();
        let min_oc = members.iter().map(|&i| fsites[i].out_c).min().unwrap_or(1);
        let params_neutral = (total_oc * width) as f32 / (total_oc + width) as f32;
        let flops_neutral = (min_oc * width) as f32 / (min_oc + width) as f32;
        ((params_neutral.min(flops_neutral) * 0.75).floor() as usize).max(1)
    };
    let saving_at = |rho: f32| -> i64 {
        group_sites
            .iter()
            .map(|members| {
                if members.is_empty() {
                    return 0;
                }
                let width = fsites[members[0]].width;
                let total_oc: usize = members.iter().map(|&i| fsites[i].out_c).sum();
                let max_rank = group_max_rank(members);
                let b = ((max_rank as f32 * rho).floor() as usize).clamp(1, max_rank);
                let full: i64 = members.iter().map(|&i| (fsites[i].out_c * width) as i64).sum();
                let fact = (b * width) as i64 + (total_oc * b) as i64;
                (full - fact).max(0)
            })
            .sum()
    };
    let group_saving_at_cap = |members: &[usize]| -> i64 {
        let width = fsites[members[0]].width;
        let total_oc: usize = members.iter().map(|&i| fsites[i].out_c).sum();
        let b = group_max_rank(members);
        let full: i64 = members.iter().map(|&i| (fsites[i].out_c * width) as i64).sum();
        (full - (b * width + total_oc * b) as i64).max(0)
    };
    // When the gentlest basis (cap rank everywhere) over-saves, share a
    // basis in only a subset of groups — greedy, biggest savers first.
    let mut selected: Vec<bool> = group_sites.iter().map(|m| !m.is_empty()).collect();
    let rho;
    if saving_at(1.0) >= target as i64 {
        rho = 1.0;
        selected.iter_mut().for_each(|s| *s = false);
        let mut order: Vec<usize> = (0..group_sites.len())
            .filter(|&g| !group_sites[g].is_empty())
            .collect();
        order.sort_by_key(|&g| -group_saving_at_cap(&group_sites[g]));
        let mut saved = 0i64;
        for g in order {
            if saved >= target as i64 {
                break;
            }
            selected[g] = true;
            saved += group_saving_at_cap(&group_sites[g]);
        }
    } else {
        let (mut lo, mut hi) = (0.02f32, 1.0f32);
        for _ in 0..24 {
            let mid = 0.5 * (lo + hi);
            if saving_at(mid) >= target as i64 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        rho = lo;
    }

    // Build and install each selected group's shared basis.
    for (g, members) in group_sites.iter().enumerate() {
        if members.is_empty() || !selected[g] {
            continue;
        }
        let width = fsites[members[0]].width;
        let total_oc: usize = members.iter().map(|&i| fsites[i].out_c).sum();
        let max_rank = group_max_rank(members);
        let b = ((max_rank as f32 * rho).floor() as usize).clamp(1, max_rank);
        // Skip groups where the basis would not save parameters.
        let full: i64 = members.iter().map(|&i| (fsites[i].out_c * width) as i64).sum();
        if (b * width + total_oc * b) as i64 >= full {
            continue;
        }
        // Stack member kernels and take the top-b right singular vectors.
        let visit_ids: Vec<usize> = members.iter().map(|&i| fsites[i].visit_idx).collect();
        let mut stacked = Vec::with_capacity(total_oc * width);
        let mut visit = 0usize;
        model.for_each_cbr(|_, cbr| {
            if visit_ids.contains(&visit) {
                if let ConvKernel::Full(c) = &cbr.kernel {
                    stacked.extend_from_slice(c.weight.data());
                }
            }
            visit += 1;
        });
        if stacked.len() != total_oc * width {
            continue; // a member was already factored — leave the group alone
        }
        let stacked = Tensor::from_slice(&[total_oc, width], &stacked);
        let (_, _, vt) = linalg::truncated_svd(&stacked, b);
        // Install: same basis, private coefficients, one tie group.
        let group_id = model.alloc_tie_group();
        let mut visit = 0usize;
        model.for_each_cbr_mut(|_, cbr| {
            if visit_ids.contains(&visit) {
                cbr.factorize_onto_basis(&vt, Some(group_id));
            }
            visit += 1;
        });
    }

    // Fine-tune with the auxiliary objective.
    let epochs = cfg.epochs(ft_epochs);
    train(
        model,
        train_set,
        &cfg.train_cfg(epochs),
        Auxiliary::LogitsMatch { teacher: &mut teacher, factor: aux_factor, kind: aux_loss },
        rng,
    );
    let mut cost = train_cost(train_set, epochs);
    cost.eval_images += (epochs * train_set.len() as f32).ceil() as u64;
    cost
}
