//! C4 — SFP: soft filter pruning (He et al.).
//!
//! During `HP9 × E₀` epochs of ordinary training, every `HP10` epochs the
//! lowest-L2 filters at each site are *zeroed but kept trainable* (soft
//! masking — they may regrow). After training, the currently-weakest
//! filters are hard-pruned to meet the parameter target. SFP has no
//! separate fine-tuning phase: recovery happens during the soft epochs.

use super::{train_cost, ExecConfig};
use crate::scheme::EvalCost;
use automc_data::ImageSet;
use automc_models::surgery::{
    global_prune_by_scores, prunable_sites, site_scores, soft_zero_site, Criterion,
};
use automc_models::train::{train, Auxiliary};
use automc_models::ConvNet;
use automc_tensor::Rng;

pub fn apply(
    model: &mut ConvNet,
    train_set: &ImageSet,
    cfg: &ExecConfig,
    ratio: f32,
    bp_epochs: f32,
    update_freq: usize,
    rng: &mut Rng,
) -> EvalCost {
    let epochs = (cfg.epochs(bp_epochs).round() as usize).max(1);
    let freq = update_freq.max(1);
    for e in 0..epochs {
        train(model, train_set, &cfg.train_cfg(1.0), Auxiliary::None, rng);
        if e % freq == 0 {
            // Soft-zero the weakest `ratio` fraction of filters per site.
            for site in prunable_sites(model) {
                let scores = site_scores(model, site, Criterion::L2Weight);
                let mut order: Vec<usize> = (0..scores.len()).collect();
                order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
                let zap = ((scores.len() as f32 * ratio) as usize)
                    .min(scores.len().saturating_sub(2));
                soft_zero_site(model, site, &order[..zap]);
            }
        }
    }
    // Hard prune: the soft-zeroed filters have near-zero norms and are
    // removed first by the global ranking.
    let sites = prunable_sites(model);
    let scores: Vec<Vec<f32>> = sites
        .iter()
        .map(|&s| site_scores(model, s, Criterion::L2Weight))
        .collect();
    global_prune_by_scores(model, &sites, &scores, ratio, 0.9);
    train_cost(train_set, epochs as f32)
}
