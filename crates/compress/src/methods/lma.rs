//! C1 — LMA: knowledge distillation into a thinner student (Xu et al.).
//!
//! Fidelity note: the original LMA distils through a *light multi-segment
//! activation* that approximates the teacher's soft targets piecewise-
//! linearly. At repro scale we implement the distillation objective it
//! feeds — temperature-softened KL blended with CE (HP4 temperature, HP5
//! alpha) — with the student obtained by global L2-ranked thinning of the
//! current model. The compression/recovery dynamics (thin → distil →
//! recover) are the behaviour the search interacts with.

use super::{train_cost, ExecConfig};
use crate::scheme::EvalCost;
use automc_data::ImageSet;
use automc_models::surgery::{global_prune_by_scores, prunable_sites, site_scores, Criterion};
use automc_models::train::{train, Auxiliary};
use automc_models::ConvNet;
use automc_tensor::Rng;

#[allow(clippy::too_many_arguments)]
pub fn apply(
    model: &mut ConvNet,
    train_set: &ImageSet,
    cfg: &ExecConfig,
    ft_epochs: f32,
    ratio: f32,
    temperature: f32,
    alpha: f32,
    rng: &mut Rng,
) -> EvalCost {
    let mut teacher = model.clone_net();
    // Thin the student: global L2-ranked channel removal to shed `ratio`
    // of the current parameters.
    let sites = prunable_sites(model);
    let scores: Vec<Vec<f32>> = sites
        .iter()
        .map(|&s| site_scores(model, s, Criterion::L2Weight))
        .collect();
    global_prune_by_scores(model, &sites, &scores, ratio, 0.9);
    // Distil the teacher into the thinned student.
    let epochs = cfg.epochs(ft_epochs);
    train(
        model,
        train_set,
        &cfg.train_cfg(epochs),
        Auxiliary::Distill { teacher: &mut teacher, temperature, alpha },
        rng,
    );
    // Teacher forwards cost roughly one inference pass per training pass.
    let mut cost = train_cost(train_set, epochs);
    cost.eval_images += (epochs * train_set.len() as f32).ceil() as u64;
    cost
}
