//! The six compression-method implementations.

mod hos;
mod legr;
mod lfb;
mod lma;
mod ns;
mod sfp;

pub(crate) mod rank;

use crate::scheme::EvalCost;
use crate::space::StrategySpec;
use automc_data::ImageSet;
use automc_models::ConvNet;
use automc_tensor::Rng;

/// Execution-scale configuration shared by every method.
///
/// `pretrain_epochs` is `E₀` — Table 1's `*n` hyperparameters are
/// multiples of it. The remaining fields are the training-loop knobs of
/// the repro scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecConfig {
    /// Pre-training epochs `E₀` of the original model.
    pub pretrain_epochs: f32,
    /// Mini-batch size for all (re-)training.
    pub batch_size: usize,
    /// Learning rate for all (re-)training.
    pub lr: f32,
    /// LeGR population size.
    pub legr_population: usize,
    /// Images used for LeGR's inner fitness evaluations.
    pub legr_eval_images: usize,
    /// Seed of the *evaluation* RNG streams. Every strategy step of a
    /// scheme evaluation derives its RNG from `(eval_seed, scheme
    /// prefix)` alone — never from the caller's search RNG — so a scheme
    /// evaluates bitwise-identically no matter which search asked, in
    /// which order, or how much of its prefix the memo cache supplied.
    pub eval_seed: u64,
    /// Cooperative per-evaluation cap on training mini-batches (0 =
    /// unlimited). An evaluation that exceeds it is abandoned and
    /// reported as timed out instead of hanging the search.
    pub max_train_steps: u64,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            pretrain_epochs: 10.0,
            batch_size: 32,
            lr: 0.05,
            legr_population: 4,
            legr_eval_images: 128,
            eval_seed: 0,
            max_train_steps: 0,
        }
    }
}

impl ExecConfig {
    /// Convert a Table 1 `*n` multiplier into concrete epochs.
    pub fn epochs(&self, multiplier: f32) -> f32 {
        (multiplier * self.pretrain_epochs).max(0.1)
    }

    /// Base training config at this scale.
    pub(crate) fn train_cfg(&self, epochs: f32) -> automc_models::train::TrainConfig {
        automc_models::train::TrainConfig {
            epochs,
            batch_size: self.batch_size,
            lr: self.lr,
            ..automc_models::train::TrainConfig::default()
        }
    }
}

/// Apply one compression strategy to `model` in place.
///
/// `train_set` is the data available to the strategy (the 10% sample during
/// search, the full split for final evaluations). Returns the simulated
/// cost spent (the budget currency that keeps search-strategy comparisons
/// fair).
pub fn apply_strategy(
    spec: &StrategySpec,
    model: &mut ConvNet,
    train_set: &ImageSet,
    cfg: &ExecConfig,
    rng: &mut Rng,
) -> EvalCost {
    match spec {
        StrategySpec::Lma { ft_epochs, ratio, temperature, alpha } => {
            lma::apply(model, train_set, cfg, *ft_epochs, *ratio, *temperature, *alpha, rng)
        }
        StrategySpec::Legr { ft_epochs, ratio, max_prune, evo_epochs, criterion } => legr::apply(
            model, train_set, cfg, *ft_epochs, *ratio, *max_prune, *evo_epochs, *criterion, rng,
        ),
        StrategySpec::Ns { ft_epochs, ratio, max_prune } => {
            ns::apply(model, train_set, cfg, *ft_epochs, *ratio, *max_prune, rng)
        }
        StrategySpec::Sfp { ratio, bp_epochs, update_freq } => {
            sfp::apply(model, train_set, cfg, *ratio, *bp_epochs, *update_freq, rng)
        }
        StrategySpec::Hos { ft_epochs, ratio, global, criterion, opt_epochs, mse_factor } => {
            hos::apply(
                model,
                train_set,
                cfg,
                *ft_epochs,
                *ratio,
                *global,
                *criterion,
                *opt_epochs,
                *mse_factor,
                rng,
            )
        }
        StrategySpec::Lfb { ft_epochs, ratio, aux_factor, aux_loss } => {
            lfb::apply(model, train_set, cfg, *ft_epochs, *ratio, *aux_factor, *aux_loss, rng)
        }
    }
}

/// Cost of training `epochs` over `set` — the common budget bookkeeping.
pub(crate) fn train_cost(set: &ImageSet, epochs: f32) -> EvalCost {
    EvalCost {
        trained_images: (epochs * set.len() as f32).ceil() as u64,
        eval_images: 0,
    }
}
