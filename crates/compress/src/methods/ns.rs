//! C3 — NS: network slimming (Liu et al.).
//!
//! Sparsity-train with an L1 penalty on batch-norm scaling factors γ
//! (TE4), prune the channels with the smallest |γ| globally, then
//! fine-tune (TE3). The HP1 budget is split evenly between the sparsity
//! phase and the recovery phase.

use super::{train_cost, ExecConfig};
use crate::scheme::EvalCost;
use automc_data::ImageSet;
use automc_models::surgery::{
    global_prune_by_scores, prunable_sites, site_scores, Criterion,
};
use automc_models::train::{train, Auxiliary, TrainConfig};
use automc_models::ConvNet;
use automc_tensor::Rng;

/// Strength of the γ L1 regulariser during the sparsity phase.
const GAMMA_L1: f32 = 0.02;

pub fn apply(
    model: &mut ConvNet,
    train_set: &ImageSet,
    cfg: &ExecConfig,
    ft_epochs: f32,
    ratio: f32,
    max_prune: f32,
    rng: &mut Rng,
) -> EvalCost {
    let total = cfg.epochs(ft_epochs);
    let half = (total * 0.5).max(0.1);
    // Phase 1: sparsity training.
    let sparsity_cfg = TrainConfig { bn_gamma_l1: GAMMA_L1, ..cfg.train_cfg(half) };
    train(model, train_set, &sparsity_cfg, Auxiliary::None, rng);
    // Phase 2: global γ-ranked channel pruning.
    let sites = prunable_sites(model);
    let scores: Vec<Vec<f32>> = sites
        .iter()
        .map(|&s| site_scores(model, s, Criterion::L2BnParam))
        .collect();
    global_prune_by_scores(model, &sites, &scores, ratio, max_prune);
    // Phase 3: fine-tune.
    train(model, train_set, &cfg.train_cfg(half), Auxiliary::None, rng);
    train_cost(train_set, total)
}
