//! C2 — LeGR: filter pruning via a learned global ranking (Chin et al.).
//!
//! LeGR learns per-layer affine transforms `(α_l, κ_l)` of a base filter
//! score so that a *global* threshold prunes well. The transforms are
//! evolved: each generation mutates the population, prunes a throwaway
//! copy of the network with each candidate's transformed scores, and uses
//! held-out accuracy (no fine-tuning) as fitness. The best transform then
//! prunes the real network, followed by fine-tuning (TE3).

use super::{train_cost, ExecConfig};
use crate::scheme::EvalCost;
use automc_data::ImageSet;
use automc_models::surgery::{
    global_prune_by_scores, prunable_sites, site_scores, Criterion,
};
use automc_models::train::{evaluate, train, Auxiliary};
use automc_models::ConvNet;
use automc_tensor::Rng;
use rand::Rng as _;

/// One individual: per-site `(α, κ)`.
#[derive(Clone)]
struct Affine {
    alpha: Vec<f32>,
    kappa: Vec<f32>,
}

impl Affine {
    fn identity(n: usize) -> Self {
        Affine { alpha: vec![1.0; n], kappa: vec![0.0; n] }
    }

    fn mutate(&self, std: f32, rng: &mut Rng) -> Self {
        let jitter = |v: &f32, rng: &mut Rng| {
            let u1: f32 = 1.0 - rng.gen::<f32>();
            let u2: f32 = rng.gen();
            let n = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
            v + std * n
        };
        Affine {
            alpha: self.alpha.iter().map(|a| jitter(a, rng).max(0.01)).collect(),
            kappa: self.kappa.iter().map(|k| jitter(k, rng)).collect(),
        }
    }

    fn transform(&self, base: &[Vec<f32>]) -> Vec<Vec<f32>> {
        base.iter()
            .enumerate()
            .map(|(s, scores)| {
                scores.iter().map(|&v| self.alpha[s] * v + self.kappa[s]).collect()
            })
            .collect()
    }
}

#[allow(clippy::too_many_arguments)]
pub fn apply(
    model: &mut ConvNet,
    train_set: &ImageSet,
    cfg: &ExecConfig,
    ft_epochs: f32,
    ratio: f32,
    max_prune: f32,
    evo_epochs: f32,
    criterion: Criterion,
    rng: &mut Rng,
) -> EvalCost {
    let sites = prunable_sites(model);
    let base: Vec<Vec<f32>> = sites
        .iter()
        .map(|&s| {
            // Per-site max-normalised scores so the affine transform works
            // on comparable ranges across layers.
            let raw = site_scores(model, s, criterion);
            let max = raw.iter().cloned().fold(f32::MIN, f32::max).max(1e-12);
            raw.iter().map(|v| v / max).collect()
        })
        .collect();

    // Fitness-evaluation subset (held-in: the search sample is small).
    let eval_n = cfg.legr_eval_images.min(train_set.len());
    let eval_idxs: Vec<usize> = (0..eval_n).collect();
    let eval_set = train_set.subset(&eval_idxs);

    let generations = (cfg.epochs(evo_epochs).round() as usize).max(1);
    let pop_size = cfg.legr_population.max(2);
    let mut population: Vec<Affine> = vec![Affine::identity(sites.len())];
    while population.len() < pop_size {
        population.push(population[0].mutate(0.3, rng));
    }
    let mut eval_images = 0u64;
    let mut best: (f32, Affine) = (f32::MIN, population[0].clone());
    for _gen in 0..generations {
        let mut scored: Vec<(f32, Affine)> = Vec::with_capacity(population.len());
        for ind in &population {
            let mut probe = model.clone_net();
            let transformed = ind.transform(&base);
            global_prune_by_scores(&mut probe, &sites, &transformed, ratio, max_prune);
            let acc = evaluate(&mut probe, &eval_set);
            eval_images += eval_set.len() as u64;
            scored.push((acc, ind.clone()));
        }
        scored.sort_by(|a, b| b.0.total_cmp(&a.0));
        if scored[0].0 > best.0 {
            best = scored[0].clone();
        }
        // Elitism + mutation of the top half.
        let survivors: Vec<Affine> =
            scored.iter().take(pop_size.div_ceil(2)).map(|(_, a)| a.clone()).collect();
        population = survivors.clone();
        let mut i = 0;
        while population.len() < pop_size {
            population.push(survivors[i % survivors.len()].mutate(0.2, rng));
            i += 1;
        }
    }

    // Final prune with the best learned ranking, then fine-tune.
    let transformed = best.1.transform(&base);
    global_prune_by_scores(model, &sites, &transformed, ratio, max_prune);
    let epochs = cfg.epochs(ft_epochs);
    train(model, train_set, &cfg.train_cfg(epochs), Auxiliary::None, rng);
    let mut cost = train_cost(train_set, epochs);
    cost.eval_images += eval_images;
    cost
}
