//! C5 — HOS: filter pruning by higher-order statistics plus low-rank
//! kernel approximation (Chatzikonstantinou et al.).
//!
//! Two structural phases followed by reconstruction training:
//! 1. **Prune** filters ranked by a higher-order statistic of their weight
//!    distribution (HP12: `l1norm` / `k34` / `skew_kur`), combined across
//!    layers by the global scheme HP11 (`P1` per-layer normalised, `P2` raw
//!    global pool, `P3` cost-weighted pool). This phase takes 60% of the
//!    HP2 parameter budget.
//! 2. **Factorise** the remaining full kernels (HOOI-style low-rank
//!    approximation — here an exact truncated SVD of the matricised
//!    kernel, see `DESIGN.md`) to shed the remaining 40%.
//! 3. **Optimise** for `HP13 × E₀` epochs with an auxiliary MSE
//!    reconstruction loss against the pre-compression teacher (factor
//!    HP14), then plain fine-tuning for `HP1 × E₀` epochs (TE3).

use super::{rank, train_cost, ExecConfig};
use crate::scheme::EvalCost;
use automc_data::ImageSet;
use automc_models::surgery::{
    global_prune_by_scores, per_channel_cost, prunable_sites, site_scores, Criterion,
};
use automc_models::train::{train, Auxiliary, AuxKind};
use automc_models::ConvNet;
use automc_tensor::Rng;

/// Fraction of the parameter budget assigned to the pruning phase (the
/// rest goes to factorisation).
const PRUNE_SHARE: f32 = 0.6;

#[allow(clippy::too_many_arguments)]
pub fn apply(
    model: &mut ConvNet,
    train_set: &ImageSet,
    cfg: &ExecConfig,
    ft_epochs: f32,
    ratio: f32,
    global: usize,
    criterion: Criterion,
    opt_epochs: f32,
    mse_factor: f32,
    rng: &mut Rng,
) -> EvalCost {
    let mut teacher = model.clone_net();
    let before = model.param_count();

    // Phase 1 — HOS-ranked pruning.
    let sites = prunable_sites(model);
    let scores: Vec<Vec<f32>> = sites
        .iter()
        .map(|&s| {
            let raw = site_scores(model, s, criterion);
            match global {
                // P1: per-layer max-normalised (uniform pressure).
                0 => {
                    let max = raw.iter().cloned().fold(f32::MIN, f32::max).max(1e-12);
                    raw.iter().map(|v| v / max).collect()
                }
                // P2: raw global pool.
                1 => raw,
                // P3: cost-weighted — cheap channels are pruned last.
                _ => {
                    let cost = per_channel_cost(model, s).max(1) as f32;
                    raw.iter().map(|v| v / cost).collect()
                }
            }
        })
        .collect();
    global_prune_by_scores(model, &sites, &scores, ratio * PRUNE_SHARE, 0.9);

    // Phase 2 — low-rank kernel approximation for the remaining budget.
    let after_prune = model.param_count();
    let remaining_target =
        ((before as f32 * ratio) as usize).saturating_sub(before - after_prune);
    if remaining_target > 0 {
        let fsites = rank::factor_sites(model);
        if !fsites.is_empty() {
            let (_, ranks) = rank::choose_rank_fraction(&fsites, remaining_target);
            rank::factorize_sites(model, &fsites, &ranks);
        }
    }

    // Phase 3 — reconstruction optimisation, then fine-tuning.
    let opt = cfg.epochs(opt_epochs);
    train(
        model,
        train_set,
        &cfg.train_cfg(opt),
        Auxiliary::LogitsMatch { teacher: &mut teacher, factor: mse_factor, kind: AuxKind::Mse },
        rng,
    );
    let ft = cfg.epochs(ft_epochs);
    train(model, train_set, &cfg.train_cfg(ft), Auxiliary::None, rng);
    let mut cost = train_cost(train_set, opt + ft);
    cost.eval_images += (opt * train_set.len() as f32).ceil() as u64; // teacher passes
    cost
}
