//! Rank selection for the low-rank methods: turn a parameter-reduction
//! target into per-conv factorisation ranks by binary search over a common
//! rank fraction.

use automc_models::{CbrRole, ConvKernel, ConvNet};

/// A factorisation candidate: a full-kernel conv unit worth factoring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FactorSite {
    /// Order index in `for_each_cbr` traversal.
    pub visit_idx: usize,
    /// Output channels.
    pub out_c: usize,
    /// Kernel-matrix width (`in_c·kh·kw`).
    pub width: usize,
}

/// Enumerate factorisation candidates: full kernels with spatial extent
/// (width > out channels matters less than having something to gain).
pub fn factor_sites(net: &ConvNet) -> Vec<FactorSite> {
    let mut sites = Vec::new();
    let mut visit = 0usize;
    net.for_each_cbr(|role, cbr| {
        if let ConvKernel::Full(c) = &cbr.kernel {
            let (kh, kw) = c.kernel();
            // 1×1 convs (shortcuts) have nothing to factor; skip the stem
            // and shortcut roles too — they are small and fragile.
            if kh * kw > 1 && !matches!(role, CbrRole::Shortcut | CbrRole::Stem) {
                sites.push(FactorSite {
                    visit_idx: visit,
                    out_c: c.out_channels(),
                    width: c.weight.dims()[1],
                });
            }
        }
        visit += 1;
    });
    sites
}

/// Parameters saved by factoring a site at `rank` (0 if not profitable).
pub fn saving(site: FactorSite, rank: usize) -> i64 {
    let full = (site.out_c * site.width) as i64;
    let fact = (rank * site.width + site.out_c * rank) as i64;
    full - fact
}

/// Largest rank that still *reduces* both parameters and FLOPs.
///
/// A factorised conv costs `r·width + oc·r` parameters and
/// `r·width + oc·r` MACs per output position versus `oc·width` for the
/// full kernel, so any saving requires `r < oc·width / (oc + width)`.
/// We cap at 75% of that break-even point so factorisation is never a
/// degenerate no-op.
pub fn max_useful_rank(site: FactorSite) -> usize {
    let neutral = (site.out_c * site.width) as f32 / (site.out_c + site.width) as f32;
    ((neutral * 0.75).floor() as usize).max(1)
}

/// Rank for a site at rank-fraction `rho ∈ (0, 1]`.
pub fn rank_at(site: FactorSite, rho: f32) -> usize {
    let max_rank = max_useful_rank(site);
    ((max_rank as f32 * rho).floor() as usize).clamp(1, max_rank)
}

/// Binary-search a common rank fraction whose total (profitable-site)
/// saving approximates `target_params` removed. Returns `(rho, ranks)`
/// where `ranks[i]` is `None` for sites that are unprofitable at `rho`.
pub fn choose_rank_fraction(
    sites: &[FactorSite],
    target_params: usize,
) -> (f32, Vec<Option<usize>>) {
    let total_saving_at = |rho: f32| -> i64 {
        sites
            .iter()
            .map(|&s| saving(s, rank_at(s, rho)).max(0))
            .sum()
    };
    // If even the gentlest factorisation (every site at its maximum useful
    // rank) over-saves, factor only a *subset* of sites: greedily pick the
    // highest-saving sites until the target is met and leave the rest
    // untouched — far less damaging than blanket low-rank replacement.
    if total_saving_at(1.0) >= target_params as i64 {
        let mut order: Vec<usize> = (0..sites.len()).collect();
        order.sort_by_key(|&i| -saving(sites[i], max_useful_rank(sites[i])).max(0));
        let mut ranks: Vec<Option<usize>> = vec![None; sites.len()];
        let mut saved = 0i64;
        for i in order {
            if saved >= target_params as i64 {
                break;
            }
            let r = max_useful_rank(sites[i]);
            let s = saving(sites[i], r);
            if s > 0 {
                ranks[i] = Some(r);
                saved += s;
            }
        }
        return (1.0, ranks);
    }
    let (mut lo, mut hi) = (0.02f32, 1.0f32);
    for _ in 0..24 {
        let mid = 0.5 * (lo + hi);
        if total_saving_at(mid) as i64 >= target_params as i64 {
            lo = mid; // higher rank keeps more params — tighten from below
        } else {
            hi = mid;
        }
    }
    // `lo` is the largest fraction that still meets the target (or the
    // closest achievable if even rank 1 cannot).
    let rho = if total_saving_at(lo) >= target_params as i64 { lo } else { hi.min(lo) };
    let ranks = sites
        .iter()
        .map(|&s| {
            let r = rank_at(s, rho);
            (saving(s, r) > 0).then_some(r)
        })
        .collect();
    (rho, ranks)
}

/// Apply per-site factorisation ranks chosen by [`choose_rank_fraction`].
pub fn factorize_sites(net: &mut ConvNet, sites: &[FactorSite], ranks: &[Option<usize>]) {
    let mut visit = 0usize;
    let mut cursor = 0usize;
    net.for_each_cbr_mut(|_, cbr| {
        if cursor < sites.len() && sites[cursor].visit_idx == visit {
            if let Some(rank) = ranks[cursor] {
                cbr.factorize(rank, None);
            }
            cursor += 1;
        }
        visit += 1;
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use automc_models::vgg;
    use automc_tensor::rng_from_seed;

    #[test]
    fn sites_exclude_one_by_one_kernels() {
        let mut rng = rng_from_seed(170);
        let net = automc_models::resnet(20, 4, 10, (3, 8, 8), &mut rng);
        for s in factor_sites(&net) {
            assert!(s.width >= 9 * 3, "3×3 kernels only, got width {}", s.width);
        }
    }

    #[test]
    fn saving_is_monotone_in_rank() {
        let site = FactorSite { visit_idx: 0, out_c: 16, width: 72 };
        assert!(saving(site, 1) > saving(site, 8));
        assert!(saving(site, 1) > 0);
    }

    #[test]
    fn binary_search_meets_feasible_target() {
        let mut rng = rng_from_seed(171);
        let net = vgg(16, 8, 10, (3, 8, 8), &mut rng);
        let sites = factor_sites(&net);
        let max_possible: i64 = sites.iter().map(|&s| saving(s, 1).max(0)).sum();
        let target = (max_possible / 3) as usize;
        let (_, ranks) = choose_rank_fraction(&sites, target);
        let achieved: i64 = sites
            .iter()
            .zip(&ranks)
            .filter_map(|(&s, r)| r.map(|r| saving(s, r)))
            .sum();
        assert!(
            achieved >= target as i64,
            "achieved {achieved} < target {target}"
        );
        // And not wildly more than needed (binary search is tight-ish).
        assert!(achieved <= max_possible);
    }

    #[test]
    fn factorize_sites_reduces_params() {
        let mut rng = rng_from_seed(172);
        let mut net = vgg(16, 8, 10, (3, 8, 8), &mut rng);
        let before = net.param_count();
        let sites = factor_sites(&net);
        let (_, ranks) = choose_rank_fraction(&sites, before / 4);
        factorize_sites(&mut net, &sites, &ranks);
        let after = net.param_count();
        assert!(after < before, "{after} !< {before}");
        // Still runnable.
        let x = automc_tensor::Tensor::randn(&[1, 3, 8, 8], 1.0, &mut rng);
        assert_eq!(net.forward(&x, false).dims(), &[1, 10]);
    }

    #[test]
    fn infeasible_target_degrades_gracefully() {
        let mut rng = rng_from_seed(173);
        let net = vgg(13, 8, 10, (3, 8, 8), &mut rng);
        let sites = factor_sites(&net);
        let (_, ranks) = choose_rank_fraction(&sites, 100_000_000);
        // Everything profitable gets rank 1.
        for (s, r) in sites.iter().zip(&ranks) {
            if let Some(r) = r {
                assert_eq!(*r, 1, "site {s:?}");
            }
        }
    }
}
