//! Cross-search prefix-model memoization.
//!
//! The paper's progressive search is efficient because it "makes full use
//! of the evaluated schemes": it extends cached prefix models by one
//! strategy instead of replaying whole schemes. This module generalises
//! that reuse to *every* execution of a scheme — the RL, Evolution and
//! Random baselines, transfer runs, and the progressive search itself all
//! share one content-addressed cache of partially compressed models.
//!
//! # Keys
//!
//! A prefix of a scheme evaluation is identified by an FNV-1a fingerprint
//! chain over everything that shapes its result:
//!
//! * the base model (full structural serialisation),
//! * the training and evaluation datasets (dims, labels, pixel bits),
//! * the [`ExecConfig`] (including `eval_seed`, which names the derived
//!   RNG stream, and `max_train_steps`),
//! * each strategy step: its id *and* its full hyperparameter spec, so
//!   the same id in a different [`StrategySpace`] never collides.
//!
//! Because the chain is running, the key of depth `d` extends the key of
//! depth `d-1`: one pass over the scheme yields every prefix key.
//!
//! # Path-independent randomness
//!
//! Correctness rests on every strategy step drawing from an RNG derived
//! only from `(eval_seed, scheme[0..=i])` — see [`step_rng`]. A scheme
//! then evaluates bitwise-identically whether the cache supplied its
//! prefix at depth 0, 3, or L, on any thread, in any order — so enabling
//! or disabling memoization can never change a result, only its cost.
//!
//! # Fault semantics
//!
//! `fault::tick("eval")` fires once per *logical* evaluation regardless
//! of cache hits, but `train`-site ticks happen per actual training run —
//! a cache hit would skip them and shift every later ordinal. The
//! executor therefore makes the cache pass-through whenever the thread's
//! fault plan schedules an `eval` or `train` fault
//! ([`automc_tensor::fault::plan_schedules_any`]), so those injection
//! runs behave exactly as if memoization did not exist. Plans targeting
//! other sites — notably the blob store's own `spill`/`index` faults —
//! leave the memo enabled: disabling it would make the very code those
//! faults exercise unreachable.
//!
//! Organic failures (divergence, panics, timeouts) are deterministic for
//! a given prefix, so they are negative-cached: re-encountering a known
//! bad prefix fails immediately at the recorded step with the recorded
//! cost.
//!
//! # Bounds
//!
//! The in-memory store is an LRU bounded by a byte budget
//! (`AUTOMC_MEMO_BYTES`, default 256 MiB). Entries can optionally spill
//! to a [`crate::store::BlobStore`] ([`set_spill_dir`]) — crash-safe,
//! checksummed, and safe for concurrent multi-process use — so resumed,
//! repeated, and *sibling* runs re-hit across processes. The spill store
//! is itself capped (`AUTOMC_MEMO_DISK_BYTES`, default 1 GiB): that cap
//! is the budget handed to the store's generational GC, which re-anchors
//! byte totals from its index (so sibling processes' puts and evicts are
//! accounted), evicts least-recently-used blobs first, and never evicts
//! inside the in-use grace window. `AUTOMC_MEMO=off` disables the cache
//! entirely.

use crate::methods::ExecConfig;
use crate::scheme::{EvalCost, Metrics, StepRecord};
use crate::space::{StrategyId, StrategySpace};
use crate::store::BlobStore;
use automc_data::ImageSet;
use automc_models::{serialize, ConvNet};
use automc_tensor::{rng_for_task, Rng};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

// ---------------------------------------------------------------------------
// Fingerprinting
// ---------------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Running FNV-1a 64 hasher (the workspace's journal/cache checksum).
#[derive(Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(FNV_OFFSET)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    fn finish(self) -> u64 {
        self.0
    }
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv::new();
    h.write(bytes);
    h.finish()
}

/// Structural fingerprint of a model (architecture and weight bits).
pub fn model_fingerprint(net: &ConvNet) -> u64 {
    fnv1a64(&serialize::model_to_bytes(net))
}

/// Content fingerprint of a dataset (dims, labels, pixel bits).
pub fn dataset_fingerprint(set: &ImageSet) -> u64 {
    let mut h = Fnv::new();
    let (c, ht, w) = set.image_dims();
    for v in [set.len() as u64, set.classes() as u64, c as u64, ht as u64, w as u64] {
        h.write_u64(v);
    }
    for &l in set.labels() {
        h.write_u64(l as u64);
    }
    for i in 0..set.len() {
        for &px in set.image(i) {
            h.write(&px.to_bits().to_le_bytes());
        }
    }
    h.finish()
}

fn exec_fingerprint(cfg: &ExecConfig) -> u64 {
    let mut h = Fnv::new();
    h.write_u64(u64::from(cfg.pretrain_epochs.to_bits()));
    h.write_u64(cfg.batch_size as u64);
    h.write_u64(u64::from(cfg.lr.to_bits()));
    h.write_u64(cfg.legr_population as u64);
    h.write_u64(cfg.legr_eval_images as u64);
    h.write_u64(cfg.eval_seed);
    h.write_u64(cfg.max_train_steps);
    h.finish()
}

/// The RNG for strategy step `prefix.len() - 1` of a scheme evaluation:
/// a keyed hash of `(eval_seed, prefix)` through the same splitmix
/// derivation as [`automc_tensor::rng_for_task`]. Depends on nothing
/// else — not the search that asked, not the steps' wall-clock order,
/// not how much of the prefix came from the memo cache.
pub fn step_rng(eval_seed: u64, prefix: &[StrategyId]) -> Rng {
    let mut h = Fnv::new();
    h.write(b"automc-step-rng-v1");
    h.write_u64(eval_seed);
    for &sid in prefix {
        h.write_u64(sid as u64);
    }
    rng_for_task(eval_seed, h.finish())
}

/// Every prefix key of `scheme` under this evaluation context:
/// `keys[d-1]` addresses the model state after executing `scheme[..d]`.
pub(crate) fn prefix_keys(
    base_model: &ConvNet,
    train_set: &ImageSet,
    eval_set: &ImageSet,
    cfg: &ExecConfig,
    scheme: &[StrategyId],
    space: &StrategySpace,
) -> Vec<u64> {
    let mut h = Fnv::new();
    h.write(b"automc-memo-v1");
    // Kernel numerics version: memoised metrics are float outputs of the
    // tensor kernels, so entries computed under different kernel numerics
    // must never collide. (`step_rng` stays unsalted — RNG streams are
    // independent of kernel numerics and must survive bumps.)
    h.write_u64(automc_tensor::KERNEL_NUMERICS_VERSION);
    h.write_u64(model_fingerprint(base_model));
    h.write_u64(dataset_fingerprint(train_set));
    h.write_u64(dataset_fingerprint(eval_set));
    h.write_u64(exec_fingerprint(cfg));
    let mut keys = Vec::with_capacity(scheme.len());
    for &sid in scheme {
        h.write_u64(sid as u64);
        // Hash the full hyperparameter spec, not just the id: the same id
        // in a different strategy space is a different strategy.
        h.write(format!("{:?}", space.spec(sid)).as_bytes());
        keys.push(h.finish());
    }
    keys
}

// ---------------------------------------------------------------------------
// Cached values
// ---------------------------------------------------------------------------

/// How a negative-cached prefix failed.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum FailKind {
    /// Training diverged (non-finite loss or accuracy).
    Diverged,
    /// A panic was caught, with its payload message.
    Panicked(String),
    /// The cooperative `max_train_steps` cap was exhausted.
    TimedOut,
}

#[derive(Clone)]
enum Cached {
    Good {
        model_bytes: Vec<u8>,
        metrics: Metrics,
        steps: Vec<StepRecord>,
        cost: EvalCost,
        train_batches: u64,
    },
    Failed {
        kind: FailKind,
        step: usize,
        cost: EvalCost,
        train_batches: u64,
    },
}

impl Cached {
    /// Approximate heap footprint, for the byte budget.
    fn bytes(&self) -> usize {
        match self {
            Cached::Good { model_bytes, steps, .. } => {
                model_bytes.len() + steps.len() * std::mem::size_of::<StepRecord>() + 128
            }
            Cached::Failed { kind, .. } => {
                let msg = match kind {
                    FailKind::Panicked(m) => m.len(),
                    _ => 0,
                };
                msg + 128
            }
        }
    }
}

/// A successful cache hit, decoded and ready to resume from.
pub(crate) struct GoodHit {
    pub depth: usize,
    pub model: ConvNet,
    pub metrics: Metrics,
    pub steps: Vec<StepRecord>,
    pub cost: EvalCost,
    pub train_batches: u64,
}

/// A negative cache hit: this prefix is known to fail.
pub(crate) struct FailedHit {
    pub kind: FailKind,
    pub step: usize,
    pub cost: EvalCost,
}

/// Result of [`lookup_longest`].
pub(crate) enum Hit {
    /// Resume from this prefix model.
    Good(GoodHit),
    /// The evaluation is doomed: fail immediately as recorded.
    Failed(FailedHit),
}

// ---------------------------------------------------------------------------
// The store
// ---------------------------------------------------------------------------

struct Slot {
    value: Cached,
    bytes: usize,
    last_use: u64,
}

#[derive(Default)]
struct Store {
    map: HashMap<u64, Slot>,
    seq: u64,
    bytes: usize,
}

impl Store {
    fn touch(&mut self, key: u64) -> Option<Cached> {
        self.seq += 1;
        let seq = self.seq;
        self.map.get_mut(&key).map(|slot| {
            slot.last_use = seq;
            slot.value.clone()
        })
    }

    fn insert(&mut self, key: u64, value: Cached, budget: usize) -> u64 {
        self.seq += 1;
        if self.map.contains_key(&key) {
            // Values are content-addressed: a re-insert is identical by
            // construction, so only refresh recency.
            if let Some(slot) = self.map.get_mut(&key) {
                slot.last_use = self.seq;
            }
            return 0;
        }
        let bytes = value.bytes();
        self.bytes += bytes;
        let last_use = self.seq;
        self.map.insert(key, Slot { value, bytes, last_use });
        let mut evicted = 0;
        while self.bytes > budget && !self.map.is_empty() {
            // O(n) min-scan: the store holds at most a few thousand
            // entries and evictions are rare next to training work.
            let Some((&victim, _)) =
                self.map.iter().min_by_key(|(_, slot)| slot.last_use)
            else {
                break;
            };
            if let Some(slot) = self.map.remove(&victim) {
                self.bytes -= slot.bytes;
                evicted += 1;
            }
        }
        evicted
    }

    fn remove(&mut self, key: u64) {
        if let Some(slot) = self.map.remove(&key) {
            self.bytes -= slot.bytes;
        }
    }
}

fn store() -> &'static Mutex<Store> {
    static STORE: OnceLock<Mutex<Store>> = OnceLock::new();
    STORE.get_or_init(|| Mutex::new(Store::default()))
}

fn locked_store() -> std::sync::MutexGuard<'static, Store> {
    match store().lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Default in-memory byte budget (~256 MiB).
pub const DEFAULT_BYTE_BUDGET: u64 = 256 << 20;

fn env_enabled() -> bool {
    match std::env::var("AUTOMC_MEMO") {
        Ok(v) => !matches!(
            v.trim().to_ascii_lowercase().as_str(),
            "off" | "0" | "false" | "no"
        ),
        Err(_) => true,
    }
}

fn env_budget() -> u64 {
    std::env::var("AUTOMC_MEMO_BYTES")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(DEFAULT_BYTE_BUDGET)
}

thread_local! {
    static THREAD_ENABLED: Cell<Option<bool>> = const { Cell::new(None) };
}

/// Global on/off override (set by the bench `--memo` flag); `None` defers
/// to the `AUTOMC_MEMO` environment variable (default: enabled).
static GLOBAL_ENABLED: Mutex<Option<bool>> = Mutex::new(None);
static GLOBAL_ENABLED_CACHE: AtomicU64 = AtomicU64::new(0); // 0 unset, 1 on, 2 off

fn byte_budget_cell() -> &'static AtomicU64 {
    static BUDGET: OnceLock<AtomicU64> = OnceLock::new();
    BUDGET.get_or_init(|| AtomicU64::new(env_budget()))
}

/// Whether memoization is active for the current thread. Priority:
/// per-thread override (tests), then the global override (bench flag),
/// then `AUTOMC_MEMO` (default on).
pub fn enabled() -> bool {
    if let Some(v) = THREAD_ENABLED.with(|c| c.get()) {
        return v;
    }
    match GLOBAL_ENABLED_CACHE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            static ENV: OnceLock<bool> = OnceLock::new();
            *ENV.get_or_init(env_enabled)
        }
    }
}

/// Per-thread enable/disable override, for tests that must not interfere
/// with concurrently running tests. `None` removes the override.
pub fn set_enabled_for_thread(v: Option<bool>) {
    THREAD_ENABLED.with(|c| c.set(v));
}

/// Process-wide enable/disable override (the bench `--memo` flag). The
/// override is visible to all threads, including pool workers.
pub fn set_enabled_global(v: Option<bool>) {
    if let Ok(mut g) = GLOBAL_ENABLED.lock() {
        *g = v;
    }
    GLOBAL_ENABLED_CACHE.store(
        match v {
            None => 0,
            Some(true) => 1,
            Some(false) => 2,
        },
        Ordering::Relaxed,
    );
}

/// Set the in-memory byte budget (overrides `AUTOMC_MEMO_BYTES`).
pub fn set_byte_budget(bytes: u64) {
    byte_budget_cell().store(bytes, Ordering::Relaxed);
}

/// Drop every in-memory entry (spilled blobs are untouched).
pub fn clear() {
    let mut s = locked_store();
    s.map.clear();
    s.bytes = 0;
}

/// Total entries evicted by the byte budget since process start.
pub fn evictions() -> u64 {
    EVICTIONS.load(Ordering::Relaxed)
}

static EVICTIONS: AtomicU64 = AtomicU64::new(0);

// ---------------------------------------------------------------------------
// Statistics (thread-local, so concurrent searches report independently)
// ---------------------------------------------------------------------------

/// Counters describing how the cache behaved on the current thread.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Evaluations that consulted the cache (non-empty scheme, memo on).
    pub lookups: u64,
    /// Lookups that found *any* cached prefix (depth ≥ 1).
    pub prefix_hits: u64,
    /// Lookups where the whole scheme was cached.
    pub full_hits: u64,
    /// Lookups answered by the negative cache (known-bad prefix).
    pub neg_hits: u64,
    /// Hits served from the spill directory rather than memory.
    pub spill_hits: u64,
    /// Strategy steps skipped thanks to cached prefixes.
    pub steps_avoided: u64,
    /// Training images the skipped steps would have consumed.
    pub trained_images_avoided: u64,
    /// Training mini-batches the skipped steps would have consumed.
    pub train_batches_avoided: u64,
    /// Entries written (per prefix depth).
    pub inserts: u64,
    /// Blobs published to the spill store. Unlike the fields above this
    /// is *process-wide* (the store is shared by all threads), snapshotted
    /// from [`crate::store::counters`] at [`stats`] time.
    pub spilled: u64,
    /// Spill blobs evicted under the disk budget (process-wide).
    pub spill_evictions: u64,
    /// Corrupt spill blobs quarantined and healed (process-wide).
    pub healed: u64,
}

impl MemoStats {
    /// Prefix hit rate in percent (0 when nothing was looked up).
    pub fn hit_rate_pct(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            100.0 * self.prefix_hits as f64 / self.lookups as f64
        }
    }

    /// `self - earlier`, counter-wise (for snapshot-around-a-search).
    pub fn since(&self, earlier: &MemoStats) -> MemoStats {
        MemoStats {
            lookups: self.lookups - earlier.lookups,
            prefix_hits: self.prefix_hits - earlier.prefix_hits,
            full_hits: self.full_hits - earlier.full_hits,
            neg_hits: self.neg_hits - earlier.neg_hits,
            spill_hits: self.spill_hits - earlier.spill_hits,
            steps_avoided: self.steps_avoided - earlier.steps_avoided,
            trained_images_avoided: self.trained_images_avoided
                - earlier.trained_images_avoided,
            train_batches_avoided: self.train_batches_avoided
                - earlier.train_batches_avoided,
            inserts: self.inserts - earlier.inserts,
            // Process-wide store counters are monotonic but not reset by
            // `reset_stats`; saturate rather than panic on odd snapshots.
            spilled: self.spilled.saturating_sub(earlier.spilled),
            spill_evictions: self
                .spill_evictions
                .saturating_sub(earlier.spill_evictions),
            healed: self.healed.saturating_sub(earlier.healed),
        }
    }
}

thread_local! {
    static STATS: RefCell<MemoStats> = RefCell::new(MemoStats::default());
}

/// Snapshot the current thread's counters, with the process-wide spill
/// store counters overlaid (`spilled` / `spill_evictions` / `healed`).
pub fn stats() -> MemoStats {
    let mut snap = STATS.with(|s| *s.borrow());
    let store = crate::store::counters();
    snap.spilled = store.publishes;
    snap.spill_evictions = store.evictions;
    snap.healed = store.healed;
    snap
}

/// Zero the current thread's counters.
pub fn reset_stats() {
    STATS.with(|s| *s.borrow_mut() = MemoStats::default());
}

fn with_stats(f: impl FnOnce(&mut MemoStats)) {
    STATS.with(|s| f(&mut s.borrow_mut()));
}

// ---------------------------------------------------------------------------
// Spill store (crash-safe concurrent blob store, see `crate::store`)
// ---------------------------------------------------------------------------

static SPILL: Mutex<Option<Arc<BlobStore>>> = Mutex::new(None);

/// Default on-disk spill budget (~1 GiB). The spill store is shared by
/// every process pointed at the same directory and is otherwise unbounded
/// across runs.
pub const DEFAULT_DISK_BUDGET: u64 = 1 << 30;

fn env_disk_budget() -> u64 {
    std::env::var("AUTOMC_MEMO_DISK_BYTES")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(DEFAULT_DISK_BUDGET)
}

fn disk_budget_cell() -> &'static AtomicU64 {
    static BUDGET: OnceLock<AtomicU64> = OnceLock::new();
    BUDGET.get_or_init(|| AtomicU64::new(env_disk_budget()))
}

/// Set the on-disk spill budget (overrides `AUTOMC_MEMO_DISK_BYTES`).
/// This is the byte budget handed to the blob store's generational GC:
/// a *target* the GC converges the shared directory towards, re-anchored
/// from the store index each pass (so sibling processes' writes count),
/// never enforced by deleting blobs inside the in-use grace window.
pub fn set_disk_budget(bytes: u64) {
    disk_budget_cell().store(bytes, Ordering::Relaxed);
}

/// Direct spilled entries to a [`BlobStore`] at `dir` (`None` disables
/// spilling). Spilled blobs let fresh *and concurrent sibling* processes
/// re-hit prefixes computed elsewhere. Opening the store replays (or
/// rebuilds) its index and immediately enforces the disk budget, so a
/// long-lived spill store is trimmed at startup rather than growing
/// without bound. If the store cannot be opened, spilling is disabled
/// with a warning — the memo degrades to in-memory only.
pub fn set_spill_dir(dir: Option<PathBuf>) {
    let store = dir.and_then(|d| match BlobStore::open(&d) {
        Ok(s) => Some(Arc::new(s)),
        Err(e) => {
            eprintln!(
                "warning: cannot open memo spill store at {} ({e}); \
                 continuing without spill",
                d.display()
            );
            None
        }
    });
    if let Ok(mut g) = SPILL.lock() {
        *g = store;
    }
    gc_spill_store();
}

/// The shared spill [`BlobStore`], if one is configured. The orchestrator
/// and serve-style callers can use this to report store-level counters.
pub fn spill_store_handle() -> Option<Arc<BlobStore>> {
    SPILL.lock().ok().and_then(|g| g.clone())
}

/// Enforce the spill-store disk budget via the blob store's generational
/// GC (advisory-locked, index-anchored, grace-window-aware; see
/// [`crate::store::BlobStore::gc`]). Returns the bytes evicted.
pub fn gc_spill_store() -> u64 {
    let Some(store) = spill_store_handle() else { return 0 };
    store.gc(disk_budget_cell().load(Ordering::Relaxed))
}

const SPILL_MAGIC: &[u8; 8] = b"AUTOMCm1";

fn encode_cost(out: &mut Vec<u8>, c: &EvalCost) {
    out.extend_from_slice(&c.trained_images.to_le_bytes());
    out.extend_from_slice(&c.eval_images.to_le_bytes());
}

fn encode_metrics(out: &mut Vec<u8>, m: &Metrics) {
    out.extend_from_slice(&(m.params as u64).to_le_bytes());
    out.extend_from_slice(&m.flops.to_le_bytes());
    out.extend_from_slice(&m.acc.to_bits().to_le_bytes());
}

fn encode(value: &Cached) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(SPILL_MAGIC);
    match value {
        Cached::Good { model_bytes, metrics, steps, cost, train_batches } => {
            out.push(0);
            encode_metrics(&mut out, metrics);
            encode_cost(&mut out, cost);
            out.extend_from_slice(&train_batches.to_le_bytes());
            out.extend_from_slice(&(steps.len() as u64).to_le_bytes());
            for s in steps {
                out.extend_from_slice(&(s.strategy as u64).to_le_bytes());
                out.extend_from_slice(&s.ar_step.to_bits().to_le_bytes());
                out.extend_from_slice(&s.pr_step.to_bits().to_le_bytes());
                encode_metrics(&mut out, &s.after);
                encode_cost(&mut out, &s.cost);
            }
            out.extend_from_slice(&(model_bytes.len() as u64).to_le_bytes());
            out.extend_from_slice(model_bytes);
        }
        Cached::Failed { kind, step, cost, train_batches } => {
            out.push(1);
            let (tag, msg) = match kind {
                FailKind::Diverged => (0u8, ""),
                FailKind::Panicked(m) => (1, m.as_str()),
                FailKind::TimedOut => (2, ""),
            };
            out.push(tag);
            out.extend_from_slice(&(msg.len() as u64).to_le_bytes());
            out.extend_from_slice(msg.as_bytes());
            out.extend_from_slice(&(*step as u64).to_le_bytes());
            encode_cost(&mut out, cost);
            out.extend_from_slice(&train_batches.to_le_bytes());
        }
    }
    let checksum = fnv1a64(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Bounds-checked little-endian reader over a byte slice.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Some(out)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|b| {
            let mut a = [0u8; 8];
            a.copy_from_slice(b);
            u64::from_le_bytes(a)
        })
    }

    fn f32(&mut self) -> Option<f32> {
        self.take(4).map(|b| {
            let mut a = [0u8; 4];
            a.copy_from_slice(b);
            f32::from_bits(u32::from_le_bytes(a))
        })
    }

    fn cost(&mut self) -> Option<EvalCost> {
        Some(EvalCost {
            trained_images: self.u64()?,
            eval_images: self.u64()?,
        })
    }

    fn metrics(&mut self) -> Option<Metrics> {
        Some(Metrics {
            params: self.u64()? as usize,
            flops: self.u64()?,
            acc: self.f32()?,
        })
    }
}

fn decode(bytes: &[u8]) -> Option<Cached> {
    if bytes.len() < SPILL_MAGIC.len() + 8 {
        return None;
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let mut cks = [0u8; 8];
    cks.copy_from_slice(tail);
    if fnv1a64(body) != u64::from_le_bytes(cks) {
        return None;
    }
    let mut r = Reader { buf: body, pos: 0 };
    if r.take(SPILL_MAGIC.len())? != SPILL_MAGIC {
        return None;
    }
    match r.u8()? {
        0 => {
            let metrics = r.metrics()?;
            let cost = r.cost()?;
            let train_batches = r.u64()?;
            let n_steps = r.u64()? as usize;
            if n_steps > 10_000 {
                return None;
            }
            let mut steps = Vec::with_capacity(n_steps);
            for _ in 0..n_steps {
                steps.push(StepRecord {
                    strategy: r.u64()? as usize,
                    ar_step: r.f32()?,
                    pr_step: r.f32()?,
                    after: r.metrics()?,
                    cost: r.cost()?,
                });
            }
            let model_len = r.u64()? as usize;
            let model_bytes = r.take(model_len)?.to_vec();
            if r.pos != body.len() {
                return None;
            }
            Some(Cached::Good { model_bytes, metrics, steps, cost, train_batches })
        }
        1 => {
            let tag = r.u8()?;
            let msg_len = r.u64()? as usize;
            if msg_len > 1 << 20 {
                return None;
            }
            let msg = String::from_utf8(r.take(msg_len)?.to_vec()).ok()?;
            let kind = match tag {
                0 => FailKind::Diverged,
                1 => FailKind::Panicked(msg),
                2 => FailKind::TimedOut,
                _ => return None,
            };
            let step = r.u64()? as usize;
            let cost = r.cost()?;
            let train_batches = r.u64()?;
            if r.pos != body.len() {
                return None;
            }
            Some(Cached::Failed { kind, step, cost, train_batches })
        }
        _ => None,
    }
}

fn spill_store(key: u64, value: &Cached) {
    let Some(store) = spill_store_handle() else { return };
    // The blob store's publish is write-once and crash-safe (temp +
    // fsync + rename); content addressing makes a lost same-key race
    // identical by construction. The memo codec's own magic + checksum
    // ride inside the store envelope — defence in depth, and the decoder
    // keeps rejecting damaged payloads even on legacy-format blobs.
    if store.publish(key, &encode(value))
        && store.total_bytes() > disk_budget_cell().load(Ordering::Relaxed)
    {
        gc_spill_store();
    }
}

fn spill_load(key: u64) -> Option<Cached> {
    let store = spill_store_handle()?;
    // `get` verifies the store envelope, quarantines corruption, and
    // turns sibling-evict races into clean misses; recency touches are
    // index records now, not mtime writes.
    let bytes = store.get(key)?;
    match decode(&bytes) {
        Some(v) => Some(v),
        None => {
            // Sealed but nonsense at the memo layer (e.g. a legacy blob
            // republished under a colliding key): heal it the same way
            // the store heals envelope corruption — quarantine, log,
            // recompute, re-spill.
            eprintln!(
                "warning: memo spill blob {key:016x} failed payload decode; \
                 quarantining"
            );
            store.quarantine(key);
            None
        }
    }
}

// ---------------------------------------------------------------------------
// Lookup / insert (the executor's interface)
// ---------------------------------------------------------------------------

/// Find the deepest cached prefix among `keys` (`keys[d-1]` = depth `d`).
/// With `good_only`, negative entries are skipped (the plain executor has
/// no failure channel and must recompute through them).
pub(crate) fn lookup_longest(keys: &[u64], good_only: bool) -> Option<Hit> {
    with_stats(|s| s.lookups += 1);
    for depth in (1..=keys.len()).rev() {
        let key = keys[depth - 1];
        let mut from_spill = false;
        let cached = {
            let found = locked_store().touch(key);
            match found {
                Some(v) => Some(v),
                None => match spill_load(key) {
                    Some(v) => {
                        from_spill = true;
                        let budget = byte_budget_cell().load(Ordering::Relaxed) as usize;
                        let evicted = locked_store().insert(key, v.clone(), budget);
                        EVICTIONS.fetch_add(evicted, Ordering::Relaxed);
                        Some(v)
                    }
                    None => None,
                },
            }
        };
        let Some(cached) = cached else { continue };
        match cached {
            Cached::Good { model_bytes, metrics, steps, cost, train_batches } => {
                let Ok(model) = serialize::model_from_bytes(&model_bytes) else {
                    // Unrecoverable entry (e.g. decoded from a damaged
                    // blob): drop it and keep scanning shallower depths.
                    locked_store().remove(key);
                    continue;
                };
                with_stats(|s| {
                    s.prefix_hits += 1;
                    if depth == keys.len() {
                        s.full_hits += 1;
                    }
                    if from_spill {
                        s.spill_hits += 1;
                    }
                    s.steps_avoided += depth as u64;
                    s.trained_images_avoided += cost.trained_images;
                    s.train_batches_avoided += train_batches;
                });
                return Some(Hit::Good(GoodHit {
                    depth,
                    model,
                    metrics,
                    steps,
                    cost,
                    train_batches,
                }));
            }
            Cached::Failed { kind, step, cost, .. } => {
                if good_only {
                    continue;
                }
                with_stats(|s| {
                    s.prefix_hits += 1;
                    s.neg_hits += 1;
                    if from_spill {
                        s.spill_hits += 1;
                    }
                });
                return Some(Hit::Failed(FailedHit { kind, step, cost }));
            }
        }
    }
    None
}

fn insert(key: u64, value: Cached) {
    let budget = byte_budget_cell().load(Ordering::Relaxed) as usize;
    spill_store(key, &value);
    let evicted = locked_store().insert(key, value, budget);
    EVICTIONS.fetch_add(evicted, Ordering::Relaxed);
    with_stats(|s| s.inserts += 1);
}

/// Record the model state after a successfully executed prefix.
pub(crate) fn insert_good(
    key: u64,
    model: &ConvNet,
    metrics: Metrics,
    steps: &[StepRecord],
    cost: EvalCost,
    train_batches: u64,
) {
    insert(
        key,
        Cached::Good {
            model_bytes: serialize::model_to_bytes(model),
            metrics,
            steps: steps.to_vec(),
            cost,
            train_batches,
        },
    );
}

/// Negative-cache a prefix whose last step failed organically.
pub(crate) fn insert_failed(
    key: u64,
    kind: FailKind,
    step: usize,
    cost: EvalCost,
    train_batches: u64,
) {
    insert(key, Cached::Failed { kind, step, cost, train_batches });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn good(n: usize) -> Cached {
        Cached::Good {
            model_bytes: vec![0u8; n],
            metrics: Metrics { params: 1, flops: 2, acc: 0.5 },
            steps: Vec::new(),
            cost: EvalCost::default(),
            train_batches: 0,
        }
    }

    #[test]
    fn lru_evicts_least_recently_used_under_byte_budget() {
        let mut s = Store::default();
        let budget = 3 * (1000 + 128);
        assert_eq!(s.insert(1, good(1000), budget), 0);
        assert_eq!(s.insert(2, good(1000), budget), 0);
        assert_eq!(s.insert(3, good(1000), budget), 0);
        // Refresh 1, insert 4: 2 is now the least recently used.
        assert!(s.touch(1).is_some());
        assert_eq!(s.insert(4, good(1000), budget), 1);
        assert!(s.map.contains_key(&1));
        assert!(!s.map.contains_key(&2), "LRU victim must be evicted");
        assert!(s.map.contains_key(&3));
        assert!(s.map.contains_key(&4));
        assert!(s.bytes <= budget);
    }

    #[test]
    fn reinsert_refreshes_recency_without_double_counting() {
        let mut s = Store::default();
        let budget = usize::MAX;
        s.insert(7, good(100), budget);
        let bytes = s.bytes;
        s.insert(7, good(100), budget);
        assert_eq!(s.bytes, bytes, "re-insert must not grow the footprint");
        assert_eq!(s.map.len(), 1);
    }

    #[test]
    fn spill_codec_roundtrips_and_rejects_corruption() {
        let steps = vec![StepRecord {
            strategy: 12,
            ar_step: -0.01,
            pr_step: 0.25,
            after: Metrics { params: 900, flops: 1800, acc: 0.71 },
            cost: EvalCost { trained_images: 64, eval_images: 80 },
        }];
        let value = Cached::Good {
            model_bytes: vec![1, 2, 3, 4, 5],
            metrics: Metrics { params: 900, flops: 1800, acc: 0.71 },
            steps,
            cost: EvalCost { trained_images: 64, eval_images: 80 },
            train_batches: 9,
        };
        let bytes = encode(&value);
        match decode(&bytes) {
            Some(Cached::Good { model_bytes, metrics, steps, cost, train_batches }) => {
                assert_eq!(model_bytes, vec![1, 2, 3, 4, 5]);
                assert_eq!(metrics.acc.to_bits(), 0.71f32.to_bits());
                assert_eq!(steps.len(), 1);
                assert_eq!(steps[0].cost.eval_images, 80);
                assert_eq!(cost.trained_images, 64);
                assert_eq!(train_batches, 9);
            }
            _ => panic!("roundtrip failed"),
        }
        let failed = Cached::Failed {
            kind: FailKind::Panicked("boom".into()),
            step: 2,
            cost: EvalCost { trained_images: 3, eval_images: 4 },
            train_batches: 1,
        };
        match decode(&encode(&failed)) {
            Some(Cached::Failed { kind: FailKind::Panicked(m), step, .. }) => {
                assert_eq!(m, "boom");
                assert_eq!(step, 2);
            }
            _ => panic!("failed-entry roundtrip failed"),
        }
        // Any single-bit corruption is rejected by the checksum.
        let mut bad = encode(&value);
        let mid = bad.len() / 2;
        bad[mid] ^= 0x10;
        assert!(decode(&bad).is_none());
        assert!(decode(&bad[..bad.len() - 3]).is_none(), "truncation");
        assert!(decode(&[]).is_none());
    }

    #[test]
    fn spill_gc_evicts_oldest_blobs_to_the_disk_budget() {
        let dir = std::env::temp_dir().join(format!(
            "automc-memo-gc-test-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // Three 100-byte legacy blobs (canonical 16-hex stems, as the
        // pre-store spill path always wrote) with increasing mtimes.
        let t0 = std::time::SystemTime::now() - std::time::Duration::from_secs(300);
        let name = |k: u64| format!("{k:016x}.bin");
        for (i, key) in [0xaau64, 0xbb, 0xcc].iter().enumerate() {
            let path = dir.join(name(*key));
            std::fs::write(&path, vec![7u8; 100]).unwrap();
            let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
            f.set_modified(t0 + std::time::Duration::from_secs(60 * i as u64))
                .unwrap();
        }
        // Non-blob files are never GC candidates.
        std::fs::write(dir.join("stray.tmp"), b"x").unwrap();

        set_disk_budget(250);
        set_spill_dir(Some(dir.clone())); // startup index rebuild + GC
        assert!(!dir.join(name(0xaa)).exists(), "oldest blob evicted first");
        assert!(dir.join(name(0xbb)).exists());
        assert!(dir.join(name(0xcc)).exists());
        assert!(dir.join("stray.tmp").exists());

        // Under budget: a GC pass evicts nothing.
        assert_eq!(gc_spill_store(), 0);
        assert!(dir.join(name(0xbb)).exists());

        // Tighten the budget: only the newest blob survives.
        set_disk_budget(150);
        assert_eq!(gc_spill_store(), 100);
        assert!(!dir.join(name(0xbb)).exists());
        assert!(dir.join(name(0xcc)).exists());

        set_spill_dir(None);
        set_disk_budget(DEFAULT_DISK_BUDGET);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn step_rng_depends_only_on_seed_and_prefix() {
        use rand::Rng as _;
        let a: f32 = step_rng(9, &[1, 2, 3]).gen();
        let b: f32 = step_rng(9, &[1, 2, 3]).gen();
        assert_eq!(a.to_bits(), b.to_bits());
        let c: f32 = step_rng(9, &[1, 2, 4]).gen();
        assert_ne!(a.to_bits(), c.to_bits(), "different prefix, different stream");
        let d: f32 = step_rng(10, &[1, 2, 3]).gen();
        assert_ne!(a.to_bits(), d.to_bits(), "different seed, different stream");
    }
}
