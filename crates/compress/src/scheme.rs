//! Compression schemes: strategy sequences, execution, and the paper's
//! metrics.

use crate::methods::{apply_strategy, ExecConfig};
use crate::space::{StrategyId, StrategySpace};
use automc_data::ImageSet;
use automc_models::train::evaluate;
use automc_models::ConvNet;
use automc_tensor::Rng;

/// A compression scheme `S = s₁ → s₂ → … → s_k` (paper §3.1).
pub type Scheme = Vec<StrategyId>;

/// Snapshot of a model's size/speed/quality.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metrics {
    /// `P(M)` — parameter count.
    pub params: usize,
    /// `F(M)` — FLOPs per image.
    pub flops: u64,
    /// `A(M)` — accuracy on the evaluation set.
    pub acc: f32,
}

impl Metrics {
    /// Measure a model against an evaluation set.
    pub fn measure(model: &mut ConvNet, eval_set: &ImageSet) -> Metrics {
        Metrics {
            params: model.param_count(),
            flops: model.flops(),
            acc: evaluate(model, eval_set),
        }
    }

    /// `PR(S, M)` — parameter reduction rate vs `base`.
    pub fn pr(&self, base: &Metrics) -> f32 {
        1.0 - self.params as f32 / base.params.max(1) as f32
    }

    /// `FR(S, M)` — FLOPs reduction rate vs `base`.
    pub fn fr(&self, base: &Metrics) -> f32 {
        1.0 - self.flops as f32 / base.flops.max(1) as f32
    }

    /// `AR(S, M)` — accuracy increase rate vs `base`.
    pub fn ar(&self, base: &Metrics) -> f32 {
        (self.acc - base.acc) / base.acc.max(1e-6)
    }
}

/// Simulated cost of executing strategies — the budget currency that keeps
/// search algorithms comparable (stand-in for the paper's GPU-days).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EvalCost {
    /// Images pushed through training (forward+backward).
    pub trained_images: u64,
    /// Images pushed through inference only.
    pub eval_images: u64,
}

impl EvalCost {
    /// Scalar cost: an inference pass is ~⅓ of a training pass.
    pub fn units(&self) -> u64 {
        self.trained_images * 3 + self.eval_images
    }

    /// Accumulate.
    pub fn add(&mut self, other: EvalCost) {
        self.trained_images += other.trained_images;
        self.eval_images += other.eval_images;
    }
}

/// Per-step record of a scheme execution: the deltas `F_mo` learns from.
#[derive(Debug, Clone, PartialEq)]
pub struct StepRecord {
    /// The strategy applied at this step.
    pub strategy: StrategyId,
    /// `AR_step` — accuracy change rate relative to the previous step.
    pub ar_step: f32,
    /// `PR_step` — parameter reduction rate relative to the previous step.
    pub pr_step: f32,
    /// Metrics after the step.
    pub after: Metrics,
}

/// Result of executing a full scheme.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemeOutcome {
    /// Metrics of the final compressed model.
    pub metrics: Metrics,
    /// `PR` vs the original model.
    pub pr: f32,
    /// `FR` vs the original model.
    pub fr: f32,
    /// `AR` vs the original model.
    pub ar: f32,
    /// Per-step deltas.
    pub steps: Vec<StepRecord>,
    /// Total simulated cost.
    pub cost: EvalCost,
}

/// Outcome of one *supervised* scheme evaluation: completed with finite
/// metrics, or one of the two failure modes the fault-tolerant execution
/// layer isolates. Failed evaluations still report the cost spent before
/// the failure so search budgets keep draining.
pub enum EvalOutcome {
    /// Evaluation completed and every metric is finite.
    Ok {
        /// The compressed model.
        model: ConvNet,
        /// Metrics and per-step deltas.
        outcome: SchemeOutcome,
    },
    /// Training diverged (non-finite loss or accuracy) at `step`.
    Diverged {
        /// Index of the strategy step that diverged.
        step: usize,
        /// Cost spent up to and including the failed step.
        cost: EvalCost,
    },
    /// A panic was caught while executing `step`.
    Panicked {
        /// Index of the strategy step that panicked.
        step: usize,
        /// The recovered panic payload message.
        msg: String,
        /// Cost spent before the panic.
        cost: EvalCost,
    },
}

impl EvalOutcome {
    /// Cost spent by the evaluation, whether or not it completed.
    pub fn cost(&self) -> EvalCost {
        match self {
            EvalOutcome::Ok { outcome, .. } => outcome.cost,
            EvalOutcome::Diverged { cost, .. } | EvalOutcome::Panicked { cost, .. } => *cost,
        }
    }

    /// Budget units to charge: the spent cost, floored at `floor` so a
    /// candidate that fails instantly (cost 0) cannot let a budgeted
    /// search loop spin forever.
    pub fn charged_units(&self, floor: u64) -> u64 {
        self.cost().units().max(floor)
    }

    /// True for [`EvalOutcome::Ok`].
    pub fn is_ok(&self) -> bool {
        matches!(self, EvalOutcome::Ok { .. })
    }
}

/// Render a caught panic payload as text (panics carry `&str` or `String`
/// in practice).
fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// [`execute_scheme`] under supervision: every strategy step runs inside
/// `catch_unwind`, training divergence is detected via the thread-local
/// latch plus a non-finite metrics check, and the `eval` fault site lets
/// tests inject a panic into the Nth evaluation (`panic@eval:N`). A
/// failure abandons the candidate model (which may be mid-surgery) and
/// reports what was spent.
#[allow(clippy::too_many_arguments)]
pub fn execute_scheme_checked(
    base_model: &ConvNet,
    base_metrics: &Metrics,
    scheme: &[StrategyId],
    space: &StrategySpace,
    train_set: &ImageSet,
    eval_set: &ImageSet,
    cfg: &ExecConfig,
    rng: &mut Rng,
) -> EvalOutcome {
    use automc_models::train::divergence;
    use automc_tensor::fault::{self, FaultKind, INJECTED_PANIC_MSG};
    use std::panic::{catch_unwind, AssertUnwindSafe};

    let injected = fault::tick("eval");
    let mut model = base_model.clone_net();
    let mut prev = *base_metrics;
    let mut steps = Vec::with_capacity(scheme.len());
    let mut cost = EvalCost::default();
    for (i, &sid) in scheme.iter().enumerate() {
        divergence::reset();
        let spec = space.spec(sid);
        let step_result = catch_unwind(AssertUnwindSafe(|| {
            if i == 0 && injected == Some(FaultKind::Panic) {
                panic!("{INJECTED_PANIC_MSG} at eval");
            }
            let step_cost = apply_strategy(spec, &mut model, train_set, cfg, rng);
            let after = Metrics::measure(&mut model, eval_set);
            (step_cost, after)
        }));
        let (step_cost, after) = match step_result {
            Ok(v) => v,
            Err(payload) => {
                divergence::reset();
                return EvalOutcome::Panicked {
                    step: i,
                    msg: payload_message(payload.as_ref()),
                    cost,
                };
            }
        };
        cost.add(step_cost);
        cost.eval_images += eval_set.len() as u64;
        if divergence::take() || !after.acc.is_finite() {
            return EvalOutcome::Diverged { step: i, cost };
        }
        steps.push(StepRecord {
            strategy: sid,
            ar_step: after.ar(&prev),
            pr_step: after.pr(&prev),
            after,
        });
        prev = after;
    }
    let outcome = SchemeOutcome {
        metrics: prev,
        pr: prev.pr(base_metrics),
        fr: prev.fr(base_metrics),
        ar: prev.ar(base_metrics),
        steps,
        cost,
    };
    EvalOutcome::Ok { model, outcome }
}

/// Execute a scheme on a copy of `base_model`.
///
/// * `train_set` — data available for (re-)training (the 10% sample during
///   search);
/// * `eval_set` — held-out data for `A(M)`.
///
/// Returns the compressed model and the outcome record.
#[allow(clippy::too_many_arguments)]
pub fn execute_scheme(
    base_model: &ConvNet,
    base_metrics: &Metrics,
    scheme: &[StrategyId],
    space: &StrategySpace,
    train_set: &ImageSet,
    eval_set: &ImageSet,
    cfg: &ExecConfig,
    rng: &mut Rng,
) -> (ConvNet, SchemeOutcome) {
    let mut model = base_model.clone_net();
    let mut prev = *base_metrics;
    let mut steps = Vec::with_capacity(scheme.len());
    let mut cost = EvalCost::default();
    for &sid in scheme {
        let spec = space.spec(sid);
        cost.add(apply_strategy(spec, &mut model, train_set, cfg, rng));
        let after = Metrics::measure(&mut model, eval_set);
        cost.eval_images += eval_set.len() as u64;
        steps.push(StepRecord {
            strategy: sid,
            ar_step: after.ar(&prev),
            pr_step: after.pr(&prev),
            after,
        });
        prev = after;
    }
    let outcome = SchemeOutcome {
        metrics: prev,
        pr: prev.pr(base_metrics),
        fr: prev.fr(base_metrics),
        ar: prev.ar(base_metrics),
        steps,
        cost,
    };
    (model, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::StrategySpace;
    use automc_data::{DatasetSpec, SyntheticKind};
    use automc_models::resnet;
    use automc_tensor::rng_from_seed;

    #[test]
    fn metrics_reduction_rates() {
        let base = Metrics { params: 1000, flops: 2000, acc: 0.8 };
        let small = Metrics { params: 600, flops: 1000, acc: 0.84 };
        assert!((small.pr(&base) - 0.4).abs() < 1e-6);
        assert!((small.fr(&base) - 0.5).abs() < 1e-6);
        assert!((small.ar(&base) - 0.05).abs() < 1e-6);
    }

    #[test]
    fn eval_cost_units_weigh_training() {
        let c = EvalCost { trained_images: 10, eval_images: 30 };
        assert_eq!(c.units(), 60);
        let mut acc = EvalCost::default();
        acc.add(c);
        acc.add(c);
        assert_eq!(acc.trained_images, 20);
    }

    fn checked_fixture() -> (ConvNet, Metrics, StrategySpace, ImageSet, ImageSet, ExecConfig) {
        let mut rng = rng_from_seed(181);
        let (train_set, eval_set) = DatasetSpec {
            train: 60,
            test: 40,
            ..DatasetSpec::new(SyntheticKind::Cifar10Like)
        }
        .generate();
        let mut base = resnet(20, 4, 10, (3, 8, 8), &mut rng);
        let base_metrics = Metrics::measure(&mut base, &eval_set);
        let space = StrategySpace::full();
        let cfg = ExecConfig { pretrain_epochs: 1.0, ..ExecConfig::default() };
        (base, base_metrics, space, train_set, eval_set, cfg)
    }

    #[test]
    fn checked_matches_unchecked_without_faults() {
        let (base, base_metrics, space, train_set, eval_set, cfg) = checked_fixture();
        let scheme = vec![0, 1];
        let mut rng_a = rng_from_seed(42);
        let mut rng_b = rng_from_seed(42);
        let (_, plain) = execute_scheme(
            &base, &base_metrics, &scheme, &space, &train_set, &eval_set, &cfg, &mut rng_a,
        );
        let checked = execute_scheme_checked(
            &base, &base_metrics, &scheme, &space, &train_set, &eval_set, &cfg, &mut rng_b,
        );
        match checked {
            EvalOutcome::Ok { outcome, .. } => {
                assert_eq!(outcome.metrics.acc.to_bits(), plain.metrics.acc.to_bits());
                assert_eq!(outcome.metrics.params, plain.metrics.params);
                assert_eq!(outcome.cost, plain.cost);
                assert_eq!(outcome.steps.len(), plain.steps.len());
            }
            _ => panic!("un-faulted evaluation must complete"),
        }
    }

    #[test]
    fn injected_eval_panic_is_caught() {
        use automc_tensor::fault::{self, FaultPlan};
        let (base, base_metrics, space, train_set, eval_set, cfg) = checked_fixture();
        let scheme: Scheme = vec![0];
        fault::install(FaultPlan::parse("panic@eval:2").unwrap());
        let mut rng = rng_from_seed(43);
        let first = execute_scheme_checked(
            &base, &base_metrics, &scheme, &space, &train_set, &eval_set, &cfg, &mut rng,
        );
        assert!(first.is_ok(), "fault scheduled for the second evaluation");
        let second = execute_scheme_checked(
            &base, &base_metrics, &scheme, &space, &train_set, &eval_set, &cfg, &mut rng,
        );
        fault::clear();
        match &second {
            EvalOutcome::Panicked { step, msg, cost } => {
                assert_eq!(*step, 0);
                assert!(msg.contains("injected fault"), "{msg}");
                assert_eq!(cost.units(), 0, "panicked before any work");
            }
            _ => panic!("second evaluation must be the panicked one"),
        }
        assert_eq!(second.charged_units(40), 40, "failures still drain budget");
    }

    #[test]
    fn injected_train_nan_reports_divergence() {
        use automc_tensor::fault::{self, FaultPlan};
        let (base, base_metrics, space, train_set, eval_set, cfg) = checked_fixture();
        let scheme: Scheme = vec![0];
        fault::install(FaultPlan::parse("nan@train:1").unwrap());
        let mut rng = rng_from_seed(44);
        let out = execute_scheme_checked(
            &base, &base_metrics, &scheme, &space, &train_set, &eval_set, &cfg, &mut rng,
        );
        fault::clear();
        match out {
            EvalOutcome::Diverged { step, cost } => {
                assert_eq!(step, 0);
                assert!(cost.units() > 0, "the failed step's cost is still charged");
            }
            EvalOutcome::Ok { .. } => panic!("poisoned training must not report Ok"),
            EvalOutcome::Panicked { msg, .. } => panic!("unexpected panic: {msg}"),
        }
    }

    #[test]
    fn empty_scheme_is_identity() {
        let mut rng = rng_from_seed(180);
        let (train_set, eval_set) = DatasetSpec {
            train: 60,
            test: 40,
            ..DatasetSpec::new(SyntheticKind::Cifar10Like)
        }
        .generate();
        let mut base = resnet(20, 4, 10, (3, 8, 8), &mut rng);
        let base_metrics = Metrics::measure(&mut base, &eval_set);
        let space = StrategySpace::full();
        let cfg = ExecConfig { pretrain_epochs: 1.0, ..ExecConfig::default() };
        let (model, out) = execute_scheme(
            &base,
            &base_metrics,
            &[],
            &space,
            &train_set,
            &eval_set,
            &cfg,
            &mut rng,
        );
        assert_eq!(model.param_count(), base.param_count());
        assert_eq!(out.pr, 0.0);
        assert_eq!(out.ar, 0.0);
        assert!(out.steps.is_empty());
        assert_eq!(out.cost.units(), 0);
    }
}
