//! Compression schemes: strategy sequences, execution, and the paper's
//! metrics.
//!
//! Scheme execution is transparently memoized: the executor consults the
//! shared prefix-model cache ([`crate::memo`]) for the longest already
//! computed prefix of the scheme, resumes from its cached model, and
//! publishes every newly computed prefix on the way out. Because every
//! strategy step draws from an RNG derived only from `(eval_seed, scheme
//! prefix)` ([`crate::memo::step_rng`]), results are bitwise-identical
//! whether the cache hit at depth 0, 3, or L — memoization can change
//! only the cost of an evaluation, never its outcome.

use crate::memo::{self, FailKind, Hit};
use crate::methods::{apply_strategy, ExecConfig};
use crate::space::{StrategyId, StrategySpace};
use automc_data::ImageSet;
use automc_models::train::{divergence, evaluate, step_budget};
use automc_models::ConvNet;
use automc_tensor::fault::{self, FaultKind, INJECTED_PANIC_MSG};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A compression scheme `S = s₁ → s₂ → … → s_k` (paper §3.1).
pub type Scheme = Vec<StrategyId>;

/// Snapshot of a model's size/speed/quality.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metrics {
    /// `P(M)` — parameter count.
    pub params: usize,
    /// `F(M)` — FLOPs per image.
    pub flops: u64,
    /// `A(M)` — accuracy on the evaluation set.
    pub acc: f32,
}

impl Metrics {
    /// Measure a model against an evaluation set.
    pub fn measure(model: &mut ConvNet, eval_set: &ImageSet) -> Metrics {
        Metrics {
            params: model.param_count(),
            flops: model.flops(),
            acc: evaluate(model, eval_set),
        }
    }

    /// `PR(S, M)` — parameter reduction rate vs `base`.
    pub fn pr(&self, base: &Metrics) -> f32 {
        1.0 - self.params as f32 / base.params.max(1) as f32
    }

    /// `FR(S, M)` — FLOPs reduction rate vs `base`.
    pub fn fr(&self, base: &Metrics) -> f32 {
        1.0 - self.flops as f32 / base.flops.max(1) as f32
    }

    /// `AR(S, M)` — accuracy increase rate vs `base`.
    pub fn ar(&self, base: &Metrics) -> f32 {
        (self.acc - base.acc) / base.acc.max(1e-6)
    }
}

/// Simulated cost of executing strategies — the budget currency that keeps
/// search algorithms comparable (stand-in for the paper's GPU-days).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EvalCost {
    /// Images pushed through training (forward+backward).
    pub trained_images: u64,
    /// Images pushed through inference only.
    pub eval_images: u64,
}

impl EvalCost {
    /// Scalar cost: an inference pass is ~⅓ of a training pass.
    pub fn units(&self) -> u64 {
        self.trained_images * 3 + self.eval_images
    }

    /// Accumulate.
    pub fn add(&mut self, other: EvalCost) {
        self.trained_images += other.trained_images;
        self.eval_images += other.eval_images;
    }
}

/// Per-step record of a scheme execution: the deltas `F_mo` learns from.
#[derive(Debug, Clone, PartialEq)]
pub struct StepRecord {
    /// The strategy applied at this step.
    pub strategy: StrategyId,
    /// `AR_step` — accuracy change rate relative to the previous step.
    pub ar_step: f32,
    /// `PR_step` — parameter reduction rate relative to the previous step.
    pub pr_step: f32,
    /// Metrics after the step.
    pub after: Metrics,
    /// Cost of this step alone (its training plus its evaluation pass);
    /// the per-step costs of an outcome sum to its total cost.
    pub cost: EvalCost,
}

/// Result of executing a full scheme.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemeOutcome {
    /// Metrics of the final compressed model.
    pub metrics: Metrics,
    /// `PR` vs the original model.
    pub pr: f32,
    /// `FR` vs the original model.
    pub fr: f32,
    /// `AR` vs the original model.
    pub ar: f32,
    /// Per-step deltas.
    pub steps: Vec<StepRecord>,
    /// Total simulated cost.
    pub cost: EvalCost,
}

/// Outcome of one *supervised* scheme evaluation: completed with finite
/// metrics, or one of the failure modes the fault-tolerant execution
/// layer isolates. Failed evaluations still report the cost spent before
/// the failure so search budgets keep draining.
pub enum EvalOutcome {
    /// Evaluation completed and every metric is finite.
    Ok {
        /// The compressed model.
        model: ConvNet,
        /// Metrics and per-step deltas.
        outcome: SchemeOutcome,
    },
    /// Training diverged (non-finite loss or accuracy) at `step`.
    Diverged {
        /// Index of the strategy step that diverged.
        step: usize,
        /// Cost spent up to and including the failed step.
        cost: EvalCost,
    },
    /// A panic was caught while executing `step`.
    Panicked {
        /// Index of the strategy step that panicked.
        step: usize,
        /// The recovered panic payload message.
        msg: String,
        /// Cost spent before the panic.
        cost: EvalCost,
    },
    /// The cooperative `max_train_steps` batch cap ran out at `step`
    /// (see [`ExecConfig::max_train_steps`]); the evaluation was
    /// abandoned instead of hanging the search.
    TimedOut {
        /// Index of the strategy step whose training was cut off.
        step: usize,
        /// Cost spent up to and including the truncated step.
        cost: EvalCost,
    },
}

impl EvalOutcome {
    /// Cost spent by the evaluation, whether or not it completed.
    pub fn cost(&self) -> EvalCost {
        match self {
            EvalOutcome::Ok { outcome, .. } => outcome.cost,
            EvalOutcome::Diverged { cost, .. }
            | EvalOutcome::Panicked { cost, .. }
            | EvalOutcome::TimedOut { cost, .. } => *cost,
        }
    }

    /// Budget units to charge: the spent cost, floored at `floor` so a
    /// candidate that fails instantly (cost 0) cannot let a budgeted
    /// search loop spin forever.
    pub fn charged_units(&self, floor: u64) -> u64 {
        self.cost().units().max(floor)
    }

    /// True for [`EvalOutcome::Ok`].
    pub fn is_ok(&self) -> bool {
        matches!(self, EvalOutcome::Ok { .. })
    }
}

/// Render a caught panic payload as text (panics carry `&str` or `String`
/// in practice).
fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Execution discipline of [`run_scheme`].
enum Mode {
    /// Unsupervised: panics propagate and a tripped failure latch keeps
    /// executing (legacy behaviour of [`execute_scheme`]).
    Plain,
    /// Supervised: panics are caught, divergence and budget exhaustion
    /// abort the evaluation, and the `eval` fault site may have injected
    /// a panic.
    Checked {
        /// Fault injected into this evaluation by the active plan.
        injected: Option<FaultKind>,
    },
}

/// Arms the cooperative batch cap for the duration of one evaluation and
/// guarantees it is disarmed on every exit path, including unwinds —
/// unsupervised training must never inherit a stale cap.
struct BudgetGuard;

impl BudgetGuard {
    fn arm(limit: u64) -> BudgetGuard {
        step_budget::arm(limit);
        BudgetGuard
    }
}

impl Drop for BudgetGuard {
    fn drop(&mut self) {
        step_budget::disarm();
    }
}

/// The shared execution core of [`execute_scheme`] and
/// [`execute_scheme_checked`]: memo lookup, per-step derived RNGs,
/// per-step supervision, and memo publication.
#[allow(clippy::too_many_arguments)]
fn run_scheme(
    base_model: &ConvNet,
    base_metrics: &Metrics,
    scheme: &[StrategyId],
    space: &StrategySpace,
    train_set: &ImageSet,
    eval_set: &ImageSet,
    cfg: &ExecConfig,
    mode: Mode,
) -> EvalOutcome {
    let checked = matches!(mode, Mode::Checked { .. });
    let injected = match mode {
        Mode::Checked { injected } => injected,
        Mode::Plain => None,
    };
    // Pass through the cache whenever the fault plan targets the
    // evaluation pipeline: a cache hit skips `train`-site ticks and would
    // shift every later `eval`/`train` fault ordinal, so those injection
    // runs must behave exactly as if the memo did not exist. Plans aimed
    // at other sites (the spill store's `spill`/`index`, the orchestrator's
    // `worker`, the result cache's `cache`) leave the memo on — its spill
    // path is precisely what the store faults exercise.
    let memo_on = !scheme.is_empty()
        && memo::enabled()
        && !fault::plan_schedules_any(&["eval", "train"]);
    let keys = if memo_on {
        memo::prefix_keys(base_model, train_set, eval_set, cfg, scheme, space)
    } else {
        Vec::new()
    };

    let _budget = BudgetGuard::arm(cfg.max_train_steps);

    let mut model = base_model.clone_net();
    let mut prev = *base_metrics;
    let mut steps: Vec<StepRecord> = Vec::with_capacity(scheme.len());
    let mut cost = EvalCost::default();
    let mut start = 0usize;
    // A plain execution that trips a failure latch keeps going (legacy
    // behaviour) but must stop publishing cache entries.
    let mut poisoned = false;

    if memo_on {
        // The plain executor has no failure channel, so it may only
        // resume from Good entries and recomputes through known-bad
        // prefixes.
        match memo::lookup_longest(&keys, !checked) {
            Some(Hit::Good(hit)) => {
                step_budget::charge(hit.train_batches);
                start = hit.depth;
                model = hit.model;
                prev = hit.metrics;
                steps = hit.steps;
                cost = hit.cost;
            }
            Some(Hit::Failed(hit)) => {
                return match hit.kind {
                    FailKind::Diverged => {
                        EvalOutcome::Diverged { step: hit.step, cost: hit.cost }
                    }
                    FailKind::Panicked(msg) => {
                        EvalOutcome::Panicked { step: hit.step, msg, cost: hit.cost }
                    }
                    FailKind::TimedOut => {
                        EvalOutcome::TimedOut { step: hit.step, cost: hit.cost }
                    }
                };
            }
            None => {}
        }
    }

    for (i, &sid) in scheme.iter().enumerate().skip(start) {
        divergence::reset();
        let spec = space.spec(sid);
        // Path-independent randomness: the step RNG is a pure function of
        // (eval_seed, scheme prefix), so the result cannot depend on which
        // search asked, on thread interleaving, or on the resume depth.
        let mut rng = memo::step_rng(cfg.eval_seed, &scheme[..=i]);
        let ran = if checked {
            catch_unwind(AssertUnwindSafe(|| {
                if i == 0 && injected == Some(FaultKind::Panic) {
                    panic!("{INJECTED_PANIC_MSG} at eval");
                }
                let step_cost = apply_strategy(spec, &mut model, train_set, cfg, &mut rng);
                let after = Metrics::measure(&mut model, eval_set);
                (step_cost, after)
            }))
        } else {
            let step_cost = apply_strategy(spec, &mut model, train_set, cfg, &mut rng);
            let after = Metrics::measure(&mut model, eval_set);
            Ok((step_cost, after))
        };
        let (mut step_cost, after) = match ran {
            Ok(v) => v,
            Err(payload) => {
                divergence::reset();
                let msg = payload_message(payload.as_ref());
                if memo_on {
                    // Organic panics are deterministic for this prefix
                    // (injected ones imply an active plan, i.e. memo off).
                    memo::insert_failed(
                        keys[i],
                        FailKind::Panicked(msg.clone()),
                        i,
                        cost,
                        step_budget::used(),
                    );
                }
                return EvalOutcome::Panicked { step: i, msg, cost };
            }
        };
        step_cost.eval_images += eval_set.len() as u64;
        cost.add(step_cost);
        let diverged = divergence::take() || !after.acc.is_finite();
        let timed_out = step_budget::take_exhausted();
        if diverged || timed_out {
            if checked {
                if memo_on {
                    let kind =
                        if diverged { FailKind::Diverged } else { FailKind::TimedOut };
                    memo::insert_failed(keys[i], kind, i, cost, step_budget::used());
                }
                return if diverged {
                    EvalOutcome::Diverged { step: i, cost }
                } else {
                    EvalOutcome::TimedOut { step: i, cost }
                };
            }
            poisoned = true;
        }
        steps.push(StepRecord {
            strategy: sid,
            ar_step: after.ar(&prev),
            pr_step: after.pr(&prev),
            after,
            cost: step_cost,
        });
        prev = after;
        if memo_on && !poisoned {
            memo::insert_good(keys[i], &model, after, &steps, cost, step_budget::used());
        }
    }
    let outcome = SchemeOutcome {
        metrics: prev,
        pr: prev.pr(base_metrics),
        fr: prev.fr(base_metrics),
        ar: prev.ar(base_metrics),
        steps,
        cost,
    };
    EvalOutcome::Ok { model, outcome }
}

/// [`execute_scheme`] under supervision: every strategy step runs inside
/// `catch_unwind`, training divergence is detected via the thread-local
/// latch plus a non-finite metrics check, budget exhaustion surfaces as
/// [`EvalOutcome::TimedOut`], and the `eval` fault site lets tests inject
/// a panic into the Nth evaluation (`panic@eval:N`). A failure abandons
/// the candidate model (which may be mid-surgery) and reports what was
/// spent.
///
/// The fault tick fires once per *logical* evaluation — before the memo
/// lookup — so cache hits never shift `eval`-site ordinals.
pub fn execute_scheme_checked(
    base_model: &ConvNet,
    base_metrics: &Metrics,
    scheme: &[StrategyId],
    space: &StrategySpace,
    train_set: &ImageSet,
    eval_set: &ImageSet,
    cfg: &ExecConfig,
) -> EvalOutcome {
    let injected = fault::tick("eval");
    run_scheme(
        base_model,
        base_metrics,
        scheme,
        space,
        train_set,
        eval_set,
        cfg,
        Mode::Checked { injected },
    )
}

/// Execute a scheme on a copy of `base_model`.
///
/// * `train_set` — data available for (re-)training (the 10% sample during
///   search);
/// * `eval_set` — held-out data for `A(M)`.
///
/// Returns the compressed model and the outcome record. All randomness is
/// derived from `cfg.eval_seed` and the scheme itself (see
/// [`crate::memo::step_rng`]), so identical inputs yield bitwise-identical
/// outputs regardless of caller state.
pub fn execute_scheme(
    base_model: &ConvNet,
    base_metrics: &Metrics,
    scheme: &[StrategyId],
    space: &StrategySpace,
    train_set: &ImageSet,
    eval_set: &ImageSet,
    cfg: &ExecConfig,
) -> (ConvNet, SchemeOutcome) {
    match run_scheme(
        base_model,
        base_metrics,
        scheme,
        space,
        train_set,
        eval_set,
        cfg,
        Mode::Plain,
    ) {
        EvalOutcome::Ok { model, outcome } => (model, outcome),
        _ => unreachable!("plain execution has no failure channel"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::StrategySpace;
    use automc_data::{DatasetSpec, SyntheticKind};
    use automc_models::resnet;
    use automc_tensor::rng_from_seed;

    #[test]
    fn metrics_reduction_rates() {
        let base = Metrics { params: 1000, flops: 2000, acc: 0.8 };
        let small = Metrics { params: 600, flops: 1000, acc: 0.84 };
        assert!((small.pr(&base) - 0.4).abs() < 1e-6);
        assert!((small.fr(&base) - 0.5).abs() < 1e-6);
        assert!((small.ar(&base) - 0.05).abs() < 1e-6);
    }

    #[test]
    fn eval_cost_units_weigh_training() {
        let c = EvalCost { trained_images: 10, eval_images: 30 };
        assert_eq!(c.units(), 60);
        let mut acc = EvalCost::default();
        acc.add(c);
        acc.add(c);
        assert_eq!(acc.trained_images, 20);
    }

    fn checked_fixture() -> (ConvNet, Metrics, StrategySpace, ImageSet, ImageSet, ExecConfig) {
        let mut rng = rng_from_seed(181);
        let (train_set, eval_set) = DatasetSpec {
            train: 60,
            test: 40,
            ..DatasetSpec::new(SyntheticKind::Cifar10Like)
        }
        .generate();
        let mut base = resnet(20, 4, 10, (3, 8, 8), &mut rng);
        let base_metrics = Metrics::measure(&mut base, &eval_set);
        let space = StrategySpace::full();
        let cfg = ExecConfig { pretrain_epochs: 1.0, ..ExecConfig::default() };
        (base, base_metrics, space, train_set, eval_set, cfg)
    }

    #[test]
    fn checked_matches_unchecked_without_faults() {
        let (base, base_metrics, space, train_set, eval_set, cfg) = checked_fixture();
        let scheme = vec![0, 1];
        let (_, plain) =
            execute_scheme(&base, &base_metrics, &scheme, &space, &train_set, &eval_set, &cfg);
        let checked = execute_scheme_checked(
            &base, &base_metrics, &scheme, &space, &train_set, &eval_set, &cfg,
        );
        match checked {
            EvalOutcome::Ok { outcome, .. } => {
                assert_eq!(outcome.metrics.acc.to_bits(), plain.metrics.acc.to_bits());
                assert_eq!(outcome.metrics.params, plain.metrics.params);
                assert_eq!(outcome.cost, plain.cost);
                assert_eq!(outcome.steps.len(), plain.steps.len());
            }
            _ => panic!("un-faulted evaluation must complete"),
        }
    }

    #[test]
    fn step_costs_sum_to_total_cost() {
        let (base, base_metrics, space, train_set, eval_set, cfg) = checked_fixture();
        let scheme = vec![0, 1];
        let (_, out) =
            execute_scheme(&base, &base_metrics, &scheme, &space, &train_set, &eval_set, &cfg);
        let mut sum = EvalCost::default();
        for s in &out.steps {
            sum.add(s.cost);
        }
        assert_eq!(sum, out.cost, "per-step costs must reconcile with the total");
    }

    #[test]
    fn injected_eval_panic_is_caught() {
        use automc_tensor::fault::{self, FaultPlan};
        let (base, base_metrics, space, train_set, eval_set, cfg) = checked_fixture();
        let scheme: Scheme = vec![0];
        fault::install(FaultPlan::parse("panic@eval:2").unwrap());
        let first = execute_scheme_checked(
            &base, &base_metrics, &scheme, &space, &train_set, &eval_set, &cfg,
        );
        assert!(first.is_ok(), "fault scheduled for the second evaluation");
        let second = execute_scheme_checked(
            &base, &base_metrics, &scheme, &space, &train_set, &eval_set, &cfg,
        );
        fault::clear();
        match &second {
            EvalOutcome::Panicked { step, msg, cost } => {
                assert_eq!(*step, 0);
                assert!(msg.contains("injected fault"), "{msg}");
                assert_eq!(cost.units(), 0, "panicked before any work");
            }
            _ => panic!("second evaluation must be the panicked one"),
        }
        assert_eq!(second.charged_units(40), 40, "failures still drain budget");
    }

    #[test]
    fn injected_train_nan_reports_divergence() {
        use automc_tensor::fault::{self, FaultPlan};
        let (base, base_metrics, space, train_set, eval_set, cfg) = checked_fixture();
        let scheme: Scheme = vec![0];
        fault::install(FaultPlan::parse("nan@train:1").unwrap());
        let out = execute_scheme_checked(
            &base, &base_metrics, &scheme, &space, &train_set, &eval_set, &cfg,
        );
        fault::clear();
        match out {
            EvalOutcome::Diverged { step, cost } => {
                assert_eq!(step, 0);
                assert!(cost.units() > 0, "the failed step's cost is still charged");
            }
            EvalOutcome::Ok { .. } => panic!("poisoned training must not report Ok"),
            EvalOutcome::Panicked { msg, .. } => panic!("unexpected panic: {msg}"),
            EvalOutcome::TimedOut { .. } => panic!("no budget cap was armed"),
        }
    }

    #[test]
    fn exhausted_step_budget_reports_timeout_and_is_negative_cached() {
        let (base, base_metrics, space, train_set, eval_set, cfg) = checked_fixture();
        let cfg = ExecConfig { max_train_steps: 1, ..cfg };
        let scheme: Scheme = vec![0, 1];
        crate::memo::set_enabled_for_thread(Some(true));
        crate::memo::reset_stats();
        let cold = execute_scheme_checked(
            &base, &base_metrics, &scheme, &space, &train_set, &eval_set, &cfg,
        );
        let (step, cost) = match &cold {
            EvalOutcome::TimedOut { step, cost } => (*step, *cost),
            _ => panic!("a 1-batch cap must cut the evaluation short"),
        };
        assert!(cost.units() > 0, "the truncated step's planned cost is charged");
        let warm = execute_scheme_checked(
            &base, &base_metrics, &scheme, &space, &train_set, &eval_set, &cfg,
        );
        crate::memo::set_enabled_for_thread(None);
        match warm {
            EvalOutcome::TimedOut { step: s2, cost: c2 } => {
                assert_eq!(s2, step, "replayed failure reports the recorded step");
                assert_eq!(c2, cost, "replayed failure reports the recorded cost");
            }
            _ => panic!("the known-bad prefix must be negative-cached"),
        }
        let stats = crate::memo::stats();
        assert!(stats.neg_hits >= 1, "second call must hit the negative cache");
    }

    #[test]
    fn empty_scheme_is_identity() {
        let mut rng = rng_from_seed(180);
        let (train_set, eval_set) = DatasetSpec {
            train: 60,
            test: 40,
            ..DatasetSpec::new(SyntheticKind::Cifar10Like)
        }
        .generate();
        let mut base = resnet(20, 4, 10, (3, 8, 8), &mut rng);
        let base_metrics = Metrics::measure(&mut base, &eval_set);
        let space = StrategySpace::full();
        let cfg = ExecConfig { pretrain_epochs: 1.0, ..ExecConfig::default() };
        let (model, out) =
            execute_scheme(&base, &base_metrics, &[], &space, &train_set, &eval_set, &cfg);
        assert_eq!(model.param_count(), base.param_count());
        assert_eq!(out.pr, 0.0);
        assert_eq!(out.ar, 0.0);
        assert!(out.steps.is_empty());
        assert_eq!(out.cost.units(), 0);
    }
}
