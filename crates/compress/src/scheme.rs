//! Compression schemes: strategy sequences, execution, and the paper's
//! metrics.

use crate::methods::{apply_strategy, ExecConfig};
use crate::space::{StrategyId, StrategySpace};
use automc_data::ImageSet;
use automc_models::train::evaluate;
use automc_models::ConvNet;
use automc_tensor::Rng;

/// A compression scheme `S = s₁ → s₂ → … → s_k` (paper §3.1).
pub type Scheme = Vec<StrategyId>;

/// Snapshot of a model's size/speed/quality.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metrics {
    /// `P(M)` — parameter count.
    pub params: usize,
    /// `F(M)` — FLOPs per image.
    pub flops: u64,
    /// `A(M)` — accuracy on the evaluation set.
    pub acc: f32,
}

impl Metrics {
    /// Measure a model against an evaluation set.
    pub fn measure(model: &mut ConvNet, eval_set: &ImageSet) -> Metrics {
        Metrics {
            params: model.param_count(),
            flops: model.flops(),
            acc: evaluate(model, eval_set),
        }
    }

    /// `PR(S, M)` — parameter reduction rate vs `base`.
    pub fn pr(&self, base: &Metrics) -> f32 {
        1.0 - self.params as f32 / base.params.max(1) as f32
    }

    /// `FR(S, M)` — FLOPs reduction rate vs `base`.
    pub fn fr(&self, base: &Metrics) -> f32 {
        1.0 - self.flops as f32 / base.flops.max(1) as f32
    }

    /// `AR(S, M)` — accuracy increase rate vs `base`.
    pub fn ar(&self, base: &Metrics) -> f32 {
        (self.acc - base.acc) / base.acc.max(1e-6)
    }
}

/// Simulated cost of executing strategies — the budget currency that keeps
/// search algorithms comparable (stand-in for the paper's GPU-days).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EvalCost {
    /// Images pushed through training (forward+backward).
    pub trained_images: u64,
    /// Images pushed through inference only.
    pub eval_images: u64,
}

impl EvalCost {
    /// Scalar cost: an inference pass is ~⅓ of a training pass.
    pub fn units(&self) -> u64 {
        self.trained_images * 3 + self.eval_images
    }

    /// Accumulate.
    pub fn add(&mut self, other: EvalCost) {
        self.trained_images += other.trained_images;
        self.eval_images += other.eval_images;
    }
}

/// Per-step record of a scheme execution: the deltas `F_mo` learns from.
#[derive(Debug, Clone, PartialEq)]
pub struct StepRecord {
    /// The strategy applied at this step.
    pub strategy: StrategyId,
    /// `AR_step` — accuracy change rate relative to the previous step.
    pub ar_step: f32,
    /// `PR_step` — parameter reduction rate relative to the previous step.
    pub pr_step: f32,
    /// Metrics after the step.
    pub after: Metrics,
}

/// Result of executing a full scheme.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemeOutcome {
    /// Metrics of the final compressed model.
    pub metrics: Metrics,
    /// `PR` vs the original model.
    pub pr: f32,
    /// `FR` vs the original model.
    pub fr: f32,
    /// `AR` vs the original model.
    pub ar: f32,
    /// Per-step deltas.
    pub steps: Vec<StepRecord>,
    /// Total simulated cost.
    pub cost: EvalCost,
}

/// Execute a scheme on a copy of `base_model`.
///
/// * `train_set` — data available for (re-)training (the 10% sample during
///   search);
/// * `eval_set` — held-out data for `A(M)`.
///
/// Returns the compressed model and the outcome record.
#[allow(clippy::too_many_arguments)]
pub fn execute_scheme(
    base_model: &ConvNet,
    base_metrics: &Metrics,
    scheme: &[StrategyId],
    space: &StrategySpace,
    train_set: &ImageSet,
    eval_set: &ImageSet,
    cfg: &ExecConfig,
    rng: &mut Rng,
) -> (ConvNet, SchemeOutcome) {
    let mut model = base_model.clone_net();
    let mut prev = *base_metrics;
    let mut steps = Vec::with_capacity(scheme.len());
    let mut cost = EvalCost::default();
    for &sid in scheme {
        let spec = space.spec(sid);
        cost.add(apply_strategy(spec, &mut model, train_set, cfg, rng));
        let after = Metrics::measure(&mut model, eval_set);
        cost.eval_images += eval_set.len() as u64;
        steps.push(StepRecord {
            strategy: sid,
            ar_step: after.ar(&prev),
            pr_step: after.pr(&prev),
            after,
        });
        prev = after;
    }
    let outcome = SchemeOutcome {
        metrics: prev,
        pr: prev.pr(base_metrics),
        fr: prev.fr(base_metrics),
        ar: prev.ar(base_metrics),
        steps,
        cost,
    };
    (model, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::StrategySpace;
    use automc_data::{DatasetSpec, SyntheticKind};
    use automc_models::resnet;
    use automc_tensor::rng_from_seed;

    #[test]
    fn metrics_reduction_rates() {
        let base = Metrics { params: 1000, flops: 2000, acc: 0.8 };
        let small = Metrics { params: 600, flops: 1000, acc: 0.84 };
        assert!((small.pr(&base) - 0.4).abs() < 1e-6);
        assert!((small.fr(&base) - 0.5).abs() < 1e-6);
        assert!((small.ar(&base) - 0.05).abs() < 1e-6);
    }

    #[test]
    fn eval_cost_units_weigh_training() {
        let c = EvalCost { trained_images: 10, eval_images: 30 };
        assert_eq!(c.units(), 60);
        let mut acc = EvalCost::default();
        acc.add(c);
        acc.add(c);
        assert_eq!(acc.trained_images, 20);
    }

    #[test]
    fn empty_scheme_is_identity() {
        let mut rng = rng_from_seed(180);
        let (train_set, eval_set) = DatasetSpec {
            train: 60,
            test: 40,
            ..DatasetSpec::new(SyntheticKind::Cifar10Like)
        }
        .generate();
        let mut base = resnet(20, 4, 10, (3, 8, 8), &mut rng);
        let base_metrics = Metrics::measure(&mut base, &eval_set);
        let space = StrategySpace::full();
        let cfg = ExecConfig { pretrain_epochs: 1.0, ..ExecConfig::default() };
        let (model, out) = execute_scheme(
            &base,
            &base_metrics,
            &[],
            &space,
            &train_set,
            &eval_set,
            &cfg,
            &mut rng,
        );
        assert_eq!(model.param_count(), base.param_count());
        assert_eq!(out.pr, 0.0);
        assert_eq!(out.ar, 0.0);
        assert!(out.steps.is_empty());
        assert_eq!(out.cost.units(), 0);
    }
}
