//! The strategy grid of paper Table 1.

use automc_models::surgery::Criterion;
use automc_models::train::AuxKind;
use std::fmt;

/// Which of the six compression methods a strategy instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MethodId {
    /// C1 — LMA knowledge distillation.
    Lma,
    /// C2 — LeGR learned-global-ranking filter pruning.
    Legr,
    /// C3 — NS network slimming.
    Ns,
    /// C4 — SFP soft filter pruning.
    Sfp,
    /// C5 — HOS higher-order-statistics pruning + low-rank approximation.
    Hos,
    /// C6 — LFB low-rank filter basis.
    Lfb,
}

impl MethodId {
    /// All six methods in Table 1 order.
    pub const ALL: [MethodId; 6] = [
        MethodId::Lma,
        MethodId::Legr,
        MethodId::Ns,
        MethodId::Sfp,
        MethodId::Hos,
        MethodId::Lfb,
    ];

    /// Paper label, e.g. `"C2"`.
    pub fn label(&self) -> &'static str {
        match self {
            MethodId::Lma => "C1",
            MethodId::Legr => "C2",
            MethodId::Ns => "C3",
            MethodId::Sfp => "C4",
            MethodId::Hos => "C5",
            MethodId::Lfb => "C6",
        }
    }

    /// Human name.
    pub fn name(&self) -> &'static str {
        match self {
            MethodId::Lma => "LMA",
            MethodId::Legr => "LeGR",
            MethodId::Ns => "NS",
            MethodId::Sfp => "SFP",
            MethodId::Hos => "HOS",
            MethodId::Lfb => "LFB",
        }
    }

    /// Compression-technique tags (the `TE` entities of the knowledge
    /// graph, paper Fig. 2).
    pub fn techniques(&self) -> &'static [&'static str] {
        match self {
            MethodId::Lma => &["TE1:distillation_lma"],
            MethodId::Legr => &["TE2:filter_pruning_ea", "TE3:fine_tune"],
            MethodId::Ns => &["TE4:channel_pruning_bn", "TE3:fine_tune"],
            MethodId::Sfp => &["TE5:filter_pruning_bp"],
            MethodId::Hos => &["TE6:filter_pruning_hos", "TE7:low_rank_hooi", "TE3:fine_tune"],
            MethodId::Lfb => &["TE9:low_rank_filter_basis"],
        }
    }
}

/// HOS's global evaluation criteria (HP11): how per-layer pruning budgets
/// are combined.
pub const HOS_GLOBAL: [&str; 3] = ["P1", "P2", "P3"];

/// LFB's auxiliary-loss options (HP16).
pub const LFB_AUX: [AuxKind; 3] = [AuxKind::Nll, AuxKind::Ce, AuxKind::Mse];

/// One fully-specified compression strategy (method + hyperparameters).
///
/// Epoch-like fields are *multipliers of the pre-training epoch count* `E₀`
/// (the `*n` notation of Table 1); `ratio` is the fraction of the current
/// model's parameters to remove (`×γ` notation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StrategySpec {
    /// C1 — distillation into a globally-thinned student.
    Lma {
        /// HP1: fine-tune epochs (×E₀).
        ft_epochs: f32,
        /// HP2: parameter decrease ratio.
        ratio: f32,
        /// HP4: softmax temperature.
        temperature: f32,
        /// HP5: KD-vs-CE blend.
        alpha: f32,
    },
    /// C2 — EA-learned global ranking pruning.
    Legr {
        /// HP1: fine-tune epochs (×E₀).
        ft_epochs: f32,
        /// HP2: parameter decrease ratio.
        ratio: f32,
        /// HP6: per-layer maximum pruning ratio.
        max_prune: f32,
        /// HP7: evolution epochs (×E₀) — sets the EA generation budget.
        evo_epochs: f32,
        /// HP8: filter evaluation criterion.
        criterion: Criterion,
    },
    /// C3 — network slimming.
    Ns {
        /// HP1: fine-tune epochs (×E₀), split between sparsity training
        /// and post-prune fine-tuning.
        ft_epochs: f32,
        /// HP2: parameter decrease ratio.
        ratio: f32,
        /// HP6: per-layer maximum pruning ratio.
        max_prune: f32,
    },
    /// C4 — soft filter pruning.
    Sfp {
        /// HP2: parameter decrease ratio.
        ratio: f32,
        /// HP9: back-propagation epochs (×E₀).
        bp_epochs: f32,
        /// HP10: soft-mask update frequency (epochs).
        update_freq: usize,
    },
    /// C5 — HOS pruning + low-rank kernel approximation.
    Hos {
        /// HP1: fine-tune epochs (×E₀).
        ft_epochs: f32,
        /// HP2: parameter decrease ratio.
        ratio: f32,
        /// HP11: global budget scheme (index into [`HOS_GLOBAL`]).
        global: usize,
        /// HP12: per-filter criterion.
        criterion: Criterion,
        /// HP13: optimisation epochs (×E₀) for the reconstruction phase.
        opt_epochs: f32,
        /// HP14: MSE auxiliary-loss factor.
        mse_factor: f32,
    },
    /// C6 — shared low-rank filter basis.
    Lfb {
        /// HP1: fine-tune epochs (×E₀).
        ft_epochs: f32,
        /// HP2: parameter decrease ratio.
        ratio: f32,
        /// HP15: auxiliary-loss factor.
        aux_factor: f32,
        /// HP16: auxiliary-loss kind.
        aux_loss: AuxKind,
    },
}

impl StrategySpec {
    /// The method this strategy instantiates.
    pub fn method(&self) -> MethodId {
        match self {
            StrategySpec::Lma { .. } => MethodId::Lma,
            StrategySpec::Legr { .. } => MethodId::Legr,
            StrategySpec::Ns { .. } => MethodId::Ns,
            StrategySpec::Sfp { .. } => MethodId::Sfp,
            StrategySpec::Hos { .. } => MethodId::Hos,
            StrategySpec::Lfb { .. } => MethodId::Lfb,
        }
    }

    /// The parameter-decrease ratio (HP2) common to all methods.
    pub fn ratio(&self) -> f32 {
        match *self {
            StrategySpec::Lma { ratio, .. }
            | StrategySpec::Legr { ratio, .. }
            | StrategySpec::Ns { ratio, .. }
            | StrategySpec::Sfp { ratio, .. }
            | StrategySpec::Hos { ratio, .. }
            | StrategySpec::Lfb { ratio, .. } => ratio,
        }
    }

    /// `(hyperparameter id, setting label)` pairs — the `R2`/`R5` edges of
    /// the knowledge graph.
    pub fn hyper_settings(&self) -> Vec<HpSetting> {
        fn hp(id: u8, label: String) -> HpSetting {
            HpSetting { hp: id, label }
        }
        match *self {
            StrategySpec::Lma { ft_epochs, ratio, temperature, alpha } => vec![
                hp(1, format!("*{ft_epochs}")),
                hp(2, format!("x{ratio}")),
                hp(4, format!("{temperature}")),
                hp(5, format!("{alpha}")),
            ],
            StrategySpec::Legr { ft_epochs, ratio, max_prune, evo_epochs, criterion } => vec![
                hp(1, format!("*{ft_epochs}")),
                hp(2, format!("x{ratio}")),
                hp(6, format!("{max_prune}")),
                hp(7, format!("*{evo_epochs}")),
                hp(8, format!("{criterion:?}")),
            ],
            StrategySpec::Ns { ft_epochs, ratio, max_prune } => vec![
                hp(1, format!("*{ft_epochs}")),
                hp(2, format!("x{ratio}")),
                hp(6, format!("{max_prune}")),
            ],
            StrategySpec::Sfp { ratio, bp_epochs, update_freq } => vec![
                hp(2, format!("x{ratio}")),
                hp(9, format!("*{bp_epochs}")),
                hp(10, format!("{update_freq}")),
            ],
            StrategySpec::Hos { ft_epochs, ratio, global, criterion, opt_epochs, mse_factor } => {
                vec![
                    hp(1, format!("*{ft_epochs}")),
                    hp(2, format!("x{ratio}")),
                    hp(11, HOS_GLOBAL[global].to_string()),
                    hp(12, format!("{criterion:?}")),
                    hp(13, format!("*{opt_epochs}")),
                    hp(14, format!("{mse_factor}")),
                ]
            }
            StrategySpec::Lfb { ft_epochs, ratio, aux_factor, aux_loss } => vec![
                hp(1, format!("*{ft_epochs}")),
                hp(2, format!("x{ratio}")),
                hp(15, format!("{aux_factor}")),
                hp(16, format!("{aux_loss:?}")),
            ],
        }
    }
}

impl fmt::Display for StrategySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}](", self.method().label(), self.method().name())?;
        let settings = self.hyper_settings();
        for (i, s) in settings.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "HP{}={}", s.hp, s.label)?;
        }
        write!(f, ")")
    }
}

/// One hyperparameter setting of a strategy (KG edge payload).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct HpSetting {
    /// Hyperparameter id (1–16, Table 1 numbering).
    pub hp: u8,
    /// Human-readable setting label (doubles as the `E4` entity key).
    pub label: String,
}

/// Identifier of a strategy within a [`StrategySpace`].
pub type StrategyId = usize;

/// An enumerated grid of compression strategies.
pub struct StrategySpace {
    specs: Vec<StrategySpec>,
}

const HP1: [f32; 5] = [0.1, 0.2, 0.3, 0.4, 0.5];
const HP2: [f32; 6] = [0.04, 0.12, 0.2, 0.28, 0.36, 0.4];
const HP4: [f32; 4] = [1.0, 3.0, 6.0, 10.0];
const HP5: [f32; 4] = [0.05, 0.3, 0.5, 0.99];
const HP6: [f32; 2] = [0.7, 0.9];
const HP7: [f32; 4] = [0.4, 0.5, 0.6, 0.7];
const HP8: [Criterion; 3] = [Criterion::L1Weight, Criterion::L2Weight, Criterion::L2BnParam];
const HP9: [f32; 5] = [0.1, 0.2, 0.3, 0.4, 0.5];
const HP10: [usize; 3] = [1, 3, 5];
const HP12: [Criterion; 3] = [Criterion::L1Weight, Criterion::K34, Criterion::SkewKur];
const HP13: [f32; 3] = [0.3, 0.4, 0.5];
const HP14: [f32; 3] = [1.0, 3.0, 5.0];
const HP15: [f32; 5] = [0.5, 1.0, 1.5, 3.0, 5.0];

impl StrategySpace {
    /// The full Table 1 grid (4,230 strategies).
    pub fn full() -> Self {
        Self::for_methods(&MethodId::ALL)
    }

    /// Grid restricted to one method — the `AutoMC-Multiple Source`
    /// ablation uses `for_methods(&[MethodId::Legr])`.
    pub fn for_methods(methods: &[MethodId]) -> Self {
        let mut specs = Vec::new();
        for &m in methods {
            match m {
                MethodId::Lma => {
                    for ft in HP1 {
                        for r in HP2 {
                            for t in HP4 {
                                for a in HP5 {
                                    specs.push(StrategySpec::Lma {
                                        ft_epochs: ft,
                                        ratio: r,
                                        temperature: t,
                                        alpha: a,
                                    });
                                }
                            }
                        }
                    }
                }
                MethodId::Legr => {
                    for ft in HP1 {
                        for r in HP2 {
                            for mp in HP6 {
                                for evo in HP7 {
                                    for crit in HP8 {
                                        specs.push(StrategySpec::Legr {
                                            ft_epochs: ft,
                                            ratio: r,
                                            max_prune: mp,
                                            evo_epochs: evo,
                                            criterion: crit,
                                        });
                                    }
                                }
                            }
                        }
                    }
                }
                MethodId::Ns => {
                    for ft in HP1 {
                        for r in HP2 {
                            for mp in HP6 {
                                specs.push(StrategySpec::Ns {
                                    ft_epochs: ft,
                                    ratio: r,
                                    max_prune: mp,
                                });
                            }
                        }
                    }
                }
                MethodId::Sfp => {
                    for r in HP2 {
                        for bp in HP9 {
                            for uf in HP10 {
                                specs.push(StrategySpec::Sfp {
                                    ratio: r,
                                    bp_epochs: bp,
                                    update_freq: uf,
                                });
                            }
                        }
                    }
                }
                MethodId::Hos => {
                    for ft in HP1 {
                        for r in HP2 {
                            for g in 0..HOS_GLOBAL.len() {
                                for crit in HP12 {
                                    for opt in HP13 {
                                        for mse in HP14 {
                                            specs.push(StrategySpec::Hos {
                                                ft_epochs: ft,
                                                ratio: r,
                                                global: g,
                                                criterion: crit,
                                                opt_epochs: opt,
                                                mse_factor: mse,
                                            });
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
                MethodId::Lfb => {
                    for ft in HP1 {
                        for r in HP2 {
                            for af in HP15 {
                                for al in LFB_AUX {
                                    specs.push(StrategySpec::Lfb {
                                        ft_epochs: ft,
                                        ratio: r,
                                        aux_factor: af,
                                        aux_loss: al,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        StrategySpace { specs }
    }

    /// Number of strategies.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the space is empty.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Look up a strategy.
    pub fn spec(&self, id: StrategyId) -> &StrategySpec {
        &self.specs[id]
    }

    /// Iterate `(id, spec)`.
    pub fn iter(&self) -> impl Iterator<Item = (StrategyId, &StrategySpec)> {
        self.specs.iter().enumerate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_space_size() {
        let s = StrategySpace::full();
        // 480 + 720 + 60 + 90 + 2430 + 450
        assert_eq!(s.len(), 4230);
    }

    #[test]
    fn per_method_sizes() {
        let sizes: Vec<usize> = MethodId::ALL
            .iter()
            .map(|&m| StrategySpace::for_methods(&[m]).len())
            .collect();
        assert_eq!(sizes, vec![480, 720, 60, 90, 2430, 450]);
    }

    #[test]
    fn methods_partition_the_space() {
        let full = StrategySpace::full();
        let mut count = 0;
        for m in MethodId::ALL {
            count += full.iter().filter(|(_, s)| s.method() == m).count();
        }
        assert_eq!(count, full.len());
    }

    #[test]
    fn hyper_settings_nonempty_and_tagged() {
        let s = StrategySpace::full();
        for (_, spec) in s.iter() {
            let hs = spec.hyper_settings();
            assert!(!hs.is_empty());
            assert!(hs.iter().all(|h| (1..=16).contains(&h.hp)));
            // HP2 present everywhere.
            assert!(hs.iter().any(|h| h.hp == 2));
        }
    }

    #[test]
    fn display_is_informative() {
        let s = StrategySpace::full();
        let text = format!("{}", s.spec(0));
        assert!(text.contains("C1"));
        assert!(text.contains("HP2="));
    }

    #[test]
    fn ratio_accessor_matches_grid() {
        let s = StrategySpace::full();
        for (_, spec) in s.iter() {
            assert!(HP2.contains(&spec.ratio()));
        }
    }

    #[test]
    fn single_method_space_for_ablation() {
        let s = StrategySpace::for_methods(&[MethodId::Legr]);
        assert!(s.iter().all(|(_, spec)| spec.method() == MethodId::Legr));
        assert_eq!(s.len(), 720);
    }
}
