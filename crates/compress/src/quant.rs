//! Quantization — the extension compression family.
//!
//! The paper surveys quantization as the fourth compression family
//! (Jacob et al., INQ) but leaves it out of the search space, listing
//! "enrich our search space" as future work. This module supplies that
//! extension: symmetric per-filter weight quantization with optional
//! quantization-aware fine-tuning (QAT), plus an *extended* strategy grid
//! ([`extended_space`]) that appends quantization strategies (labelled C7)
//! to the Table 1 grid.
//!
//! Quantization does not remove parameters, so `PR` is untouched; its
//! payoff is *model size*. [`size_bytes`] reports the effective storage
//! of a (possibly mixed-precision) network; the `quantization` bench
//! regenerates the accuracy-vs-bits trade-off curve.

use crate::methods::ExecConfig;
use crate::scheme::EvalCost;
use crate::space::StrategySpace;
use automc_data::ImageSet;
use automc_models::train::{train, Auxiliary};
use automc_models::{ConvKernel, ConvNet};
use automc_tensor::{Rng, Tensor};

/// A quantization strategy: weight bit-width plus a QAT budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantSpec {
    /// Weight bit-width (2–8 make sense; 32 = no-op).
    pub bits: u32,
    /// Quantization-aware fine-tuning epochs (×E₀); 0 = post-training
    /// quantization only.
    pub qat_epochs: f32,
}

/// The bit-width grid of the extended space (HP17).
pub const QUANT_BITS: [u32; 3] = [2, 4, 8];
/// The QAT-epoch grid of the extended space (HP18).
pub const QUANT_QAT: [f32; 3] = [0.0, 0.2, 0.4];

/// Quantize every conv/linear weight tensor to `bits` bits, symmetric
/// per-row (per-filter) scaling, storing the *dequantized* values so the
/// f32 engine keeps working. Returns the mean absolute rounding error.
pub fn quantize_weights(net: &mut ConvNet, bits: u32) -> f32 {
    if bits >= 32 {
        return 0.0;
    }
    let levels = (1i64 << (bits - 1)) - 1; // symmetric: ±levels
    let mut err_sum = 0.0f64;
    let mut count = 0usize;
    let mut quantize_rows = |w: &mut Tensor| {
        let rows = w.dims()[0].max(1);
        for r in 0..rows {
            let row = w.row_mut(r);
            let max = row.iter().fold(0.0f32, |m, v| m.max(v.abs()));
            if max <= 0.0 {
                continue;
            }
            let scale = max / levels as f32;
            for v in row.iter_mut() {
                let q = (*v / scale).round().clamp(-(levels as f32), levels as f32);
                let deq = q * scale;
                err_sum += (deq - *v).abs() as f64;
                *v = deq;
                count += 1;
            }
        }
    };
    net.for_each_cbr_mut(|_, cbr| match &mut cbr.kernel {
        ConvKernel::Full(c) => quantize_rows(&mut c.weight),
        ConvKernel::Factored { basis, point, .. } => {
            quantize_rows(&mut basis.weight);
            quantize_rows(&mut point.weight);
        }
    });
    for unit in &mut net.units {
        if let automc_models::Unit::Classifier(head) = unit {
            quantize_rows(&mut head.linear.weight);
        }
    }
    if count == 0 {
        0.0
    } else {
        (err_sum / count as f64) as f32
    }
}

/// Apply a quantization strategy: (optional) QAT epochs where weights are
/// re-quantized after every epoch, then a final quantization pass.
pub fn apply_quant(
    spec: &QuantSpec,
    net: &mut ConvNet,
    train_set: &ImageSet,
    cfg: &ExecConfig,
    rng: &mut Rng,
) -> EvalCost {
    let epochs = (cfg.epochs(spec.qat_epochs).round() as usize).min(16);
    if spec.qat_epochs > 0.0 {
        for _ in 0..epochs.max(1) {
            quantize_weights(net, spec.bits);
            train(net, train_set, &cfg.train_cfg(1.0), Auxiliary::None, rng);
        }
    }
    quantize_weights(net, spec.bits);
    EvalCost {
        trained_images: if spec.qat_epochs > 0.0 {
            (epochs.max(1) * train_set.len()) as u64
        } else {
            0
        },
        eval_images: 0,
    }
}

/// Effective storage of a network whose weights are `bits`-bit quantized
/// (BN/bias stay f32 — they are a rounding error of the total).
pub fn size_bytes(net: &ConvNet, bits: u32) -> u64 {
    (net.param_count() as u64 * bits as u64).div_ceil(8)
}

/// Quantization strategies for the extended grid (the C7 family).
pub fn quant_grid() -> Vec<QuantSpec> {
    let mut grid = Vec::new();
    for bits in QUANT_BITS {
        for qat in QUANT_QAT {
            grid.push(QuantSpec { bits, qat_epochs: qat });
        }
    }
    grid
}

/// The Table 1 grid plus the quantization family — the "enriched search
/// space" the paper's future-work section sketches. Returned separately
/// from [`StrategySpace::full`] so every paper-faithful experiment keeps
/// the original 6-method space.
pub fn extended_space() -> (StrategySpace, Vec<QuantSpec>) {
    (StrategySpace::full(), quant_grid())
}

/// Convenience: describe a quant spec like the Table 1 strategies print.
pub fn describe(spec: &QuantSpec) -> String {
    format!("C7[Quant](HP17={}bit, HP18=*{})", spec.bits, spec.qat_epochs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use automc_data::{DatasetSpec, SyntheticKind};
    use automc_models::resnet;
    use automc_models::train::evaluate;
    use automc_tensor::rng_from_seed;

    fn trained_net() -> (ConvNet, ImageSet, ImageSet) {
        let mut rng = rng_from_seed(600);
        let (train_set, test_set) = DatasetSpec {
            train: 240,
            test: 120,
            noise: 0.25,
            ..DatasetSpec::new(SyntheticKind::Cifar10Like)
        }
        .generate();
        let mut net = resnet(20, 4, 10, (3, 8, 8), &mut rng);
        train(
            &mut net,
            &train_set,
            &automc_models::train::TrainConfig { epochs: 6.0, ..Default::default() },
            Auxiliary::None,
            &mut rng,
        );
        (net, train_set, test_set)
    }

    #[test]
    fn quantization_error_shrinks_with_bits() {
        let (net, _, _) = trained_net();
        let mut errs = Vec::new();
        for bits in [2u32, 4, 8] {
            let mut copy = net.clone_net();
            errs.push(quantize_weights(&mut copy, bits));
        }
        assert!(errs[0] > errs[1], "2-bit error {} !> 4-bit {}", errs[0], errs[1]);
        assert!(errs[1] > errs[2], "4-bit error {} !> 8-bit {}", errs[1], errs[2]);
        assert!(errs[2] > 0.0);
    }

    #[test]
    fn thirty_two_bit_is_noop() {
        let (net, _, _) = trained_net();
        let mut copy = net.clone_net();
        assert_eq!(quantize_weights(&mut copy, 32), 0.0);
    }

    #[test]
    fn eight_bit_preserves_accuracy() {
        let (net, _, test_set) = trained_net();
        let mut q = net.clone_net();
        quantize_weights(&mut q, 8);
        let mut base = net.clone_net();
        let acc_base = evaluate(&mut base, &test_set);
        let acc_q = evaluate(&mut q, &test_set);
        assert!(
            acc_q > acc_base - 0.05,
            "8-bit quantization should be nearly lossless: {acc_base} → {acc_q}"
        );
    }

    #[test]
    fn qat_recovers_low_bit_accuracy() {
        let (net, train_set, test_set) = trained_net();
        let mut rng = rng_from_seed(601);
        let cfg = ExecConfig { pretrain_epochs: 6.0, ..Default::default() };
        // Post-training 2-bit.
        let mut ptq = net.clone_net();
        apply_quant(&QuantSpec { bits: 2, qat_epochs: 0.0 }, &mut ptq, &train_set, &cfg, &mut rng);
        let acc_ptq = evaluate(&mut ptq, &test_set);
        // QAT 2-bit.
        let mut qat = net.clone_net();
        apply_quant(&QuantSpec { bits: 2, qat_epochs: 0.5 }, &mut qat, &train_set, &cfg, &mut rng);
        let acc_qat = evaluate(&mut qat, &test_set);
        assert!(
            acc_qat >= acc_ptq,
            "QAT should not be worse than PTQ at 2 bits: {acc_ptq} vs {acc_qat}"
        );
    }

    #[test]
    fn size_accounting() {
        let (net, _, _) = trained_net();
        let full = size_bytes(&net, 32);
        let int8 = size_bytes(&net, 8);
        assert_eq!(full, net.param_count() as u64 * 4);
        assert_eq!(int8 * 4, full);
    }

    #[test]
    fn grid_and_description() {
        let grid = quant_grid();
        assert_eq!(grid.len(), 9);
        assert!(describe(&grid[0]).contains("C7"));
        let (space, quants) = extended_space();
        assert_eq!(space.len(), 4230);
        assert_eq!(quants.len(), 9);
    }
}
