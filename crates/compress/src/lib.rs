//! # automc-compress
//!
//! The compression-strategy search space (paper Table 1) and from-scratch
//! implementations of the six compression methods AutoMC composes:
//!
//! | Label | Method | Core technique |
//! |-------|--------|----------------|
//! | C1 | LMA  | knowledge distillation into a thinner student |
//! | C2 | LeGR | filter pruning with an EA-learned global ranking |
//! | C3 | NS   | channel pruning by BN scaling factors (network slimming) |
//! | C4 | SFP  | soft filter pruning during back-propagation |
//! | C5 | HOS  | higher-order-statistics pruning + low-rank kernel approx |
//! | C6 | LFB  | low-rank filter-basis sharing |
//!
//! A *compression strategy* is a method plus one concrete hyperparameter
//! setting ([`StrategySpec`]); the full grid ([`StrategySpace::full`])
//! enumerates 4,230 strategies (the paper reports 4,525 from a partially
//! garbled table — same order of magnitude, see `DESIGN.md` §4). A
//! *compression scheme* is a sequence of strategies executed in order
//! ([`Scheme`]); [`execute_scheme`] applies one to a model and reports the
//! paper's metrics `PR` / `FR` / `AR` plus the per-step deltas that AutoMC's
//! `F_mo` evaluator learns from.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod memo;
mod methods;
pub mod quant;
mod scheme;
mod space;
pub mod store;

pub use methods::{apply_strategy, ExecConfig};
pub use scheme::{
    execute_scheme, execute_scheme_checked, EvalCost, EvalOutcome, Metrics, Scheme,
    SchemeOutcome, StepRecord,
};
pub use space::{
    HpSetting, MethodId, StrategyId, StrategySpace, StrategySpec, HOS_GLOBAL, LFB_AUX,
};
