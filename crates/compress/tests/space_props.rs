//! Property-based tests of the strategy space and scheme metrics.

use automc_compress::{Metrics, MethodId, StrategySpace};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_strategy_id_resolves(id in 0usize..4230) {
        let space = StrategySpace::full();
        let spec = space.spec(id);
        // Display, settings, and accessors never panic and are coherent.
        let text = format!("{spec}");
        prop_assert!(text.contains(spec.method().label()));
        let settings = spec.hyper_settings();
        prop_assert!(!settings.is_empty());
        prop_assert!(spec.ratio() > 0.0 && spec.ratio() < 0.5);
    }

    #[test]
    fn method_subspaces_are_consistent(mask in 1u8..63) {
        let methods: Vec<MethodId> = MethodId::ALL
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, &m)| m)
            .collect();
        let space = StrategySpace::for_methods(&methods);
        prop_assert!(!space.is_empty());
        for (_, spec) in space.iter() {
            prop_assert!(methods.contains(&spec.method()));
        }
        // Size is the sum of per-method sizes.
        let total: usize = methods
            .iter()
            .map(|&m| StrategySpace::for_methods(&[m]).len())
            .sum();
        prop_assert_eq!(space.len(), total);
    }

    #[test]
    fn metric_rates_are_consistent(
        base_params in 100usize..1_000_000,
        keep_frac in 0.05f32..1.0,
        base_acc in 0.05f32..1.0,
        acc_delta in -0.5f32..0.5,
    ) {
        let base = Metrics { params: base_params, flops: base_params as u64 * 2, acc: base_acc };
        let new_params = ((base_params as f32) * keep_frac) as usize;
        let new_acc = (base_acc + acc_delta).clamp(0.0, 1.0);
        let m = Metrics { params: new_params, flops: new_params as u64 * 2, acc: new_acc };
        let pr = m.pr(&base);
        prop_assert!((0.0..=1.0).contains(&pr), "pr {pr}");
        // PR and FR agree when flops scale with params.
        prop_assert!((pr - m.fr(&base)).abs() < 1e-3);
        // AR is bounded below by -1 (accuracy cannot go below zero).
        prop_assert!(m.ar(&base) >= -1.0 - 1e-6);
        // Identity: no compression, no change.
        prop_assert!(base.pr(&base).abs() < 1e-6);
        prop_assert!(base.ar(&base).abs() < 1e-6);
    }
}
