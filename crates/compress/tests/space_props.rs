//! Randomised tests of the strategy space and scheme metrics. Seeded
//! loops; each case reproduces from its printed case number.

use automc_compress::{Metrics, MethodId, StrategySpace};
use automc_tensor::rng_from_seed;
use rand::Rng as _;

#[test]
fn every_strategy_id_resolves() {
    let space = StrategySpace::full();
    for case in 0..64u64 {
        let mut rng = rng_from_seed(0x31_000 + case);
        let id = rng.gen_range(0usize..space.len());
        let spec = space.spec(id);
        // Display, settings, and accessors never panic and are coherent.
        let text = format!("{spec}");
        assert!(text.contains(spec.method().label()), "case {case} (id {id})");
        let settings = spec.hyper_settings();
        assert!(!settings.is_empty(), "case {case} (id {id})");
        assert!(spec.ratio() > 0.0 && spec.ratio() < 0.5, "case {case} (id {id})");
    }
}

#[test]
fn method_subspaces_are_consistent() {
    // All 62 non-empty method masks, exhaustively.
    for mask in 1u8..63 {
        let methods: Vec<MethodId> = MethodId::ALL
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, &m)| m)
            .collect();
        let space = StrategySpace::for_methods(&methods);
        assert!(!space.is_empty(), "mask {mask}");
        for (_, spec) in space.iter() {
            assert!(methods.contains(&spec.method()), "mask {mask}");
        }
        // Size is the sum of per-method sizes.
        let total: usize = methods
            .iter()
            .map(|&m| StrategySpace::for_methods(&[m]).len())
            .sum();
        assert_eq!(space.len(), total, "mask {mask}");
    }
}

#[test]
fn metric_rates_are_consistent() {
    for case in 0..64u64 {
        let mut rng = rng_from_seed(0x32_000 + case);
        let base_params = rng.gen_range(100usize..1_000_000);
        let keep_frac = rng.gen_range(0.05f32..1.0);
        let base_acc = rng.gen_range(0.05f32..1.0);
        let acc_delta = rng.gen_range(-0.5f32..0.5);
        let base = Metrics { params: base_params, flops: base_params as u64 * 2, acc: base_acc };
        let new_params = ((base_params as f32) * keep_frac) as usize;
        let new_acc = (base_acc + acc_delta).clamp(0.0, 1.0);
        let m = Metrics { params: new_params, flops: new_params as u64 * 2, acc: new_acc };
        let pr = m.pr(&base);
        assert!((0.0..=1.0).contains(&pr), "case {case}: pr {pr}");
        // PR and FR agree when flops scale with params.
        assert!((pr - m.fr(&base)).abs() < 1e-3, "case {case}");
        // AR is bounded below by -1 (accuracy cannot go below zero).
        assert!(m.ar(&base) >= -1.0 - 1e-6, "case {case}");
        // Identity: no compression, no change.
        assert!(base.pr(&base).abs() < 1e-6, "case {case}");
        assert!(base.ar(&base).abs() < 1e-6, "case {case}");
    }
}
