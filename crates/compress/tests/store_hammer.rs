//! Multi-process hammer for the crash-safe blob store: concurrent
//! writers (one of them killed mid-stream by an injected exit), readers,
//! and a GC loop all share one store directory. The store must lose no
//! blob that was not deliberately evicted, surface no checksum failure to
//! any caller, and — through the memo layer — produce byte-identical
//! search results whether the spill store is shared between processes or
//! private.
//!
//! Child processes are this same test binary re-executed with
//! `--exact <helper> --nocapture` plus a role in `AUTOMC_HAMMER_ROLE`;
//! the helper tests return immediately when the role is unset.

use automc_compress::store::{counters, set_grace_ms, BlobStore};
use automc_compress::{
    execute_scheme_checked, memo, EvalOutcome, ExecConfig, Metrics, MethodId, Scheme,
    StrategySpace,
};
use automc_data::{DatasetSpec, ImageSet, SyntheticKind};
use automc_models::train::{train, Auxiliary, TrainConfig};
use automc_models::{resnet, serialize, ConvNet};
use automc_tensor::fault::INJECTED_EXIT_CODE;
use automc_tensor::rng_from_seed;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::Mutex;
use std::time::Duration;

/// The blob store counters and the memo spill handle are process-global;
/// serialize the tests in this file.
static GLOBAL_STATE: Mutex<()> = Mutex::new(());

const ROLE_ENV: &str = "AUTOMC_HAMMER_ROLE";
const DIR_ENV: &str = "AUTOMC_HAMMER_DIR";

const WRITERS: usize = 2;
const READERS: usize = 2;
const KEYS: u64 = 48;

fn hammer_key(i: u64) -> u64 {
    0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i + 1) ^ 0x5bd1_e995
}

/// Deterministic payload for a key — every process derives the same
/// bytes, so the store stays content-addressed and any reader can verify
/// a blob it gets back without coordination.
fn payload_for(key: u64) -> Vec<u8> {
    let len = 200 + (key % 300) as usize;
    let mut out = Vec::with_capacity(len);
    let mut x = key | 1;
    for _ in 0..len {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        out.push((x >> 33) as u8);
    }
    out
}

fn spawn_role(role: &str, helper: &str, dir: &Path, faults: Option<&str>) -> std::process::Child {
    let exe = std::env::current_exe().expect("current_exe");
    let mut cmd = Command::new(exe);
    cmd.arg("--exact")
        .arg(helper)
        .arg("--nocapture")
        .env(ROLE_ENV, role)
        .env(DIR_ENV, dir)
        .env_remove("AUTOMC_FAULTS")
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null());
    if let Some(f) = faults {
        cmd.env("AUTOMC_FAULTS", f);
    }
    cmd.spawn().expect("spawn hammer child")
}

/// Child role: publish every hammer key (twice, shuffled phase per
/// writer), verifying that publish never panics and that the store
/// accepts idempotent re-publishes.
#[test]
fn hammer_child_writer() {
    if std::env::var(ROLE_ENV).as_deref() != Ok("writer") {
        return;
    }
    let dir = PathBuf::from(std::env::var(DIR_ENV).expect("hammer dir"));
    let store = BlobStore::open(&dir).expect("child open");
    for round in 0..2u64 {
        for i in 0..KEYS {
            // Different writers interleave differently but cover the
            // same key set, racing same-key publishes on purpose.
            let i = (i + round * 7) % KEYS;
            let key = hammer_key(i);
            store.publish(key, &payload_for(key));
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

/// Child role: read hammer keys in a loop. Every read must be either a
/// clean miss or the exact expected payload — a checksum failure
/// surfacing as garbage bytes fails the assert, and the store's own
/// healing turns corruption into misses, never errors.
#[test]
fn hammer_child_reader() {
    if std::env::var(ROLE_ENV).as_deref() != Ok("reader") {
        return;
    }
    let dir = PathBuf::from(std::env::var(DIR_ENV).expect("hammer dir"));
    let store = BlobStore::open(&dir).expect("child open");
    for round in 0..6u64 {
        for i in 0..KEYS {
            let key = hammer_key((i + round * 11) % KEYS);
            if let Some(bytes) = store.get(key) {
                assert_eq!(
                    bytes,
                    payload_for(key),
                    "reader got a blob that does not match its key"
                );
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

#[test]
fn concurrent_writers_readers_and_gc_lose_nothing_and_surface_no_corruption() {
    let _g = GLOBAL_STATE.lock().unwrap_or_else(|p| p.into_inner());
    let dir = std::env::temp_dir().join(format!("automc-store-hammer-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // A short grace window so the parent's GC loop actually churns blobs
    // published seconds ago — readers then race real evictions.
    set_grace_ms(50);
    let store = BlobStore::open(&dir).expect("parent open");

    let mut children = Vec::new();
    for _ in 0..WRITERS {
        children.push(("writer", spawn_role("writer", "hammer_child_writer", &dir, None)));
    }
    // One writer is killed mid-stream by an injected process exit at its
    // 7th spill operation — the simulated `kill -9` the publish protocol
    // must shrug off.
    children.push((
        "killed-writer",
        spawn_role("writer", "hammer_child_writer", &dir, Some("exit@spill:7")),
    ));
    for _ in 0..READERS {
        children.push(("reader", spawn_role("reader", "hammer_child_reader", &dir, None)));
    }

    // GC churn while the children hammer: a budget far below the working
    // set forces constant eviction of out-of-grace blobs.
    let budget = 20 * 256u64;
    let mut gc_passes = 0u64;
    let mut evicted_total = 0u64;
    loop {
        evicted_total += store.gc(budget);
        gc_passes += 1;
        std::thread::sleep(Duration::from_millis(20));
        let all_done = children.iter_mut().all(|(_, c)| {
            matches!(c.try_wait(), Ok(Some(_)))
        });
        if all_done {
            break;
        }
        assert!(gc_passes < 3_000, "hammer children failed to finish");
    }
    for (role, child) in &mut children {
        let status = child.wait().expect("wait hammer child");
        if *role == "killed-writer" {
            assert_eq!(
                status.code(),
                Some(INJECTED_EXIT_CODE),
                "the faulted writer must die by the injected exit"
            );
        } else {
            assert!(status.success(), "{role} child failed: {status:?}");
        }
    }
    assert!(evicted_total > 0, "the GC loop must have actually churned blobs");

    // The store a fleet of crashing clients leaves behind must open
    // cleanly: every index record parses (no rebuild) and every surviving
    // blob passes its checksum.
    let healed_before = counters().healed;
    let fresh = BlobStore::open(&dir).expect("post-hammer open");
    assert_eq!(fresh.rebuild_count(), 0, "post-hammer index must parse cleanly");
    let mut live = 0u64;
    for i in 0..KEYS {
        let key = hammer_key(i);
        match fresh.get(key) {
            Some(bytes) => {
                live += 1;
                assert_eq!(bytes, payload_for(key), "live blob must be intact");
            }
            None => {
                // Evicted (or lost to the killed writer): a republish must
                // restore it — the key is free, not poisoned.
                assert!(fresh.publish(key, &payload_for(key)), "evicted key must republish");
                assert_eq!(fresh.get(key), Some(payload_for(key)));
            }
        }
    }
    assert!(live > 0, "the grace window must have kept some recent blobs alive");
    assert_eq!(
        counters().healed,
        healed_before,
        "no blob may fail its checksum after the hammer"
    );

    set_grace_ms(automc_compress::store::DEFAULT_GRACE_MS);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Shared-vs-private search determinism (through the memo layer)
// ---------------------------------------------------------------------------

struct Fixture {
    base: ConvNet,
    base_metrics: Metrics,
    train_set: ImageSet,
    eval_set: ImageSet,
    space: StrategySpace,
}

/// Same shape as the memo-determinism fixture: a small trained ResNet and
/// a reduced strategy space, deterministic for every process that builds
/// it.
fn fixture() -> Fixture {
    let mut rng = rng_from_seed(8101);
    let (train_set, eval_set) = DatasetSpec {
        train: 60,
        test: 40,
        noise: 0.25,
        ..DatasetSpec::new(SyntheticKind::Cifar10Like)
    }
    .generate();
    let mut base = resnet(20, 4, 10, (3, 8, 8), &mut rng);
    train(
        &mut base,
        &train_set,
        &TrainConfig { epochs: 1.0, ..Default::default() },
        Auxiliary::None,
        &mut rng,
    );
    let mut probe = base.clone_net();
    let base_metrics = Metrics::measure(&mut probe, &eval_set);
    let space = StrategySpace::for_methods(&[MethodId::Ns, MethodId::Sfp]);
    Fixture { base, base_metrics, train_set, eval_set, space }
}

fn cfg() -> ExecConfig {
    ExecConfig { pretrain_epochs: 1.0, eval_seed: 4242, ..Default::default() }
}

fn run(fx: &Fixture, scheme: &Scheme, exec: &ExecConfig) -> EvalOutcome {
    execute_scheme_checked(
        &fx.base,
        &fx.base_metrics,
        scheme,
        &fx.space,
        &fx.train_set,
        &fx.eval_set,
        exec,
    )
}

/// Bit-exact digest of an evaluation (mirrors memo_determinism.rs).
fn digest(result: &EvalOutcome) -> Vec<u64> {
    let mut d = Vec::new();
    match result {
        EvalOutcome::Ok { model, outcome } => {
            d.push(0);
            d.push(outcome.metrics.acc.to_bits() as u64);
            d.push(outcome.metrics.params as u64);
            d.push(outcome.metrics.flops);
            d.push(outcome.pr.to_bits() as u64);
            d.push(outcome.fr.to_bits() as u64);
            d.push(outcome.ar.to_bits() as u64);
            d.push(outcome.cost.trained_images);
            d.push(outcome.cost.eval_images);
            for s in &outcome.steps {
                d.push(s.strategy as u64);
                d.push(s.ar_step.to_bits() as u64);
                d.push(s.pr_step.to_bits() as u64);
                d.push(s.after.acc.to_bits() as u64);
                d.push(s.after.params as u64);
                d.push(s.cost.trained_images);
                d.push(s.cost.eval_images);
            }
            let bytes = serialize::model_to_bytes(model);
            d.push(bytes.len() as u64);
            let mut h = 0xcbf29ce484222325u64;
            for &b in &bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            d.push(h);
        }
        EvalOutcome::Diverged { step, cost } => {
            d.extend([1, *step as u64, cost.trained_images, cost.eval_images]);
        }
        EvalOutcome::Panicked { step, cost, .. } => {
            d.extend([2, *step as u64, cost.trained_images, cost.eval_images]);
        }
        EvalOutcome::TimedOut { step, cost } => {
            d.extend([3, *step as u64, cost.trained_images, cost.eval_images]);
        }
    }
    d
}

fn schemes(space: &StrategySpace) -> (Scheme, Scheme) {
    let of = |m: MethodId, nth: usize| {
        space
            .iter()
            .filter(|(_, s)| s.method() == m)
            .nth(nth)
            .expect("strategy space too small for the fixture")
            .0
    };
    let a = vec![of(MethodId::Ns, 0), of(MethodId::Sfp, 0), of(MethodId::Ns, 1)];
    let b = vec![of(MethodId::Ns, 0), of(MethodId::Sfp, 0), of(MethodId::Sfp, 1)];
    (a, b)
}

fn digest_lines(fx: &Fixture, exec: &ExecConfig) -> (String, String) {
    let (scheme_a, scheme_b) = schemes(&fx.space);
    let fmt = |d: &[u64]| {
        d.iter().map(|v| format!("{v:x}")).collect::<Vec<_>>().join(" ")
    };
    (
        fmt(&digest(&run(fx, &scheme_a, exec))),
        fmt(&digest(&run(fx, &scheme_b, exec))),
    )
}

/// Child role: evaluate both fixture schemes with the memo spilling to
/// the *shared* store directory and print the digests; two of these run
/// concurrently, racing publishes and reads of the same prefix blobs.
#[test]
fn hammer_child_eval() {
    if std::env::var(ROLE_ENV).as_deref() != Ok("eval") {
        return;
    }
    let dir = PathBuf::from(std::env::var(DIR_ENV).expect("hammer dir"));
    memo::set_enabled_for_thread(Some(true));
    memo::set_spill_dir(Some(dir));
    let fx = fixture();
    let (a, b) = digest_lines(&fx, &cfg());
    println!("DIGEST-A {a}");
    println!("DIGEST-B {b}");
}

#[test]
fn search_results_are_byte_identical_with_shared_and_private_stores() {
    let _g = GLOBAL_STATE.lock().unwrap_or_else(|p| p.into_inner());
    let fx = fixture();
    let exec = cfg();

    // Reference: memoization off entirely.
    memo::set_enabled_for_thread(Some(false));
    let (ref_a, ref_b) = digest_lines(&fx, &exec);

    // Private spill store: this process alone.
    let private = std::env::temp_dir()
        .join(format!("automc-hammer-private-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&private);
    memo::set_enabled_for_thread(Some(true));
    memo::set_spill_dir(Some(private.clone()));
    memo::clear();
    let (priv_a, priv_b) = digest_lines(&fx, &exec);
    assert_eq!(ref_a, priv_a, "private-store run diverged from memo-off");
    assert_eq!(ref_b, priv_b, "private-store run diverged from memo-off");
    memo::set_spill_dir(None);
    memo::set_enabled_for_thread(None);

    // Shared spill store: two sibling processes evaluate the same schemes
    // concurrently against one directory, racing same-key publishes and
    // cross-process prefix hits. Both must print the reference digests.
    let shared = std::env::temp_dir()
        .join(format!("automc-hammer-shared-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&shared);
    let children: Vec<_> = (0..2)
        .map(|_| spawn_role("eval", "hammer_child_eval", &shared, None))
        .collect();
    for child in children {
        let out = child.wait_with_output().expect("wait eval child");
        assert!(out.status.success(), "eval child failed: {:?}", out.status);
        let stdout = String::from_utf8_lossy(&out.stdout);
        // libtest's "test … ok" chatter can share a line with the first
        // digest print, so match on a substring rather than a prefix.
        let grab = |tag: &str| {
            stdout
                .lines()
                .find_map(|l| l.split(tag).nth(1))
                .unwrap_or_else(|| panic!("eval child printed no {tag}digest"))
        };
        let a = grab("DIGEST-A ");
        let b = grab("DIGEST-B ");
        assert_eq!(ref_a, a, "shared-store child diverged on scheme A");
        assert_eq!(ref_b, b, "shared-store child diverged on scheme B");
    }

    let _ = std::fs::remove_dir_all(&private);
    let _ = std::fs::remove_dir_all(&shared);
}
