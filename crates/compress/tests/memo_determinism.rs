//! The prefix-memoization contract: a scheme evaluates *bitwise
//! identically* whether it misses the cache, fully hits it, resumes from
//! a sibling's shared prefix, or is served from the spill store — at any
//! thread count — and the cache stays correct under LRU eviction.

use automc_compress::{
    execute_scheme_checked, memo, EvalOutcome, ExecConfig, Metrics, MethodId, Scheme,
    StrategySpace,
};
use automc_data::{DatasetSpec, ImageSet, SyntheticKind};
use automc_models::train::{train, Auxiliary, TrainConfig};
use automc_models::{resnet, serialize, ConvNet};
use automc_tensor::{par, rng_from_seed};
use std::sync::{Mutex, OnceLock};

/// The memo store, byte budget, and spill directory are process-global;
/// serialize the tests in this file so they cannot evict or clear each
/// other's entries mid-assertion.
static GLOBAL_STATE: Mutex<()> = Mutex::new(());

struct Fixture {
    base: ConvNet,
    base_metrics: Metrics,
    train_set: ImageSet,
    eval_set: ImageSet,
    space: StrategySpace,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let mut rng = rng_from_seed(8101);
        let (train_set, eval_set) = DatasetSpec {
            train: 60,
            test: 40,
            noise: 0.25,
            ..DatasetSpec::new(SyntheticKind::Cifar10Like)
        }
        .generate();
        let mut base = resnet(20, 4, 10, (3, 8, 8), &mut rng);
        train(
            &mut base,
            &train_set,
            &TrainConfig { epochs: 1.0, ..Default::default() },
            Auxiliary::None,
            &mut rng,
        );
        let mut probe = base.clone_net();
        let base_metrics = Metrics::measure(&mut probe, &eval_set);
        let space = StrategySpace::for_methods(&[MethodId::Ns, MethodId::Sfp]);
        Fixture { base, base_metrics, train_set, eval_set, space }
    })
}

fn cfg() -> ExecConfig {
    ExecConfig { pretrain_epochs: 1.0, eval_seed: 4242, ..Default::default() }
}

fn run(fx: &Fixture, scheme: &Scheme, exec: &ExecConfig) -> EvalOutcome {
    execute_scheme_checked(
        &fx.base,
        &fx.base_metrics,
        scheme,
        &fx.space,
        &fx.train_set,
        &fx.eval_set,
        exec,
    )
}

/// Everything an evaluation produces, bit-exactly: final model bytes,
/// metrics, per-step records, and cumulative cost.
fn digest(result: &EvalOutcome) -> Vec<u64> {
    let mut d = Vec::new();
    match result {
        EvalOutcome::Ok { model, outcome } => {
            d.push(0);
            d.push(outcome.metrics.acc.to_bits() as u64);
            d.push(outcome.metrics.params as u64);
            d.push(outcome.metrics.flops);
            d.push(outcome.pr.to_bits() as u64);
            d.push(outcome.fr.to_bits() as u64);
            d.push(outcome.ar.to_bits() as u64);
            d.push(outcome.cost.trained_images);
            d.push(outcome.cost.eval_images);
            for s in &outcome.steps {
                d.push(s.strategy as u64);
                d.push(s.ar_step.to_bits() as u64);
                d.push(s.pr_step.to_bits() as u64);
                d.push(s.after.acc.to_bits() as u64);
                d.push(s.after.params as u64);
                d.push(s.cost.trained_images);
                d.push(s.cost.eval_images);
            }
            let bytes = serialize::model_to_bytes(model);
            d.push(bytes.len() as u64);
            // FNV over the model bytes stands in for the full byte dump.
            let mut h = 0xcbf29ce484222325u64;
            for &b in &bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            d.push(h);
        }
        EvalOutcome::Diverged { step, cost } => {
            d.extend([1, *step as u64, cost.trained_images, cost.eval_images]);
        }
        EvalOutcome::Panicked { step, cost, .. } => {
            d.extend([2, *step as u64, cost.trained_images, cost.eval_images]);
        }
        EvalOutcome::TimedOut { step, cost } => {
            d.extend([3, *step as u64, cost.trained_images, cost.eval_images]);
        }
    }
    d
}

/// Pick one strategy id per (method, index) so schemes A and B share a
/// two-step prefix and differ in the last step.
fn schemes(space: &StrategySpace) -> (Scheme, Scheme) {
    let of = |m: MethodId, nth: usize| {
        space
            .iter()
            .filter(|(_, s)| s.method() == m)
            .nth(nth)
            .expect("strategy space too small for the fixture")
            .0
    };
    let a = vec![of(MethodId::Ns, 0), of(MethodId::Sfp, 0), of(MethodId::Ns, 1)];
    let b = vec![of(MethodId::Ns, 0), of(MethodId::Sfp, 0), of(MethodId::Sfp, 1)];
    (a, b)
}

#[test]
fn cold_warm_sibling_and_spill_hits_are_bitwise_identical_at_any_thread_count() {
    let _g = GLOBAL_STATE.lock().unwrap_or_else(|p| p.into_inner());
    let fx = fixture();
    let exec = cfg();
    let (scheme_a, scheme_b) = schemes(&fx.space);

    // References with memoization off.
    memo::set_enabled_for_thread(Some(false));
    let ref_a = digest(&run(fx, &scheme_a, &exec));
    let ref_b = digest(&run(fx, &scheme_b, &exec));
    assert_eq!(ref_a, digest(&run(fx, &scheme_a, &exec)), "executor must be deterministic");

    // Cold miss, then a full warm hit, then a sibling sharing depth 2.
    let spill = std::env::temp_dir().join(format!("automc-memo-test-{}", std::process::id()));
    memo::set_enabled_for_thread(Some(true));
    memo::set_spill_dir(Some(spill.clone()));
    memo::clear();
    let before = memo::stats();
    assert_eq!(ref_a, digest(&run(fx, &scheme_a, &exec)), "cold run diverged");
    let cold = memo::stats().since(&before);
    assert!(cold.inserts >= scheme_a.len() as u64, "every prefix depth is cached");

    let before = memo::stats();
    assert_eq!(ref_a, digest(&run(fx, &scheme_a, &exec)), "warm run diverged");
    let warm = memo::stats().since(&before);
    assert!(warm.full_hits >= 1, "second run must be a full hit");
    assert!(warm.steps_avoided >= scheme_a.len() as u64);

    let before = memo::stats();
    assert_eq!(ref_b, digest(&run(fx, &scheme_b, &exec)), "sibling-prefix run diverged");
    let sib = memo::stats().since(&before);
    assert!(sib.prefix_hits >= 1, "sibling must reuse the shared prefix");
    assert!(sib.steps_avoided >= 2, "two shared steps must be skipped");

    // Thread-count invariance: warm and cold, 1 and 4 threads.
    for threads in [1usize, 4] {
        par::with_threads(threads, || {
            assert_eq!(ref_a, digest(&run(fx, &scheme_a, &exec)), "warm @{threads} threads");
            memo::clear();
            assert_eq!(ref_b, digest(&run(fx, &scheme_b, &exec)), "cold @{threads} threads");
        });
    }

    // Spill store: wipe memory, the entries written above must still hit.
    memo::clear();
    let before = memo::stats();
    assert_eq!(ref_a, digest(&run(fx, &scheme_a, &exec)), "spill-served run diverged");
    let spilled = memo::stats().since(&before);
    assert!(spilled.spill_hits >= 1, "hit must come from the spill store");

    memo::set_spill_dir(None);
    memo::set_enabled_for_thread(None);
    let _ = std::fs::remove_dir_all(&spill);
}

#[test]
fn results_survive_lru_eviction_under_a_tiny_byte_budget() {
    let _g = GLOBAL_STATE.lock().unwrap_or_else(|p| p.into_inner());
    let fx = fixture();
    let exec = cfg();
    let (scheme_a, scheme_b) = schemes(&fx.space);

    memo::set_enabled_for_thread(Some(false));
    let ref_a = digest(&run(fx, &scheme_a, &exec));
    let ref_b = digest(&run(fx, &scheme_b, &exec));

    // A budget smaller than one model snapshot: every insert immediately
    // evicts, so lookups mostly miss — results must not change.
    memo::set_enabled_for_thread(Some(true));
    memo::clear();
    let evicted_before = memo::evictions();
    memo::set_byte_budget(1024);
    assert_eq!(ref_a, digest(&run(fx, &scheme_a, &exec)));
    assert_eq!(ref_b, digest(&run(fx, &scheme_b, &exec)));
    assert_eq!(ref_a, digest(&run(fx, &scheme_a, &exec)));
    assert!(
        memo::evictions() > evicted_before,
        "the tiny budget must actually force evictions"
    );

    memo::set_byte_budget(memo::DEFAULT_BYTE_BUDGET);
    memo::clear();
    memo::set_enabled_for_thread(None);
}
