//! End-to-end behaviour of every compression method: each must actually
//! reduce parameters near its HP2 target while the fine-tuned model keeps
//! usable accuracy.

use automc_compress::{apply_strategy, ExecConfig, Metrics, StrategySpec};
use automc_data::{DatasetSpec, ImageSet, SyntheticKind};
use automc_models::surgery::Criterion;
use automc_models::train::{train, AuxKind, Auxiliary, TrainConfig};
use automc_models::{resnet, vgg, ConvNet};
use automc_tensor::{rng_from_seed, Rng};
use std::sync::OnceLock;

struct Fixture {
    resnet: ConvNet,
    vgg: ConvNet,
    train_set: ImageSet,
    eval_set: ImageSet,
    resnet_acc: f32,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let mut rng = rng_from_seed(7001);
        let (train_set, eval_set) = DatasetSpec {
            train: 400,
            test: 200,
            noise: 0.25,
            ..DatasetSpec::new(SyntheticKind::Cifar10Like)
        }
        .generate();
        let mut r = resnet(20, 4, 10, (3, 8, 8), &mut rng);
        train(
            &mut r,
            &train_set,
            &TrainConfig { epochs: 8.0, ..TrainConfig::default() },
            Auxiliary::None,
            &mut rng,
        );
        let mut v = vgg(13, 8, 10, (3, 8, 8), &mut rng);
        train(
            &mut v,
            &train_set,
            &TrainConfig { epochs: 8.0, ..TrainConfig::default() },
            Auxiliary::None,
            &mut rng,
        );
        let resnet_acc = Metrics::measure(&mut r, &eval_set).acc;
        Fixture { resnet: r, vgg: v, train_set, eval_set, resnet_acc }
    })
}

fn cfg() -> ExecConfig {
    ExecConfig { pretrain_epochs: 8.0, ..ExecConfig::default() }
}

/// Apply `spec` to a clone of the fixture model; return (pr, acc).
/// Also asserts the invariant that compression never *increases* FLOPs.
fn run(spec: &StrategySpec, use_vgg: bool, rng: &mut Rng) -> (f32, f32) {
    let fix = fixture();
    let base = if use_vgg { &fix.vgg } else { &fix.resnet };
    let mut model = base.clone_net();
    let before = model.param_count();
    let flops_before = model.flops();
    apply_strategy(spec, &mut model, &fix.train_set, &cfg(), rng);
    let m = Metrics::measure(&mut model, &fix.eval_set);
    assert!(
        m.flops <= flops_before,
        "compression must not raise FLOPs: {} -> {} ({spec})",
        flops_before,
        m.flops
    );
    (1.0 - m.params as f32 / before as f32, m.acc)
}

#[test]
fn lma_reduces_and_recovers() {
    let mut rng = rng_from_seed(7010);
    let spec = StrategySpec::Lma { ft_epochs: 0.3, ratio: 0.2, temperature: 3.0, alpha: 0.5 };
    let (pr, acc) = run(&spec, false, &mut rng);
    assert!((0.1..=0.35).contains(&pr), "PR {pr} should approximate ratio 0.2");
    assert!(acc > 0.5, "accuracy collapsed to {acc}");
}

#[test]
fn legr_reduces_and_recovers() {
    let mut rng = rng_from_seed(7011);
    let spec = StrategySpec::Legr {
        ft_epochs: 0.3,
        ratio: 0.2,
        max_prune: 0.7,
        evo_epochs: 0.4,
        criterion: Criterion::L2Weight,
    };
    let (pr, acc) = run(&spec, false, &mut rng);
    assert!((0.1..=0.35).contains(&pr), "PR {pr}");
    assert!(acc > 0.5, "accuracy collapsed to {acc}");
}

#[test]
fn ns_reduces_and_recovers() {
    let mut rng = rng_from_seed(7012);
    let spec = StrategySpec::Ns { ft_epochs: 0.4, ratio: 0.2, max_prune: 0.7 };
    let (pr, acc) = run(&spec, false, &mut rng);
    assert!((0.1..=0.35).contains(&pr), "PR {pr}");
    assert!(acc > 0.5, "accuracy collapsed to {acc}");
}

#[test]
fn sfp_reduces_and_recovers() {
    let mut rng = rng_from_seed(7013);
    let spec = StrategySpec::Sfp { ratio: 0.2, bp_epochs: 0.3, update_freq: 1 };
    let (pr, acc) = run(&spec, false, &mut rng);
    assert!((0.1..=0.35).contains(&pr), "PR {pr}");
    assert!(acc > 0.5, "accuracy collapsed to {acc}");
}

#[test]
fn hos_reduces_and_recovers() {
    let mut rng = rng_from_seed(7014);
    let spec = StrategySpec::Hos {
        ft_epochs: 0.2,
        ratio: 0.2,
        global: 1,
        criterion: Criterion::K34,
        opt_epochs: 0.3,
        mse_factor: 1.0,
    };
    let (pr, acc) = run(&spec, false, &mut rng);
    assert!(pr > 0.08, "PR {pr}");
    assert!(acc > 0.5, "accuracy collapsed to {acc}");
}

#[test]
fn lfb_reduces_and_recovers_on_vgg() {
    let mut rng = rng_from_seed(7015);
    let spec =
        StrategySpec::Lfb { ft_epochs: 0.3, ratio: 0.2, aux_factor: 1.0, aux_loss: AuxKind::Ce };
    let (pr, acc) = run(&spec, true, &mut rng);
    assert!(pr > 0.08, "PR {pr}");
    assert!(acc > 0.4, "accuracy collapsed to {acc}");
}

#[test]
fn lfb_runs_on_resnet_too() {
    let mut rng = rng_from_seed(7016);
    let spec =
        StrategySpec::Lfb { ft_epochs: 0.2, ratio: 0.12, aux_factor: 0.5, aux_loss: AuxKind::Mse };
    let (pr, acc) = run(&spec, false, &mut rng);
    assert!(pr > 0.03, "PR {pr}");
    assert!(acc > 0.4, "accuracy collapsed to {acc}");
}

#[test]
fn all_hos_global_schemes_run() {
    let mut rng = rng_from_seed(7017);
    for global in 0..3 {
        let spec = StrategySpec::Hos {
            ft_epochs: 0.1,
            ratio: 0.12,
            global,
            criterion: Criterion::SkewKur,
            opt_epochs: 0.3,
            mse_factor: 3.0,
        };
        let (pr, _) = run(&spec, false, &mut rng);
        assert!(pr > 0.0, "global scheme {global} removed nothing");
    }
}

#[test]
fn sequential_strategies_compound_reduction() {
    // The core premise of AutoMC's search space: strategies compose.
    let fix = fixture();
    let mut rng = rng_from_seed(7018);
    let mut model = fix.resnet.clone_net();
    let before = model.param_count();
    let s1 = StrategySpec::Ns { ft_epochs: 0.2, ratio: 0.2, max_prune: 0.7 };
    let s2 = StrategySpec::Sfp { ratio: 0.2, bp_epochs: 0.2, update_freq: 1 };
    apply_strategy(&s1, &mut model, &fix.train_set, &cfg(), &mut rng);
    let mid = model.param_count();
    apply_strategy(&s2, &mut model, &fix.train_set, &cfg(), &mut rng);
    let after = model.param_count();
    assert!(mid < before);
    assert!(after < mid);
    let m = Metrics::measure(&mut model, &fix.eval_set);
    assert!(
        m.acc > 0.4,
        "compound compression collapsed accuracy to {} (baseline {})",
        m.acc,
        fix.resnet_acc
    );
}
