//! The parallel execution layer's determinism contract: every kernel and
//! every training step produces bitwise-identical results at any thread
//! count, and the 1-thread path reproduces the pre-parallel serial
//! kernels exactly.

use automc_tensor::nn::{BatchNorm2d, Conv2d, GlobalAvgPool, Layer, Linear, MaxPool2, Relu};
use automc_tensor::optim::{Adam, AdamConfig, Optimizer};
use automc_tensor::par::with_threads;
use automc_tensor::{loss, matmul, matmul_a_bt, matmul_at_b, rng_from_seed, Tensor};

/// Reference implementation of the pre-parallel serial `matmul` (`ikj`
/// loop order), copied from the kernel as it stood before the execution
/// layer landed. The parallel kernel at one thread must match it bitwise.
fn reference_matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, ka) = (a.dims()[0], a.dims()[1]);
    let n = b.dims()[1];
    let mut c = Tensor::zeros(&[m, n]);
    let (ad, bd, cd) = (a.data(), b.data(), c.data_mut());
    for i in 0..m {
        let a_row = &ad[i * ka..(i + 1) * ka];
        let c_row = &mut cd[i * n..(i + 1) * n];
        for (p, &apk) in a_row.iter().enumerate() {
            let b_row = &bd[p * n..(p + 1) * n];
            for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                *cv += apk * bv;
            }
        }
    }
    c
}

/// Reference pre-parallel `matmul_at_b` (row-scatter order).
fn reference_matmul_at_b(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let n = b.dims()[1];
    let mut c = Tensor::zeros(&[k, n]);
    let (ad, bd, cd) = (a.data(), b.data(), c.data_mut());
    for i in 0..m {
        let a_row = &ad[i * k..(i + 1) * k];
        let b_row = &bd[i * n..(i + 1) * n];
        for (p, &apv) in a_row.iter().enumerate() {
            let c_row = &mut cd[p * n..(p + 1) * n];
            for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                *cv += apv * bv;
            }
        }
    }
    c
}

/// Reference `matmul_a_bt`: per-element dot products in the kernel's
/// documented fixed order — four lane-strided accumulators (lane `l` sums
/// elements `l, l+4, …`), combined as `(l0+l1)+(l2+l3)`, then the `n % 4`
/// tail added in ascending order. The kernel numerics moved from a single
/// serial accumulator to this order when the packed microkernels landed
/// (`KERNEL_NUMERICS_VERSION` 3); the 1-thread kernel must match this
/// spelled-out form bitwise.
fn reference_matmul_a_bt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, n) = (a.dims()[0], a.dims()[1]);
    let k = b.dims()[0];
    let mut c = Tensor::zeros(&[m, k]);
    let (ad, bd, cd) = (a.data(), b.data(), c.data_mut());
    for i in 0..m {
        let a_row = &ad[i * n..(i + 1) * n];
        let c_row = &mut cd[i * k..(i + 1) * k];
        for (j, cv) in c_row.iter_mut().enumerate() {
            let b_row = &bd[j * n..(j + 1) * n];
            let mut lanes = [0.0f32; 4];
            for t in 0..n / 4 {
                for l in 0..4 {
                    lanes[l] += a_row[4 * t + l] * b_row[4 * t + l];
                }
            }
            let mut acc = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
            for p in n / 4 * 4..n {
                acc += a_row[p] * b_row[p];
            }
            *cv = acc;
        }
    }
    c
}

const THREAD_COUNTS: [usize; 3] = [2, 3, 8];

#[test]
fn one_thread_matches_pre_parallel_serial_kernels() {
    let mut rng = rng_from_seed(0xD0);
    // Large enough that the parallel path *would* dispatch to the pool —
    // at one thread it must still take the serial route and match the
    // historical kernels bitwise.
    let a = Tensor::randn(&[96, 64], 1.0, &mut rng);
    let b = Tensor::randn(&[64, 80], 1.0, &mut rng);
    let b_tall = Tensor::randn(&[96, 80], 1.0, &mut rng);
    let bt = Tensor::randn(&[80, 64], 1.0, &mut rng);
    with_threads(1, || {
        assert_eq!(matmul(&a, &b).data(), reference_matmul(&a, &b).data());
        assert_eq!(
            matmul_at_b(&a, &b_tall).data(),
            reference_matmul_at_b(&a, &b_tall).data()
        );
        assert_eq!(
            matmul_a_bt(&a, &bt).data(),
            reference_matmul_a_bt(&a, &bt).data()
        );
    });
}

#[test]
fn matmul_kernels_bitwise_identical_at_any_thread_count() {
    let mut rng = rng_from_seed(0xD1);
    let a = Tensor::randn(&[96, 64], 1.0, &mut rng);
    let b = Tensor::randn(&[64, 80], 1.0, &mut rng);
    let b_tall = Tensor::randn(&[96, 80], 1.0, &mut rng);
    let bt = Tensor::randn(&[80, 64], 1.0, &mut rng);
    let serial = with_threads(1, || {
        (matmul(&a, &b), matmul_at_b(&a, &b_tall), matmul_a_bt(&a, &bt))
    });
    for threads in THREAD_COUNTS {
        let par = with_threads(threads, || {
            (matmul(&a, &b), matmul_at_b(&a, &b_tall), matmul_a_bt(&a, &bt))
        });
        assert_eq!(serial.0.data(), par.0.data(), "matmul at {threads} threads");
        assert_eq!(serial.1.data(), par.1.data(), "matmul_at_b at {threads} threads");
        assert_eq!(serial.2.data(), par.2.data(), "matmul_a_bt at {threads} threads");
    }
}

#[test]
fn conv_forward_backward_bitwise_identical_at_any_thread_count() {
    let run = |threads: usize| {
        with_threads(threads, || {
            let mut rng = rng_from_seed(0xD2);
            let mut conv = Conv2d::new(3, 8, 3, 3, 1, 1, true, &mut rng);
            let x = Tensor::randn(&[6, 3, 10, 10], 1.0, &mut rng);
            let y = conv.forward(&x, true);
            let g = Tensor::randn(y.dims(), 1.0, &mut rng);
            let gx = conv.backward(&g);
            (y, gx)
        })
    };
    let (y1, gx1) = run(1);
    for threads in THREAD_COUNTS {
        let (y, gx) = run(threads);
        assert_eq!(y1.data(), y.data(), "conv forward at {threads} threads");
        assert_eq!(gx1.data(), gx.data(), "conv backward at {threads} threads");
    }
}

/// Run a few optimisation steps of a small conv net (every parallelised
/// layer in the stack) and return a flat snapshot of all parameters.
fn train_steps(threads: usize) -> Vec<f32> {
    with_threads(threads, || {
        let mut rng = rng_from_seed(0xD3);
        let mut conv = Conv2d::new(3, 8, 3, 3, 1, 1, true, &mut rng);
        let mut bn = BatchNorm2d::new(8);
        let mut relu = Relu::new();
        let mut pool = MaxPool2::new();
        let mut gap = GlobalAvgPool::new();
        let mut fc = Linear::new(8, 4, &mut rng);
        let mut opt = Adam::new(AdamConfig::default());
        let x = Tensor::randn(&[6, 3, 8, 8], 1.0, &mut rng);
        let labels = vec![0usize, 1, 2, 3, 0, 1];
        for _ in 0..3 {
            let h = conv.forward(&x, true);
            let h = bn.forward(&h, true);
            let h = relu.forward(&h, true);
            let h = pool.forward(&h, true);
            let h = gap.forward(&h, true);
            let logits = fc.forward(&h, true);
            let (_, grad) = loss::softmax_cross_entropy(&logits, &labels);
            let g = fc.backward(&grad);
            let g = gap.backward(&g);
            let g = pool.backward(&g);
            let g = relu.backward(&g);
            let g = bn.backward(&g);
            conv.backward(&g);
            let mut params = conv.params_mut();
            params.extend(bn.params_mut());
            params.extend(fc.params_mut());
            opt.step(&mut params);
        }
        let mut snapshot = Vec::new();
        let mut params = conv.params_mut();
        params.extend(bn.params_mut());
        params.extend(fc.params_mut());
        for p in &params {
            snapshot.extend_from_slice(p.value.data());
        }
        snapshot
    })
}

#[test]
fn full_train_step_bitwise_identical_at_any_thread_count() {
    let serial = train_steps(1);
    assert!(serial.iter().all(|v| v.is_finite()));
    for threads in THREAD_COUNTS {
        assert_eq!(serial, train_steps(threads), "diverged at {threads} threads");
    }
}
