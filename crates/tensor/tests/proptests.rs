//! Randomised tests of the tensor kernels' algebraic invariants.
//!
//! Seeded loops rather than a property-testing framework: each case draws
//! fresh inputs from a per-iteration seed, so failures reproduce exactly
//! by seed and the suite needs no external dependencies.

use automc_tensor::{
    col2im, im2col, loss, matmul, matmul_a_bt, matmul_at_b, rng_from_seed, Tensor,
};
use rand::Rng as _;

const CASES: u64 = 64;

fn small_vec(len: usize, rng: &mut automc_tensor::Rng) -> Vec<f32> {
    (0..len).map(|_| rng.gen_range(-3.0f32..3.0)).collect()
}

fn close(a: f32, b: f32, tol: f32) -> bool {
    (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
}

#[test]
fn add_commutes() {
    for case in 0..CASES {
        let mut rng = rng_from_seed(0x11_000 + case);
        let a = Tensor::from_slice(&[3, 4], &small_vec(12, &mut rng));
        let b = Tensor::from_slice(&[3, 4], &small_vec(12, &mut rng));
        assert_eq!(a.add(&b), b.add(&a), "case {case}");
    }
}

#[test]
fn scale_distributes_over_add() {
    for case in 0..CASES {
        let mut rng = rng_from_seed(0x12_000 + case);
        let a = Tensor::from_slice(&[8], &small_vec(8, &mut rng));
        let b = Tensor::from_slice(&[8], &small_vec(8, &mut rng));
        let k = rng.gen_range(-2.0f32..2.0);
        let lhs = a.add(&b).scale(k);
        let rhs = a.scale(k).add(&b.scale(k));
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            assert!(close(*x, *y, 1e-4), "case {case}: {x} vs {y}");
        }
    }
}

#[test]
fn matmul_identity() {
    for case in 0..CASES {
        let mut rng = rng_from_seed(0x13_000 + case);
        let a = Tensor::from_slice(&[4, 4], &small_vec(16, &mut rng));
        let mut eye = Tensor::zeros(&[4, 4]);
        for i in 0..4 {
            *eye.at_mut(&[i, i]) = 1.0;
        }
        let prod = matmul(&a, &eye);
        for (x, y) in prod.data().iter().zip(a.data()) {
            assert!(close(*x, *y, 1e-5), "case {case}");
        }
    }
}

#[test]
fn transpose_variants_agree() {
    // matmul_at_b(A, B) == matmul(Aᵀ, B) and matmul_a_bt(A, B) == matmul(A, Bᵀ)
    for case in 0..CASES {
        let mut rng = rng_from_seed(0x14_000 + case);
        let a = Tensor::from_slice(&[4, 3], &small_vec(12, &mut rng));
        let db = small_vec(20, &mut rng);
        let b = Tensor::from_slice(&[4, 5], &db);
        let v1 = matmul_at_b(&a, &b);
        let v2 = matmul(&a.transpose2(), &b);
        for (x, y) in v1.data().iter().zip(v2.data()) {
            assert!(close(*x, *y, 1e-4), "case {case}");
        }
        let c = Tensor::from_slice(&[5, 4], &db);
        let w1 = matmul_a_bt(&a.transpose2(), &c);
        let w2 = matmul(&a.transpose2(), &c.transpose2());
        for (x, y) in w1.data().iter().zip(w2.data()) {
            assert!(close(*x, *y, 1e-4), "case {case}");
        }
    }
}

#[test]
fn im2col_col2im_adjoint() {
    // <im2col(x), y> == <x, col2im(y)> — the property conv backward needs.
    for case in 0..CASES {
        let mut rng = rng_from_seed(0x15_000 + case);
        let x = Tensor::from_slice(&[2, 5, 5], &small_vec(2 * 5 * 5, &mut rng));
        let cols = im2col(&x, 3, 3, 1, 1);
        let col_probe = small_vec(2 * 9 * 25, &mut rng);
        assert_eq!(cols.numel(), col_probe.len());
        let y = Tensor::from_slice(cols.dims(), &col_probe);
        let lhs: f32 = cols.data().iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let back = col2im(&y, &[2, 5, 5], 3, 3, 1, 1);
        let rhs: f32 = x.data().iter().zip(back.data()).map(|(a, b)| a * b).sum();
        assert!(close(lhs, rhs, 1e-3), "case {case}: {lhs} vs {rhs}");
    }
}

#[test]
fn softmax_is_a_distribution() {
    for case in 0..CASES {
        let mut rng = rng_from_seed(0x16_000 + case);
        let x = Tensor::from_slice(&[3, 7], &small_vec(3 * 7, &mut rng));
        let p = loss::softmax(&x);
        for i in 0..3 {
            let s: f32 = p.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-4, "case {case}: row {i} sums to {s}");
            assert!(p.row(i).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }
}

#[test]
fn cross_entropy_nonnegative() {
    for case in 0..CASES {
        let mut rng = rng_from_seed(0x17_000 + case);
        let x = Tensor::from_slice(&[4, 5], &small_vec(4 * 5, &mut rng));
        let labels: Vec<usize> = (0..4).map(|_| rng.gen_range(0usize..5)).collect();
        let (l, grad) = loss::softmax_cross_entropy(&x, &labels);
        assert!(l >= 0.0, "case {case}");
        // Gradient rows sum to ~0 (softmax minus one-hot).
        for i in 0..4 {
            let s: f32 = grad.row(i).iter().sum();
            assert!(s.abs() < 1e-4, "case {case}: row {i} sums to {s}");
        }
    }
}

#[test]
fn kd_loss_nonnegative() {
    for case in 0..CASES {
        let mut rng = rng_from_seed(0x18_000 + case);
        let s = Tensor::from_slice(&[2, 6], &small_vec(2 * 6, &mut rng));
        let te = Tensor::from_slice(&[2, 6], &small_vec(2 * 6, &mut rng));
        let t = rng.gen_range(1.0f32..10.0);
        let (l, _) = loss::distillation_kl(&s, &te, t);
        assert!(l >= -1e-5, "case {case}: KL must be ≥ 0, got {l}");
    }
}

#[test]
fn svd_reconstruction_never_worse_with_higher_rank() {
    for case in 0..CASES {
        let mut rng = rng_from_seed(0x19_000 + case);
        let a = Tensor::from_slice(&[6, 8], &small_vec(6 * 8, &mut rng));
        let err_at = |r: usize| {
            let (l, rt) = automc_tensor::linalg::low_rank_factors(&a, r);
            automc_tensor::linalg::relative_error(&a, &matmul(&l, &rt))
        };
        let e2 = err_at(2);
        let e6 = err_at(6);
        assert!(e6 <= e2 + 1e-3, "case {case}: rank 6 err {e6} > rank 2 err {e2}");
    }
}
