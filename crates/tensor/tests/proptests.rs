//! Property-based tests of the tensor kernels' algebraic invariants.

use automc_tensor::{col2im, im2col, loss, matmul, matmul_a_bt, matmul_at_b, Tensor};
use proptest::prelude::*;

fn small_vec(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-3.0f32..3.0, len)
}

fn close(a: f32, b: f32, tol: f32) -> bool {
    (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn add_commutes(data_a in small_vec(12), data_b in small_vec(12)) {
        let a = Tensor::from_slice(&[3, 4], &data_a);
        let b = Tensor::from_slice(&[3, 4], &data_b);
        prop_assert_eq!(a.add(&b), b.add(&a));
    }

    #[test]
    fn scale_distributes_over_add(data_a in small_vec(8), data_b in small_vec(8), k in -2.0f32..2.0) {
        let a = Tensor::from_slice(&[8], &data_a);
        let b = Tensor::from_slice(&[8], &data_b);
        let lhs = a.add(&b).scale(k);
        let rhs = a.scale(k).add(&b.scale(k));
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!(close(*x, *y, 1e-4), "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_identity(data in small_vec(16)) {
        let a = Tensor::from_slice(&[4, 4], &data);
        let mut eye = Tensor::zeros(&[4, 4]);
        for i in 0..4 { *eye.at_mut(&[i, i]) = 1.0; }
        let prod = matmul(&a, &eye);
        for (x, y) in prod.data().iter().zip(a.data()) {
            prop_assert!(close(*x, *y, 1e-5));
        }
    }

    #[test]
    fn transpose_variants_agree(da in small_vec(12), db in small_vec(20)) {
        // matmul_at_b(A, B) == matmul(Aᵀ, B) and matmul_a_bt(A, B) == matmul(A, Bᵀ)
        let a = Tensor::from_slice(&[4, 3], &da);
        let b = Tensor::from_slice(&[4, 5], &db);
        let v1 = matmul_at_b(&a, &b);
        let v2 = matmul(&a.transpose2(), &b);
        for (x, y) in v1.data().iter().zip(v2.data()) {
            prop_assert!(close(*x, *y, 1e-4));
        }
        let c = Tensor::from_slice(&[5, 4], &db);
        let w1 = matmul_a_bt(&a.transpose2(), &c);
        let w2 = matmul(&a.transpose2(), &c.transpose2());
        for (x, y) in w1.data().iter().zip(w2.data()) {
            prop_assert!(close(*x, *y, 1e-4));
        }
    }

    #[test]
    fn im2col_col2im_adjoint(img_data in small_vec(2 * 5 * 5), col_probe in small_vec(2 * 9 * 25)) {
        // <im2col(x), y> == <x, col2im(y)> — the property conv backward needs.
        let x = Tensor::from_slice(&[2, 5, 5], &img_data);
        let cols = im2col(&x, 3, 3, 1, 1);
        prop_assert_eq!(cols.numel(), col_probe.len());
        let y = Tensor::from_slice(cols.dims(), &col_probe);
        let lhs: f32 = cols.data().iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let back = col2im(&y, &[2, 5, 5], 3, 3, 1, 1);
        let rhs: f32 = x.data().iter().zip(back.data()).map(|(a, b)| a * b).sum();
        prop_assert!(close(lhs, rhs, 1e-3), "{lhs} vs {rhs}");
    }

    #[test]
    fn softmax_is_a_distribution(data in small_vec(3 * 7)) {
        let x = Tensor::from_slice(&[3, 7], &data);
        let p = loss::softmax(&x);
        for i in 0..3 {
            let s: f32 = p.row(i).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-4);
            prop_assert!(p.row(i).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn cross_entropy_nonnegative(data in small_vec(4 * 5), labels in proptest::collection::vec(0usize..5, 4)) {
        let x = Tensor::from_slice(&[4, 5], &data);
        let (l, grad) = loss::softmax_cross_entropy(&x, &labels);
        prop_assert!(l >= 0.0);
        // Gradient rows sum to ~0 (softmax minus one-hot).
        for i in 0..4 {
            let s: f32 = grad.row(i).iter().sum();
            prop_assert!(s.abs() < 1e-4, "row {i} sums to {s}");
        }
    }

    #[test]
    fn kd_loss_nonnegative(ds in small_vec(2 * 6), dt in small_vec(2 * 6), t in 1.0f32..10.0) {
        let s = Tensor::from_slice(&[2, 6], &ds);
        let te = Tensor::from_slice(&[2, 6], &dt);
        let (l, _) = loss::distillation_kl(&s, &te, t);
        prop_assert!(l >= -1e-5, "KL must be ≥ 0, got {l}");
    }

    #[test]
    fn svd_reconstruction_never_worse_with_higher_rank(data in small_vec(6 * 8)) {
        let a = Tensor::from_slice(&[6, 8], &data);
        let err_at = |r: usize| {
            let (l, rt) = automc_tensor::linalg::low_rank_factors(&a, r);
            automc_tensor::linalg::relative_error(&a, &matmul(&l, &rt))
        };
        let e2 = err_at(2);
        let e6 = err_at(6);
        prop_assert!(e6 <= e2 + 1e-3, "rank 6 err {e6} > rank 2 err {e2}");
    }
}
