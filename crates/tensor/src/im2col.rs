//! im2col / col2im lowering for convolution.
//!
//! Convolution forward becomes one matmul per batch item:
//! `out[oc, oh*ow] = W[oc, ic*kh*kw] · cols[ic*kh*kw, oh*ow]`,
//! and the backward pass reuses the same buffers via [`col2im`].

use crate::Tensor;

/// Spatial geometry of a convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ConvGeom {
    pub in_c: usize,
    pub in_h: usize,
    pub in_w: usize,
    pub kh: usize,
    pub kw: usize,
    pub stride: usize,
    pub pad: usize,
}

impl ConvGeom {
    #[inline]
    pub fn out_h(&self) -> usize {
        (self.in_h + 2 * self.pad - self.kh) / self.stride + 1
    }

    #[inline]
    pub fn out_w(&self) -> usize {
        (self.in_w + 2 * self.pad - self.kw) / self.stride + 1
    }
}

/// Lower one image `[C, H, W]` into a `[C*kh*kw, oh*ow]` column matrix.
///
/// `img` must have length `C*H*W`; `cols` is overwritten.
pub(crate) fn im2col_into(img: &[f32], g: ConvGeom, cols: &mut [f32]) {
    let (oh, ow) = (g.out_h(), g.out_w());
    let cols_w = oh * ow;
    debug_assert_eq!(cols.len(), g.in_c * g.kh * g.kw * cols_w);
    let mut row = 0usize;
    for c in 0..g.in_c {
        let plane = &img[c * g.in_h * g.in_w..(c + 1) * g.in_h * g.in_w];
        for ky in 0..g.kh {
            for kx in 0..g.kw {
                let dst = &mut cols[row * cols_w..(row + 1) * cols_w];
                let mut idx = 0usize;
                for oy in 0..oh {
                    let iy = (oy * g.stride + ky) as isize - g.pad as isize;
                    if iy < 0 || iy >= g.in_h as isize {
                        dst[idx..idx + ow].fill(0.0);
                        idx += ow;
                        continue;
                    }
                    let src_row = &plane[iy as usize * g.in_w..(iy as usize + 1) * g.in_w];
                    for ox in 0..ow {
                        let ix = (ox * g.stride + kx) as isize - g.pad as isize;
                        dst[idx] = if ix < 0 || ix >= g.in_w as isize {
                            0.0
                        } else {
                            src_row[ix as usize]
                        };
                        idx += 1;
                    }
                }
                row += 1;
            }
        }
    }
}

/// Scatter-add a `[C*kh*kw, oh*ow]` column-gradient matrix back into an
/// image gradient `[C, H, W]` (the adjoint of [`im2col_into`]).
pub(crate) fn col2im_into(cols: &[f32], g: ConvGeom, img: &mut [f32]) {
    let (oh, ow) = (g.out_h(), g.out_w());
    let cols_w = oh * ow;
    debug_assert_eq!(cols.len(), g.in_c * g.kh * g.kw * cols_w);
    debug_assert_eq!(img.len(), g.in_c * g.in_h * g.in_w);
    img.fill(0.0);
    let mut row = 0usize;
    for c in 0..g.in_c {
        let plane = &mut img[c * g.in_h * g.in_w..(c + 1) * g.in_h * g.in_w];
        for ky in 0..g.kh {
            for kx in 0..g.kw {
                let src = &cols[row * cols_w..(row + 1) * cols_w];
                let mut idx = 0usize;
                for oy in 0..oh {
                    let iy = (oy * g.stride + ky) as isize - g.pad as isize;
                    if iy < 0 || iy >= g.in_h as isize {
                        idx += ow;
                        continue;
                    }
                    let dst_row =
                        &mut plane[iy as usize * g.in_w..(iy as usize + 1) * g.in_w];
                    for ox in 0..ow {
                        let ix = (ox * g.stride + kx) as isize - g.pad as isize;
                        if ix >= 0 && ix < g.in_w as isize {
                            dst_row[ix as usize] += src[idx];
                        }
                        idx += 1;
                    }
                }
                row += 1;
            }
        }
    }
}

/// Public convenience: lower a single `[C, H, W]` tensor to columns.
pub fn im2col(img: &Tensor, kh: usize, kw: usize, stride: usize, pad: usize) -> Tensor {
    let d = img.dims();
    debug_assert_eq!(d.len(), 3, "im2col expects [C, H, W]");
    let g = ConvGeom { in_c: d[0], in_h: d[1], in_w: d[2], kh, kw, stride, pad };
    let mut cols = Tensor::zeros(&[d[0] * kh * kw, g.out_h() * g.out_w()]);
    im2col_into(img.data(), g, cols.data_mut());
    cols
}

/// Public convenience: the adjoint of [`im2col`].
pub fn col2im(
    cols: &Tensor,
    in_dims: &[usize],
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
) -> Tensor {
    debug_assert_eq!(in_dims.len(), 3, "col2im expects [C, H, W] target dims");
    let g = ConvGeom {
        in_c: in_dims[0],
        in_h: in_dims[1],
        in_w: in_dims[2],
        kh,
        kw,
        stride,
        pad,
    };
    let mut img = Tensor::zeros(in_dims);
    col2im_into(cols.data(), g, img.data_mut());
    img
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng_from_seed;

    #[test]
    fn geometry() {
        let g = ConvGeom { in_c: 1, in_h: 8, in_w: 8, kh: 3, kw: 3, stride: 1, pad: 1 };
        assert_eq!((g.out_h(), g.out_w()), (8, 8));
        let g2 = ConvGeom { stride: 2, ..g };
        assert_eq!((g2.out_h(), g2.out_w()), (4, 4));
        let g3 = ConvGeom { kh: 1, kw: 1, pad: 0, ..g };
        assert_eq!((g3.out_h(), g3.out_w()), (8, 8));
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1x1 kernel, no pad: cols equals the flattened image.
        let img = Tensor::from_slice(&[1, 2, 2], &[1., 2., 3., 4.]);
        let cols = im2col(&img, 1, 1, 1, 0);
        assert_eq!(cols.dims(), &[1, 4]);
        assert_eq!(cols.data(), img.data());
    }

    #[test]
    fn im2col_3x3_center_row_is_image() {
        // With 3x3 kernel pad 1 stride 1, the center row (ky=1, kx=1) of the
        // column matrix reproduces the image exactly.
        let mut rng = rng_from_seed(8);
        let img = Tensor::randn(&[2, 4, 4], 1.0, &mut rng);
        let cols = im2col(&img, 3, 3, 1, 1);
        assert_eq!(cols.dims(), &[2 * 9, 16]);
        for c in 0..2 {
            let center = cols.row(c * 9 + 4);
            let plane = &img.data()[c * 16..(c + 1) * 16];
            assert_eq!(center, plane);
        }
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
        // property the backward pass relies on.
        let mut rng = rng_from_seed(9);
        let x = Tensor::randn(&[3, 6, 6], 1.0, &mut rng);
        let cols_shape_probe = im2col(&x, 3, 3, 2, 1);
        let y = Tensor::randn(cols_shape_probe.dims(), 1.0, &mut rng);
        let lhs: f32 = cols_shape_probe
            .data()
            .iter()
            .zip(y.data())
            .map(|(a, b)| a * b)
            .sum();
        let back = col2im(&y, &[3, 6, 6], 3, 3, 2, 1);
        let rhs: f32 = x.data().iter().zip(back.data()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }
}
