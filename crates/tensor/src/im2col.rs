//! im2col / col2im lowering for convolution.
//!
//! Convolution forward becomes one matmul per batch item:
//! `out[oc, oh*ow] = W[oc, ic*kh*kw] · cols[ic*kh*kw, oh*ow]`,
//! and the backward pass reuses the same buffers via [`col2im`].

use crate::Tensor;

/// Spatial geometry of a convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ConvGeom {
    pub in_c: usize,
    pub in_h: usize,
    pub in_w: usize,
    pub kh: usize,
    pub kw: usize,
    pub stride: usize,
    pub pad: usize,
}

impl ConvGeom {
    #[inline]
    pub fn out_h(&self) -> usize {
        (self.in_h + 2 * self.pad - self.kh) / self.stride + 1
    }

    #[inline]
    pub fn out_w(&self) -> usize {
        (self.in_w + 2 * self.pad - self.kw) / self.stride + 1
    }
}

/// Lower one image `[C, H, W]` into a `[C*kh*kw, oh*ow]` column matrix.
///
/// `img` must have length `C*H*W`; `cols` is overwritten.
pub(crate) fn im2col_into(img: &[f32], g: ConvGeom, cols: &mut [f32]) {
    let (oh, ow) = (g.out_h(), g.out_w());
    let cols_w = oh * ow;
    debug_assert_eq!(cols.len(), g.in_c * g.kh * g.kw * cols_w);
    let mut row = 0usize;
    for c in 0..g.in_c {
        let plane = &img[c * g.in_h * g.in_w..(c + 1) * g.in_h * g.in_w];
        for ky in 0..g.kh {
            for kx in 0..g.kw {
                let dst = &mut cols[row * cols_w..(row + 1) * cols_w];
                let mut idx = 0usize;
                for oy in 0..oh {
                    let iy = (oy * g.stride + ky) as isize - g.pad as isize;
                    if iy < 0 || iy >= g.in_h as isize {
                        dst[idx..idx + ow].fill(0.0);
                        idx += ow;
                        continue;
                    }
                    let src_row = &plane[iy as usize * g.in_w..(iy as usize + 1) * g.in_w];
                    for ox in 0..ow {
                        let ix = (ox * g.stride + kx) as isize - g.pad as isize;
                        dst[idx] = if ix < 0 || ix >= g.in_w as isize {
                            0.0
                        } else {
                            src_row[ix as usize]
                        };
                        idx += 1;
                    }
                }
                row += 1;
            }
        }
    }
}

/// Scatter-add a `[C*kh*kw, oh*ow]` column-gradient matrix back into an
/// image gradient `[C, H, W]` (the adjoint of [`im2col_into`]).
pub(crate) fn col2im_into(cols: &[f32], g: ConvGeom, img: &mut [f32]) {
    let (oh, ow) = (g.out_h(), g.out_w());
    let cols_w = oh * ow;
    debug_assert_eq!(cols.len(), g.in_c * g.kh * g.kw * cols_w);
    debug_assert_eq!(img.len(), g.in_c * g.in_h * g.in_w);
    img.fill(0.0);
    let mut row = 0usize;
    for c in 0..g.in_c {
        let plane = &mut img[c * g.in_h * g.in_w..(c + 1) * g.in_h * g.in_w];
        for ky in 0..g.kh {
            for kx in 0..g.kw {
                let src = &cols[row * cols_w..(row + 1) * cols_w];
                let mut idx = 0usize;
                for oy in 0..oh {
                    let iy = (oy * g.stride + ky) as isize - g.pad as isize;
                    if iy < 0 || iy >= g.in_h as isize {
                        idx += ow;
                        continue;
                    }
                    let dst_row =
                        &mut plane[iy as usize * g.in_w..(iy as usize + 1) * g.in_w];
                    for ox in 0..ow {
                        let ix = (ox * g.stride + kx) as isize - g.pad as isize;
                        if ix >= 0 && ix < g.in_w as isize {
                            dst_row[ix as usize] += src[idx];
                        }
                        idx += 1;
                    }
                }
                row += 1;
            }
        }
    }
}

/// Public convenience: lower a single `[C, H, W]` tensor to columns.
pub fn im2col(img: &Tensor, kh: usize, kw: usize, stride: usize, pad: usize) -> Tensor {
    let d = img.dims();
    debug_assert_eq!(d.len(), 3, "im2col expects [C, H, W]");
    let g = ConvGeom { in_c: d[0], in_h: d[1], in_w: d[2], kh, kw, stride, pad };
    let mut cols = Tensor::zeros(&[d[0] * kh * kw, g.out_h() * g.out_w()]);
    im2col_into(img.data(), g, cols.data_mut());
    cols
}

/// Public convenience: the adjoint of [`im2col`].
pub fn col2im(
    cols: &Tensor,
    in_dims: &[usize],
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
) -> Tensor {
    debug_assert_eq!(in_dims.len(), 3, "col2im expects [C, H, W] target dims");
    let g = ConvGeom {
        in_c: in_dims[0],
        in_h: in_dims[1],
        in_w: in_dims[2],
        kh,
        kw,
        stride,
        pad,
    };
    let mut img = Tensor::zeros(in_dims);
    col2im_into(cols.data(), g, img.data_mut());
    img
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng_from_seed;

    #[test]
    fn geometry() {
        let g = ConvGeom { in_c: 1, in_h: 8, in_w: 8, kh: 3, kw: 3, stride: 1, pad: 1 };
        assert_eq!((g.out_h(), g.out_w()), (8, 8));
        let g2 = ConvGeom { stride: 2, ..g };
        assert_eq!((g2.out_h(), g2.out_w()), (4, 4));
        let g3 = ConvGeom { kh: 1, kw: 1, pad: 0, ..g };
        assert_eq!((g3.out_h(), g3.out_w()), (8, 8));
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1x1 kernel, no pad: cols equals the flattened image.
        let img = Tensor::from_slice(&[1, 2, 2], &[1., 2., 3., 4.]);
        let cols = im2col(&img, 1, 1, 1, 0);
        assert_eq!(cols.dims(), &[1, 4]);
        assert_eq!(cols.data(), img.data());
    }

    #[test]
    fn im2col_3x3_center_row_is_image() {
        // With 3x3 kernel pad 1 stride 1, the center row (ky=1, kx=1) of the
        // column matrix reproduces the image exactly.
        let mut rng = rng_from_seed(8);
        let img = Tensor::randn(&[2, 4, 4], 1.0, &mut rng);
        let cols = im2col(&img, 3, 3, 1, 1);
        assert_eq!(cols.dims(), &[2 * 9, 16]);
        for c in 0..2 {
            let center = cols.row(c * 9 + 4);
            let plane = &img.data()[c * 16..(c + 1) * 16];
            assert_eq!(center, plane);
        }
    }

    /// Brute-force im2col by the defining index formula, for checking the
    /// strided/windowed production code on awkward geometries.
    fn im2col_reference(img: &Tensor, g: ConvGeom) -> Vec<f32> {
        let (oh, ow) = (g.out_h(), g.out_w());
        let mut cols = vec![0.0f32; g.in_c * g.kh * g.kw * oh * ow];
        for c in 0..g.in_c {
            for ky in 0..g.kh {
                for kx in 0..g.kw {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let iy = (oy * g.stride + ky) as isize - g.pad as isize;
                            let ix = (ox * g.stride + kx) as isize - g.pad as isize;
                            let row = (c * g.kh + ky) * g.kw + kx;
                            let v = if iy >= 0
                                && iy < g.in_h as isize
                                && ix >= 0
                                && ix < g.in_w as isize
                            {
                                img.data()[(c * g.in_h + iy as usize) * g.in_w + ix as usize]
                            } else {
                                0.0
                            };
                            cols[row * oh * ow + oy * ow + ox] = v;
                        }
                    }
                }
            }
        }
        cols
    }

    /// Strided lowering with stride remainders that crop the bottom/right
    /// edge asymmetrically (`(in + 2·pad − k) % stride ≠ 0`), checked
    /// against the defining formula element by element.
    #[test]
    fn strided_asymmetric_coverage_matches_reference() {
        let mut rng = rng_from_seed(20);
        for (in_h, in_w, k, stride, pad) in
            [(5, 6, 3, 2, 1), (7, 5, 3, 2, 0), (6, 9, 2, 3, 1), (8, 8, 3, 3, 2)]
        {
            let g = ConvGeom { in_c: 2, in_h, in_w, kh: k, kw: k, stride, pad };
            let img = Tensor::randn(&[2, in_h, in_w], 1.0, &mut rng);
            let cols = im2col(&img, k, k, stride, pad);
            assert_eq!(
                cols.data(),
                &im2col_reference(&img, g)[..],
                "geometry {in_h}x{in_w} k{k} s{stride} p{pad}"
            );
        }
    }

    /// Kernels larger than the (padded-in-one-direction) input extent:
    /// most of each window is zero padding, and the output still has the
    /// closed-form size.
    #[test]
    fn kernel_larger_than_input_matches_reference() {
        let mut rng = rng_from_seed(21);
        for (in_h, in_w, k, pad) in [(2, 2, 3, 1), (2, 3, 5, 2), (1, 4, 3, 1)] {
            let g = ConvGeom { in_c: 1, in_h, in_w, kh: k, kw: k, stride: 1, pad };
            let img = Tensor::randn(&[1, in_h, in_w], 1.0, &mut rng);
            let cols = im2col(&img, k, k, 1, pad);
            assert_eq!(cols.dims()[1], g.out_h() * g.out_w());
            assert_eq!(
                cols.data(),
                &im2col_reference(&img, g)[..],
                "geometry {in_h}x{in_w} k{k} p{pad}"
            );
        }
    }

    /// Round-trip property: `col2im(im2col(x))` equals `x` weighted by how
    /// many sliding windows cover each pixel. The overlap counts are
    /// obtained by round-tripping an all-ones image; integer-valued test
    /// data keeps every float addition exact, so the check is `==`.
    #[test]
    fn col2im_im2col_roundtrip_is_overlap_weighted_input() {
        let mut rng = rng_from_seed(22);
        for (in_h, in_w, k, stride, pad) in
            [(6, 6, 3, 1, 1), (5, 7, 3, 2, 1), (4, 4, 2, 2, 0), (2, 2, 3, 1, 1), (6, 5, 3, 3, 2)]
        {
            let dims = [2usize, in_h, in_w];
            // Small integers: exact under f32 addition and multiplication.
            let x = Tensor::randn(&[2, in_h, in_w], 1.0, &mut rng)
                .map(|v| (v * 4.0).round().clamp(-8.0, 8.0));
            let counts = col2im(
                &im2col(&Tensor::ones(&dims), k, k, stride, pad),
                &dims,
                k,
                k,
                stride,
                pad,
            );
            let round = col2im(&im2col(&x, k, k, stride, pad), &dims, k, k, stride, pad);
            for i in 0..x.numel() {
                assert_eq!(
                    round.data()[i],
                    counts.data()[i] * x.data()[i],
                    "pixel {i} of {in_h}x{in_w} k{k} s{stride} p{pad}"
                );
            }
            // Interior pixels of a stride-1 lowering are covered by all
            // k² windows; sanity-check the counts themselves.
            if stride == 1 && pad == 1 && k == 3 && in_h > 2 && in_w > 2 {
                assert_eq!(counts.data()[(in_h / 2) * in_w + in_w / 2], (k * k) as f32);
            }
        }
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
        // property the backward pass relies on.
        let mut rng = rng_from_seed(9);
        let x = Tensor::randn(&[3, 6, 6], 1.0, &mut rng);
        let cols_shape_probe = im2col(&x, 3, 3, 2, 1);
        let y = Tensor::randn(cols_shape_probe.dims(), 1.0, &mut rng);
        let lhs: f32 = cols_shape_probe
            .data()
            .iter()
            .zip(y.data())
            .map(|(a, b)| a * b)
            .sum();
        let back = col2im(&y, &[3, 6, 6], 3, 3, 2, 1);
        let rhs: f32 = x.data().iter().zip(back.data()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }
}
