use std::fmt;

/// Dense row-major tensor shape.
///
/// Stored as a small inline-friendly `Vec<usize>`; tensors in this workspace
/// have rank ≤ 4 (NCHW activations, `[out, in*kh*kw]` weight matrices).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Create a shape from dims.
    pub fn new(dims: &[usize]) -> Self {
        Shape { dims: dims.to_vec() }
    }

    /// The dims slice.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of axes.
    #[inline]
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements (product of dims; 1 for rank 0).
    #[inline]
    pub fn numel(&self) -> usize {
        self.dims.iter().product()
    }

    /// Size along `axis`. Panics if out of range (debug-checked call sites).
    #[inline]
    pub fn dim(&self, axis: usize) -> usize {
        self.dims[axis]
    }

    /// Row-major strides (in elements) for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Linear offset of a multi-dimensional index.
    #[inline]
    pub fn offset(&self, index: &[usize]) -> usize {
        debug_assert_eq!(index.len(), self.dims.len());
        let mut off = 0;
        let mut stride = 1;
        for axis in (0..self.dims.len()).rev() {
            debug_assert!(index[axis] < self.dims[axis]);
            off += index[axis] * stride;
            stride *= self.dims[axis];
        }
        off
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(&dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_rank() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.dim(1), 3);
    }

    #[test]
    fn empty_shape_is_scalar() {
        let s = Shape::new(&[]);
        assert_eq!(s.numel(), 1);
        assert_eq!(s.rank(), 0);
    }

    #[test]
    fn strides_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
    }

    #[test]
    fn offset_matches_strides() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.offset(&[0, 0, 0]), 0);
        assert_eq!(s.offset(&[1, 2, 3]), 12 + 8 + 3);
        assert_eq!(s.offset(&[1, 0, 1]), 13);
    }

    #[test]
    fn zero_dim_gives_zero_numel() {
        let s = Shape::new(&[4, 0, 2]);
        assert_eq!(s.numel(), 0);
    }
}
