use crate::{Shape, TensorError};
use rand_distr_normal::sample_standard_normal;

/// Minimal standard-normal sampling without pulling `rand_distr`:
/// Box–Muller on the workspace RNG.
mod rand_distr_normal {
    use rand::Rng;

    pub fn sample_standard_normal<R: Rng>(rng: &mut R) -> f32 {
        // Box–Muller transform; u1 in (0, 1] to avoid ln(0).
        let u1: f32 = 1.0 - rng.gen::<f32>();
        let u2: f32 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }
}

/// Dense, owned, row-major `f32` tensor.
///
/// The workhorse value type of the engine. All layer activations, weights
/// and gradients are `Tensor`s. Layout is row-major (C order); activations
/// use NCHW.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    // ---------------------------------------------------------------- ctors

    /// A tensor of zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let data = vec![0.0; shape.numel()];
        Tensor { shape, data }
    }

    /// A tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let data = vec![value; shape.numel()];
        Tensor { shape, data }
    }

    /// A tensor of ones.
    pub fn ones(dims: &[usize]) -> Self {
        Self::full(dims, 1.0)
    }

    /// Build from existing data; errors if the length disagrees with dims.
    pub fn from_vec(dims: &[usize], data: Vec<f32>) -> Result<Self, TensorError> {
        let shape = Shape::new(dims);
        if shape.numel() != data.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.numel(),
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Build from a slice (copies). Panics on length mismatch — use only
    /// with locally-constructed shapes.
    pub fn from_slice(dims: &[usize], data: &[f32]) -> Self {
        Self::from_vec(dims, data.to_vec()).expect("from_slice: length mismatch")
    }

    /// I.i.d. Gaussian entries with standard deviation `std`.
    pub fn randn<R: rand::Rng>(dims: &[usize], std: f32, rng: &mut R) -> Self {
        let shape = Shape::new(dims);
        let data = (0..shape.numel())
            .map(|_| sample_standard_normal(rng) * std)
            .collect();
        Tensor { shape, data }
    }

    /// I.i.d. uniform entries in `[lo, hi)`.
    pub fn uniform<R: rand::Rng>(dims: &[usize], lo: f32, hi: f32, rng: &mut R) -> Self {
        let shape = Shape::new(dims);
        let data = (0..shape.numel()).map(|_| rng.gen_range(lo..hi)).collect();
        Tensor { shape, data }
    }

    // ------------------------------------------------------------ accessors

    /// The tensor's shape.
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Dims slice shorthand.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Total element count.
    #[inline]
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Raw data slice.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw data slice.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the raw buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-index (debug-checked).
    #[inline]
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Mutable element at a multi-index (debug-checked).
    #[inline]
    pub fn at_mut(&mut self, index: &[usize]) -> &mut f32 {
        let off = self.shape.offset(index);
        &mut self.data[off]
    }

    // ------------------------------------------------------------- reshape

    /// Reshape in place to dims with the same volume.
    pub fn reshape(mut self, dims: &[usize]) -> Result<Self, TensorError> {
        let new_shape = Shape::new(dims);
        if new_shape.numel() != self.data.len() {
            return Err(TensorError::LengthMismatch {
                expected: new_shape.numel(),
                actual: self.data.len(),
            });
        }
        self.shape = new_shape;
        Ok(self)
    }

    // ----------------------------------------------------------- immutable

    /// Elementwise map into a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().copied().map(f).collect(),
        }
    }

    /// Elementwise binary op `self ⊕ other`; shapes must match exactly.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        debug_assert_eq!(self.shape, other.shape, "zip: shape mismatch");
        Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Elementwise addition.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a + b)
    }

    /// Elementwise subtraction.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a - b)
    }

    /// Elementwise multiplication (Hadamard).
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a * b)
    }

    /// Scale by a constant.
    pub fn scale(&self, k: f32) -> Tensor {
        self.map(|a| a * k)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for empty).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Squared L2 norm.
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum()
    }

    /// L2 norm.
    pub fn norm(&self) -> f32 {
        self.sq_norm().sqrt()
    }

    // -------------------------------------------------------------- mutable

    /// `self += other` in place.
    pub fn add_assign(&mut self, other: &Tensor) {
        debug_assert_eq!(self.shape, other.shape, "add_assign: shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self += k * other` in place (axpy).
    pub fn axpy(&mut self, k: f32, other: &Tensor) {
        debug_assert_eq!(self.shape, other.shape, "axpy: shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += k * b;
        }
    }

    /// Scale in place.
    pub fn scale_assign(&mut self, k: f32) {
        for a in &mut self.data {
            *a *= k;
        }
    }

    /// Zero all elements (reuse allocation).
    pub fn zero(&mut self) {
        self.data.fill(0.0);
    }

    // ------------------------------------------------------------ 2-D views

    /// Number of rows, treating the tensor as a 2-D matrix `[d0, rest]`.
    #[inline]
    pub fn rows(&self) -> usize {
        self.shape.dim(0)
    }

    /// Row `i` of a rank-≥1 tensor flattened as `[d0, rest]`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        let stride = self.data.len() / self.shape.dim(0).max(1);
        &self.data[i * stride..(i + 1) * stride]
    }

    /// Mutable row `i` flattened as `[d0, rest]`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        let stride = self.data.len() / self.shape.dim(0).max(1);
        &mut self.data[i * stride..(i + 1) * stride]
    }

    /// Transpose a rank-2 tensor.
    pub fn transpose2(&self) -> Tensor {
        debug_assert_eq!(self.shape.rank(), 2, "transpose2 requires rank-2");
        let (m, n) = (self.shape.dim(0), self.shape.dim(1));
        let mut out = Tensor::zeros(&[n, m]);
        for i in 0..m {
            for j in 0..n {
                out.data[j * m + i] = self.data[i * n + j];
            }
        }
        out
    }

    /// Index of the maximum element in row `i` (rank-2 logits → class).
    pub fn argmax_row(&self, i: usize) -> usize {
        let row = self.row(i);
        row.iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(idx, _)| idx)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctor_roundtrip() {
        let t = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        assert_eq!(t.at(&[1, 2]), 6.0);
        assert_eq!(t.numel(), 6);
    }

    #[test]
    fn from_vec_rejects_bad_length() {
        assert!(Tensor::from_vec(&[2, 3], vec![0.0; 5]).is_err());
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_slice(&[2, 2], &[1., 2., 3., 4.]);
        let b = Tensor::from_slice(&[2, 2], &[4., 3., 2., 1.]);
        assert_eq!(a.add(&b).data(), &[5., 5., 5., 5.]);
        assert_eq!(a.sub(&b).data(), &[-3., -1., 1., 3.]);
        assert_eq!(a.mul(&b).data(), &[4., 6., 6., 4.]);
        assert_eq!(a.scale(2.0).data(), &[2., 4., 6., 8.]);
    }

    #[test]
    fn axpy_and_norms() {
        let mut a = Tensor::from_slice(&[3], &[1., 2., 2.]);
        let b = Tensor::from_slice(&[3], &[1., 0., 0.]);
        a.axpy(2.0, &b);
        assert_eq!(a.data(), &[3., 2., 2.]);
        assert!((a.sq_norm() - 17.0).abs() < 1e-6);
    }

    #[test]
    fn transpose_is_involution() {
        let mut rng = crate::rng_from_seed(1);
        let a = Tensor::randn(&[3, 5], 1.0, &mut rng);
        let back = a.transpose2().transpose2();
        assert_eq!(a, back);
    }

    #[test]
    fn rows_and_argmax() {
        let t = Tensor::from_slice(&[2, 3], &[0.1, 0.9, 0.3, 0.5, 0.2, 0.8]);
        assert_eq!(t.argmax_row(0), 1);
        assert_eq!(t.argmax_row(1), 2);
        assert_eq!(t.row(1), &[0.5, 0.2, 0.8]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_slice(&[2, 3], &[1., 2., 3., 4., 5., 6.]);
        let r = t.clone().reshape(&[3, 2]).unwrap();
        assert_eq!(r.data(), t.data());
        assert!(t.reshape(&[4, 2]).is_err());
    }

    #[test]
    fn randn_is_deterministic_per_seed() {
        let mut r1 = crate::rng_from_seed(42);
        let mut r2 = crate::rng_from_seed(42);
        let a = Tensor::randn(&[16], 1.0, &mut r1);
        let b = Tensor::randn(&[16], 1.0, &mut r2);
        assert_eq!(a, b);
    }

    #[test]
    fn randn_moments_roughly_standard() {
        let mut rng = crate::rng_from_seed(7);
        let t = Tensor::randn(&[10_000], 1.0, &mut rng);
        assert!(t.mean().abs() < 0.05, "mean {}", t.mean());
        let var = t.sq_norm() / t.numel() as f32 - t.mean() * t.mean();
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
