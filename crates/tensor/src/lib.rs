//! # automc-tensor
//!
//! A small, self-contained CPU tensor and neural-network training engine.
//!
//! This crate is the deep-learning substrate of the AutoMC reproduction: the
//! paper's compression strategies (pruning, knowledge distillation, low-rank
//! approximation) all require *real* gradient-based training — fine-tuning a
//! pruned network, distilling into a thinner student, training with sparsity
//! regularisation. Everything here is implemented from scratch in safe Rust:
//!
//! * [`Tensor`] — an owned, dense, row-major `f32` tensor with shape/stride
//!   bookkeeping and the linear-algebra kernels the layers need (blocked
//!   matmul, im2col).
//! * [`nn`] — layers with explicit `forward`/`backward` passes (convolution,
//!   batch-norm, linear, pooling, ReLU) exposing their parameters for
//!   optimizers *and* for direct structural surgery (channel pruning,
//!   low-rank replacement) by higher-level crates.
//! * [`loss`] — softmax cross-entropy, MSE, and temperature-scaled
//!   distillation losses, each returning the gradient wrt the logits.
//! * [`optim`] — SGD with momentum/weight-decay and Adam.
//!
//! The engine is deliberately eager and layer-based (no general autograd
//! tape): compression methods need to reach *into* layers and rewrite their
//! weight matrices, which is natural when layers own their parameters.
//!
//! ## Example
//!
//! ```
//! use automc_tensor::{Tensor, nn::{Linear, Layer}, loss, optim::{Optimizer, Sgd, SgdConfig}};
//!
//! let mut rng = automc_tensor::rng_from_seed(0);
//! let mut layer = Linear::new(4, 3, &mut rng);
//! let x = Tensor::randn(&[8, 4], 1.0, &mut rng);
//! let y = layer.forward(&x, true);
//! assert_eq!(y.shape().dims(), &[8, 3]);
//! let (loss, grad) = loss::softmax_cross_entropy(&y, &[0, 1, 2, 0, 1, 2, 0, 1]);
//! assert!(loss > 0.0);
//! let _gx = layer.backward(&grad);
//! let mut sgd = Sgd::new(SgdConfig::default());
//! sgd.step(&mut layer.params_mut());
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod error;
mod im2col;
mod matmul;
mod shape;
mod tensor;

pub mod fault;
pub mod init;
pub mod linalg;
pub mod loss;
pub mod nn;
pub mod optim;
pub mod par;

pub use error::TensorError;
pub use shape::Shape;
pub use tensor::Tensor;

pub use im2col::{col2im, im2col};
pub use matmul::{matmul, matmul_at_b, matmul_a_bt};

/// Version of the kernel *numerics* — bumped whenever a kernel change can
/// alter result bits (e.g. a new accumulation order), even though results
/// stay deterministic at any thread count. Downstream fingerprints (memo
/// keys, result-cache keys, search journal tags) fold this in so cached
/// artifacts from older numerics are never mistaken for current ones.
/// History: 2 = parallel execution layer; 3 = packed/blocked microkernels
/// (`matmul_a_bt` switched to a fixed 4-lane combine order).
pub const KERNEL_NUMERICS_VERSION: u64 = 3;

/// Convenience alias for the RNG used throughout the workspace.
///
/// Every stochastic component (weight init, data generation, search) takes
/// an explicit `&mut Rng` so experiments are reproducible from a single seed.
pub type Rng = rand::rngs::StdRng;

/// Create the workspace RNG from a seed.
pub fn rng_from_seed(seed: u64) -> Rng {
    use rand::SeedableRng;
    Rng::seed_from_u64(seed)
}

/// RNG for one task of a concurrent batch, derived from `(seed, task_id)`.
///
/// The ids are mixed through a splitmix64-style finalizer before seeding,
/// so every task gets a well-separated stream no matter how similar the
/// ids are — a plain `seed ^ task_id` collides as soon as two tasks share
/// an id pattern. Because each task owns its RNG, results are independent
/// of scheduling order.
pub fn rng_for_task(seed: u64, task_id: u64) -> Rng {
    let mut z = seed ^ task_id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    rng_from_seed(z ^ (z >> 31))
}
